/// \file result_sink.h
/// \brief Sinks that receive the join output stream.
///
/// Joiners hand every produced JoinResult to a ResultSink. CollectorSink is
/// the standard implementation: it counts results, tracks the end-to-end
/// latency distribution, and can optionally verify exactly-once delivery
/// against the workload oracle (tests and the E12 protocol experiment).

#ifndef BISTREAM_CORE_RESULT_SINK_H_
#define BISTREAM_CORE_RESULT_SINK_H_

#include <cstdint>
#include <mutex>

#include "common/histogram.h"
#include "tuple/tuple.h"
#include "workload/reference_join.h"

namespace bistream {

/// \brief Consumer of the derived (joined) stream.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// \brief Called once per produced result, at its virtual emit time.
  virtual void OnResult(const JoinResult& result) = 0;
};

/// \brief Counting / latency-tracking / optionally checking sink.
class CollectorSink final : public ResultSink {
 public:
  /// \param check when true, every pair is recorded for oracle verification
  ///   (costs memory proportional to the result count).
  explicit CollectorSink(bool check = false) : check_(check) {}

  void OnResult(const JoinResult& result) override {
    ++count_;
    latency_.Record(result.latency_ns);
    last_emit_time_ = result.emit_time;
    if (check_) checker_.OnResult(result.r_id, result.s_id);
  }

  uint64_t count() const { return count_; }
  const Histogram& latency() const { return latency_; }
  SimTime last_emit_time() const { return last_emit_time_; }

  /// \brief The underlying checker; only meaningful when check was enabled.
  const ResultChecker& checker() const { return checker_; }

  void Reset() {
    count_ = 0;
    latency_.Reset();
    last_emit_time_ = 0;
    checker_.Reset();
  }

 private:
  bool check_;
  uint64_t count_ = 0;
  Histogram latency_;
  SimTime last_emit_time_ = 0;
  ResultChecker checker_;
};

/// \brief Serializing decorator for concurrent backends. Joiners on a
/// multithreaded executor emit results from different worker threads; this
/// wrapper funnels them through one mutex so any single-threaded sink
/// (CollectorSink included) can sit behind it unchanged. The engine
/// installs it automatically when Executor::concurrent() is true.
class LockingResultSink final : public ResultSink {
 public:
  explicit LockingResultSink(ResultSink* wrapped) : wrapped_(wrapped) {}

  void OnResult(const JoinResult& result) override {
    std::lock_guard<std::mutex> lock(mu_);
    wrapped_->OnResult(result);
  }

 private:
  ResultSink* wrapped_;
  std::mutex mu_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_RESULT_SINK_H_
