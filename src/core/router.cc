#include "core/router.h"

#include <algorithm>

#include "common/logging.h"

namespace bistream {

Router::Router(RouterOptions options, runtime::Clock* clock, UnitSendFn send)
    : options_(options),
      clock_(clock),
      send_(std::move(send)),
      policy_(options.subgroups_r, options.subgroups_s) {
  BISTREAM_CHECK(clock_ != nullptr);
  BISTREAM_CHECK(send_ != nullptr);
  BISTREAM_CHECK_GT(options_.punct_interval, 0ULL);
}

void Router::ScheduleEpoch(uint64_t activation_round,
                           std::shared_ptr<const TopologyView> view) {
  std::lock_guard<std::mutex> lk(ft_mu_);
  ScheduleEpochLocked(activation_round, std::move(view));
}

void Router::ScheduleEpochLocked(uint64_t activation_round,
                                 std::shared_ptr<const TopologyView> view) {
  BISTREAM_CHECK(view != nullptr);
  if (view_ == nullptr && activation_round <= round_) {
    // Initial install: always before Start(), so no worker reads view_ yet.
    view_ = std::move(view);
    return;
  }
  // Future epochs must activate at a round this router has not reached;
  // activating mid-round would desynchronize routing tables across routers.
  // With ft_mu_ held the round cannot advance under this check.
  BISTREAM_CHECK_GT(activation_round, round_)
      << "epoch scheduled for a round router " << options_.router_id
      << " already passed";
  pending_epochs_[activation_round] = std::move(view);
}

void Router::Start() {
  BISTREAM_CHECK(view_ != nullptr) << "Start() before initial epoch";
  BISTREAM_CHECK(!started_);
  started_ = true;
  clock_->ScheduleAfter(options_.punct_interval, [this] { Tick(); });
}

void Router::Tick() {
  if (stopped_) return;
  EmitPunctuation();
  AdvanceRound();
  clock_->ScheduleAfter(options_.punct_interval, [this] { Tick(); });
}

void Router::FlushAllBatches() {
  for (auto& [unit, entries] : pending_batches_) {
    if (entries.empty()) continue;
    Message batch = MakeBatch(std::move(entries), options_.router_id);
    entries.clear();
    send_(unit, std::move(batch));
  }
}

SimTime Router::FlushUnit(uint32_t unit) {
  auto it = pending_batches_.find(unit);
  if (it == pending_batches_.end() || it->second.empty()) return 0;
  Message batch = MakeBatch(std::move(it->second), options_.router_id);
  it->second.clear();
  SimTime cost = options_.cost.SendCost(batch.WireBytes());
  send_(unit, std::move(batch));
  return cost;
}

SimTime Router::EnqueueCopy(uint32_t unit, const Tuple& tuple,
                            StreamKind stream) {
  LogCopy(unit, tuple, stream, seq_, round_);
  if (options_.batch_size <= 1) {
    Message copy = MakeTupleMessage(tuple, stream, options_.router_id, seq_,
                                    round_);
    SimTime cost = options_.cost.SendCost(copy.WireBytes());
    send_(unit, std::move(copy));
    return cost;
  }
  std::vector<BatchEntry>& pending = pending_batches_[unit];
  pending.push_back(BatchEntry{tuple, stream, seq_, round_});
  if (pending.size() >= options_.batch_size) {
    return FlushUnit(unit);
  }
  return 0;
}

void Router::EmitPunctuation(bool final) {
  ++stats_.punctuations;
  // A round's tuples must precede its punctuation on every channel
  // (pairwise FIFO): drain all pending mini-batches first.
  FlushAllBatches();
  for (uint32_t target : view_->punct_targets) {
    send_(target, MakePunctuation(options_.router_id, seq_, round_, final));
  }
}

void Router::AdvanceRound() {
  // Take the round step and extract this round's pending control-plane work
  // under ft_mu_, then act on it unlocked (SendReplay blocks on
  // backpressure; holding the lock across sends could deadlock against a
  // checkpoint acknowledgement from the stalled destination).
  std::shared_ptr<const TopologyView> new_view;
  std::vector<ReplayRequest> replays;
  uint64_t round = 0;
  {
    std::lock_guard<std::mutex> lk(ft_mu_);
    ++round_;
    round = round_;
    auto it = pending_epochs_.find(round);
    if (it != pending_epochs_.end()) {
      new_view = std::move(it->second);
      pending_epochs_.erase(it);
    }
    auto range = pending_replays_.equal_range(round);
    for (auto rit = range.first; rit != range.second; ++rit) {
      replays.push_back(rit->second);
    }
    pending_replays_.erase(range.first, range.second);
  }
  if (new_view != nullptr) view_ = std::move(new_view);
  if (options_.timeline != nullptr) {
    options_.timeline->Record(runtime::TimelineEventType::kPunctRound,
                              clock_->now(), options_.timeline_lane, round);
  }
  for (const ReplayRequest& request : replays) {
    SendReplay(request, round);
  }
  GcReplayLogs();
}

void Router::LogCopy(uint32_t unit, const Tuple& tuple, StreamKind stream,
                     uint64_t seq, uint64_t round) {
  if (!options_.retain_for_replay) return;
  std::lock_guard<std::mutex> lk(ft_mu_);
  replay_log_[unit][round].push_back(BatchEntry{tuple, stream, seq, round});
}

void Router::NoteCheckpoint(uint32_t unit, uint64_t round) {
  // Called from the checkpointing joiner's worker on the parallel backend.
  std::lock_guard<std::mutex> lk(ft_mu_);
  auto it = replay_log_.find(unit);
  if (it == replay_log_.end()) return;
  std::map<uint64_t, std::vector<BatchEntry>>& rounds = it->second;
  rounds.erase(rounds.begin(), rounds.upper_bound(round));
  if (rounds.empty()) replay_log_.erase(it);
}

void Router::ScheduleReplay(uint64_t activation_round,
                            ReplayRequest request) {
  std::lock_guard<std::mutex> lk(ft_mu_);
  ScheduleReplayLocked(activation_round, request);
}

void Router::ScheduleReplayLocked(uint64_t activation_round,
                                  ReplayRequest request) {
  BISTREAM_CHECK(options_.retain_for_replay)
      << "replay scheduled on a router without a replay log";
  BISTREAM_CHECK_GT(activation_round, round_)
      << "replay scheduled for a round router " << options_.router_id
      << " already passed";
  pending_replays_.emplace(activation_round, request);
}

bool Router::RemapReplaysLocked(uint32_t dead_replacement,
                                uint32_t new_replacement,
                                uint64_t new_activation) {
  BISTREAM_CHECK_GT(new_activation, round_)
      << "remapped replay scheduled for a round router "
      << options_.router_id << " already passed";
  std::vector<ReplayRequest> moved;
  for (auto it = pending_replays_.begin(); it != pending_replays_.end();) {
    if (it->second.replacement_unit == dead_replacement) {
      moved.push_back(it->second);
      it = pending_replays_.erase(it);
    } else {
      ++it;
    }
  }
  for (ReplayRequest request : moved) {
    request.replacement_unit = new_replacement;
    pending_replays_.emplace(new_activation, request);
  }
  return !moved.empty();
}

void Router::SendReplay(const ReplayRequest& request,
                        uint64_t activation_round) {
  if (options_.timeline != nullptr) {
    options_.timeline->Record(runtime::TimelineEventType::kReplay,
                              clock_->now(), options_.timeline_lane,
                              request.replacement_unit);
  }
  // Move the failed unit's log out under the lock, send unlocked (the
  // replacement's inbox can exert backpressure). Re-logging each copy under
  // the replacement goes through LogCopy, which re-takes the lock per call.
  std::map<uint64_t, std::vector<BatchEntry>> log;
  {
    std::lock_guard<std::mutex> lk(ft_mu_);
    auto log_it = replay_log_.find(request.failed_unit);
    if (log_it != replay_log_.end()) {
      log = std::move(log_it->second);
      replay_log_.erase(log_it);
    }
  }
  for (uint64_t r = request.from_round; r < activation_round; ++r) {
    auto round_it = log.find(r);
    if (round_it != log.end()) {
      for (const BatchEntry& entry : round_it->second) {
        Message copy = MakeTupleMessage(entry.tuple, entry.stream,
                                        options_.router_id, entry.seq, r);
        copy.replayed = true;
        // Re-log under the replacement so a second crash during catch-up
        // is itself recoverable.
        LogCopy(request.replacement_unit, entry.tuple, entry.stream,
                entry.seq, r);
        send_(request.replacement_unit, std::move(copy));
        ++stats_.replayed_messages;
      }
    }
    // Close each replayed round even when it logged no copies: the
    // replacement's order buffer needs a punctuation per router per round.
    send_(request.replacement_unit,
          MakePunctuation(options_.router_id, seq_, r));
  }
}

void Router::GcReplayLogs() {
  if (!options_.retain_for_replay) return;
  std::lock_guard<std::mutex> lk(ft_mu_);
  for (auto it = replay_log_.begin(); it != replay_log_.end();) {
    uint32_t unit = it->first;
    bool in_view =
        std::find(view_->punct_targets.begin(), view_->punct_targets.end(),
                  unit) != view_->punct_targets.end();
    bool awaited = false;
    for (const auto& [activation, request] : pending_replays_) {
      if (request.failed_unit == unit) {
        awaited = true;
        break;
      }
    }
    if (!in_view && !awaited) {
      it = replay_log_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t Router::replay_log_entries() const {
  std::lock_guard<std::mutex> lk(ft_mu_);
  size_t total = 0;
  for (const auto& [unit, rounds] : replay_log_) {
    for (const auto& [round, entries] : rounds) total += entries.size();
  }
  return total;
}

SimTime Router::Handle(const Message& msg) {
  switch (msg.kind) {
    case Message::Kind::kTuple: {
      if (stopped_) {
        ++stats_.dropped_after_stop;
        return options_.cost.route_ns;
      }
      SimTime send_cost = RouteTuple(msg.tuple);
      return options_.cost.route_ns + send_cost +
             options_.cost.MessageCost(msg.WireBytes());
    }
    case Message::Kind::kControl:
      if (msg.control == ControlOp::kStopFlush && !stopped_) {
        // Close the final round so joiners flush their buffers, then halt.
        // The punctuation is marked final: on a wall-clock backend the
        // routers' tick cadences drift, so this router's last round number
        // can trail its peers' — order buffers must not wait on it for the
        // higher rounds.
        EmitPunctuation(/*final=*/true);
        stopped_ = true;
      }
      return options_.cost.punctuation_ns;
    case Message::Kind::kBatch: {
      // Batched source ingestion: route every tuple in the batch under one
      // framework-overhead charge.
      SimTime cost = options_.cost.MessageCost(msg.WireBytes());
      for (const BatchEntry& entry : msg.batch) {
        if (stopped_) {
          ++stats_.dropped_after_stop;
          continue;
        }
        cost += options_.cost.route_ns + RouteTuple(entry.tuple);
      }
      return cost;
    }
    case Message::Kind::kPunctuation:
      // Routers do not consume punctuations.
      return options_.cost.punctuation_ns;
  }
  return 0;
}

SimTime Router::RouteTuple(const Tuple& tuple) {
  ++seq_;
  ++stats_.tuples_routed;
  RouteDecision decision = policy_.Route(tuple, *view_);
  if (options_.tracer != nullptr && options_.tracer->ShouldRecord(tuple)) {
    options_.tracer->OnRouted(tuple, clock_->now());
  }

  SimTime send_cost =
      EnqueueCopy(decision.store_unit, tuple, StreamKind::kStore);
  ++stats_.store_messages;

  for (uint32_t unit : *decision.probe_units) {
    send_cost += EnqueueCopy(unit, tuple, StreamKind::kJoin);
    ++stats_.join_messages;
  }
  return send_cost;
}

}  // namespace bistream
