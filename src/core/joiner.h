/// \file joiner.h
/// \brief The joiner service: one processing unit of the biclique.
///
/// A joiner belongs to one relation side. Its two execution branches mirror
/// the paper's design: the *store* branch inserts own-relation tuples into
/// the unit's chained in-memory index; the *join* branch takes an
/// opposite-relation tuple, discards expired sub-indexes (Theorem 1),
/// probes the survivors, and emits the matching pairs. When the ordering
/// protocol is enabled (the default), incoming tuples pass through the
/// OrderBuffer and are only processed once their punctuation round is
/// complete; with it disabled tuples are processed on arrival — the faulty
/// configuration E12 and the protocol tests exercise.

#ifndef BISTREAM_CORE_JOINER_H_
#define BISTREAM_CORE_JOINER_H_

#include <memory>

#include "common/memory_tracker.h"
#include "core/order_buffer.h"
#include "core/result_sink.h"
#include "index/chained_index.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/message.h"
#include "tuple/join_predicate.h"

namespace bistream {

/// \brief Joiner configuration.
struct JoinerOptions {
  uint32_t unit_id = 0;
  RelationId relation = kRelationR;
  JoinPredicate predicate = JoinPredicate::Equi();
  IndexKind index_kind = IndexKind::kHash;
  EventTime window = 10 * kEventSecond;
  EventTime archive_period = 1 * kEventSecond;
  /// Allowed lateness for Theorem-1 expiry (see ChainedIndexOptions).
  EventTime expiry_slack = 0;
  CostModel cost;
  uint32_t num_routers = 1;
  /// First punctuation round this unit participates in (scale-out units
  /// start at their activation round).
  uint64_t start_round = 0;
  /// Order-consistent protocol on (default) or off (E12 / tests).
  bool ordered = true;
};

/// \brief Per-joiner statistics.
struct JoinerStats {
  uint64_t stored = 0;
  uint64_t probes = 0;
  uint64_t results = 0;
  uint64_t probe_candidates = 0;
  uint64_t expired_tuples = 0;
  uint64_t expired_subindexes = 0;
};

/// \brief One biclique processing unit. Install Handle() as its SimNode
/// handler.
class Joiner {
 public:
  /// \param sink result consumer (not owned)
  /// \param parent_tracker memory accounting parent (may be null)
  Joiner(JoinerOptions options, EventLoop* loop, ResultSink* sink,
         MemoryTracker* parent_tracker);

  /// \brief SimNode handler.
  SimTime Handle(const Message& msg);

  uint32_t unit_id() const { return options_.unit_id; }
  RelationId relation() const { return options_.relation; }
  const JoinerStats& stats() const { return stats_; }
  const ChainedIndex& index() const { return index_; }
  const MemoryTracker& memory() const { return tracker_; }
  size_t buffered() const { return buffer_.buffered(); }

 private:
  /// Store or join branch for one released (or unordered) tuple message.
  SimTime ProcessTuple(const Message& msg);
  SimTime StoreBranch(const Tuple& tuple);
  SimTime JoinBranch(const Tuple& probe);

  JoinerOptions options_;
  EventLoop* loop_;
  ResultSink* sink_;
  MemoryTracker tracker_;
  ChainedIndex index_;
  OrderBuffer buffer_;
  JoinerStats stats_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_JOINER_H_
