/// \file joiner.h
/// \brief The joiner service: one processing unit of the biclique.
///
/// A joiner belongs to one relation side. Its two execution branches mirror
/// the paper's design: the *store* branch inserts own-relation tuples into
/// the unit's chained in-memory index; the *join* branch takes an
/// opposite-relation tuple, discards expired sub-indexes (Theorem 1),
/// probes the survivors, and emits the matching pairs. When the ordering
/// protocol is enabled (the default), incoming tuples pass through the
/// OrderBuffer and are only processed once their punctuation round is
/// complete; with it disabled tuples are processed on arrival — the faulty
/// configuration E12 and the protocol tests exercise.

#ifndef BISTREAM_CORE_JOINER_H_
#define BISTREAM_CORE_JOINER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory_tracker.h"
#include "common/relaxed.h"
#include "core/order_buffer.h"
#include "core/result_sink.h"
#include "index/chained_index.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/cost_model.h"
#include "runtime/message.h"
#include "tuple/join_predicate.h"

namespace bistream {

/// \brief Joiner configuration.
struct JoinerOptions {
  uint32_t unit_id = 0;
  RelationId relation = kRelationR;
  JoinPredicate predicate = JoinPredicate::Equi();
  IndexKind index_kind = IndexKind::kHash;
  EventTime window = 10 * kEventSecond;
  EventTime archive_period = 1 * kEventSecond;
  /// Allowed lateness for Theorem-1 expiry (see ChainedIndexOptions).
  EventTime expiry_slack = 0;
  CostModel cost;
  uint32_t num_routers = 1;
  /// First punctuation round this unit participates in (scale-out units
  /// start at their activation round).
  uint64_t start_round = 0;
  /// Order-consistent protocol on (default) or off (E12 / tests).
  bool ordered = true;
  /// Checkpoint the window every N fully released punctuation rounds
  /// (0 = checkpointing off). Requires `ordered`: a checkpoint tagged with
  /// round C must mean "state reflects exactly the tuples of rounds <= C",
  /// which only the round-release discipline guarantees.
  uint64_t checkpoint_rounds = 0;
  /// Optional per-tuple tracer (engine-owned; may be null or disabled).
  /// Records arrival/release/store/probe hops of sampled tuples; charges no
  /// virtual time.
  TupleTracer* tracer = nullptr;
  /// Wall-clock stage accounting (the parallel backend): charge the busy_*
  /// buckets with measured wall time per stage instead of modeled virtual
  /// cost. Store and probe (expiry folded in) are measured around the index
  /// calls; punctuation around the order-buffer insert and checkpoint;
  /// message framing is left to the worker's busy_ns residual, so the
  /// buckets sum to <= busy_ns rather than exactly (see DESIGN.md §9.2).
  bool measure_wall_stages = false;
};

/// \brief Receives a round-aligned window snapshot. `round` is the last
/// punctuation round whose tuples the snapshot includes.
using CheckpointFn = std::function<void(uint32_t unit, uint64_t round,
                                        std::vector<Tuple> tuples)>;

/// \brief Per-joiner statistics. RelaxedCells: written only by the joiner's
/// own execution context, read tear-free by the wall-clock sampler mid-run
/// and exactly by the driver after quiescence.
struct JoinerStats {
  RelaxedCell<uint64_t> stored = 0;
  RelaxedCell<uint64_t> probes = 0;
  RelaxedCell<uint64_t> results = 0;
  RelaxedCell<uint64_t> probe_candidates = 0;
  RelaxedCell<uint64_t> expired_tuples = 0;
  RelaxedCell<uint64_t> expired_subindexes = 0;
  RelaxedCell<uint64_t> checkpoints = 0;
  RelaxedCell<uint64_t> restored_tuples = 0;
  /// Decomposition of this unit's service time by pipeline stage. Under
  /// virtual cost (the sim) every nanosecond Handle() returns is attributed
  /// to exactly one bucket, so the six sum to the unit's SimNode busy_ns —
  /// the per-stage cost profile the diagnosis layer exports. Under
  /// wall-clock stage accounting (JoinerOptions::measure_wall_stages) the
  /// buckets hold measured wall time: expiry folds into the probe bucket,
  /// framing stays unattributed, and the buckets sum to <= busy_ns.
  RelaxedCell<SimTime> busy_store_ns = 0;   ///< index inserts
  RelaxedCell<SimTime> busy_probe_ns = 0;   ///< probe work (+ expiry, wall)
  RelaxedCell<SimTime> busy_expire_ns = 0;  ///< Theorem-1 discards (sim)
  RelaxedCell<SimTime> busy_punct_ns = 0;   ///< punctuation + checkpoints
  RelaxedCell<SimTime> busy_replay_ns = 0;  ///< recovery replay (all stages)
  RelaxedCell<SimTime> busy_msg_ns = 0;     ///< message framing (sim)
};

/// \brief One biclique processing unit. Install Handle() as its unit
/// handler.
class Joiner {
 public:
  /// \param sink result consumer (not owned)
  /// \param parent_tracker memory accounting parent (may be null)
  Joiner(JoinerOptions options, runtime::Clock* clock, ResultSink* sink,
         MemoryTracker* parent_tracker);

  /// \brief Unit message handler.
  SimTime Handle(const Message& msg);

  uint32_t unit_id() const { return options_.unit_id; }
  RelationId relation() const { return options_.relation; }
  uint64_t start_round() const { return options_.start_round; }
  const JoinerStats& stats() const { return stats_; }
  const ChainedIndex& index() const { return index_; }
  const MemoryTracker& memory() const { return tracker_; }
  size_t buffered() const { return buffer_.buffered(); }

  /// \brief First punctuation round not yet fully released (monotone; the
  /// auditor's ordering invariant).
  uint64_t release_round() const { return buffer_.next_release_round(); }

  /// \brief Event-time lag (µs) between the most advanced Theorem-1 expiry
  /// scan and the oldest surviving sub-index; 0 before any scan. Bounded by
  /// window + expiry_slack — the window invariant the auditor checks.
  /// Served from a cell the joiner republishes after every probe, so the
  /// sampler may call it mid-run without touching index internals.
  EventTime expiry_lag() const { return expiry_lag_; }

  // ----------------------------------------------------- fault tolerance --

  /// \brief Installs the checkpoint sink (the engine's checkpoint store).
  /// Takes effect only when options.checkpoint_rounds > 0.
  void SetCheckpointFn(CheckpointFn fn) { checkpoint_fn_ = std::move(fn); }

  /// \brief Virtual time of the last punctuation this unit processed
  /// (liveness heartbeat for the failure detector). Initialized to the
  /// construction time so a fresh unit is not instantly "silent".
  SimTime last_progress_time() const { return last_progress_time_; }

  /// \brief Models the memory loss of a process crash: drops the window
  /// index (releasing its byte accounting). The crashed object is never
  /// reused — recovery builds a replacement Joiner.
  void OnCrash();

  /// \brief Loads a checkpoint snapshot into the (empty) window index.
  /// Called on a replacement unit before its activation round.
  void RestoreWindow(const std::vector<Tuple>& tuples);

  /// \brief Invokes `fn` once every round below `round` has been released
  /// (i.e. the unit has caught up through the replayed backlog). Fires
  /// immediately when already true.
  void NotifyWhenCaughtUp(uint64_t round, std::function<void()> fn);

 private:
  /// Store or join branch for one released (or unordered) tuple message.
  SimTime ProcessTuple(const Message& msg);
  SimTime StoreBranch(const Tuple& tuple, bool replayed);
  SimTime JoinBranch(const Tuple& probe, bool replayed);
  /// Records a traced tuple's arrival hop (no-op for untraced/replayed).
  void TraceArrival(const Message& msg);
  /// Stage-measurement start marker: the wall clock when measure_wall_stages
  /// is on, 0 (unused) otherwise.
  SimTime StageStart() const {
    return options_.measure_wall_stages ? clock_->now() : 0;
  }
  /// Charges `bucket` with the wall time since `start` under wall-stage
  /// accounting, with the modeled virtual cost otherwise.
  void Charge(RelaxedCell<SimTime>& bucket, SimTime start, SimTime modeled) {
    if (options_.measure_wall_stages) {
      SimTime now = clock_->now();
      bucket += now > start ? now - start : 0;
    } else {
      bucket += modeled;
    }
  }
  /// Recomputes and republishes the expiry-lag cell from the index.
  void PublishExpiryLag();
  /// True when the tracer should see this message's hops. ShouldRecord
  /// keeps the clock read off the untraced hot path on the parallel
  /// backend.
  bool Tracing(const Message& msg) const {
    return options_.tracer != nullptr && !msg.replayed &&
           options_.tracer->ShouldRecord(msg.tuple);
  }
  /// Snapshots the window if the checkpoint cadence is due; returns the
  /// virtual-time charge.
  SimTime MaybeCheckpoint();
  /// Fires pending catch-up callbacks whose round has been reached.
  void CheckCaughtUp();

  JoinerOptions options_;
  runtime::Clock* clock_;
  ResultSink* sink_;
  MemoryTracker tracker_;
  ChainedIndex index_;
  OrderBuffer buffer_;
  JoinerStats stats_;
  CheckpointFn checkpoint_fn_;
  /// First round tag at/after which the next checkpoint fires.
  uint64_t next_checkpoint_round_ = 0;
  /// RelaxedCells below: written on the joiner's execution context, read
  /// tear-free by the failure detector / sampler gauges mid-run.
  RelaxedCell<SimTime> last_progress_time_ = 0;
  RelaxedCell<EventTime> expiry_lag_ = 0;
  struct CatchUpWaiter {
    uint64_t round = 0;
    std::function<void()> fn;
  };
  /// Guards catch_up_waiters_: the driver registers (NotifyWhenCaughtUp)
  /// while this unit's worker releases rounds and fires (CheckCaughtUp).
  /// Both sides touching the same mutex also closes the register/fire race:
  /// whichever runs second sees the other's effect.
  std::mutex waiters_mu_;
  std::vector<CatchUpWaiter> catch_up_waiters_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_JOINER_H_
