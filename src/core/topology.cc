#include "core/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace bistream {

TopologyManager::TopologyManager(uint32_t subgroups_r, uint32_t subgroups_s) {
  BISTREAM_CHECK_GE(subgroups_r, 1U);
  BISTREAM_CHECK_GE(subgroups_s, 1U);
  subgroups_[0] = subgroups_r;
  subgroups_[1] = subgroups_s;
}

uint32_t TopologyManager::AddUnit(RelationId relation) {
  int side = SideOf(relation);
  // Count active units per subgroup to find the least populated one.
  std::vector<size_t> population(subgroups_[side], 0);
  for (const UnitRecord& u : units_) {
    if (SideOf(u.relation) == side && u.state == UnitState::kActive) {
      ++population[u.subgroup];
    }
  }
  uint32_t subgroup = 0;
  for (uint32_t g = 1; g < subgroups_[side]; ++g) {
    if (population[g] < population[subgroup]) subgroup = g;
  }
  return AddUnit(relation, subgroup);
}

uint32_t TopologyManager::AddUnit(RelationId relation, uint32_t subgroup) {
  BISTREAM_CHECK_LT(subgroup, subgroups_[SideOf(relation)]);
  UnitRecord record;
  record.id = next_unit_id_++;
  record.relation = relation;
  record.subgroup = subgroup;
  record.state = UnitState::kActive;
  units_.push_back(record);
  return record.id;
}

Status TopologyManager::MarkFailed(uint32_t unit_id) {
  UnitRecord* u = Find(unit_id);
  if (u == nullptr) return Status::NotFound("unknown unit");
  if (u->state != UnitState::kActive && u->state != UnitState::kDraining) {
    return Status::FailedPrecondition("unit is not live");
  }
  u->state = UnitState::kFailed;
  return Status::OK();
}

UnitRecord* TopologyManager::Find(uint32_t unit_id) {
  for (UnitRecord& u : units_) {
    if (u.id == unit_id) return &u;
  }
  return nullptr;
}

const UnitRecord& TopologyManager::unit(uint32_t unit_id) const {
  for (const UnitRecord& u : units_) {
    if (u.id == unit_id) return u;
  }
  BISTREAM_LOG(Fatal) << "unknown unit " << unit_id;
  return units_.front();
}

Status TopologyManager::StartDrain(uint32_t unit_id) {
  UnitRecord* u = Find(unit_id);
  if (u == nullptr) return Status::NotFound("unknown unit");
  if (u->state != UnitState::kActive) {
    return Status::FailedPrecondition("unit is not active");
  }
  // Never drain the last active unit of a side: stores would have nowhere
  // to go and the biclique side would vanish.
  if (NumActive(u->relation) <= 1) {
    return Status::FailedPrecondition(
        "cannot drain the last active unit of a relation side");
  }
  u->state = UnitState::kDraining;
  return Status::OK();
}

Status TopologyManager::Retire(uint32_t unit_id) {
  UnitRecord* u = Find(unit_id);
  if (u == nullptr) return Status::NotFound("unknown unit");
  if (u->state != UnitState::kDraining) {
    return Status::FailedPrecondition("unit is not draining");
  }
  u->state = UnitState::kRetired;
  return Status::OK();
}

Result<uint32_t> TopologyManager::PickDrainCandidate(
    RelationId relation) const {
  int side = SideOf(relation);
  std::vector<size_t> population(subgroups_[side], 0);
  for (const UnitRecord& u : units_) {
    if (SideOf(u.relation) == side && u.state == UnitState::kActive) {
      ++population[u.subgroup];
    }
  }
  uint32_t target_subgroup = 0;
  for (uint32_t g = 1; g < subgroups_[side]; ++g) {
    if (population[g] > population[target_subgroup]) target_subgroup = g;
  }
  // Youngest active unit of the fullest subgroup.
  const UnitRecord* best = nullptr;
  for (const UnitRecord& u : units_) {
    if (SideOf(u.relation) == side && u.state == UnitState::kActive &&
        u.subgroup == target_subgroup) {
      if (best == nullptr || u.id > best->id) best = &u;
    }
  }
  if (best == nullptr) {
    return Status::FailedPrecondition("no active unit to drain");
  }
  return best->id;
}

size_t TopologyManager::NumActive(RelationId relation) const {
  size_t count = 0;
  for (const UnitRecord& u : units_) {
    if (SideOf(u.relation) == SideOf(relation) &&
        u.state == UnitState::kActive) {
      ++count;
    }
  }
  return count;
}

size_t TopologyManager::NumLive(RelationId relation) const {
  size_t count = 0;
  for (const UnitRecord& u : units_) {
    if (SideOf(u.relation) == SideOf(relation) &&
        (u.state == UnitState::kActive || u.state == UnitState::kDraining)) {
      ++count;
    }
  }
  return count;
}

std::shared_ptr<const TopologyView> TopologyManager::Snapshot() {
  auto view = std::make_shared<TopologyView>();
  view->version = next_version_++;
  for (int side = 0; side < 2; ++side) {
    view->sides[side].store_by_subgroup.resize(subgroups_[side]);
    view->sides[side].probe_by_subgroup.resize(subgroups_[side]);
  }
  for (const UnitRecord& u : units_) {
    if (u.state == UnitState::kRetired || u.state == UnitState::kFailed) {
      continue;
    }
    int side = SideOf(u.relation);
    view->punct_targets.push_back(u.id);
    view->sides[side].probe_by_subgroup[u.subgroup].push_back(u.id);
    view->sides[side].all_probe.push_back(u.id);
    if (u.state == UnitState::kActive) {
      view->sides[side].store_by_subgroup[u.subgroup].push_back(u.id);
    }
  }
  return view;
}

}  // namespace bistream
