/// \file router.h
/// \brief The router service: ingestion, sequencing, routing, punctuation.
///
/// Routers ingest raw tuples from the sources, assign each a (router_id,
/// seq, round) ordering identity, and fork it into the store stream (one
/// copy to one own-side unit) and the join stream (copies to the opposite
/// side's probe set) per the RoutingPolicy. On a fixed virtual-time cadence
/// each router emits a punctuation closing the current round to every live
/// joiner, then advances its round counter and applies any topology epoch
/// scheduled for the new round. Epochs activating exactly at round
/// boundaries keep the routing tables consistent with the global tuple
/// order (see DESIGN.md §5.2).

#ifndef BISTREAM_CORE_ROUTER_H_
#define BISTREAM_CORE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/relaxed.h"
#include "core/routing.h"
#include "core/topology.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/timeline.h"
#include "runtime/cost_model.h"
#include "runtime/message.h"

namespace bistream {

/// \brief Transport hook: delivers a message to a joiner unit by id.
using UnitSendFn = std::function<void(uint32_t unit_id, Message msg)>;

/// \brief Router configuration.
struct RouterOptions {
  uint32_t router_id = 0;
  uint32_t subgroups_r = 1;
  uint32_t subgroups_s = 1;
  /// Punctuation cadence (the paper's ~tens of milliseconds signal tuples).
  SimTime punct_interval = 10 * kMillisecond;
  /// Mini-batch size per destination: 1 sends each copy immediately;
  /// larger values coalesce copies per joiner into kBatch messages (one
  /// framework-overhead charge per batch — BiStream's batching technique).
  /// Batches are force-flushed at every punctuation, bounding the added
  /// latency by the punctuation interval.
  uint32_t batch_size = 1;
  /// Fault tolerance: keep a per-unit log of routed copies (by round) so a
  /// failed unit's traffic since its last checkpoint can be replayed to a
  /// replacement. Logs are trimmed on checkpoint acknowledgements.
  bool retain_for_replay = false;
  CostModel cost;
  /// Optional per-tuple tracer (engine-owned; may be null or disabled).
  /// Records the route hop of sampled tuples; charges no virtual time.
  TupleTracer* tracer = nullptr;
  /// Optional execution-timeline sink (engine-owned; may be null) and the
  /// lane — this router's *unit* id, not router_id — its control events
  /// (punctuation rounds, replays) land on. Explicit because under sim the
  /// punctuation tick runs outside any handler's lane scope.
  runtime::TimelineSink* timeline = nullptr;
  uint32_t timeline_lane = runtime::kDriverLane;
};

/// \brief Per-router statistics. RelaxedCells: written only by the router's
/// own execution context, read tear-free by the wall-clock sampler.
struct RouterStats {
  RelaxedCell<uint64_t> tuples_routed = 0;
  RelaxedCell<uint64_t> store_messages = 0;
  RelaxedCell<uint64_t> join_messages = 0;
  RelaxedCell<uint64_t> punctuations = 0;
  /// Tuples that arrived after the stop-flush; they cannot be sequenced
  /// into a punctuated round anymore and are dropped (a driver bug).
  RelaxedCell<uint64_t> dropped_after_stop = 0;
  /// Tuple copies re-sent to replacement units during recovery.
  RelaxedCell<uint64_t> replayed_messages = 0;
};

/// \brief One pending recovery replay: resend the failed unit's logged
/// copies for rounds [from_round, activation) to the replacement.
struct ReplayRequest {
  uint32_t failed_unit = 0;
  uint32_t replacement_unit = 0;
  uint64_t from_round = 0;
};

/// \brief One router service instance. Install Handle() as the unit's
/// handler; drive punctuation with Start()/the stop-flush control.
///
/// `clock` should be the unit's own clock (runtime::Unit::clock()) so the
/// punctuation cadence runs in the unit's execution context on every
/// backend.
class Router {
 public:
  Router(RouterOptions options, runtime::Clock* clock, UnitSendFn send);

  /// \brief Installs the view used from the given activation round on.
  /// The initial view must be scheduled for round 0 before Start().
  void ScheduleEpoch(uint64_t activation_round,
                     std::shared_ptr<const TopologyView> view);

  /// \brief Freezes this router's round counter for a multi-router epoch
  /// change. The engine locks every router (index order), computes one
  /// activation round strictly in each one's future, registers the epoch /
  /// replays with the *Locked variants, then releases. While held, this
  /// router keeps routing tuples within its current round but cannot
  /// advance to the next one.
  std::unique_lock<std::mutex> LockRound() {
    return std::unique_lock<std::mutex>(ft_mu_);
  }
  /// \brief ScheduleEpoch body; caller must hold LockRound().
  void ScheduleEpochLocked(uint64_t activation_round,
                           std::shared_ptr<const TopologyView> view);

  /// \brief Begins the punctuation cadence.
  void Start();

  /// \brief Unit message handler: routes tuple messages; a kStopFlush
  /// control emits the final punctuation and halts the cadence.
  SimTime Handle(const Message& msg);

  uint64_t current_round() const { return round_; }
  uint64_t current_seq() const { return seq_; }
  bool stopped() const { return stopped_; }
  const RouterStats& stats() const { return stats_; }

  // ----------------------------------------------------- fault tolerance --

  /// \brief Checkpoint acknowledgement: rounds <= `round` of `unit`'s log
  /// are durable and can be trimmed.
  void NoteCheckpoint(uint32_t unit, uint64_t round);

  /// \brief Registers a replay that fires when this router reaches the
  /// replacement's activation round (must be a round not yet reached). The
  /// replayed copies precede any live activation-round traffic on the
  /// replacement's FIFO channel, so the round order is preserved.
  void ScheduleReplay(uint64_t activation_round, ReplayRequest request);
  /// \brief ScheduleReplay body; caller must hold LockRound().
  void ScheduleReplayLocked(uint64_t activation_round, ReplayRequest request);

  /// \brief Chained-failure handoff; caller must hold LockRound(). Any
  /// pending replay whose replacement is `dead_replacement` (a replacement
  /// that crashed before this router reached its activation round) is
  /// re-targeted at `new_replacement` and rescheduled for `new_activation`.
  /// Returns true when something was remapped — the caller then skips
  /// scheduling a fresh replay on this router, because the dead
  /// replacement's own log is empty here (it never received live traffic)
  /// and the remapped request already carries the original backlog.
  bool RemapReplaysLocked(uint32_t dead_replacement,
                          uint32_t new_replacement, uint64_t new_activation);

  /// \brief Bytes currently held in replay logs (for tests / metrics).
  size_t replay_log_entries() const;

 private:
  /// Forks the tuple into store/join copies; returns the send-side cost.
  SimTime RouteTuple(const Tuple& tuple);
  /// Queues one copy for `unit` (or sends immediately when unbatched);
  /// returns the send cost incurred now.
  SimTime EnqueueCopy(uint32_t unit, const Tuple& tuple, StreamKind stream);
  /// Sends `unit`'s pending batch, if any; returns its send cost.
  SimTime FlushUnit(uint32_t unit);
  /// Sends every pending batch (before punctuations close the round).
  void FlushAllBatches();
  /// \param final true on the stop-flush punctuation: announces this router
  /// will punctuate no further rounds (see Message::final_punct).
  void EmitPunctuation(bool final = false);
  void Tick();
  /// Advances to the next round, applying a pending epoch if scheduled.
  void AdvanceRound();
  /// Records one routed copy into the replay log (retain_for_replay only).
  void LogCopy(uint32_t unit, const Tuple& tuple, StreamKind stream,
               uint64_t seq, uint64_t round);
  /// Resends logged rounds [from_round, activation) to the replacement,
  /// with per-round punctuations, then drops the failed unit's log.
  void SendReplay(const ReplayRequest& request, uint64_t activation_round);
  /// Drops logs of units that left the view (retired/failed) and are not
  /// awaited by a pending replay.
  void GcReplayLogs();

  RouterOptions options_;
  runtime::Clock* clock_;
  UnitSendFn send_;
  RoutingPolicy policy_;
  /// Current view: read/written only in this router's execution context
  /// (initial install happens before Start, epoch swaps in AdvanceRound).
  std::shared_ptr<const TopologyView> view_;
  /// Guards the state shared between this router's worker and the driver's
  /// control plane: pending_epochs_, pending_replays_, replay_log_, and the
  /// round_ increment (so an engine holding LockRound() sees a frozen
  /// round). Never held across send_ — sends can block on backpressure,
  /// and the blocked destination's worker may need this lock to ack a
  /// checkpoint (NoteCheckpoint).
  mutable std::mutex ft_mu_;
  std::map<uint64_t, std::shared_ptr<const TopologyView>> pending_epochs_;
  /// Pending mini-batches per destination unit (batch_size > 1 only).
  std::map<uint32_t, std::vector<BatchEntry>> pending_batches_;
  /// Replay log: unit -> round -> sequenced copies (retain_for_replay).
  std::map<uint32_t, std::map<uint64_t, std::vector<BatchEntry>>> replay_log_;
  /// Replays keyed by the activation round that triggers them.
  std::multimap<uint64_t, ReplayRequest> pending_replays_;
  /// Sequencing state: mutated only on the router's worker; RelaxedCells so
  /// the sampler's round/seq gauges read them tear-free mid-run.
  RelaxedCell<uint64_t> seq_ = 0;
  RelaxedCell<uint64_t> round_ = 0;
  bool started_ = false;
  RelaxedCell<bool> stopped_ = false;
  RouterStats stats_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_ROUTER_H_
