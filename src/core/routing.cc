#include "core/routing.h"

#include "common/hash.h"
#include "common/logging.h"

namespace bistream {

RoutingPolicy::RoutingPolicy(uint32_t subgroups_r, uint32_t subgroups_s) {
  BISTREAM_CHECK_GE(subgroups_r, 1U);
  BISTREAM_CHECK_GE(subgroups_s, 1U);
  subgroups_[0] = subgroups_r;
  subgroups_[1] = subgroups_s;
  cursor_[0].assign(subgroups_r, 0);
  cursor_[1].assign(subgroups_s, 0);
}

uint32_t RoutingPolicy::SubgroupFor(int64_t key, int side) const {
  return static_cast<uint32_t>(HashInt64(key) % subgroups_[side]);
}

RouteDecision RoutingPolicy::Route(const Tuple& tuple,
                                   const TopologyView& view) {
  int own_side = TopologyManager::SideOf(tuple.relation);
  int opp_side = 1 - own_side;

  uint32_t own_group = SubgroupFor(tuple.key, own_side);
  uint32_t opp_group = SubgroupFor(tuple.key, opp_side);

  const std::vector<uint32_t>& store_pool =
      view.sides[own_side].store_by_subgroup[own_group];
  BISTREAM_CHECK(!store_pool.empty())
      << "no active storage unit for side " << own_side << " subgroup "
      << own_group;

  RouteDecision decision;
  uint64_t cursor = cursor_[own_side][own_group]++;
  decision.store_unit = store_pool[cursor % store_pool.size()];
  decision.probe_units = &view.sides[opp_side].probe_by_subgroup[opp_group];
  return decision;
}

}  // namespace bistream
