/// \file recovery.h
/// \brief Checkpoint storage and duplicate suppression for joiner recovery.
///
/// The fault-tolerance protocol (DESIGN.md §8) is round-aligned: a joiner
/// checkpoints its window index after fully releasing every
/// `checkpoint_rounds`-th punctuation round, so a checkpoint tagged C means
/// "state reflects exactly the stores of rounds <= C" — and, because rounds
/// release in order, every result derivable from rounds <= C was already
/// emitted before the crash. Recovery therefore restores the checkpoint,
/// replays the routers' logged traffic for rounds (C, activation), and
/// suppresses only the *replayed* duplicates this necessarily re-derives.

#ifndef BISTREAM_CORE_RECOVERY_H_
#define BISTREAM_CORE_RECOVERY_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/result_sink.h"
#include "common/relaxed.h"
#include "common/time.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief One durable window snapshot.
struct Checkpoint {
  uint32_t unit = 0;
  /// Last punctuation round whose tuples the snapshot includes.
  uint64_t round = 0;
  std::vector<Tuple> tuples;
};

/// \brief Durable checkpoint storage (models a replicated store the failed
/// process cannot take down with it). Only the latest snapshot per unit is
/// retained — recovery never needs an older one.
///
/// Thread-safe: on the parallel backend every joiner worker Put()s its own
/// snapshots while the driver reads and drops during recovery, so the map is
/// mutex-guarded and the counters are tear-free cells for the sampler's
/// gauges.
class CheckpointStore {
 public:
  void Put(uint32_t unit, uint64_t round, std::vector<Tuple> tuples) {
    std::lock_guard<std::mutex> lk(mu_);
    ++checkpoints_taken_;
    uint64_t bytes = 0;
    for (const Tuple& t : tuples) bytes += t.SerializedSize();
    bytes_written_ += bytes;
    latest_[unit] = Checkpoint{unit, round, std::move(tuples)};
  }

  /// \brief Copy of the latest snapshot for `unit`, or nullopt when none was
  /// ever taken. Returns by value: a pointer into the map would race with
  /// concurrent Put()s from other units' workers.
  std::optional<Checkpoint> Latest(uint32_t unit) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = latest_.find(unit);
    if (it == latest_.end()) return std::nullopt;
    return it->second;
  }

  /// \brief Discards a unit's snapshot (after its recovery completed or the
  /// unit retired).
  void Drop(uint32_t unit) {
    std::lock_guard<std::mutex> lk(mu_);
    latest_.erase(unit);
  }

  /// \brief Moves `from`'s snapshot under `to` (recovery handoff): until the
  /// replacement takes its first own checkpoint, the restored snapshot is
  /// its restore point too — a chained crash of the replacement must not
  /// lose it, because the router logs for the rounds it covers were already
  /// trimmed. Not a new durable write, so the counters don't move. No-op
  /// when `from` has no snapshot.
  void Retag(uint32_t from, uint32_t to) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = latest_.find(from);
    if (it == latest_.end()) return;
    Checkpoint ckpt = std::move(it->second);
    latest_.erase(it);
    ckpt.unit = to;
    latest_[to] = std::move(ckpt);
  }

  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t bytes_written() const { return bytes_written_; }
  size_t stored_units() const {
    std::lock_guard<std::mutex> lk(mu_);
    return latest_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint32_t, Checkpoint> latest_;
  RelaxedCell<uint64_t> checkpoints_taken_ = 0;
  RelaxedCell<uint64_t> bytes_written_ = 0;
};

/// \brief Filters the duplicates that checkpoint+replay necessarily
/// re-derives: a replayed probe against restored state can re-produce pairs
/// already emitted between the checkpoint and the crash.
///
/// Only results carrying the `replayed` flag are ever suppressed, so a
/// genuine protocol bug (an unflagged duplicate) still reaches the checking
/// collector and fails the oracle.
///
/// Not internally synchronized: `seen_` is a plain set, so on a concurrent
/// backend this sink must sit *inside* the LockingResultSink (the engine
/// builds the chain joiners -> locking -> dedup -> user). The suppressed
/// counter is a tear-free cell so mid-run gauges may read it.
class RecoveryDedupSink final : public ResultSink {
 public:
  explicit RecoveryDedupSink(ResultSink* down) : down_(down) {}

  void OnResult(const JoinResult& result) override {
    bool first = seen_.insert(result.PairKey()).second;
    if (result.replayed && !first) {
      ++suppressed_;
      return;
    }
    down_->OnResult(result);
  }

  uint64_t suppressed() const { return suppressed_; }

 private:
  ResultSink* down_;
  std::unordered_set<uint64_t> seen_;
  RelaxedCell<uint64_t> suppressed_ = 0;
};

/// \brief Audit record of one completed recovery.
struct RecoveryEvent {
  /// Time the crash was applied (CrashJoiner), when the engine saw it; 0
  /// for recoveries of units it never observed crashing (fenced false
  /// positives). detected_at - crashed_at is the detection latency.
  SimTime crashed_at = 0;
  /// Time the failure was acted on (RecoverUnit entry). Virtual under the
  /// sim, wall nanoseconds on the parallel backend.
  SimTime detected_at = 0;
  /// Virtual time the replacement finished releasing the replayed backlog
  /// (reached its activation round); 0 until then.
  SimTime caught_up_at = 0;
  uint32_t failed_unit = 0;
  uint32_t replacement_unit = 0;
  /// Checkpoint the restore used; nullopt = none existed (full replay from
  /// the failed unit's start round).
  std::optional<uint64_t> checkpoint_round;
  /// First replayed round.
  uint64_t replay_from = 0;
  /// Round at which the replacement takes over live traffic.
  uint64_t activation_round = 0;
  /// Tuples loaded from the checkpoint.
  uint64_t restored_tuples = 0;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_RECOVERY_H_
