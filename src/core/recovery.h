/// \file recovery.h
/// \brief Checkpoint storage and duplicate suppression for joiner recovery.
///
/// The fault-tolerance protocol (DESIGN.md §8) is round-aligned: a joiner
/// checkpoints its window index after fully releasing every
/// `checkpoint_rounds`-th punctuation round, so a checkpoint tagged C means
/// "state reflects exactly the stores of rounds <= C" — and, because rounds
/// release in order, every result derivable from rounds <= C was already
/// emitted before the crash. Recovery therefore restores the checkpoint,
/// replays the routers' logged traffic for rounds (C, activation), and
/// suppresses only the *replayed* duplicates this necessarily re-derives.

#ifndef BISTREAM_CORE_RECOVERY_H_
#define BISTREAM_CORE_RECOVERY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/result_sink.h"
#include "common/time.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief One durable window snapshot.
struct Checkpoint {
  uint32_t unit = 0;
  /// Last punctuation round whose tuples the snapshot includes.
  uint64_t round = 0;
  std::vector<Tuple> tuples;
};

/// \brief Durable checkpoint storage (models a replicated store the failed
/// process cannot take down with it). Only the latest snapshot per unit is
/// retained — recovery never needs an older one.
class CheckpointStore {
 public:
  void Put(uint32_t unit, uint64_t round, std::vector<Tuple> tuples) {
    ++checkpoints_taken_;
    for (const Tuple& t : tuples) bytes_written_ += t.SerializedSize();
    latest_[unit] = Checkpoint{unit, round, std::move(tuples)};
  }

  /// \brief Latest snapshot for `unit`, or null when none was ever taken.
  const Checkpoint* Latest(uint32_t unit) const {
    auto it = latest_.find(unit);
    return it == latest_.end() ? nullptr : &it->second;
  }

  /// \brief Discards a unit's snapshot (after its recovery completed or the
  /// unit retired).
  void Drop(uint32_t unit) { latest_.erase(unit); }

  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t bytes_written() const { return bytes_written_; }
  size_t stored_units() const { return latest_.size(); }

 private:
  std::unordered_map<uint32_t, Checkpoint> latest_;
  uint64_t checkpoints_taken_ = 0;
  uint64_t bytes_written_ = 0;
};

/// \brief Filters the duplicates that checkpoint+replay necessarily
/// re-derives: a replayed probe against restored state can re-produce pairs
/// already emitted between the checkpoint and the crash.
///
/// Only results carrying the `replayed` flag are ever suppressed, so a
/// genuine protocol bug (an unflagged duplicate) still reaches the checking
/// collector and fails the oracle.
class RecoveryDedupSink final : public ResultSink {
 public:
  explicit RecoveryDedupSink(ResultSink* down) : down_(down) {}

  void OnResult(const JoinResult& result) override {
    bool first = seen_.insert(result.PairKey()).second;
    if (result.replayed && !first) {
      ++suppressed_;
      return;
    }
    down_->OnResult(result);
  }

  uint64_t suppressed() const { return suppressed_; }

 private:
  ResultSink* down_;
  std::unordered_set<uint64_t> seen_;
  uint64_t suppressed_ = 0;
};

/// \brief Audit record of one completed recovery.
struct RecoveryEvent {
  /// Virtual time the failure was acted on (RecoverUnit entry).
  SimTime detected_at = 0;
  /// Virtual time the replacement finished releasing the replayed backlog
  /// (reached its activation round); 0 until then.
  SimTime caught_up_at = 0;
  uint32_t failed_unit = 0;
  uint32_t replacement_unit = 0;
  /// Checkpoint the restore used; nullopt = none existed (full replay from
  /// the failed unit's start round).
  std::optional<uint64_t> checkpoint_round;
  /// First replayed round.
  uint64_t replay_from = 0;
  /// Round at which the replacement takes over live traffic.
  uint64_t activation_round = 0;
  /// Tuples loaded from the checkpoint.
  uint64_t restored_tuples = 0;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_RECOVERY_H_
