#include "core/query.h"

#include <algorithm>
#include <string>

namespace bistream {

Result<BicliqueOptions> StreamJoinQuery::Build() const {
  if (window_ <= 0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (joiners_r_ < 1 || joiners_s_ < 1) {
    return Status::InvalidArgument(
        "each relation side needs at least one joiner unit");
  }
  if (routers_ < 1) {
    return Status::InvalidArgument("at least one router is required");
  }
  if (batch_size_ < 1) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  if (skew_units_ < 1) {
    return Status::InvalidArgument(
        "skew protection needs >= 1 unit per subgroup");
  }

  bool is_equi = predicate_.kind() == PredicateKind::kEqui;
  if (subgroups_.has_value() && !is_equi) {
    return Status::InvalidArgument(
        "content-sensitive routing (explicit subgroups) requires an "
        "equality predicate; non-equi joins must broadcast");
  }

  BicliqueOptions options;
  options.predicate = predicate_;
  options.num_routers = routers_;
  options.joiners_r = joiners_r_;
  options.joiners_s = joiners_s_;
  options.window = window_;
  options.punct_interval = punct_interval_;
  options.batch_size = batch_size_;
  if (cost_.has_value()) options.cost = *cost_;
  if (seed_.has_value()) options.seed = *seed_;

  // Routing strategy: the paper's recommendation per selectivity class.
  if (is_equi) {
    if (subgroups_.has_value()) {
      options.subgroups_r = subgroups_->first;
      options.subgroups_s = subgroups_->second;
    } else {
      // Pure hash partitioning, tempered by the skew-protection budget:
      // d = n / skew_units keeps >= skew_units stores absorbing a hot key.
      options.subgroups_r = std::max(1u, joiners_r_ / skew_units_);
      options.subgroups_s = std::max(1u, joiners_s_ / skew_units_);
    }
    if (options.subgroups_r > joiners_r_ ||
        options.subgroups_s > joiners_s_) {
      return Status::InvalidArgument(
          "subgroup count exceeds the side's joiner count (" +
          std::to_string(options.subgroups_r) + "/" +
          std::to_string(joiners_r_) + ", " +
          std::to_string(options.subgroups_s) + "/" +
          std::to_string(joiners_s_) + ")");
    }
  } else {
    options.subgroups_r = 1;
    options.subgroups_s = 1;
  }

  options.index_kind = predicate_.RecommendedIndex();

  // Archive period: explicit, else the paper's W/10 rule of thumb
  // (clamped to >= 1 ms so degenerate windows still archive).
  if (archive_period_.has_value()) {
    if (*archive_period_ <= 0) {
      return Status::InvalidArgument("archive period must be positive");
    }
    options.archive_period = *archive_period_;
  } else if (window_ == kFullHistoryWindow) {
    options.archive_period = 1 * kEventSecond;
  } else {
    options.archive_period = std::max<EventTime>(window_ / 10, kEventMilli);
  }
  return options;
}

Result<EngineStats> RunQuery(const StreamJoinQuery& query,
                             StreamSource* source, ResultSink* sink) {
  if (source == nullptr || sink == nullptr) {
    return Status::InvalidArgument("source and sink must be non-null");
  }
  BISTREAM_ASSIGN_OR_RETURN(BicliqueOptions options, query.Build());
  EventLoop loop;
  BicliqueEngine engine(&loop, options, sink);
  engine.RunToCompletion(source);
  return engine.Stats();
}

}  // namespace bistream
