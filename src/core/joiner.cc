#include "core/joiner.h"

#include <string>

#include "common/logging.h"

namespace bistream {

namespace {
ChainedIndexOptions IndexOptionsFor(const JoinerOptions& options,
                                    MemoryTracker* tracker) {
  ChainedIndexOptions index_options;
  index_options.kind = options.index_kind;
  index_options.archive_period = options.archive_period;
  index_options.window = options.window;
  index_options.expiry_slack = options.expiry_slack;
  index_options.tracker = tracker;
  return index_options;
}
}  // namespace

Joiner::Joiner(JoinerOptions options, runtime::Clock* clock, ResultSink* sink,
               MemoryTracker* parent_tracker)
    : options_(options),
      clock_(clock),
      sink_(sink),
      tracker_("joiner-" + std::to_string(options.unit_id), parent_tracker),
      index_(IndexOptionsFor(options_, &tracker_)),
      buffer_(options_.num_routers, options_.start_round) {
  BISTREAM_CHECK(clock_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
  if (options_.checkpoint_rounds > 0) {
    BISTREAM_CHECK(options_.ordered)
        << "checkpointing requires the order-consistent protocol";
    next_checkpoint_round_ = options_.start_round + options_.checkpoint_rounds;
  }
  last_progress_time_ = clock_->now();
}

SimTime Joiner::Handle(const Message& msg) {
  switch (msg.kind) {
    case Message::Kind::kTuple: {
      SimTime cost = options_.cost.MessageCost(msg.WireBytes());
      // Framing is charged as modeled virtual cost only; under wall-stage
      // accounting it stays in the worker's busy_ns residual.
      if (!options_.measure_wall_stages) {
        (msg.replayed ? stats_.busy_replay_ns : stats_.busy_msg_ns) += cost;
      }
      TraceArrival(msg);
      if (!options_.ordered) {
        return cost + ProcessTuple(msg);
      }
      buffer_.AddTuple(msg);
      return cost;
    }
    case Message::Kind::kPunctuation: {
      SimTime cost = options_.cost.punctuation_ns;
      last_progress_time_ = clock_->now();
      if (!options_.ordered) {
        if (!options_.measure_wall_stages) stats_.busy_punct_ns += cost;
        return cost;
      }
      SimTime punct_start = StageStart();
      std::vector<Message> released;
      buffer_.AddPunctuation(msg, &released);
      // Under wall accounting the punct bucket covers the order-buffer
      // release scan and the checkpoint; the released tuples' store/probe
      // work charges its own buckets inside ProcessTuple.
      Charge(stats_.busy_punct_ns, punct_start, 0);
      for (const Message& m : released) {
        cost += ProcessTuple(m);
      }
      SimTime ckpt_start = StageStart();
      SimTime ckpt = MaybeCheckpoint();
      Charge(stats_.busy_punct_ns, ckpt_start,
             options_.cost.punctuation_ns + ckpt);
      cost += ckpt;
      CheckCaughtUp();
      return cost;
    }
    case Message::Kind::kBatch: {
      // One framework-overhead charge for the whole batch; per-tuple work
      // still accrues (that is the batching win).
      SimTime cost = options_.cost.MessageCost(msg.WireBytes());
      if (!options_.measure_wall_stages) {
        (msg.replayed ? stats_.busy_replay_ns : stats_.busy_msg_ns) += cost;
      }
      for (const BatchEntry& entry : msg.batch) {
        Message unpacked = MakeTupleMessage(entry.tuple, entry.stream,
                                            msg.router_id, entry.seq,
                                            entry.round);
        unpacked.replayed = msg.replayed;
        TraceArrival(unpacked);
        if (options_.ordered) {
          buffer_.AddTuple(std::move(unpacked));
        } else {
          cost += ProcessTuple(unpacked);
        }
      }
      return cost;
    }
    case Message::Kind::kControl:
      // Drain/retire are routing-side decisions; the joiner itself has no
      // state transition to make (its index simply ages out).
      if (!options_.measure_wall_stages) {
        stats_.busy_msg_ns += options_.cost.punctuation_ns;
      }
      return options_.cost.punctuation_ns;
  }
  return 0;
}

void Joiner::TraceArrival(const Message& msg) {
  if (!Tracing(msg)) return;
  if (msg.stream == StreamKind::kStore) {
    options_.tracer->OnStoreArrival(msg.tuple, clock_->now());
  } else {
    options_.tracer->OnJoinArrival(msg.tuple, clock_->now());
  }
}

SimTime Joiner::ProcessTuple(const Message& msg) {
  if (msg.stream == StreamKind::kStore) {
    BISTREAM_CHECK_EQ(msg.tuple.relation, options_.relation)
        << "store-stream tuple of the wrong relation reached unit "
        << options_.unit_id;
    SimTime cost = StoreBranch(msg.tuple, msg.replayed);
    if (Tracing(msg)) {
      options_.tracer->OnStore(msg.tuple, cost);
    }
    return cost;
  }
  BISTREAM_CHECK_NE(msg.tuple.relation, options_.relation)
      << "join-stream tuple of the unit's own relation reached unit "
      << options_.unit_id;
  // The release hop: in ordered mode this is the round-release instant (the
  // ordering-buffer delay's endpoint); unordered processing releases on
  // arrival, so the ordering component reads as zero — as it should.
  if (Tracing(msg)) {
    options_.tracer->OnRelease(msg.tuple, clock_->now());
  }
  return JoinBranch(msg.tuple, msg.replayed);
}

SimTime Joiner::StoreBranch(const Tuple& tuple, bool replayed) {
  SimTime start = StageStart();
  index_.Insert(tuple);
  ++stats_.stored;
  Charge(replayed ? stats_.busy_replay_ns : stats_.busy_store_ns, start,
         options_.cost.insert_ns);
  return options_.cost.insert_ns;
}

SimTime Joiner::JoinBranch(const Tuple& probe, bool replayed) {
  SimTime start = StageStart();
  ++stats_.probes;

  uint64_t subindexes_before = index_.stats().expired_subindexes;
  uint64_t matches = 0;
  MatchSink emit = [&](const Tuple& stored) {
    JoinResult result;
    // Orient the pair: r_id always names the R-side tuple.
    if (probe.relation == kRelationR) {
      result.r_id = probe.id;
      result.s_id = stored.id;
    } else {
      result.r_id = stored.id;
      result.s_id = probe.id;
    }
    result.ts = std::max(probe.ts, stored.ts);
    result.key = probe.key;
    result.emit_time = clock_->now();
    result.latency_ns =
        probe.origin <= result.emit_time ? result.emit_time - probe.origin : 0;
    result.producer_unit = options_.unit_id;
    result.replayed = replayed;
    sink_->OnResult(result);
    ++matches;
  };

  uint64_t candidates = index_.ExpireAndProbe(probe, options_.predicate, emit);
  uint64_t dropped_subindexes =
      index_.stats().expired_subindexes - subindexes_before;

  stats_.results += matches;
  stats_.probe_candidates += candidates;
  stats_.expired_subindexes += dropped_subindexes;
  stats_.expired_tuples = index_.stats().expired_tuples;

  SimTime probe_cost = options_.cost.ProbeCost(candidates, matches);
  if (!replayed && options_.tracer != nullptr &&
      options_.tracer->ShouldRecord(probe)) {
    // Probe cost only — expiry housekeeping is amortized window maintenance,
    // not latency attributable to this tuple. The span keeps the modeled
    // cost under wall accounting too, so breakdowns stay comparable.
    options_.tracer->OnProbe(probe, candidates, matches, probe_cost,
                             clock_->now());
  }
  SimTime expire_cost = dropped_subindexes * options_.cost.expire_subindex_ns;
  if (options_.measure_wall_stages) {
    // Expiry folds into the probe bucket: both happen inside one
    // ExpireAndProbe call and cannot be wall-timed apart.
    Charge(replayed ? stats_.busy_replay_ns : stats_.busy_probe_ns, start, 0);
  } else if (replayed) {
    stats_.busy_replay_ns += probe_cost + expire_cost;
  } else {
    stats_.busy_probe_ns += probe_cost;
    stats_.busy_expire_ns += expire_cost;
  }
  PublishExpiryLag();
  return probe_cost + expire_cost;
}

void Joiner::PublishExpiryLag() {
  EventTime observed = index_.last_expire_observed_ts();
  EventTime oldest = index_.oldest_live_max_ts();
  if (observed == kNoEventTime || oldest == kNoEventTime) {
    expiry_lag_ = 0;
    return;
  }
  expiry_lag_ = observed > oldest ? observed - oldest : 0;
}

SimTime Joiner::MaybeCheckpoint() {
  if (options_.checkpoint_rounds == 0 || checkpoint_fn_ == nullptr) return 0;
  if (buffer_.next_release_round() == 0) return 0;
  // Last round whose tuples have been fully processed; the snapshot reflects
  // exactly the stores of rounds <= completed.
  uint64_t completed = buffer_.next_release_round() - 1;
  if (completed < next_checkpoint_round_) return 0;
  std::vector<Tuple> tuples = index_.SnapshotTuples();
  SimTime cost = options_.cost.CheckpointCost(tuples.size());
  ++stats_.checkpoints;
  next_checkpoint_round_ = completed + options_.checkpoint_rounds;
  checkpoint_fn_(options_.unit_id, completed, std::move(tuples));
  return cost;
}

void Joiner::OnCrash() {
  index_.Clear();
  {
    std::lock_guard<std::mutex> lk(waiters_mu_);
    catch_up_waiters_.clear();
  }
  PublishExpiryLag();
}

void Joiner::RestoreWindow(const std::vector<Tuple>& tuples) {
  stats_.restored_tuples += tuples.size();
  index_.RestoreFrom(tuples);
  PublishExpiryLag();
}

void Joiner::NotifyWhenCaughtUp(uint64_t round, std::function<void()> fn) {
  // Register-vs-release race (parallel backend): reading the release round
  // under waiters_mu_ makes the outcome airtight — if the worker's
  // CheckCaughtUp already ran for `round`, its mutex release published the
  // advanced round and we fire inline; otherwise our registration is
  // ordered before the worker's next CheckCaughtUp, which fires it.
  {
    std::lock_guard<std::mutex> lk(waiters_mu_);
    if (buffer_.next_release_round() < round) {
      catch_up_waiters_.push_back(CatchUpWaiter{round, std::move(fn)});
      return;
    }
  }
  fn();
}

void Joiner::CheckCaughtUp() {
  // Extract the ready waiters under the lock, invoke them outside it: the
  // callbacks take engine locks of their own.
  std::vector<CatchUpWaiter> ready;
  {
    std::lock_guard<std::mutex> lk(waiters_mu_);
    if (catch_up_waiters_.empty()) return;
    uint64_t reached = buffer_.next_release_round();
    std::vector<CatchUpWaiter> still_waiting;
    for (CatchUpWaiter& waiter : catch_up_waiters_) {
      if (reached >= waiter.round) {
        ready.push_back(std::move(waiter));
      } else {
        still_waiting.push_back(std::move(waiter));
      }
    }
    catch_up_waiters_ = std::move(still_waiting);
  }
  for (CatchUpWaiter& waiter : ready) waiter.fn();
}

}  // namespace bistream
