#include "core/joiner.h"

#include <string>

#include "common/logging.h"

namespace bistream {

namespace {
ChainedIndexOptions IndexOptionsFor(const JoinerOptions& options,
                                    MemoryTracker* tracker) {
  ChainedIndexOptions index_options;
  index_options.kind = options.index_kind;
  index_options.archive_period = options.archive_period;
  index_options.window = options.window;
  index_options.expiry_slack = options.expiry_slack;
  index_options.tracker = tracker;
  return index_options;
}
}  // namespace

Joiner::Joiner(JoinerOptions options, EventLoop* loop, ResultSink* sink,
               MemoryTracker* parent_tracker)
    : options_(options),
      loop_(loop),
      sink_(sink),
      tracker_("joiner-" + std::to_string(options.unit_id), parent_tracker),
      index_(IndexOptionsFor(options_, &tracker_)),
      buffer_(options_.num_routers, options_.start_round) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
}

SimTime Joiner::Handle(const Message& msg) {
  switch (msg.kind) {
    case Message::Kind::kTuple: {
      SimTime cost = options_.cost.MessageCost(msg.WireBytes());
      if (!options_.ordered) {
        return cost + ProcessTuple(msg);
      }
      buffer_.AddTuple(msg);
      return cost;
    }
    case Message::Kind::kPunctuation: {
      SimTime cost = options_.cost.punctuation_ns;
      if (!options_.ordered) return cost;
      std::vector<Message> released;
      buffer_.AddPunctuation(msg, &released);
      for (const Message& m : released) {
        cost += ProcessTuple(m);
      }
      return cost;
    }
    case Message::Kind::kBatch: {
      // One framework-overhead charge for the whole batch; per-tuple work
      // still accrues (that is the batching win).
      SimTime cost = options_.cost.MessageCost(msg.WireBytes());
      for (const BatchEntry& entry : msg.batch) {
        Message unpacked = MakeTupleMessage(entry.tuple, entry.stream,
                                            msg.router_id, entry.seq,
                                            entry.round);
        if (options_.ordered) {
          buffer_.AddTuple(std::move(unpacked));
        } else {
          cost += ProcessTuple(unpacked);
        }
      }
      return cost;
    }
    case Message::Kind::kControl:
      // Drain/retire are routing-side decisions; the joiner itself has no
      // state transition to make (its index simply ages out).
      return options_.cost.punctuation_ns;
  }
  return 0;
}

SimTime Joiner::ProcessTuple(const Message& msg) {
  if (msg.stream == StreamKind::kStore) {
    BISTREAM_CHECK_EQ(msg.tuple.relation, options_.relation)
        << "store-stream tuple of the wrong relation reached unit "
        << options_.unit_id;
    return StoreBranch(msg.tuple);
  }
  BISTREAM_CHECK_NE(msg.tuple.relation, options_.relation)
      << "join-stream tuple of the unit's own relation reached unit "
      << options_.unit_id;
  return JoinBranch(msg.tuple);
}

SimTime Joiner::StoreBranch(const Tuple& tuple) {
  index_.Insert(tuple);
  ++stats_.stored;
  return options_.cost.insert_ns;
}

SimTime Joiner::JoinBranch(const Tuple& probe) {
  ++stats_.probes;

  uint64_t subindexes_before = index_.stats().expired_subindexes;
  uint64_t matches = 0;
  MatchSink emit = [&](const Tuple& stored) {
    JoinResult result;
    // Orient the pair: r_id always names the R-side tuple.
    if (probe.relation == kRelationR) {
      result.r_id = probe.id;
      result.s_id = stored.id;
    } else {
      result.r_id = stored.id;
      result.s_id = probe.id;
    }
    result.ts = std::max(probe.ts, stored.ts);
    result.key = probe.key;
    result.emit_time = loop_->now();
    result.latency_ns =
        probe.origin <= result.emit_time ? result.emit_time - probe.origin : 0;
    result.producer_unit = options_.unit_id;
    sink_->OnResult(result);
    ++matches;
  };

  uint64_t candidates = index_.ExpireAndProbe(probe, options_.predicate, emit);
  uint64_t dropped_subindexes =
      index_.stats().expired_subindexes - subindexes_before;

  stats_.results += matches;
  stats_.probe_candidates += candidates;
  stats_.expired_subindexes += dropped_subindexes;
  stats_.expired_tuples = index_.stats().expired_tuples;

  return options_.cost.ProbeCost(candidates, matches) +
         dropped_subindexes * options_.cost.expire_subindex_ns;
}

}  // namespace bistream
