/// \file order_buffer.h
/// \brief Joiner-side implementation of the order-consistent protocol.
///
/// Background (paper Definitions 7/8): join results are correct exactly when
/// every pair of joiners orders any two tuples r, s the same way — otherwise
/// out-of-order arrivals on the store and join streams create duplicate or
/// missed results. BiStream layers a punctuation scheme over pairwise-FIFO
/// channels: each router sequences its tuples with a counter and
/// periodically emits a signal tuple (punctuation).
///
/// This implementation uses *aligned punctuation rounds*: all routers emit
/// punctuations for the same round numbers; a joiner releases round k only
/// after it holds round-k punctuations from every router, and drains the
/// round's tuples in the deterministic total order (round, seq, router_id).
/// Every joiner therefore processes its tuples as a subsequence of one
/// global sequence Z — Definition 7 verbatim. The exactly-once property
/// then follows from the argument in DESIGN.md §2.

#ifndef BISTREAM_CORE_ORDER_BUFFER_H_
#define BISTREAM_CORE_ORDER_BUFFER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/relaxed.h"
#include "runtime/message.h"

namespace bistream {

/// \brief Buffers tuple messages per punctuation round and releases them in
/// the global order once a round is complete.
class OrderBuffer {
 public:
  /// \param num_routers routers feeding this joiner (fixed for the run)
  /// \param start_round first round this joiner participates in (0 for
  ///   initial units; the activation round for units added by scale-out)
  OrderBuffer(uint32_t num_routers, uint64_t start_round);

  /// \brief Buffers an in-flight tuple message.
  void AddTuple(Message msg);

  /// \brief Records a punctuation; appends all newly releasable tuple
  /// messages — in global (seq, router_id) order, rounds ascending — to
  /// `released`.
  void AddPunctuation(const Message& punct, std::vector<Message>* released);

  /// \brief Tuples currently waiting for their round to complete.
  size_t buffered() const { return buffered_; }

  /// \brief Next round that will be released.
  uint64_t next_release_round() const { return next_release_; }

 private:
  struct Round {
    std::vector<Message> tuples;
    uint32_t puncts_received = 0;
  };

  /// \brief Routers whose final punctuation round precedes `round` — they
  /// halted earlier and implicitly close every round after their last.
  uint32_t FinishedBefore(uint64_t round) const;

  uint32_t num_routers_;
  /// RelaxedCells: mutated only on the joiner's execution context; the
  /// wall-clock sampler reads them tear-free via buffered() and
  /// next_release_round().
  RelaxedCell<uint64_t> next_release_;
  std::map<uint64_t, Round> rounds_;
  RelaxedCell<size_t> buffered_ = 0;
  /// Router id -> the round its final punctuation announced. Routers stop
  /// at different rounds on a wall-clock backend (independent tick
  /// cadences); a round is complete once every router either punctuated it
  /// directly or finished before it.
  std::map<uint32_t, uint64_t> final_rounds_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_ORDER_BUFFER_H_
