/// \file engine.h
/// \brief BicliqueEngine: the assembled BiStream system.
///
/// Wires routers, joiners, channels and the result sink into a running
/// cluster (simulated or thread-per-unit parallel), exposes the
/// elastic-scaling control plane (ScaleOut/ScaleIn, used by the
/// ops::Autoscaler) and the fault-tolerance control plane
/// (CrashJoiner/RecoverUnit), and aggregates the metrics every experiment
/// reports. See DESIGN.md §5 for the architecture and the ordering/epoch
/// invariants, §8 for recovery, §11 for the concurrent control plane.
///
/// Threading (parallel backend): control-plane mutations run only on the
/// driver thread — crashes, detector/autoscaler ticks and retire polls all
/// fire through the driver clock. The mutexes below protect those driver
/// mutations against concurrent *readers* on other threads (the wall-clock
/// sampler's gauges, router workers looking up channels, joiner workers
/// firing caught-up callbacks), not against concurrent mutators.

#ifndef BISTREAM_CORE_ENGINE_H_
#define BISTREAM_CORE_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/joiner.h"
#include "core/recovery.h"
#include "core/result_sink.h"
#include "core/router.h"
#include "core/topology.h"
#include "obs/diagnose/diagnoser.h"
#include "obs/metrics.h"
#include "obs/time_series.h"
#include "obs/timeline/timeline.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "sim/fault.h"
#include "workload/generator.h"

namespace bistream {

class EventLoop;

/// \brief Full engine configuration.
struct BicliqueOptions {
  /// Router (dispatcher) instances. Fixed for the run.
  uint32_t num_routers = 2;
  /// Initial joiner units per side.
  uint32_t joiners_r = 4;
  uint32_t joiners_s = 4;
  /// Subgroup counts (d, e). 1 = ContRand behaviour (store anywhere, probe
  /// broadcast); = joiner count = pure hash partitioning. See routing.h.
  uint32_t subgroups_r = 1;
  uint32_t subgroups_s = 1;
  /// The join being evaluated.
  JoinPredicate predicate = JoinPredicate::Equi();
  /// Sub-index layout; defaults to the predicate's recommendation.
  std::optional<IndexKind> index_kind;
  /// Sliding-window scope W (event time).
  EventTime window = 10 * kEventSecond;
  /// Chained-index archive period P (event time).
  EventTime archive_period = 1 * kEventSecond;
  /// Allowed lateness for Theorem-1 expiry; needed when the input streams'
  /// timestamps can regress (derived streams), see ChainedIndexOptions.
  EventTime expiry_slack = 0;
  /// Ratio of event-time advance to backend-clock advance (>= 1). Drivers
  /// that compress virtual arrival times onto the wall clock (the benches'
  /// PacedDrive under --backend=parallel) dilate the event-time span of one
  /// punctuation round by this factor, and the round-granular probe
  /// disorder the expiry slack must absorb dilates with it. Leave at 1 when
  /// event time tracks the backend clock (simulator, uncompressed drivers).
  double event_time_dilation = 1.0;
  /// Punctuation cadence (virtual time).
  SimTime punct_interval = 10 * kMillisecond;
  /// Router mini-batch size per destination (1 = unbatched). Batches are
  /// force-flushed every punctuation round; see RouterOptions::batch_size.
  uint32_t batch_size = 1;
  /// Order-consistent protocol on/off (off reproduces the faulty baseline).
  bool ordered = true;
  /// Virtual-time cost model; also supplies channel latency/jitter.
  CostModel cost;
  /// Break per-channel FIFO (tests only; the protocol assumes FIFO).
  bool fault_reorder = false;
  /// Silently drop this fraction of router→joiner messages (tests only;
  /// Definition 7 assumes a lossless transport).
  double channel_drop_probability = 0.0;
  /// Base seed for all stochastic simulation elements.
  uint64_t seed = 1;
  /// How long a draining unit keeps serving probes before retiring, as a
  /// multiple of the window. Must be >= 1.0: retiring before the unit's
  /// stored window has fully aged out loses results.
  double retire_grace_factor = 1.5;

  // --- Runtime backend ----------------------------------------------------
  /// Execution backend: kSim runs every unit on the deterministic event
  /// loop in virtual time; kParallel gives each unit a worker thread and
  /// measures the wall clock. Only meaningful to harness-level drivers that
  /// construct the executor from options; an engine built directly on an
  /// Executor* uses whatever backend it was given.
  runtime::BackendKind backend = runtime::BackendKind::kSim;
  /// Parallel backend: bounded per-unit inbox capacity. A full inbox blocks
  /// senders (backpressure), which is what makes firehose injection safe.
  size_t queue_capacity = 1024;
  /// Parallel backend: worker-thread budget guard. 0 = auto (one thread per
  /// unit, the only supported execution model); a nonzero value is checked
  /// against the topology's thread need (routers + joiners) and the config
  /// is rejected when it would not fit.
  uint32_t workers = 0;

  /// \brief Joiner crash recovery (DESIGN.md §8).
  struct FaultToleranceOptions {
    /// Master switch: checkpointing, router replay logs, duplicate
    /// suppression and the RecoverUnit control plane. Requires `ordered`.
    bool enabled = false;
    /// Checkpoint each joiner's window every N released punctuation rounds.
    uint64_t checkpoint_rounds = 32;
  };
  FaultToleranceOptions fault_tolerance;

  /// \brief Observability (DESIGN.md §9). Both knobs default off; neither
  /// perturbs virtual time — traced runs are bit-identical to untraced.
  /// Both work on either backend: under parallel the sampler paces on a
  /// dedicated wall-clock thread and the tracer buffers per worker (§9.2).
  struct TelemetryOptions {
    /// TelemetrySampler cadence: snapshot every registry counter and gauge
    /// into the engine's TimeSeries. Virtual ns under sim, wall ns under
    /// the parallel backend. 0 = no sampling.
    SimTime sample_period = 0;
    /// Deterministic tuple tracing: record a per-hop TraceSpan for every
    /// N-th injected tuple. 0 = tracing off.
    uint64_t trace_every = 0;
    /// Diagnosis layer (profiler + detectors + invariant auditor). It rides
    /// the sampler, so without a sample_period only the end-of-run audit
    /// runs. Costs no virtual time either way.
    bool diagnostics = true;
    /// Detector thresholds (backpressure / skew / straggler).
    DetectorOptions detectors;
    /// Invariant violations abort instead of only logging kError (tests).
    bool strict_audit = false;
    /// Execution-timeline recorder (DESIGN.md §12): per-thread event rings
    /// capturing task/wait/block spans and lifecycle instants, folded
    /// post-run into a Chrome trace-event document. Off by default; when
    /// off the executors' hot paths see a null sink (one branch, nothing
    /// else — the zero-perturbation contract).
    bool timeline = false;
    /// Events retained per recording thread. Small values turn the
    /// recorder into a flight recorder: the ring keeps only the newest
    /// events, and a crash recovery snapshots them as a postmortem dump.
    size_t timeline_ring = 32768;
  };
  TelemetryOptions telemetry;

  /// \brief Checks option consistency; the engine constructor fails on a
  /// non-OK status. Callers building configs programmatically (benches,
  /// the autoscaler harness) can validate before paying construction.
  Status Validate() const;

  /// \brief Convenience: configure ContHash with the given subgroup counts.
  static BicliqueOptions ContHash(uint32_t d, uint32_t e) {
    BicliqueOptions o;
    o.subgroups_r = d;
    o.subgroups_s = e;
    return o;
  }
};

/// \brief Aggregated run statistics (see DESIGN.md experiment index).
struct EngineStats {
  uint64_t input_tuples = 0;
  uint64_t results = 0;
  uint64_t stored = 0;
  uint64_t probes = 0;
  uint64_t probe_candidates = 0;
  uint64_t expired_tuples = 0;
  uint64_t expired_subindexes = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  int64_t state_bytes = 0;
  int64_t peak_state_bytes = 0;
  /// Highest busy fraction across all service nodes over the run — the
  /// bottleneck utilization that determines sustainability.
  double max_busy_fraction = 0;
  /// Joiner-only busy fractions: skew diagnostics for E7 (imbalance =
  /// max / mean across joiners of one run).
  double max_joiner_busy_fraction = 0;
  double mean_joiner_busy_fraction = 0;
  /// Virtual time from Start() to the last processed event.
  SimTime makespan_ns = 0;

  // --- fault counters ------------------------------------------------------
  /// Messages silently lost in transit (channel_drop_probability).
  uint64_t messages_dropped = 0;
  /// Deliveries discarded because the destination node was down.
  uint64_t messages_dropped_dead = 0;
  /// Inbox messages wiped by node crashes.
  uint64_t messages_lost_on_crash = 0;
  /// Joiner crashes applied (CrashJoiner / injected faults).
  uint64_t crashes = 0;
  /// Completed RecoverUnit invocations.
  uint64_t recoveries = 0;
  /// Checkpoints written to the store.
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  /// Tuple copies re-sent to replacements during recovery.
  uint64_t replayed_messages = 0;
  /// Replay-flagged duplicate results filtered before the sink.
  uint64_t suppressed_duplicates = 0;
  /// Tuples loaded from checkpoints into replacement windows.
  uint64_t restored_tuples = 0;
  /// Replacement workers spawned by recovery (== recovery events).
  uint64_t respawns = 0;
  /// Worst crash-to-detection gap across recoveries (detected_at -
  /// crashed_at; virtual ns under sim, wall ns under parallel). 0 when no
  /// recovery observed its crash.
  SimTime detection_latency_max_ns = 0;
  /// Worst detection-to-caught-up gap across recoveries (caught_up_at -
  /// detected_at). 0 when no recovery has caught up yet.
  SimTime recovery_wall_max_ns = 0;
};

/// \brief The BiStream join-biclique engine over a runtime substrate.
class BicliqueEngine {
 public:
  /// \brief Convenience: builds the engine on a sim backend over `loop`
  /// (the engine owns the SimNetwork it creates on top).
  /// \param loop shared event loop (not owned)
  /// \param sink result consumer (not owned)
  BicliqueEngine(EventLoop* loop, BicliqueOptions options, ResultSink* sink);

  /// \brief Builds the engine on an externally-owned executor (any
  /// backend). Options that assume sim-only transport capabilities
  /// (fault_reorder, channel_drop_probability) are rejected when the
  /// executor is concurrent; fault tolerance, elasticity, telemetry
  /// sampling and tracing work on both backends.
  BicliqueEngine(runtime::Executor* exec, BicliqueOptions options,
                 ResultSink* sink);

  BicliqueEngine(const BicliqueEngine&) = delete;
  BicliqueEngine& operator=(const BicliqueEngine&) = delete;

  /// \brief Starts the punctuation cadence. Call once, before injecting.
  void Start();

  /// \brief Injects one tuple at the current virtual time. The tuple enters
  /// a router (round-robin) through a source channel; with batch_size > 1
  /// the source edge coalesces tuples into ingestion batches (flushed when
  /// full and on a punct_interval cadence, so added latency is bounded).
  void InjectNow(Tuple tuple);

  /// \brief Sends the stop-flush control after all injected tuples; routers
  /// close their final round so joiners drain completely.
  void FlushAndStop();

  /// \brief Convenience driver: Start(), feed the whole source at its
  /// arrival times, flush, and run the loop until idle.
  void RunToCompletion(StreamSource* source);

  // --- Elastic scaling control plane (coordinator) -----------------------

  /// \brief Adds a joiner unit to `side`, activating at the next round
  /// boundary. Returns the new unit id.
  Result<uint32_t> ScaleOut(RelationId side);

  /// \brief Begins draining one unit of `side` (new stores stop at the next
  /// round boundary; probes continue until its window ages out, then it
  /// retires automatically). Returns the draining unit id.
  Result<uint32_t> ScaleIn(RelationId side);

  size_t ActiveJoiners(RelationId side) const {
    return topology_.NumActive(side);
  }
  size_t LiveJoiners(RelationId side) const {
    return topology_.NumLive(side);
  }

  // --- Fault tolerance control plane -------------------------------------

  /// \brief Crashes a live joiner: its node stops accepting deliveries and
  /// its window state is lost. Recovery is separate (the failure detector
  /// notices the silence and calls RecoverUnit).
  Status CrashJoiner(uint32_t unit_id);

  /// \brief FaultInjector binding (CrashFn): applies one planned crash,
  /// resolving an unset victim to the `draw % live`-th live joiner (id
  /// order). Returns the crashed unit, or nullopt if nothing was crashed.
  std::optional<uint32_t> InjectCrash(const FaultPlan::Crash& crash,
                                      uint64_t draw);

  /// \brief Recovers a failed (or falsely-suspected — it is fenced first)
  /// unit: provisions a replacement in the same subgroup, restores the
  /// latest checkpoint, and schedules router replay of the rounds since.
  /// Returns the replacement unit id. Requires fault_tolerance.enabled.
  Result<uint32_t> RecoverUnit(uint32_t failed_unit);

  /// \brief Completed recoveries, in order. Returns a copy: on the parallel
  /// backend replacement workers patch caught_up_at into the live list
  /// concurrently with readers.
  std::vector<RecoveryEvent> recovery_events() const {
    std::lock_guard<std::mutex> lk(state_mu_);
    return recovery_events_;
  }
  const CheckpointStore& checkpoint_store() const { return ckpt_store_; }
  bool stopped() const { return stopped_; }

  // --- Introspection ------------------------------------------------------

  EngineStats Stats() const;
  const MemoryTracker& memory() const { return tracker_; }
  /// \brief The runtime backend this engine runs on.
  runtime::Executor& executor() { return *exec_; }
  const runtime::Executor& executor() const { return *exec_; }
  /// \brief The driver-side clock (the executor's). Under sim this is the
  /// event loop; ops controllers schedule their cadences here.
  runtime::Clock* clock() const { return clock_; }
  const BicliqueOptions& options() const { return options_; }
  const TopologyManager& topology() const { return topology_; }

  // --- Observability (DESIGN.md §9) ---------------------------------------

  /// \brief The engine's metric registry. Always live (registration is
  /// cheap); the ops controllers read their signals from here.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// \brief Sampled metric time series (empty unless telemetry.sample_period
  /// was set).
  const TimeSeries& telemetry_series() const { return sampler_->series(); }
  TelemetrySampler& sampler() { return *sampler_; }

  /// \brief The per-tuple tracer (disabled unless telemetry.trace_every).
  const TupleTracer& tracer() const { return *tracer_; }

  /// \brief The execution-timeline recorder (null unless
  /// telemetry.timeline). Shared — the harness keeps it alive past the
  /// engine so the Chrome trace can be folded lazily, after the measured
  /// run, only when something actually wants the document.
  std::shared_ptr<const TimelineRecorder> timeline_recorder() const {
    return timeline_;
  }

  /// \brief Timeline artifact summary, frozen by FinalizeDiagnostics
  /// (JSON null when recording was off). Cheap: ring-cursor reads only.
  const JsonValue& timeline_summary() const { return timeline_summary_; }

  /// \brief The diagnosis layer (null when telemetry.diagnostics is off).
  /// Online consumers: the autoscaler reads SmoothedBusyFraction, the
  /// failure detector reads HeartbeatSilence, both falling back to their
  /// own derivations when diagnosis is off.
  Diagnoser* diagnoser() { return diagnoser_.get(); }
  const Diagnoser* diagnoser() const { return diagnoser_.get(); }

  /// \brief Runs the end-of-run invariant audit and freezes the profile.
  /// Call after the loop drains; idempotent (harness and tests both call).
  void FinalizeDiagnostics();

  /// \brief Latency decomposition over the finished trace spans.
  LatencyBreakdown ComputeLatencyBreakdown() const {
    return tracer_->ComputeBreakdown();
  }

  /// \brief Joiner / its unit by unit id (null if unknown).
  Joiner* joiner(uint32_t unit_id);
  runtime::Unit* joiner_node(uint32_t unit_id);

  /// \brief Applies `fn` to every live joiner of `side`.
  void ForEachLiveJoiner(
      RelationId side,
      const std::function<void(Joiner&, runtime::Unit&)>& fn);

  const std::vector<std::unique_ptr<Router>>& routers() const {
    return routers_;
  }

  /// \brief Human-readable dump of the cluster: one line per unit with
  /// relation side, subgroup, lifecycle state, stored tuples, produced
  /// results, state bytes and cumulative busy time (operator tooling).
  std::string DescribeTopology() const;

 private:
  struct JoinerEntry {
    std::unique_ptr<Joiner> joiner;
    runtime::Unit* node = nullptr;
  };

  /// Shared constructor body: validates options, builds the sink chain,
  /// observability, routers and the initial joiner units.
  void Init();
  /// Creates the unit, node, channels; returns the unit id. A set
  /// `subgroup` pins the placement (recovery replacements must sit in the
  /// failed unit's subgroup); unset picks the least-populated one.
  uint32_t AddJoinerUnit(RelationId side, uint64_t start_round,
                         std::optional<uint32_t> subgroup = std::nullopt);
  /// Checkpoint sink for every joiner: stores the snapshot and lets the
  /// routers trim their replay logs.
  void OnCheckpoint(uint32_t unit, uint64_t round, std::vector<Tuple> tuples);
  /// \brief All routers' round counters frozen (ft locks held in router
  /// index order) so a control-plane operation can pick one activation
  /// round strictly in every router's future and schedule epochs/replays
  /// against it atomically — a router that applied an epoch late would
  /// never punctuate the new unit for the gap rounds and stall its order
  /// buffer. Locks release when the struct dies.
  struct EpochFreeze {
    std::vector<std::unique_lock<std::mutex>> locks;
    /// max(current rounds) + 1: not yet emitted by any router.
    uint64_t activation = 0;
  };
  EpochFreeze FreezeRouterRounds();
  /// Pushes a fresh topology snapshot to every router at the freeze's
  /// activation round (the freeze's router locks must still be held).
  void BroadcastEpochLocked(const EpochFreeze& freeze);
  /// Retires a drained unit once its window has fully aged out. The sim
  /// backend schedules this once after a virtual-time grace; the parallel
  /// backend polls on the driver clock (wall time has no fixed relation to
  /// event-time windows under firehose injection).
  void ArmRetirePoll(uint32_t unit_id);
  /// Sends the pending source-side ingestion batch, if any.
  void FlushSourceBatch();
  /// Periodic source-batch flush (bounds batching latency).
  void SourceFlushTick();
  ChannelOptions JoinerChannelOptions() const;
  /// Effective Theorem-1 lateness allowance (µs): the configured
  /// expiry_slack or the engine's own disorder bound, whichever is larger.
  /// Shared by joiner construction and the auditor's window bound.
  EventTime EffectiveExpirySlack() const;
  /// Registers the engine-scope callback gauges (once, at construction).
  void RegisterEngineGauges();
  /// Registers one unit's `joiner.<id>.*` callback gauges.
  void RegisterJoinerGauges(uint32_t unit_id, Joiner* joiner,
                            runtime::Unit* node);

  BicliqueOptions options_;
  ResultSink* sink_;
  /// Installed between the joiners and the user sink when fault tolerance
  /// is enabled (filters replay-flagged duplicates); sink_ points at it.
  std::unique_ptr<RecoveryDedupSink> dedup_sink_;
  /// Serializes OnResult when the backend is concurrent (joiners emit from
  /// different worker threads); sink_ points at it.
  std::unique_ptr<LockingResultSink> locking_sink_;
  MemoryTracker tracker_;
  /// Set only by the EventLoop convenience constructor, which builds (and
  /// owns) the sim backend itself.
  std::unique_ptr<runtime::Executor> owned_exec_;
  runtime::Executor* exec_;
  runtime::Clock* clock_;
  TopologyManager topology_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<runtime::Unit*> router_nodes_;
  std::vector<runtime::Transport*> source_channels_;
  std::unordered_map<uint32_t, JoinerEntry> joiners_;
  /// channels_[router][unit_id] -> transport.
  std::vector<std::unordered_map<uint32_t, runtime::Transport*>> channels_;
  uint64_t next_router_rr_ = 0;
  /// RelaxedCell: written by the driver, read tear-free by the wall-clock
  /// sampler's engine.input_tuples gauge.
  RelaxedCell<uint64_t> input_tuples_ = 0;
  std::vector<BatchEntry> pending_injections_;
  SimTime start_time_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  CheckpointStore ckpt_store_;
  /// Guards the engine state the driver mutates and other threads read:
  /// topology_, joiners_, recovery_events_, crashes_, crash_times_. Gauge
  /// callbacks may take it (they run outside the registry lock). Never held
  /// across Unit::Fail() (joins a worker that may want it) or across
  /// NotifyWhenCaughtUp (an immediate-fire callback re-locks it).
  mutable std::mutex state_mu_;
  /// Guards channels_: router workers look transports up per send while the
  /// driver inserts entries for new units.
  mutable std::mutex channels_mu_;
  std::vector<RecoveryEvent> recovery_events_;
  uint64_t crashes_ = 0;
  /// When each still-unrecovered crash landed; consumed by RecoverUnit to
  /// compute detection latency.
  std::unordered_map<uint32_t, SimTime> crash_times_;
  // Observability. Declaration order matters only for construction; the
  // registry's gauge closures capture `this` and unit pointers, all of
  // which outlive the registry's consumers (joiners_ entries are never
  // erased and SimNodes live in net_ for the engine's lifetime).
  MetricsRegistry metrics_;
  std::unique_ptr<TupleTracer> tracer_;
  std::unique_ptr<TelemetrySampler> sampler_;
  std::unique_ptr<Diagnoser> diagnoser_;
  /// Shared with the executor: a worker thread parked in an instrumented
  /// wait holds the recorder pointer across the park, so the executor keeps
  /// its own reference until its threads are joined (see
  /// Executor::SetTimeline).
  std::shared_ptr<TimelineRecorder> timeline_;
  /// Frozen by FinalizeDiagnostics (JSON null when recording off).
  JsonValue timeline_summary_;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_ENGINE_H_
