/// \file query.h
/// \brief Declarative entry point: describe the join, let the library pick
/// the mechanisms.
///
/// BicliqueOptions exposes every knob the paper discusses (routing
/// subgroups, archive period, punctuation cadence, batching...). Most
/// applications just have a predicate, a window and a parallelism budget;
/// StreamJoinQuery derives the rest with the paper's recommendations:
/// ContHash (pure hash partitioning) for equi joins, ContRand for
/// everything else, the predicate's natural index layout, and an archive
/// period of W/10. Unlike raw options structs — which CHECK-fail on
/// programmer errors — the builder validates with Status so applications
/// can surface configuration mistakes gracefully.

#ifndef BISTREAM_CORE_QUERY_H_
#define BISTREAM_CORE_QUERY_H_

#include <optional>

#include "core/engine.h"

namespace bistream {

/// \brief Fluent builder producing a validated BicliqueOptions.
class StreamJoinQuery {
 public:
  /// \brief Starts a query with the given predicate.
  static StreamJoinQuery Join(JoinPredicate predicate) {
    return StreamJoinQuery(std::move(predicate));
  }

  /// \brief Symmetric sliding window scope (event time).
  StreamJoinQuery& Window(EventTime window) {
    window_ = window;
    return *this;
  }

  /// \brief Join against the full accumulated history (no expiry).
  StreamJoinQuery& FullHistory() {
    window_ = kFullHistoryWindow;
    return *this;
  }

  /// \brief Joiner units per relation side.
  StreamJoinQuery& Parallelism(uint32_t r_units, uint32_t s_units) {
    joiners_r_ = r_units;
    joiners_s_ = s_units;
    return *this;
  }

  /// \brief Router (dispatcher) instances.
  StreamJoinQuery& Routers(uint32_t routers) {
    routers_ = routers;
    return *this;
  }

  /// \brief Overrides the derived subgroup counts (d, e). Only valid for
  /// equi joins; Build() rejects it otherwise.
  StreamJoinQuery& Subgroups(uint32_t d, uint32_t e) {
    subgroups_ = {d, e};
    return *this;
  }

  /// \brief Hot-key protection: caps the derived subgroup count so each
  /// subgroup has at least `units` members absorbing a skewed key's
  /// storage. No effect on non-equi (broadcast) queries.
  StreamJoinQuery& SkewProtection(uint32_t units_per_subgroup) {
    skew_units_ = units_per_subgroup;
    return *this;
  }

  /// \brief Chained-index archive period P (default W/10).
  StreamJoinQuery& ArchivePeriod(EventTime period) {
    archive_period_ = period;
    return *this;
  }

  /// \brief Punctuation cadence.
  StreamJoinQuery& PunctuationInterval(SimTime interval) {
    punct_interval_ = interval;
    return *this;
  }

  /// \brief Router/source mini-batch size.
  StreamJoinQuery& BatchSize(uint32_t batch) {
    batch_size_ = batch;
    return *this;
  }

  /// \brief Simulation cost model / seed overrides.
  StreamJoinQuery& Costs(const CostModel& cost) {
    cost_ = cost;
    return *this;
  }
  StreamJoinQuery& Seed(uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  /// \brief Validates the description and derives a full configuration.
  Result<BicliqueOptions> Build() const;

 private:
  explicit StreamJoinQuery(JoinPredicate predicate)
      : predicate_(std::move(predicate)) {}

  JoinPredicate predicate_;
  EventTime window_ = 10 * kEventSecond;
  uint32_t joiners_r_ = 4;
  uint32_t joiners_s_ = 4;
  uint32_t routers_ = 2;
  std::optional<std::pair<uint32_t, uint32_t>> subgroups_;
  uint32_t skew_units_ = 1;
  std::optional<EventTime> archive_period_;
  SimTime punct_interval_ = 10 * kMillisecond;
  uint32_t batch_size_ = 1;
  std::optional<CostModel> cost_;
  std::optional<uint64_t> seed_;
};

/// \brief One-call execution: build the engine from a query, drive the
/// source to completion into `sink`, return the run's statistics.
Result<EngineStats> RunQuery(const StreamJoinQuery& query,
                             StreamSource* source, ResultSink* sink);

}  // namespace bistream

#endif  // BISTREAM_CORE_QUERY_H_
