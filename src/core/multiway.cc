#include "core/multiway.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "index/chained_index.h"

namespace bistream {

namespace {
/// Intermediate ids live far above any source id so they can never collide
/// with T-side tuple ids.
constexpr uint64_t kIntermediateIdBase = 1ULL << 40;
}  // namespace

uint64_t TripleKey(uint64_t r_id, uint64_t s_id, uint64_t t_id) {
  return HashCombine(HashCombine(HashMix64(r_id), HashMix64(s_id)),
                     HashMix64(t_id));
}

void TripleCollector::OnTriple(const TripleResult& triple) {
  ++count_;
  latency_.Record(triple.latency_ns);
  ++produced_[TripleKey(triple.r_id, triple.s_id, triple.t_id)];
}

std::unordered_map<uint64_t, uint32_t> ComputeExpectedTriples(
    const std::vector<TimedTuple>& stream, EventTime window1,
    EventTime window2) {
  std::unordered_map<int64_t, std::vector<const Tuple*>> s_by_key;
  std::unordered_map<int64_t, std::vector<const Tuple*>> t_by_key;
  std::vector<const Tuple*> r_tuples;
  for (const TimedTuple& tt : stream) {
    switch (tt.tuple.relation) {
      case kRelationR:
        r_tuples.push_back(&tt.tuple);
        break;
      case kRelationS:
        s_by_key[tt.tuple.key].push_back(&tt.tuple);
        break;
      default:
        t_by_key[tt.tuple.key].push_back(&tt.tuple);
        break;
    }
  }
  std::unordered_map<uint64_t, uint32_t> expected;
  for (const Tuple* r : r_tuples) {
    auto s_it = s_by_key.find(r->key);
    if (s_it == s_by_key.end()) continue;
    auto t_it = t_by_key.find(r->key);
    if (t_it == t_by_key.end()) continue;
    for (const Tuple* s : s_it->second) {
      if (!WithinWindow(r->ts, s->ts, window1)) continue;
      EventTime rs_ts = std::max(r->ts, s->ts);
      for (const Tuple* t : t_it->second) {
        if (!WithinWindow(rs_ts, t->ts, window2)) continue;
        ++expected[TripleKey(r->id, s->id, t->id)];
      }
    }
  }
  return expected;
}

ThreeWayCascade::ThreeWayCascade(EventLoop* loop, ThreeWayOptions options,
                                 TripleSink* sink)
    : loop_(loop),
      options_(std::move(options)),
      sink_(sink),
      intermediate_sink_(this),
      final_sink_(this) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
  // The shared multi-way key forces equi joins at both stages.
  options_.stage1.predicate = JoinPredicate::Equi();
  options_.stage2.predicate = JoinPredicate::Equi();
  options_.stage2.expiry_slack =
      std::max(options_.stage2.expiry_slack, options_.intermediate_lateness);
  stage1_ = std::make_unique<BicliqueEngine>(loop_, options_.stage1,
                                             &intermediate_sink_);
  stage2_ = std::make_unique<BicliqueEngine>(loop_, options_.stage2,
                                             &final_sink_);
}

void ThreeWayCascade::Start() {
  stage1_->Start();
  stage2_->Start();
}

void ThreeWayCascade::InjectNow(Tuple tuple) {
  if (tuple.relation == kRelationT) {
    // T feeds stage 2's second side.
    tuple.relation = kRelationS;
    stage2_->InjectNow(std::move(tuple));
    return;
  }
  BISTREAM_CHECK_LE(tuple.relation, kRelationS);
  stage1_->InjectNow(std::move(tuple));
}

void ThreeWayCascade::OnIntermediate(const JoinResult& result) {
  uint64_t id = kIntermediateIdBase + next_intermediate_id_++;
  pair_of_[id] = {result.r_id, result.s_id};

  Tuple intermediate;
  intermediate.id = id;
  intermediate.relation = kRelationR;  // Stage 2's first side.
  intermediate.ts = result.ts;
  intermediate.key = result.key;
  stage2_->InjectNow(std::move(intermediate));
}

void ThreeWayCascade::OnFinal(const JoinResult& result) {
  auto it = pair_of_.find(result.r_id);
  BISTREAM_CHECK(it != pair_of_.end())
      << "stage-2 result references unknown intermediate " << result.r_id;
  TripleResult triple;
  triple.r_id = it->second.first;
  triple.s_id = it->second.second;
  triple.t_id = result.s_id;
  triple.ts = result.ts;
  triple.emit_time = result.emit_time;
  triple.latency_ns = result.latency_ns;
  sink_->OnTriple(triple);
}

void ThreeWayCascade::RunToCompletion(StreamSource* source) {
  Start();
  while (auto next = source->Next()) {
    loop_->RunUntil(next->arrival);
    InjectNow(std::move(next->tuple));
  }
  // Drain stage 1 fully before closing stage 2, since intermediates keep
  // flowing while stage 1's queues empty out.
  stage1_->FlushAndStop();
  loop_->RunUntil(loop_->now() + options_.stage1_drain_grace);
  stage2_->FlushAndStop();
  loop_->RunUntilIdle();
  // Late intermediates would have been dropped by stopped routers; that
  // would be a grace misconfiguration, so fail loudly.
  for (const auto& router : stage2_->routers()) {
    BISTREAM_CHECK_EQ(router->stats().dropped_after_stop, 0u)
        << "stage-2 stopped before stage 1 drained; raise "
           "ThreeWayOptions::stage1_drain_grace";
  }
}

// ---------------------------------------------------------------------------
// General k-way cascade
// ---------------------------------------------------------------------------

uint64_t KTupleKey(const std::vector<uint64_t>& ids) {
  uint64_t key = 0x6B77A11ULL;
  for (uint64_t id : ids) key = HashCombine(key, HashMix64(id));
  return key;
}

void KWayCollector::OnKTuple(const KWayResult& result) {
  ++count_;
  latency_.Record(result.latency_ns);
  ++produced_[KTupleKey(result.ids)];
}

namespace {

void ExpandCombinations(
    const std::vector<std::unordered_map<int64_t,
                                         std::vector<const Tuple*>>>& by_rel,
    const std::vector<EventTime>& windows, int64_t key, size_t next_rel,
    EventTime running_max, std::vector<uint64_t>* ids,
    std::unordered_map<uint64_t, uint32_t>* expected) {
  if (next_rel == by_rel.size()) {
    ++(*expected)[KTupleKey(*ids)];
    return;
  }
  auto it = by_rel[next_rel].find(key);
  if (it == by_rel[next_rel].end()) return;
  for (const Tuple* t : it->second) {
    if (!WithinWindow(running_max, t->ts, windows[next_rel - 1])) continue;
    ids->push_back(t->id);
    ExpandCombinations(by_rel, windows, key, next_rel + 1,
                       std::max(running_max, t->ts), ids, expected);
    ids->pop_back();
  }
}

}  // namespace

std::unordered_map<uint64_t, uint32_t> ComputeExpectedKTuples(
    const std::vector<TimedTuple>& stream, uint32_t num_relations,
    const std::vector<EventTime>& windows) {
  BISTREAM_CHECK_GE(num_relations, 2U);
  BISTREAM_CHECK_EQ(windows.size(), num_relations - 1);
  std::vector<std::unordered_map<int64_t, std::vector<const Tuple*>>> by_rel(
      num_relations);
  for (const TimedTuple& tt : stream) {
    BISTREAM_CHECK_LT(tt.tuple.relation, num_relations);
    by_rel[tt.tuple.relation][tt.tuple.key].push_back(&tt.tuple);
  }
  std::unordered_map<uint64_t, uint32_t> expected;
  std::vector<uint64_t> ids;
  for (const auto& [key, firsts] : by_rel[0]) {
    for (const Tuple* first : firsts) {
      ids.push_back(first->id);
      ExpandCombinations(by_rel, windows, key, 1, first->ts, &ids,
                         &expected);
      ids.pop_back();
    }
  }
  return expected;
}

KWayCascade::KWayCascade(EventLoop* loop, KWayOptions options, KWaySink* sink)
    : loop_(loop), options_(std::move(options)), sink_(sink) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
  BISTREAM_CHECK_GE(options_.stages.size(), 1U);
  intermediate_counts_.assign(options_.stages.size(), 0);
  for (size_t stage = 0; stage < options_.stages.size(); ++stage) {
    BicliqueOptions& stage_options = options_.stages[stage];
    stage_options.predicate = JoinPredicate::Equi();
    if (stage > 0) {
      // Later stages consume a derived (disordered) stream.
      stage_options.expiry_slack = std::max(
          stage_options.expiry_slack, options_.intermediate_lateness);
    }
    stage_sinks_.push_back(std::make_unique<StageSink>(this, stage));
    stages_.push_back(std::make_unique<BicliqueEngine>(
        loop_, stage_options, stage_sinks_.back().get()));
  }
}

void KWayCascade::Start() {
  for (auto& stage : stages_) stage->Start();
}

void KWayCascade::InjectNow(Tuple tuple) {
  BISTREAM_CHECK_LT(tuple.relation, num_relations());
  if (tuple.relation <= kRelationS) {
    stages_[0]->InjectNow(std::move(tuple));
    return;
  }
  // Relation j >= 2 is the S side of stage j - 1.
  size_t stage = tuple.relation - 1;
  tuple.relation = kRelationS;
  stages_[stage]->InjectNow(std::move(tuple));
}

void KWayCascade::AppendComponents(uint64_t id,
                                   std::vector<uint64_t>* out) const {
  auto it = parts_.find(id);
  if (it == parts_.end()) {
    out->push_back(id);  // A source tuple.
    return;
  }
  AppendComponents(it->second.first, out);
  AppendComponents(it->second.second, out);
}

void KWayCascade::OnStageResult(size_t stage, const JoinResult& result) {
  if (stage + 1 < stages_.size()) {
    // Intermediate: feed the next stage's R side.
    uint64_t id = kIntermediateIdBase + next_intermediate_++;
    parts_[id] = {result.r_id, result.s_id};
    ++intermediate_counts_[stage];
    Tuple intermediate;
    intermediate.id = id;
    intermediate.relation = kRelationR;
    intermediate.ts = result.ts;
    intermediate.key = result.key;
    stages_[stage + 1]->InjectNow(std::move(intermediate));
    return;
  }
  ++intermediate_counts_[stage];
  KWayResult out;
  AppendComponents(result.r_id, &out.ids);
  AppendComponents(result.s_id, &out.ids);
  out.ts = result.ts;
  out.emit_time = result.emit_time;
  out.latency_ns = result.latency_ns;
  sink_->OnKTuple(out);
}

void KWayCascade::RunToCompletion(StreamSource* source) {
  Start();
  while (auto next = source->Next()) {
    loop_->RunUntil(next->arrival);
    InjectNow(std::move(next->tuple));
  }
  // Drain front to back: each stage may still be producing input for the
  // next while its queues empty.
  for (size_t stage = 0; stage < stages_.size(); ++stage) {
    stages_[stage]->FlushAndStop();
    if (stage + 1 < stages_.size()) {
      loop_->RunUntil(loop_->now() + options_.stage_drain_grace);
    }
  }
  loop_->RunUntilIdle();
  for (size_t stage = 1; stage < stages_.size(); ++stage) {
    for (const auto& router : stages_[stage]->routers()) {
      BISTREAM_CHECK_EQ(router->stats().dropped_after_stop, 0u)
          << "stage " << stage << " stopped before its feeder drained; "
             "raise KWayOptions::stage_drain_grace";
    }
  }
}

EngineStats KWayCascade::StageStats(size_t stage) const {
  BISTREAM_CHECK_LT(stage, stages_.size());
  return stages_[stage]->Stats();
}

uint64_t KWayCascade::IntermediateCount(size_t stage) const {
  BISTREAM_CHECK_LT(stage, intermediate_counts_.size());
  return intermediate_counts_[stage];
}

BicliqueEngine* KWayCascade::stage_engine(size_t stage) {
  BISTREAM_CHECK_LT(stage, stages_.size());
  return stages_[stage].get();
}

}  // namespace bistream
