#include "core/engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "sim/network.h"

namespace bistream {

Status BicliqueOptions::Validate() const {
  if (num_routers < 1) return Status::InvalidArgument("num_routers must be >= 1");
  if (joiners_r < 1 || joiners_s < 1) {
    return Status::InvalidArgument("each side needs at least one joiner");
  }
  if (subgroups_r < 1 || subgroups_s < 1) {
    return Status::InvalidArgument("subgroup counts must be >= 1");
  }
  if (subgroups_r > joiners_r || subgroups_s > joiners_s) {
    return Status::InvalidArgument(
        "cannot have more subgroups than units on a side");
  }
  // Content-sensitive (hash) routing partitions by key equality; any other
  // predicate would miss matches landing in different subgroups.
  if (predicate.kind() != PredicateKind::kEqui &&
      (subgroups_r != 1 || subgroups_s != 1)) {
    return Status::InvalidArgument(
        "non-equi predicates require ContRand routing (subgroups = 1)");
  }
  if (window < 0) return Status::InvalidArgument("window must be >= 0");
  if (archive_period <= 0) {
    return Status::InvalidArgument("archive_period must be > 0");
  }
  if (archive_period > window && window > 0) {
    return Status::InvalidArgument(
        "archive_period must not exceed the window: a coarser period defeats "
        "sub-index-granularity expiry (state would outlive W by up to P)");
  }
  if (punct_interval <= 0) {
    return Status::InvalidArgument("punct_interval must be > 0");
  }
  if (batch_size < 1) return Status::InvalidArgument("batch_size must be >= 1");
  if (event_time_dilation < 1.0) {
    return Status::InvalidArgument(
        "event_time_dilation must be >= 1.0 (event time advancing slower "
        "than the backend clock never widens the disorder bound)");
  }
  if (channel_drop_probability < 0.0 || channel_drop_probability > 1.0) {
    return Status::InvalidArgument(
        "channel_drop_probability must be in [0, 1]");
  }
  if (retire_grace_factor < 1.0) {
    return Status::InvalidArgument(
        "retire_grace_factor must be >= 1.0: retiring a drained unit before "
        "its window ages out loses results");
  }
  if (fault_tolerance.enabled) {
    if (!ordered) {
      return Status::InvalidArgument(
          "fault tolerance requires the order-consistent protocol: "
          "checkpoints are only meaningful at round boundaries");
    }
    if (fault_tolerance.checkpoint_rounds < 1) {
      return Status::InvalidArgument("checkpoint_rounds must be >= 1");
    }
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        "queue_capacity must be >= 1: a zero-capacity inbox can never "
        "accept a delivery");
  }
  if (backend == runtime::BackendKind::kSim) {
    if (workers != 0) {
      return Status::InvalidArgument(
          "workers is a parallel-backend knob; the sim backend services "
          "every unit on the event loop (leave workers = 0)");
    }
  } else {
    const uint32_t threads_needed = num_routers + joiners_r + joiners_s;
    if (workers != 0 && workers < threads_needed) {
      return Status::InvalidArgument(
          "workers budget too small: the parallel backend runs one thread "
          "per unit, and " + std::to_string(num_routers) + " routers + " +
          std::to_string(joiners_r + joiners_s) + " joiners need " +
          std::to_string(threads_needed) + " threads");
    }
    if (fault_reorder) {
      return Status::InvalidArgument(
          "fault_reorder is a sim-transport fault; the parallel transport "
          "is always FIFO — real thread interleaving already exercises "
          "cross-channel nondeterminism");
    }
    if (channel_drop_probability > 0.0) {
      return Status::InvalidArgument(
          "channel_drop_probability is a sim-transport fault; the parallel "
          "transport is lossless — to exercise loss on real threads, crash "
          "whole units instead (fault_tolerance + CrashJoiner/FaultPlan)");
    }
    // Fault tolerance, elasticity, telemetry sampling and tuple tracing all
    // work on both backends: under parallel a crash is real worker-thread
    // teardown and recovery respawns a live thread (DESIGN.md §11), the
    // sampler runs on its own wall-clock thread over tear-free relaxed
    // cells, and the tracer buffers hop events per worker (§9.2).
  }
  return Status::OK();
}

BicliqueEngine::BicliqueEngine(EventLoop* loop, BicliqueOptions options,
                               ResultSink* sink)
    : options_(std::move(options)),
      sink_(sink),
      tracker_("biclique-engine"),
      owned_exec_(
          std::make_unique<SimNetwork>(loop, options_.cost, options_.seed)),
      exec_(owned_exec_.get()),
      clock_(exec_->clock()),
      topology_(options_.subgroups_r, options_.subgroups_s) {
  BISTREAM_CHECK(loop != nullptr);
  Init();
}

BicliqueEngine::BicliqueEngine(runtime::Executor* exec,
                               BicliqueOptions options, ResultSink* sink)
    : options_(std::move(options)),
      sink_(sink),
      tracker_("biclique-engine"),
      exec_(exec),
      clock_(exec_->clock()),
      topology_(options_.subgroups_r, options_.subgroups_s) {
  BISTREAM_CHECK(exec_ != nullptr);
  Init();
}

void BicliqueEngine::Init() {
  BISTREAM_CHECK(sink_ != nullptr);
  Status valid = options_.Validate();
  BISTREAM_CHECK(valid.ok()) << "invalid BicliqueOptions: "
                             << valid.ToString();

  // Sink chain, innermost first: joiners -> [locking] -> [dedup] -> user.
  // The dedup filter sits inside the lock — its seen-set is plain state, so
  // on a concurrent backend it must only ever run serialized.
  if (options_.fault_tolerance.enabled) {
    // Replayed probes may re-derive pairs already emitted before a crash;
    // the dedup filter drops exactly those (replay-flagged) duplicates.
    dedup_sink_ = std::make_unique<RecoveryDedupSink>(sink_);
    sink_ = dedup_sink_.get();
  }
  if (exec_->concurrent()) {
    // Joiners call OnResult from different worker threads; serialize them
    // before the dedup filter / user's sink.
    locking_sink_ = std::make_unique<LockingResultSink>(sink_);
    sink_ = locking_sink_.get();
  }

  tracer_ = std::make_unique<TupleTracer>(options_.telemetry.trace_every);
  tracer_->SetConcurrent(exec_->concurrent());
  if (options_.telemetry.timeline) {
    TimelineRecorder::Options timeline_options;
    timeline_options.ring_capacity = options_.telemetry.timeline_ring;
    timeline_ = std::make_shared<TimelineRecorder>(timeline_options);
    // Installed before any AddUnit call so every lane registers its name
    // and worker threads see the sink from their first event on. Ownership
    // is shared: the executor may be caller-owned and outlive this engine,
    // and its parked workers hold the recorder pointer across their
    // instrumented waits, so the recorder must live as long as the
    // executor's threads.
    exec_->SetTimeline(timeline_);
    timeline_->SetLaneName(runtime::kDriverLane, "driver");
    timeline_->SetLaneName(runtime::kTimerLane, "timers");
  }
  TelemetrySamplerOptions sampler_options;
  sampler_options.sample_period = options_.telemetry.sample_period;
  // On a concurrent backend the sampler paces itself on a dedicated
  // wall-clock thread; virtual-time self-scheduling would hold RunUntilIdle
  // open and drift under backpressure.
  sampler_options.wall_clock = exec_->concurrent();
  sampler_ =
      std::make_unique<TelemetrySampler>(clock_, &metrics_, sampler_options);
  RegisterEngineGauges();

  if (options_.telemetry.diagnostics) {
    DiagnoserOptions diag_options;
    diag_options.detectors = options_.telemetry.detectors;
    diag_options.strict_audit = options_.telemetry.strict_audit;
    // Theorem-1 bound for the window audit. Full-history runs never expire,
    // so there is no lag to bound.
    diag_options.max_expiry_lag_us =
        options_.window >= kFullHistoryWindow
            ? 0.0
            : static_cast<double>(options_.window + EffectiveExpirySlack());
    diagnoser_ = std::make_unique<Diagnoser>(
        &metrics_, diag_options, [this] {
          // Called from the sampler thread on a concurrent backend while
          // the driver may be scaling or recovering.
          std::lock_guard<std::mutex> lk(state_mu_);
          std::vector<UnitMeta> units;
          for (const UnitRecord& u : topology_.units()) {
            UnitMeta meta;
            meta.id = u.id;
            meta.relation = u.relation;
            meta.subgroup = u.subgroup;
            meta.active = u.state == UnitState::kActive;
            meta.live = u.state == UnitState::kActive ||
                        u.state == UnitState::kDraining;
            units.push_back(meta);
          }
          return units;
        });
    sampler_->SetSampleObserver([this](SimTime now, const SampleRow& row) {
      diagnoser_->OnSample(now, row);
    });
  }
  // Each sample window opens a fresh queue high-watermark on every node
  // (routers included) — the queue_hwm gauges are per-window by contract,
  // whether or not the diagnoser consumes them.
  sampler_->SetPostSampleHook([this] {
    exec_->ForEachUnit(
        [](runtime::Unit& unit) { unit.ResetWindowQueueHwm(); });
  });

  channels_.resize(options_.num_routers);

  // Routers (and their ingestion channels from the source edge).
  for (uint32_t i = 0; i < options_.num_routers; ++i) {
    runtime::Unit* node = exec_->AddUnit("router-" + std::to_string(i));
    RouterOptions router_options;
    router_options.router_id = i;
    router_options.subgroups_r = options_.subgroups_r;
    router_options.subgroups_s = options_.subgroups_s;
    router_options.punct_interval = options_.punct_interval;
    router_options.batch_size = options_.batch_size;
    router_options.retain_for_replay = options_.fault_tolerance.enabled;
    router_options.cost = options_.cost;
    router_options.tracer = tracer_.get();
    router_options.timeline = timeline_.get();
    router_options.timeline_lane = node->id();
    // The punctuation cadence runs on the router unit's own clock, so the
    // tick executes in the unit's context on every backend (the event loop
    // under sim, the unit's worker thread under parallel).
    auto router = std::make_unique<Router>(
        router_options, node->clock(),
        [this, i](uint32_t unit, Message msg) {
          // Runs on the router's worker thread (parallel backend) while the
          // driver may be inserting channels for a new unit. Copy the
          // transport pointer out, then send unlocked: Send can block on
          // backpressure, and transports live for the engine's lifetime.
          runtime::Transport* channel = nullptr;
          {
            std::lock_guard<std::mutex> lk(channels_mu_);
            auto it = channels_[i].find(unit);
            BISTREAM_CHECK(it != channels_[i].end())
                << "router " << i << " has no channel to unit " << unit;
            channel = it->second;
          }
          channel->Send(std::move(msg));
        });
    Router* router_ptr = router.get();
    node->SetHandler([router_ptr](const Message& msg) {
      return router_ptr->Handle(msg);
    });
    routers_.push_back(std::move(router));
    router_nodes_.push_back(node);
    source_channels_.push_back(exec_->Connect(node));

    std::string scope = MetricsRegistry::ScopedName("router", i, "");
    metrics_.RegisterGauge(scope + "tuples_routed", [router_ptr] {
      return static_cast<double>(router_ptr->stats().tuples_routed);
    });
    metrics_.RegisterGauge(scope + "punctuations", [router_ptr] {
      return static_cast<double>(router_ptr->stats().punctuations);
    });
    metrics_.RegisterGauge(scope + "busy_ns", [node] {
      return static_cast<double>(node->stats().busy_ns);
    });
    // Stage decomposition (the unit's per-event-type split) plus the
    // protocol/queue state the diagnosis layer reads.
    metrics_.RegisterGauge(scope + "busy_tuple_ns", [node] {
      return static_cast<double>(node->stats().busy_tuple_ns);
    });
    metrics_.RegisterGauge(scope + "busy_punct_ns", [node] {
      return static_cast<double>(node->stats().busy_punctuation_ns);
    });
    metrics_.RegisterGauge(scope + "busy_batch_ns", [node] {
      return static_cast<double>(node->stats().busy_batch_ns);
    });
    metrics_.RegisterGauge(scope + "busy_control_ns", [node] {
      return static_cast<double>(node->stats().busy_control_ns);
    });
    metrics_.RegisterGauge(scope + "round", [router_ptr] {
      return static_cast<double>(router_ptr->current_round());
    });
    metrics_.RegisterGauge(scope + "replayed", [router_ptr] {
      return static_cast<double>(router_ptr->stats().replayed_messages);
    });
    metrics_.RegisterGauge(scope + "dropped_after_stop", [router_ptr] {
      return static_cast<double>(router_ptr->stats().dropped_after_stop);
    });
    metrics_.RegisterGauge(scope + "queue_depth", [node] {
      return static_cast<double>(node->queue_depth());
    });
    metrics_.RegisterGauge(scope + "queue_hwm", [node] {
      return static_cast<double>(node->window_queue_hwm());
    });
    metrics_.RegisterGauge(scope + "queue_peak", [node] {
      return static_cast<double>(node->stats().max_queue_depth);
    });
    // Inbox contention (parallel backend; always 0 under sim): sender
    // backpressure stalls and enqueue→dequeue queueing delay.
    metrics_.RegisterGauge(scope + "blocked_sends", [node] {
      return static_cast<double>(node->stats().blocked_sends);
    });
    metrics_.RegisterGauge(scope + "blocked_ns", [node] {
      return static_cast<double>(node->stats().blocked_ns);
    });
    metrics_.RegisterGauge(scope + "dequeue_wait_ns", [node] {
      return static_cast<double>(node->stats().dequeue_wait_ns);
    });
  }

  // Initial joiner units, active from round 0.
  for (uint32_t i = 0; i < options_.joiners_r; ++i) {
    AddJoinerUnit(kRelationR, /*start_round=*/0);
  }
  for (uint32_t i = 0; i < options_.joiners_s; ++i) {
    AddJoinerUnit(kRelationS, /*start_round=*/0);
  }

  // Initial epoch, effective immediately (round 0).
  auto view = topology_.Snapshot();
  for (auto& router : routers_) {
    router->ScheduleEpoch(0, view);
  }
}

void BicliqueEngine::RegisterEngineGauges() {
  metrics_.RegisterGauge("engine.input_tuples", [this] {
    return static_cast<double>(input_tuples_);
  });
  metrics_.RegisterGauge("engine.state_bytes", [this] {
    return static_cast<double>(tracker_.current_bytes());
  });
  metrics_.RegisterGauge("engine.inflight_events", [this] {
    return static_cast<double>(exec_->pending_events());
  });
  metrics_.RegisterGauge("engine.messages", [this] {
    return static_cast<double>(exec_->total_messages());
  });
  metrics_.RegisterGauge("engine.bytes", [this] {
    return static_cast<double>(exec_->total_bytes());
  });
  // Gauges iterating driver-mutated state (topology_, joiners_,
  // recovery_events_) lock state_mu_: the wall-clock sampler evaluates them
  // mid-scale/mid-recovery on a concurrent backend. Callbacks run outside
  // the registry lock, so this nests safely.
  metrics_.RegisterGauge("engine.active_joiners_r", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    return static_cast<double>(topology_.NumActive(kRelationR));
  });
  metrics_.RegisterGauge("engine.active_joiners_s", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    return static_cast<double>(topology_.NumActive(kRelationS));
  });
  metrics_.RegisterGauge("engine.crashes", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    return static_cast<double>(crashes_);
  });
  metrics_.RegisterGauge("engine.recoveries", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    return static_cast<double>(recovery_events_.size());
  });
  metrics_.RegisterGauge("engine.respawns", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    return static_cast<double>(recovery_events_.size());
  });
  metrics_.RegisterGauge("engine.detection_latency_ns", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    SimTime worst = 0;
    for (const RecoveryEvent& e : recovery_events_) {
      if (e.crashed_at > 0 && e.detected_at >= e.crashed_at) {
        worst = std::max(worst, e.detected_at - e.crashed_at);
      }
    }
    return static_cast<double>(worst);
  });
  metrics_.RegisterGauge("engine.recovery_wall_ns", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    SimTime worst = 0;
    for (const RecoveryEvent& e : recovery_events_) {
      if (e.caught_up_at > 0 && e.caught_up_at >= e.detected_at) {
        worst = std::max(worst, e.caught_up_at - e.detected_at);
      }
    }
    return static_cast<double>(worst);
  });
  metrics_.RegisterGauge("engine.checkpoints", [this] {
    return static_cast<double>(ckpt_store_.checkpoints_taken());
  });
  metrics_.RegisterGauge("engine.results", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    uint64_t total = 0;
    for (const auto& [unit_id, entry] : joiners_) {
      total += entry.joiner->stats().results;
    }
    return static_cast<double>(total);
  });
  metrics_.RegisterGauge("engine.stored", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    uint64_t total = 0;
    for (const auto& [unit_id, entry] : joiners_) {
      total += entry.joiner->stats().stored;
    }
    return static_cast<double>(total);
  });
  metrics_.RegisterGauge("engine.probes", [this] {
    std::lock_guard<std::mutex> lk(state_mu_);
    uint64_t total = 0;
    for (const auto& [unit_id, entry] : joiners_) {
      total += entry.joiner->stats().probes;
    }
    return static_cast<double>(total);
  });
  // Timer-thread dispatch health (parallel backend; always 0 under sim):
  // the worst lag between a timer's deadline and its dispatch, and the
  // number of timers fired.
  metrics_.RegisterGauge("engine.timer_lag_max_ns", [this] {
    return static_cast<double>(exec_->timer_lag_max_ns());
  });
  metrics_.RegisterGauge("engine.timer_fires", [this] {
    return static_cast<double>(exec_->timer_fires());
  });
}

void BicliqueEngine::RegisterJoinerGauges(uint32_t unit_id, Joiner* joiner,
                                          runtime::Unit* node) {
  std::string scope = MetricsRegistry::ScopedName("joiner", unit_id, "");
  metrics_.RegisterGauge(scope + "busy_ns", [node] {
    return static_cast<double>(node->stats().busy_ns);
  });
  metrics_.RegisterGauge(scope + "queue_depth", [node] {
    return static_cast<double>(node->queue_depth());
  });
  metrics_.RegisterGauge(scope + "state_bytes", [joiner] {
    return static_cast<double>(joiner->memory().current_bytes());
  });
  metrics_.RegisterGauge(scope + "stored", [joiner] {
    return static_cast<double>(joiner->stats().stored);
  });
  metrics_.RegisterGauge(scope + "results", [joiner] {
    return static_cast<double>(joiner->stats().results);
  });
  metrics_.RegisterGauge(scope + "probes", [joiner] {
    return static_cast<double>(joiner->stats().probes);
  });
  metrics_.RegisterGauge(scope + "buffered", [joiner] {
    return static_cast<double>(joiner->buffered());
  });
  metrics_.RegisterGauge(scope + "last_progress_ns", [joiner] {
    return static_cast<double>(joiner->last_progress_time());
  });
  // Per-stage decomposition (exactly partitions this unit's busy_ns; the
  // sampler derives a windowed `busy_*_fraction` from each).
  metrics_.RegisterGauge(scope + "busy_store_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_store_ns);
  });
  metrics_.RegisterGauge(scope + "busy_probe_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_probe_ns);
  });
  metrics_.RegisterGauge(scope + "busy_expire_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_expire_ns);
  });
  metrics_.RegisterGauge(scope + "busy_punct_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_punct_ns);
  });
  metrics_.RegisterGauge(scope + "busy_replay_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_replay_ns);
  });
  metrics_.RegisterGauge(scope + "busy_msg_ns", [joiner] {
    return static_cast<double>(joiner->stats().busy_msg_ns);
  });
  // Queue pressure: sample-instant depth, per-window high-watermark, and
  // the run-global peak; the protocol/window invariants the auditor reads.
  metrics_.RegisterGauge(scope + "queue_hwm", [node] {
    return static_cast<double>(node->window_queue_hwm());
  });
  metrics_.RegisterGauge(scope + "queue_peak", [node] {
    return static_cast<double>(node->stats().max_queue_depth);
  });
  // Inbox contention (parallel backend; always 0 under sim).
  metrics_.RegisterGauge(scope + "blocked_sends", [node] {
    return static_cast<double>(node->stats().blocked_sends);
  });
  metrics_.RegisterGauge(scope + "blocked_ns", [node] {
    return static_cast<double>(node->stats().blocked_ns);
  });
  metrics_.RegisterGauge(scope + "dequeue_wait_ns", [node] {
    return static_cast<double>(node->stats().dequeue_wait_ns);
  });
  metrics_.RegisterGauge(scope + "release_round", [joiner] {
    return static_cast<double>(joiner->release_round());
  });
  metrics_.RegisterGauge(scope + "expiry_lag_us", [joiner] {
    return static_cast<double>(joiner->expiry_lag());
  });
}

EventTime BicliqueEngine::EffectiveExpirySlack() const {
  // Theorem-1 expiry assumes probes arrive in near-timestamp order, but the
  // engine itself disorders processing by up to ~a punctuation round (round
  // release is by (seq, router), not ts; source/router batching defers
  // tuples by up to one round; channels add jitter). Retain sub-indexes for
  // that bound beyond W so a slightly-older probe at the window edge never
  // finds its match already discarded. This assumes event time tracks
  // arrival time (true for the provided sources); applications with
  // decoupled event time should set BicliqueOptions::expiry_slack to their
  // own disorder bound.
  // Under a wall-paced driver one backend round spans event_time_dilation
  // times more event time, so the round-granular disorder scales with it.
  EventTime disorder_bound = static_cast<EventTime>(
      options_.event_time_dilation *
      static_cast<double>(3 * options_.punct_interval +
                          options_.cost.net_jitter_ns) /
      kMicrosecond);
  return std::max(options_.expiry_slack, disorder_bound);
}

ChannelOptions BicliqueEngine::JoinerChannelOptions() const {
  ChannelOptions channel;
  channel.latency_ns = options_.cost.net_latency_ns;
  channel.jitter_ns = options_.cost.net_jitter_ns;
  channel.preserve_fifo = !options_.fault_reorder;
  channel.drop_probability = options_.channel_drop_probability;
  return channel;
}

uint32_t BicliqueEngine::AddJoinerUnit(RelationId side, uint64_t start_round,
                                       std::optional<uint32_t> subgroup) {
  // Driver-thread only. The short lock scopes shield concurrent readers
  // (sampler gauges iterating joiners_/topology_, router workers resolving
  // channels_); thread spawn and joiner construction stay outside them.
  uint32_t unit_id = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    unit_id = subgroup.has_value() ? topology_.AddUnit(side, *subgroup)
                                   : topology_.AddUnit(side);
  }

  JoinerOptions joiner_options;
  joiner_options.unit_id = unit_id;
  joiner_options.relation = side;
  joiner_options.predicate = options_.predicate;
  joiner_options.index_kind =
      options_.index_kind.value_or(options_.predicate.RecommendedIndex());
  joiner_options.window = options_.window;
  joiner_options.archive_period = options_.archive_period;
  joiner_options.expiry_slack = EffectiveExpirySlack();
  joiner_options.cost = options_.cost;
  joiner_options.num_routers = options_.num_routers;
  joiner_options.start_round = start_round;
  joiner_options.ordered = options_.ordered;
  if (options_.fault_tolerance.enabled) {
    joiner_options.checkpoint_rounds = options_.fault_tolerance.checkpoint_rounds;
  }
  joiner_options.tracer = tracer_.get();
  // Wall backends measure stage time around the index calls; the sim
  // charges modeled virtual cost (see JoinerOptions::measure_wall_stages).
  joiner_options.measure_wall_stages = exec_->concurrent();

  JoinerEntry entry;
  entry.node = exec_->AddUnit("joiner-" + std::to_string(unit_id) +
                              (side == kRelationR ? "-R" : "-S"));
  entry.joiner = std::make_unique<Joiner>(joiner_options, entry.node->clock(),
                                          sink_, &tracker_);
  Joiner* joiner_ptr = entry.joiner.get();
  if (options_.fault_tolerance.enabled) {
    joiner_ptr->SetCheckpointFn(
        [this](uint32_t unit, uint64_t round, std::vector<Tuple> tuples) {
          OnCheckpoint(unit, round, std::move(tuples));
        });
  }
  entry.node->SetHandler(
      [joiner_ptr](const Message& msg) { return joiner_ptr->Handle(msg); });

  for (uint32_t i = 0; i < options_.num_routers; ++i) {
    runtime::Transport* channel =
        exec_->Connect(entry.node, JoinerChannelOptions());
    std::lock_guard<std::mutex> lk(channels_mu_);
    channels_[i][unit_id] = channel;
  }
  RegisterJoinerGauges(unit_id, joiner_ptr, entry.node);
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    joiners_[unit_id] = std::move(entry);
  }
  return unit_id;
}

void BicliqueEngine::Start() {
  BISTREAM_CHECK(!started_);
  started_ = true;
  start_time_ = clock_->now();
  for (auto& router : routers_) router->Start();
  if (options_.batch_size > 1) {
    clock_->ScheduleAfter(options_.punct_interval,
                          [this] { SourceFlushTick(); });
  }
  // The sampler polls the stop flag so it ceases rescheduling once the run
  // winds down (otherwise RunUntilIdle would never drain).
  sampler_->Start([this] { return stopped_; });
}

void BicliqueEngine::InjectNow(Tuple tuple) {
  BISTREAM_CHECK(started_) << "InjectNow before Start";
  tuple.origin = clock_->now();
  ++input_tuples_;
  if (tracer_->enabled() &&
      tracer_->OnIngress(tuple, tuple.origin) != nullptr) {
    // Mark the selected tuple so every copy carries the decision; workers
    // on a concurrent backend filter on the bit instead of the span index.
    tuple.traced = true;
  }
  if (options_.batch_size <= 1) {
    Message msg = MakeTupleMessage(std::move(tuple), StreamKind::kStore,
                                   /*router_id=*/0, /*seq=*/0, /*round=*/0);
    source_channels_[next_router_rr_++ % source_channels_.size()]->Send(
        std::move(msg));
    return;
  }
  // Batched ingestion edge (Kafka-consumer style): coalesce, flush when
  // full; the periodic tick bounds the wait for slow streams.
  pending_injections_.push_back(
      BatchEntry{std::move(tuple), StreamKind::kStore, 0, 0});
  if (pending_injections_.size() >= options_.batch_size) {
    FlushSourceBatch();
  }
}

void BicliqueEngine::FlushSourceBatch() {
  if (pending_injections_.empty()) return;
  Message batch = MakeBatch(std::move(pending_injections_), 0);
  pending_injections_.clear();
  source_channels_[next_router_rr_++ % source_channels_.size()]->Send(
      std::move(batch));
}

void BicliqueEngine::SourceFlushTick() {
  if (stopped_) return;
  FlushSourceBatch();
  clock_->ScheduleAfter(options_.punct_interval,
                        [this] { SourceFlushTick(); });
}

void BicliqueEngine::FlushAndStop() {
  FlushSourceBatch();
  stopped_ = true;
  for (runtime::Transport* channel : source_channels_) {
    channel->Send(MakeControl(ControlOp::kStopFlush, 0));
  }
}

void BicliqueEngine::RunToCompletion(StreamSource* source) {
  Start();
  while (auto next = source->Next()) {
    exec_->RunUntil(next->arrival);
    InjectNow(std::move(next->tuple));
  }
  FlushAndStop();
  exec_->RunUntilIdle();
  FinalizeDiagnostics();
}

BicliqueEngine::EpochFreeze BicliqueEngine::FreezeRouterRounds() {
  // Lock order: router index order (the only multi-router lock site, so any
  // consistent order works). With every router's round frozen, max+1 is
  // strictly in each one's future — the activation CHECKs in
  // ScheduleEpochLocked/ScheduleReplayLocked cannot race a round advance.
  EpochFreeze freeze;
  freeze.locks.reserve(routers_.size());
  for (auto& router : routers_) {
    freeze.locks.push_back(router->LockRound());
  }
  uint64_t max_round = 0;
  for (const auto& router : routers_) {
    max_round = std::max(max_round, router->current_round());
  }
  freeze.activation = max_round + 1;
  return freeze;
}

void BicliqueEngine::BroadcastEpochLocked(const EpochFreeze& freeze) {
  std::shared_ptr<const TopologyView> view;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    view = topology_.Snapshot();
  }
  for (auto& router : routers_) {
    router->ScheduleEpochLocked(freeze.activation, view);
  }
}

Result<uint32_t> BicliqueEngine::ScaleOut(RelationId side) {
  // Freeze rounds across the whole membership change: the replacement is
  // created, then every router learns the new view at one activation round
  // none of them has emitted yet. Router workers keep servicing tuples
  // within their current round throughout; only round advances wait.
  EpochFreeze freeze = FreezeRouterRounds();
  uint32_t unit_id = AddJoinerUnit(side, freeze.activation);
  BroadcastEpochLocked(freeze);
  BISTREAM_LOG(Info) << "scale-out: unit " << unit_id << " joins side "
                     << (side == kRelationR ? "R" : "S") << " at round "
                     << freeze.activation;
  return unit_id;
}

Result<uint32_t> BicliqueEngine::ScaleIn(RelationId side) {
  uint32_t unit_id = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    BISTREAM_ASSIGN_OR_RETURN(unit_id, topology_.PickDrainCandidate(side));
    RETURN_NOT_OK(topology_.StartDrain(unit_id));
  }
  {
    EpochFreeze freeze = FreezeRouterRounds();
    BroadcastEpochLocked(freeze);
  }
  BISTREAM_LOG(Info) << "scale-in: unit " << unit_id
                     << " starts draining on side "
                     << (side == kRelationR ? "R" : "S");
  ArmRetirePoll(unit_id);
  return unit_id;
}

void BicliqueEngine::ArmRetirePoll(uint32_t unit_id) {
  if (!exec_->concurrent()) {
    // Sim: event time tracks virtual time in our workloads, so one shot
    // after W * grace (plus punctuation slack) is deterministic and safe.
    SimTime window_ns = static_cast<SimTime>(options_.window) * kMicrosecond;
    SimTime delay =
        static_cast<SimTime>(static_cast<double>(window_ns) *
                             options_.retire_grace_factor) +
        4 * options_.punct_interval;
    clock_->ScheduleAfter(delay, [this, unit_id] {
      Status status = topology_.Retire(unit_id);
      if (!status.ok()) {
        BISTREAM_LOG(Warning) << "retire of unit " << unit_id
                              << " failed: " << status.ToString();
        return;
      }
      BISTREAM_LOG(Info) << "retired drained unit " << unit_id;
      EpochFreeze freeze = FreezeRouterRounds();
      BroadcastEpochLocked(freeze);
    });
    return;
  }
  // Parallel: wall time has no fixed relation to event-time windows under
  // firehose injection, so poll on the driver clock until the drained
  // unit's index has fully aged out (every inserted tuple expired), then
  // retire. The poll runs as a driver timer — same thread as every other
  // control-plane mutation.
  clock_->ScheduleRepeating(options_.punct_interval, [this, unit_id]() {
    if (stopped_) return false;  // Run wind-down: leave the unit draining.
    Joiner* drained = nullptr;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (topology_.unit(unit_id).state != UnitState::kDraining) {
        return false;  // Crashed (and recovered) or already retired.
      }
      auto it = joiners_.find(unit_id);
      BISTREAM_CHECK(it != joiners_.end());
      drained = it->second.joiner.get();
    }
    const JoinerStats& js = drained->stats();
    if (js.expired_tuples < js.stored + js.restored_tuples) {
      return true;  // Window not yet aged out; keep polling.
    }
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      Status status = topology_.Retire(unit_id);
      if (!status.ok()) {
        BISTREAM_LOG(Warning) << "retire of unit " << unit_id
                              << " failed: " << status.ToString();
        return false;
      }
    }
    BISTREAM_LOG(Info) << "retired drained unit " << unit_id;
    EpochFreeze freeze = FreezeRouterRounds();
    BroadcastEpochLocked(freeze);
    return false;
  });
}

void BicliqueEngine::OnCheckpoint(uint32_t unit, uint64_t round,
                                  std::vector<Tuple> tuples) {
  BISTREAM_LOG(Debug) << "checkpoint: unit " << unit << " round " << round
                      << " (" << tuples.size() << " tuples)";
  ckpt_store_.Put(unit, round, std::move(tuples));
  // On the joiner's own lane: under parallel this runs on its worker
  // thread, under sim inside its handler's lane scope.
  runtime::TimelineRecord(timeline_.get(),
                          runtime::TimelineEventType::kCheckpoint,
                          clock_->now(), round);
  // Acknowledged: the routers no longer need this unit's log up to `round`.
  for (auto& router : routers_) {
    router->NoteCheckpoint(unit, round);
  }
}

Status BicliqueEngine::CrashJoiner(uint32_t unit_id) {
  runtime::Unit* node = nullptr;
  Joiner* joiner = nullptr;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto it = joiners_.find(unit_id);
    if (it == joiners_.end()) {
      return Status::NotFound("unknown unit " + std::to_string(unit_id));
    }
    const UnitRecord& record = topology_.unit(unit_id);
    if (record.state != UnitState::kActive &&
        record.state != UnitState::kDraining) {
      return Status::FailedPrecondition("unit is not live");
    }
    node = it->second.node;
    joiner = it->second.joiner.get();
  }
  // Timestamp before the kill so detection latency is measured from the
  // moment the unit went silent, not from after its worker was torn down.
  SimTime crash_time = clock_->now();
  // Outside state_mu_: on the parallel backend Fail() joins the worker
  // thread, which may itself be blocked on state_mu_ (caught-up callback).
  node->Fail();
  joiner->OnCrash();
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++crashes_;
    crash_times_[unit_id] = crash_time;
  }
  runtime::TimelineRecord(timeline_.get(),
                          runtime::TimelineEventType::kCrash, crash_time,
                          unit_id);
  metrics_
      .GetCounter(MetricsRegistry::ScopedName("joiner", unit_id, "crashed"))
      ->Increment();
  BISTREAM_LOG(Warning) << "crash: unit " << unit_id
                        << " failed (window state lost, inbox dropped)";
  return Status::OK();
}

std::optional<uint32_t> BicliqueEngine::InjectCrash(
    const FaultPlan::Crash& crash, uint64_t draw) {
  if (crash.unit.has_value()) {
    return CrashJoiner(*crash.unit).ok() ? crash.unit : std::nullopt;
  }
  // Unset victim: pick deterministically among the live joiners (topology
  // order is id order, so equal draws give equal victims).
  std::vector<uint32_t> live;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (const UnitRecord& u : topology_.units()) {
      if (u.state == UnitState::kActive || u.state == UnitState::kDraining) {
        live.push_back(u.id);
      }
    }
  }
  if (live.empty()) return std::nullopt;
  uint32_t victim = live[draw % live.size()];
  return CrashJoiner(victim).ok() ? std::optional<uint32_t>(victim)
                                  : std::nullopt;
}

Result<uint32_t> BicliqueEngine::RecoverUnit(uint32_t failed_unit) {
  if (!options_.fault_tolerance.enabled) {
    return Status::FailedPrecondition("fault tolerance is disabled");
  }
  SimTime detected_at = clock_->now();
  runtime::Unit* failed_node = nullptr;
  Joiner* failed_joiner = nullptr;
  UnitRecord record;
  SimTime crashed_at = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto it = joiners_.find(failed_unit);
    if (it == joiners_.end()) {
      return Status::NotFound("unknown unit " + std::to_string(failed_unit));
    }
    record = topology_.unit(failed_unit);
    failed_node = it->second.node;
    failed_joiner = it->second.joiner.get();
    auto ct = crash_times_.find(failed_unit);
    if (ct != crash_times_.end()) crashed_at = ct->second;
  }

  // Fence the suspect first: a false-positive detection must not leave two
  // units serving the same slot, so the suspect is killed even if alive.
  // Outside state_mu_ — Fail() joins the worker thread.
  if (failed_node->alive()) {
    BISTREAM_LOG(Warning) << "recovery: fencing still-alive suspect unit "
                          << failed_unit;
    failed_node->Fail();
    failed_joiner->OnCrash();
    std::lock_guard<std::mutex> lk(state_mu_);
    ++crashes_;
    crashed_at = detected_at;  // Never observed crashing: zero-latency fence.
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    RETURN_NOT_OK(topology_.MarkFailed(failed_unit));
  }

  runtime::TimelineRecord(timeline_.get(),
                          runtime::TimelineEventType::kDetect, detected_at,
                          failed_unit);

  // The restore point decides the replay span: a checkpoint tagged C holds
  // exactly rounds <= C, so replay resumes at C+1; with no checkpoint the
  // whole history since the unit's first round is replayed.
  std::optional<Checkpoint> ckpt = ckpt_store_.Latest(failed_unit);
  uint64_t replay_from =
      ckpt.has_value() ? ckpt->round + 1 : failed_joiner->start_round();

  // Freeze every router's round for the whole membership change: the
  // replacement is provisioned, restored, and announced (epoch + replay) at
  // one activation round no router has emitted yet. Router workers keep
  // servicing their current round; only round advances wait.
  uint32_t replacement = 0;
  Joiner* repl = nullptr;
  uint64_t activation = 0;
  {
    EpochFreeze freeze = FreezeRouterRounds();
    activation = freeze.activation;

    // The replacement inherits the failed unit's subgroup so the restored
    // window stays reachable by the same probe set, and its order buffer
    // starts at the first replayed round.
    replacement = AddJoinerUnit(record.relation, replay_from, record.subgroup);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      repl = joiners_[replacement].joiner.get();
    }
    if (ckpt.has_value()) {
      // Safe before any delivery reaches the fresh worker: the unit inbox
      // mutex orders this restore before the first replayed message.
      repl->RestoreWindow(ckpt->tuples);
    }

    // New epoch (failed unit out, replacement in) and the replay both take
    // effect at `activation`; replayed rounds precede live activation-round
    // traffic on the replacement's FIFO channels, preserving round order.
    BroadcastEpochLocked(freeze);
    for (auto& router : routers_) {
      // Chained failure: if the failed unit was itself a replacement this
      // router never activated, its pending replay (of the *original*
      // failure's backlog) still names it. Hand that replay to the new
      // replacement instead of scheduling a fresh one — the dead
      // replacement's own log is empty on such a router. (The freeze holds
      // every router's round lock, so the *Locked variants are legal here.)
      if (!router->RemapReplaysLocked(failed_unit, replacement, activation)) {
        router->ScheduleReplayLocked(
            activation, ReplayRequest{failed_unit, replacement, replay_from});
      }
    }
  }

  runtime::TimelineRecord(timeline_.get(),
                          runtime::TimelineEventType::kRespawn,
                          clock_->now(), replacement);

  RecoveryEvent event;
  event.crashed_at = crashed_at;
  event.detected_at = detected_at;
  event.failed_unit = failed_unit;
  event.replacement_unit = replacement;
  if (ckpt.has_value()) event.checkpoint_round = ckpt->round;
  event.replay_from = replay_from;
  event.activation_round = activation;
  event.restored_tuples = ckpt.has_value() ? ckpt->tuples.size() : 0;
  BISTREAM_LOG(Info) << "recovery: unit " << failed_unit << " -> replacement "
                     << replacement << ", restored "
                     << event.restored_tuples << " tuples from checkpoint, "
                     << "replay from round " << replay_from
                     << ", activation round " << activation;
  size_t event_index = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    recovery_events_.push_back(event);
    event_index = recovery_events_.size() - 1;
    crash_times_.erase(failed_unit);
  }
  metrics_
      .GetCounter(
          MetricsRegistry::ScopedName("joiner", failed_unit, "recovered"))
      ->Increment();
  // Outside state_mu_: when the replacement is already caught up the
  // callback fires inline and re-locks it. Indexing stays valid across
  // push_backs — events are never erased.
  repl->NotifyWhenCaughtUp(activation, [this, event_index] {
    std::lock_guard<std::mutex> lk(state_mu_);
    recovery_events_[event_index].caught_up_at = clock_->now();
  });

  // The restored snapshot becomes the replacement's restore point until its
  // first own checkpoint: the router logs for rounds <= ckpt->round are
  // gone (trimmed on the original NoteCheckpoint), so a chained crash of
  // the replacement can only recover from here.
  ckpt_store_.Retag(failed_unit, replacement);

  // Flight-recorder postmortem: snapshot every thread's ring now, with the
  // crash, detection, and respawn events all landed, while workers keep
  // running (the snapshot discards — never tears — slots being rewritten).
  if (timeline_ != nullptr) {
    timeline_->AddFlightDump("recovery: unit " +
                                 std::to_string(failed_unit) + " -> " +
                                 std::to_string(replacement),
                             timeline_->FlightSnapshot());
  }
  return replacement;
}

Joiner* BicliqueEngine::joiner(uint32_t unit_id) {
  auto it = joiners_.find(unit_id);
  return it == joiners_.end() ? nullptr : it->second.joiner.get();
}

runtime::Unit* BicliqueEngine::joiner_node(uint32_t unit_id) {
  auto it = joiners_.find(unit_id);
  return it == joiners_.end() ? nullptr : it->second.node;
}

void BicliqueEngine::ForEachLiveJoiner(
    RelationId side,
    const std::function<void(Joiner&, runtime::Unit&)>& fn) {
  for (const UnitRecord& u : topology_.units()) {
    if (TopologyManager::SideOf(u.relation) != TopologyManager::SideOf(side) ||
        (u.state != UnitState::kActive && u.state != UnitState::kDraining)) {
      continue;
    }
    auto it = joiners_.find(u.id);
    BISTREAM_CHECK(it != joiners_.end());
    fn(*it->second.joiner, *it->second.node);
  }
}

std::string BicliqueEngine::DescribeTopology() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  std::string out = "biclique cluster (epoch view ";
  out += std::to_string(topology_.units().size());
  out += " units, ";
  out += std::to_string(routers_.size());
  out += " routers)\n";
  for (const UnitRecord& unit : topology_.units()) {
    auto it = joiners_.find(unit.id);
    BISTREAM_CHECK(it != joiners_.end());
    const Joiner& joiner = *it->second.joiner;
    const runtime::Unit& node = *it->second.node;
    char line[192];
    const char* state = unit.state == UnitState::kActive     ? "active"
                        : unit.state == UnitState::kDraining ? "draining"
                        : unit.state == UnitState::kFailed   ? "failed"
                                                             : "retired";
    std::snprintf(line, sizeof(line),
                  "  unit %-3u side=%c subgroup=%-2u %-8s stored=%-8llu "
                  "results=%-9llu state=%lldB busy=%.3fms\n",
                  unit.id, unit.relation == kRelationR ? 'R' : 'S',
                  unit.subgroup, state,
                  static_cast<unsigned long long>(joiner.stats().stored),
                  static_cast<unsigned long long>(joiner.stats().results),
                  static_cast<long long>(joiner.memory().current_bytes()),
                  SimTimeToMillis(node.stats().busy_ns));
    out += line;
  }
  uint64_t dropped = exec_->total_dropped();
  uint64_t dropped_dead = exec_->total_dropped_dead();
  uint64_t lost = exec_->total_lost_on_crash();
  if (dropped + dropped_dead + lost + crashes_ + recovery_events_.size() > 0) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  faults: crashes=%llu recoveries=%llu dropped=%llu "
                  "dropped_dead=%llu lost_on_crash=%llu\n",
                  static_cast<unsigned long long>(crashes_),
                  static_cast<unsigned long long>(recovery_events_.size()),
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(dropped_dead),
                  static_cast<unsigned long long>(lost));
    out += line;
  }
  return out;
}

void BicliqueEngine::FinalizeDiagnostics() {
  // Wall-clock sampling runs on its own thread: join it (taking the closing
  // sample) before anything reads the series. Likewise fold the workers'
  // trace buffers into the spans. Both are idempotent no-ops under sim.
  sampler_->Stop();
  tracer_->MergeThreadBuffers();
  if (timeline_ != nullptr && timeline_summary_.is_null()) {
    // Freeze the artifact summary (ring-cursor reads, a few loads per
    // lane). The full Chrome trace is NOT built here: folding and
    // serializing a few hundred thousand ring slots is real CPU, so it
    // happens lazily in RunReport::timeline_trace(), outside anything the
    // run's makespan or an overhead bound could charge.
    timeline_summary_ = timeline_->SummaryJson();
  }
  if (diagnoser_ == nullptr || diagnoser_->finalized()) return;
  EngineStats stats = Stats();
  FinalCounters counters;
  counters.input_tuples = stats.input_tuples;
  for (const auto& router : routers_) {
    counters.routed += router->stats().tuples_routed;
    counters.dropped_after_stop += router->stats().dropped_after_stop;
  }
  counters.stored = stats.stored;
  counters.replayed_messages = stats.replayed_messages;
  counters.results = stats.results;
  counters.suppressed_duplicates = stats.suppressed_duplicates;
  counters.crashes = stats.crashes;
  counters.messages_dropped = stats.messages_dropped;
  counters.messages_dropped_dead = stats.messages_dropped_dead;
  counters.messages_lost_on_crash = stats.messages_lost_on_crash;
  counters.makespan_ns = stats.makespan_ns;
  diagnoser_->Finalize(clock_->now(), counters);
}

EngineStats BicliqueEngine::Stats() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  EngineStats stats;
  stats.input_tuples = input_tuples_;
  for (const auto& [unit_id, entry] : joiners_) {
    const JoinerStats& js = entry.joiner->stats();
    stats.results += js.results;
    stats.stored += js.stored;
    stats.probes += js.probes;
    stats.probe_candidates += js.probe_candidates;
    stats.expired_tuples += js.expired_tuples;
    stats.expired_subindexes += js.expired_subindexes;
    stats.restored_tuples += js.restored_tuples;
  }
  stats.messages = exec_->total_messages();
  stats.bytes = exec_->total_bytes();
  stats.messages_dropped = exec_->total_dropped();
  stats.messages_dropped_dead = exec_->total_dropped_dead();
  stats.messages_lost_on_crash = exec_->total_lost_on_crash();
  stats.crashes = crashes_;
  stats.recoveries = recovery_events_.size();
  stats.respawns = recovery_events_.size();
  for (const RecoveryEvent& e : recovery_events_) {
    if (e.crashed_at > 0 && e.detected_at >= e.crashed_at) {
      stats.detection_latency_max_ns =
          std::max(stats.detection_latency_max_ns, e.detected_at - e.crashed_at);
    }
    if (e.caught_up_at > 0 && e.caught_up_at >= e.detected_at) {
      stats.recovery_wall_max_ns =
          std::max(stats.recovery_wall_max_ns, e.caught_up_at - e.detected_at);
    }
  }
  stats.checkpoints = ckpt_store_.checkpoints_taken();
  stats.checkpoint_bytes = ckpt_store_.bytes_written();
  for (const auto& router : routers_) {
    stats.replayed_messages += router->stats().replayed_messages;
  }
  if (dedup_sink_ != nullptr) {
    stats.suppressed_duplicates = dedup_sink_->suppressed();
  }
  stats.state_bytes = tracker_.current_bytes();
  stats.peak_state_bytes = tracker_.peak_bytes();
  stats.makespan_ns = clock_->now() - start_time_;
  if (stats.makespan_ns > 0) {
    exec_->ForEachUnit([&stats](runtime::Unit& unit) {
      double busy = static_cast<double>(unit.stats().busy_ns) /
                    static_cast<double>(stats.makespan_ns);
      stats.max_busy_fraction = std::max(stats.max_busy_fraction, busy);
    });
    double joiner_busy_sum = 0;
    for (const auto& [unit_id, entry] : joiners_) {
      double busy = static_cast<double>(entry.node->stats().busy_ns) /
                    static_cast<double>(stats.makespan_ns);
      stats.max_joiner_busy_fraction =
          std::max(stats.max_joiner_busy_fraction, busy);
      joiner_busy_sum += busy;
    }
    if (!joiners_.empty()) {
      stats.mean_joiner_busy_fraction =
          joiner_busy_sum / static_cast<double>(joiners_.size());
    }
  }
  return stats;
}

}  // namespace bistream
