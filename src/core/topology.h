/// \file topology.h
/// \brief Epoch-versioned cluster membership for the join-biclique engine.
///
/// The TopologyManager tracks every joiner unit's lifecycle
/// (active → draining → retired) and its fixed subgroup assignment; it emits
/// immutable TopologyView snapshots that routers adopt atomically at
/// punctuation-round boundaries. A unit's subgroup never changes after
/// creation (scale-out appends to the least-populated subgroup; scale-in
/// drains in place), which is what lets BiStream scale without migrating
/// stored state: probes keep reaching every unit that may still hold live
/// window data.

#ifndef BISTREAM_CORE_TOPOLOGY_H_
#define BISTREAM_CORE_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief Lifecycle of a joiner unit.
enum class UnitState : uint8_t {
  /// Receives stores and probes.
  kActive = 0,
  /// Receives probes only; its stored window is aging out.
  kDraining = 1,
  /// Fully removed; receives nothing.
  kRetired = 2,
  /// Crashed; removed from routing like kRetired, but its stored window was
  /// lost rather than aged out (a replacement unit restores it).
  kFailed = 3,
};

/// \brief Per-unit bookkeeping.
struct UnitRecord {
  uint32_t id = 0;
  RelationId relation = kRelationR;
  uint32_t subgroup = 0;
  UnitState state = UnitState::kActive;
};

/// \brief Immutable routing snapshot for one topology version.
///
/// Routers route every tuple of a round against exactly one view, and all
/// routers switch views at the same round number, which keeps the
/// store/probe target sets consistent with the global tuple order (the
/// correctness requirement for exactly-once results across scaling events).
struct TopologyView {
  struct Side {
    /// Units eligible to store new tuples, per subgroup (active only).
    std::vector<std::vector<uint32_t>> store_by_subgroup;
    /// Units a probe must visit, per subgroup (active + draining).
    std::vector<std::vector<uint32_t>> probe_by_subgroup;
    /// Flattened probe set (ContRand broadcast target list).
    std::vector<uint32_t> all_probe;
  };

  uint64_t version = 0;
  Side sides[2];
  /// Every live (non-retired) joiner, both sides: punctuation recipients.
  std::vector<uint32_t> punct_targets;
};

/// \brief Owner of unit lifecycles; builds TopologyView snapshots.
class TopologyManager {
 public:
  /// \param subgroups_r number of subgroups d for the R side (>= 1)
  /// \param subgroups_s number of subgroups e for the S side (>= 1)
  TopologyManager(uint32_t subgroups_r, uint32_t subgroups_s);

  /// \brief Registers a new active unit on `relation`'s side, assigned to
  /// the currently least-populated subgroup. Returns its unit id.
  uint32_t AddUnit(RelationId relation);

  /// \brief Registers a new active unit pinned to an explicit subgroup
  /// (recovery: a replacement must sit where the failed unit sat, so the
  /// restored window stays reachable by the same probe set).
  uint32_t AddUnit(RelationId relation, uint32_t subgroup);

  /// \brief Marks a crashed unit. Valid from kActive or kDraining; the unit
  /// leaves every routing set at the next epoch, like retirement.
  Status MarkFailed(uint32_t unit_id);

  /// \brief Moves an active unit to draining (scale-in step 1).
  Status StartDrain(uint32_t unit_id);

  /// \brief Moves a draining unit to retired (scale-in step 2; only valid
  /// once its stored window has expired).
  Status Retire(uint32_t unit_id);

  /// \brief Picks the preferred unit to drain on a side: the active unit of
  /// the most-populated subgroup with the highest id (youngest first).
  Result<uint32_t> PickDrainCandidate(RelationId relation) const;

  /// \brief Builds an immutable snapshot of the current membership.
  std::shared_ptr<const TopologyView> Snapshot();

  uint32_t subgroups(RelationId relation) const {
    return subgroups_[SideOf(relation)];
  }
  size_t NumActive(RelationId relation) const;
  size_t NumLive(RelationId relation) const;  // active + draining
  const std::vector<UnitRecord>& units() const { return units_; }
  const UnitRecord& unit(uint32_t unit_id) const;

  /// \brief Maps a relation id onto a biclique side index (0 or 1).
  static int SideOf(RelationId relation) { return relation == kRelationR ? 0 : 1; }

 private:
  UnitRecord* Find(uint32_t unit_id);

  uint32_t subgroups_[2];
  std::vector<UnitRecord> units_;
  uint64_t next_version_ = 1;
  uint32_t next_unit_id_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_TOPOLOGY_H_
