/// \file routing.h
/// \brief The paper's routing strategies as pure, testable policy logic.
///
/// Both strategies are one mechanism with different subgroup counts:
///
///   - ContRand (content-insensitive; theta/band joins): one subgroup per
///     side. Stores rotate over all active units of the own side; probes
///     broadcast to every live unit of the opposite side.
///   - ContHash (content-sensitive; equi joins): d (resp. e) subgroups per
///     side. h(key) selects the subgroup; stores rotate over the active
///     units *within* the own-side subgroup (which is what absorbs key
///     skew), probes broadcast only to the opposite-side subgroup.
///
/// d = n degenerates to classic hash partitioning (cheapest communication,
/// skew-sensitive); d = 1 degenerates to full broadcast (skew-proof, most
/// communication). E7 sweeps this spectrum.

#ifndef BISTREAM_CORE_ROUTING_H_
#define BISTREAM_CORE_ROUTING_H_

#include <cstdint>
#include <vector>

#include "core/topology.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief Where one tuple goes: one storage unit plus the probe fan-out.
struct RouteDecision {
  uint32_t store_unit = 0;
  /// Borrowed from the TopologyView passed to Route(); valid while the view
  /// is alive.
  const std::vector<uint32_t>* probe_units = nullptr;
};

/// \brief Stateful (round-robin counters) but side-effect-free routing
/// policy. Each router owns one instance, so storage rotation is per-router;
/// with multiple routers the interleaving still balances because every
/// router rotates independently over the same unit lists.
class RoutingPolicy {
 public:
  RoutingPolicy(uint32_t subgroups_r, uint32_t subgroups_s);

  /// \brief Subgroup h(key) mod d for the tuple on the given side.
  uint32_t SubgroupFor(int64_t key, int side) const;

  /// \brief Full routing decision for `tuple` under `view`.
  ///
  /// The store unit is drawn round-robin from the tuple's own-side subgroup;
  /// the probe set is the matching opposite-side subgroup's live units.
  RouteDecision Route(const Tuple& tuple, const TopologyView& view);

 private:
  uint32_t subgroups_[2];
  // Round-robin cursor per (side, subgroup).
  std::vector<uint64_t> cursor_[2];
};

}  // namespace bistream

#endif  // BISTREAM_CORE_ROUTING_H_
