#include "core/order_buffer.h"

#include <algorithm>

#include "common/logging.h"

namespace bistream {

OrderBuffer::OrderBuffer(uint32_t num_routers, uint64_t start_round)
    : num_routers_(num_routers), next_release_(start_round) {
  BISTREAM_CHECK_GE(num_routers, 1U);
}

void OrderBuffer::AddTuple(Message msg) {
  BISTREAM_CHECK(msg.kind == Message::Kind::kTuple);
  // Pairwise FIFO guarantees a round's tuples precede its punctuation on
  // every channel, so a tuple for an already-released round means the
  // transport broke FIFO — which the protocol cannot repair.
  BISTREAM_CHECK_GE(msg.round, next_release_)
      << "tuple arrived after its round was released (FIFO violated?)";
  rounds_[msg.round].tuples.push_back(std::move(msg));
  ++buffered_;
}

void OrderBuffer::AddPunctuation(const Message& punct,
                                 std::vector<Message>* released) {
  BISTREAM_CHECK(punct.kind == Message::Kind::kPunctuation);
  if (punct.final_punct) {
    // The router halts after this round: it implicitly closes every later
    // round (recorded even for pre-start rounds — the halt still matters).
    final_rounds_[punct.router_id] = punct.round;
  }
  if (punct.round >= next_release_) {
    Round& round = rounds_[punct.round];
    ++round.puncts_received;
    BISTREAM_CHECK_LE(round.puncts_received + FinishedBefore(punct.round),
                      num_routers_)
        << "more punctuations than routers for round " << punct.round;
  }
  // A punctuation for a round before next_release_ (a late-joining unit
  // handed history it does not need) adds no count, but a *final* one may
  // still complete buffered rounds, so the release loop runs regardless.

  while (true) {
    auto it = rounds_.find(next_release_);
    if (it == rounds_.end()) {
      // Round has neither tuples nor punctuations yet: nothing to do. (A
      // fully absent round cannot be skipped — either its punctuations are
      // still in flight, or every router has halted and nothing past this
      // point was ever sequenced.)
      break;
    }
    if (it->second.puncts_received + FinishedBefore(next_release_) <
        num_routers_) {
      break;
    }
    // Deterministic global order within the round: (seq, router_id). The
    // same (seq, router) pair can appear on both the store and the join
    // stream at different joiners, but never twice at one joiner.
    std::sort(it->second.tuples.begin(), it->second.tuples.end(),
              [](const Message& a, const Message& b) {
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.router_id < b.router_id;
              });
    buffered_ -= it->second.tuples.size();
    for (Message& m : it->second.tuples) {
      released->push_back(std::move(m));
    }
    rounds_.erase(it);
    ++next_release_;
  }
}

uint32_t OrderBuffer::FinishedBefore(uint64_t round) const {
  uint32_t finished = 0;
  for (const auto& [router, final_round] : final_rounds_) {
    if (final_round < round) ++finished;
  }
  return finished;
}

}  // namespace bistream
