/// \file multiway.h
/// \brief Multi-way windowed stream joins from biclique building blocks.
///
/// BiStream generalizes join-biclique to multi-way joins; this module
/// realizes the 3-way equi join R ⋈ S ⋈ T as a *cascade* of two biclique
/// engines sharing one event loop. Stage 1 computes the windowed pair
/// stream RS = R ⋈_W S; every emitted pair is immediately re-injected as an
/// intermediate tuple (same join key, ts = max of the inputs) into stage 2,
/// which joins it against T. The composition inherits exactly-once from the
/// two 2-way engines, so no new ordering machinery is needed.
///
/// Semantics (the definition the oracle checks): a triple (r, s, t) is
/// produced iff |r.ts − s.ts| <= W and |max(r.ts, s.ts) − t.ts| <= W.

#ifndef BISTREAM_CORE_MULTIWAY_H_
#define BISTREAM_CORE_MULTIWAY_H_

#include <memory>
#include <unordered_map>

#include "core/engine.h"

namespace bistream {

/// \brief The third relation of the cascade.
inline constexpr RelationId kRelationT = 2;

/// \brief Cascade configuration. The predicate of both stages is forced to
/// equi (the multi-way key is shared); windows may differ per stage.
struct ThreeWayOptions {
  BicliqueOptions stage1;
  BicliqueOptions stage2;
  /// Virtual time allowed for stage 1's queues to drain before stage 2 is
  /// flushed (raise under heavy backlog; a violated budget fails loudly).
  SimTime stage1_drain_grace = 2 * kSecond;
  /// Bound on the intermediate stream's timestamp disorder (pairs are
  /// stamped max(r.ts, s.ts), which can regress by stage-1 processing
  /// skew). Applied as stage-2 expiry slack so Theorem-1 discard never
  /// outruns a slightly-late intermediate probe.
  EventTime intermediate_lateness = 500 * kEventMilli;
};

/// \brief One produced triple.
struct TripleResult {
  uint64_t r_id = 0;
  uint64_t s_id = 0;
  uint64_t t_id = 0;
  EventTime ts = 0;
  SimTime emit_time = 0;
  SimTime latency_ns = 0;
};

/// \brief Consumer of the triple stream.
class TripleSink {
 public:
  virtual ~TripleSink() = default;
  virtual void OnTriple(const TripleResult& triple) = 0;
};

/// \brief Counting / checking triple sink.
class TripleCollector final : public TripleSink {
 public:
  void OnTriple(const TripleResult& triple) override;

  uint64_t count() const { return count_; }
  const Histogram& latency() const { return latency_; }
  /// Multiset of produced triples keyed by a 64-bit triple hash.
  const std::unordered_map<uint64_t, uint32_t>& produced() const {
    return produced_;
  }

 private:
  uint64_t count_ = 0;
  Histogram latency_;
  std::unordered_map<uint64_t, uint32_t> produced_;
};

/// \brief Canonical 64-bit identity of a triple (for checking).
uint64_t TripleKey(uint64_t r_id, uint64_t s_id, uint64_t t_id);

/// \brief Oracle: expected triples of `stream` (relations R, S, T) under
/// the cascade semantics with per-stage windows.
std::unordered_map<uint64_t, uint32_t> ComputeExpectedTriples(
    const std::vector<TimedTuple>& stream, EventTime window1,
    EventTime window2);

/// \brief The cascaded 3-way equi-join engine.
class ThreeWayCascade {
 public:
  ThreeWayCascade(EventLoop* loop, ThreeWayOptions options, TripleSink* sink);

  /// \brief Starts both stages' punctuation cadences.
  void Start();

  /// \brief Injects one tuple (relation kRelationR/kRelationS → stage 1,
  /// kRelationT → stage 2's T side).
  void InjectNow(Tuple tuple);

  /// \brief Drives a 3-relation source to completion: injects everything,
  /// drains stage 1, then drains stage 2.
  void RunToCompletion(StreamSource* source);

  EngineStats Stage1Stats() const { return stage1_->Stats(); }
  EngineStats Stage2Stats() const { return stage2_->Stats(); }
  uint64_t intermediate_count() const { return next_intermediate_id_; }
  /// Direct access to the stage engines (telemetry capture, ops wiring).
  BicliqueEngine* stage1_engine() { return stage1_.get(); }
  BicliqueEngine* stage2_engine() { return stage2_.get(); }

 private:
  /// Stage-1 sink: turns RS pairs into stage-2 inputs.
  class IntermediateSink final : public ResultSink {
   public:
    explicit IntermediateSink(ThreeWayCascade* owner) : owner_(owner) {}
    void OnResult(const JoinResult& result) override {
      owner_->OnIntermediate(result);
    }

   private:
    ThreeWayCascade* owner_;
  };

  /// Stage-2 sink: resolves intermediate ids back into (r, s) pairs.
  class FinalSink final : public ResultSink {
   public:
    explicit FinalSink(ThreeWayCascade* owner) : owner_(owner) {}
    void OnResult(const JoinResult& result) override {
      owner_->OnFinal(result);
    }

   private:
    ThreeWayCascade* owner_;
  };

  void OnIntermediate(const JoinResult& result);
  void OnFinal(const JoinResult& result);

  EventLoop* loop_;
  ThreeWayOptions options_;
  TripleSink* sink_;
  IntermediateSink intermediate_sink_;
  FinalSink final_sink_;
  std::unique_ptr<BicliqueEngine> stage1_;
  std::unique_ptr<BicliqueEngine> stage2_;
  /// Intermediate tuple id → the (r, s) pair it represents.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> pair_of_;
  uint64_t next_intermediate_id_ = 0;
};

// ---------------------------------------------------------------------------
// General k-way cascade
// ---------------------------------------------------------------------------

/// \brief Configuration of a k-way equi-join cascade over relations
/// 0..k-1: stage j joins the output of stage j-1 (stage 1 joins relations
/// 0 and 1) against relation j+1, left-deep.
struct KWayOptions {
  /// One engine per stage; stages.size() = k - 1, k >= 2. Each stage's
  /// predicate is forced to equi.
  std::vector<BicliqueOptions> stages;
  /// Drain budget granted to each stage before the next stage is flushed.
  SimTime stage_drain_grace = 2 * kSecond;
  /// Expiry slack covering the intermediate streams' timestamp disorder.
  EventTime intermediate_lateness = 500 * kEventMilli;
};

/// \brief One produced k-tuple: the joined tuple ids, relation order.
struct KWayResult {
  std::vector<uint64_t> ids;
  EventTime ts = 0;
  SimTime emit_time = 0;
  SimTime latency_ns = 0;
};

/// \brief Consumer of the k-tuple stream.
class KWaySink {
 public:
  virtual ~KWaySink() = default;
  virtual void OnKTuple(const KWayResult& result) = 0;
};

/// \brief Canonical 64-bit identity of a k-tuple (for checking).
uint64_t KTupleKey(const std::vector<uint64_t>& ids);

/// \brief Counting / checking k-tuple sink.
class KWayCollector final : public KWaySink {
 public:
  void OnKTuple(const KWayResult& result) override;

  uint64_t count() const { return count_; }
  const Histogram& latency() const { return latency_; }
  const std::unordered_map<uint64_t, uint32_t>& produced() const {
    return produced_;
  }

 private:
  uint64_t count_ = 0;
  Histogram latency_;
  std::unordered_map<uint64_t, uint32_t> produced_;
};

/// \brief Oracle for the k-way cascade semantics: a combination
/// (t_0, ..., t_{k-1}) with a shared key is expected iff, folding left,
/// each t_j is within `windows[j-1]` of the running max timestamp.
std::unordered_map<uint64_t, uint32_t> ComputeExpectedKTuples(
    const std::vector<TimedTuple>& stream, uint32_t num_relations,
    const std::vector<EventTime>& windows);

/// \brief The left-deep k-way equi-join cascade.
class KWayCascade {
 public:
  KWayCascade(EventLoop* loop, KWayOptions options, KWaySink* sink);

  /// \brief Starts every stage's punctuation cadence.
  void Start();

  /// \brief Injects one tuple of relation 0..k-1.
  void InjectNow(Tuple tuple);

  /// \brief Drives a k-relation source to completion, draining the stages
  /// front to back.
  void RunToCompletion(StreamSource* source);

  uint32_t num_relations() const {
    return static_cast<uint32_t>(options_.stages.size()) + 1;
  }
  EngineStats StageStats(size_t stage) const;
  /// Intermediates produced by stage `stage` (0-based).
  uint64_t IntermediateCount(size_t stage) const;
  /// Direct access to a stage's engine (elastic control plane: scale
  /// stages independently, attach ops::Autoscaler instances, ...).
  BicliqueEngine* stage_engine(size_t stage);

 private:
  /// Per-stage sink gluing stage outputs to the next stage's input.
  class StageSink final : public ResultSink {
   public:
    StageSink(KWayCascade* owner, size_t stage)
        : owner_(owner), stage_(stage) {}
    void OnResult(const JoinResult& result) override {
      owner_->OnStageResult(stage_, result);
    }

   private:
    KWayCascade* owner_;
    size_t stage_;
  };

  void OnStageResult(size_t stage, const JoinResult& result);
  /// Expands a tuple id (source or intermediate) into its component ids.
  void AppendComponents(uint64_t id, std::vector<uint64_t>* out) const;

  EventLoop* loop_;
  KWayOptions options_;
  KWaySink* sink_;
  std::vector<std::unique_ptr<StageSink>> stage_sinks_;
  std::vector<std::unique_ptr<BicliqueEngine>> stages_;
  /// Intermediate tuple id -> the (left, right) ids it combines.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> parts_;
  std::vector<uint64_t> intermediate_counts_;
  uint64_t next_intermediate_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_CORE_MULTIWAY_H_
