#include "harness/table.h"

#include <cstdio>

#include "common/logging.h"

namespace bistream {

namespace {
TableFormat g_default_format = TableFormat::kAscii;

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

void TablePrinter::SetDefaultFormat(TableFormat format) {
  g_default_format = format;
}

TableFormat TablePrinter::default_format() { return g_default_format; }

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BISTREAM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  BISTREAM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render(TableFormat format) const {
  if (format == TableFormat::kCsv) {
    auto render_csv_row = [](const std::vector<std::string>& row) {
      std::string out;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ",";
        out += CsvEscape(row[i]);
      }
      out += "\n";
      return out;
    };
    std::string out = render_csv_row(headers_);
    for (const auto& row : rows_) out += render_csv_row(row);
    return out;
  }
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      out += " ";
      out += row[i];
      out.append(widths[i] - row[i].size(), ' ');
      out += " |";
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(Render(g_default_format).c_str(), stdout);
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Int(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string TablePrinter::Bytes(int64_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string TablePrinter::Millis(uint64_t nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

void PrintExperimentHeader(const std::string& id,
                           const std::string& description) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), description.c_str());
}

}  // namespace bistream
