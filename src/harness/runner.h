/// \file runner.h
/// \brief One-call experiment runners shared by the bench binaries,
/// examples, and integration tests.
///
/// A runner materializes a workload, drives it through a freshly built
/// engine (biclique or matrix) on its own runtime backend (the
/// deterministic event loop, or worker threads when
/// BicliqueOptions::backend is kParallel), and returns the
/// metrics bundle every experiment in DESIGN.md reports: throughput,
/// latency distribution, state bytes, traffic, bottleneck utilization, and
/// (optionally) the exactly-once check against the oracle.

#ifndef BISTREAM_HARNESS_RUNNER_H_
#define BISTREAM_HARNESS_RUNNER_H_

#include <functional>
#include <string>

#include "core/engine.h"
#include "matrix/matrix_engine.h"
#include "obs/json.h"
#include "obs/time_series.h"
#include "obs/trace.h"
#include "workload/reference_join.h"

namespace bistream {

/// \brief Everything one experiment run produces.
struct RunReport {
  EngineStats engine;
  /// Results observed at the sink (must equal engine.results).
  uint64_t results = 0;
  /// End-to-end result latency distribution (ns).
  Histogram latency;
  /// Input tuples per virtual second, over the injection span.
  double throughput_tps = 0;
  /// Which runtime backend produced this report ("sim" or "parallel").
  std::string backend = "sim";
  /// Wall-clock measurements. Only the parallel backend measures real
  /// time; under sim wall_measured stays false and ToJson() emits the wall
  /// fields as null (virtual time is not wall time).
  bool wall_measured = false;
  /// Wall nanoseconds from Start() to quiescence (parallel only).
  SimTime wall_makespan_ns = 0;
  /// Input tuples per wall second over the whole run (parallel only).
  double wall_throughput_tps = 0;
  /// Oracle verification (only populated when `check` was requested).
  CheckReport check;
  bool checked = false;

  // --- telemetry (populated when the engine ran with it on) ---------------
  /// Periodic metric samples (empty when telemetry.sample_period == 0).
  TimeSeries series;
  /// Per-hop latency decomposition (zero spans when trace_every == 0).
  LatencyBreakdown breakdown;
  /// Number of trace spans collected.
  uint64_t trace_spans = 0;
  /// The sampling cadence the run used (echoed into the artifact).
  SimTime sample_period_ns = 0;
  /// Diagnosis sections (see DESIGN.md §9): the detector/auditor event log
  /// and the per-node stage profile. Null until CaptureTelemetry runs on a
  /// diagnosing engine; ToJson() emits empty-shaped sections then, so every
  /// artifact (matrix runs included) carries both keys.
  JsonValue diagnostics;
  JsonValue profile;
  /// Execution-timeline summary (see DESIGN.md §12): events recorded /
  /// dropped and per-thread ring high-water marks. Stays Null when the run
  /// did not record a timeline; ToJson() then emits an explicit null so
  /// dropped events are reported, never silently absent.
  JsonValue timeline;
  /// The run's timeline recorder, shared past the engine's lifetime (null
  /// when the timeline was off). The Chrome trace-event document is folded
  /// from it lazily by timeline_trace() — deliberately NOT during the run,
  /// so serializing a few hundred thousand events never lands inside the
  /// measured makespan or the micro_obs overhead bound.
  std::shared_ptr<const TimelineRecorder> timeline_recorder;

  /// \brief The full Chrome trace-event document (chrome://tracing
  /// format), folded on first call and cached. Null when the timeline was
  /// off; the bench reporter writes it to --timeline_out rather than
  /// embedding it in the artifact.
  std::shared_ptr<const JsonValue> timeline_trace() const;

  /// \brief Copies the engine's telemetry (time series, breakdown, span
  /// count, diagnosis sections) into this report, finalizing the end-of-run
  /// audit first. RunBicliqueWorkload does this automatically; call it
  /// yourself for hand-built engines (E8/E15 style drivers).
  void CaptureTelemetry(BicliqueEngine& engine_ref);

  /// \brief Serializes the full report — engine stats, latency snapshot,
  /// check outcome, time series, and latency breakdown — for the
  /// BENCH_*.json artifacts (see DESIGN.md §9).
  JsonValue ToJson() const;

 private:
  /// timeline_trace() memo (the fold is deterministic, so caching is safe).
  mutable std::shared_ptr<const JsonValue> timeline_trace_cache_;
};

/// \brief Runs a synthetic workload through a biclique engine built from
/// `options`. When `check` is true the output is verified against the
/// oracle (the workload is materialized up front; memory ~ O(tuples)).
RunReport RunBicliqueWorkload(const BicliqueOptions& options,
                              const SyntheticWorkloadOptions& workload,
                              bool check = false);

/// \brief Same, for the join-matrix baseline.
RunReport RunMatrixWorkload(const MatrixOptions& options,
                            const SyntheticWorkloadOptions& workload,
                            bool check = false);

/// \brief Sustainable-throughput search (E1/E2/E4).
///
/// Bisects the offered rate: a rate is sustainable when the run's
/// bottleneck (max node busy fraction) stays at or below `busy_cap`.
/// `runner` receives a per-relation rate in tuples/s and returns the run's
/// report. Returns the highest sustainable rate found.
struct CapacityOptions {
  double lo_rate = 100;
  double hi_rate = 400000;
  int iterations = 8;
  double busy_cap = 0.90;
};
double MeasureCapacity(
    const std::function<RunReport(double rate_per_relation)>& runner,
    const CapacityOptions& options);

/// \brief Two-phase capacity search: one calibration run at `probe_rate`
/// extrapolates the sustainable rate from the measured bottleneck busy
/// fraction (accurate when costs are ~linear in rate), then a bisection in
/// [estimate/4, estimate*2] tightens it (correct even when probe work
/// grows superlinearly, as with band joins). This keeps the total tuple
/// budget proportional to the actual capacity rather than a fixed bound.
double EstimateAndMeasureCapacity(
    const std::function<RunReport(double rate_per_relation)>& runner,
    double probe_rate, int iterations, double busy_cap);

/// \brief Convenience: synthetic options for a `duration`-long two-relation
/// stream at `rate` tuples/s per relation.
SyntheticWorkloadOptions MakeWorkload(double rate_per_relation,
                                      SimTime duration, uint64_t key_domain,
                                      uint64_t seed);

}  // namespace bistream

#endif  // BISTREAM_HARNESS_RUNNER_H_
