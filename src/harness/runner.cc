#include "harness/runner.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/parallel/parallel_executor.h"
#include "sim/event_loop.h"

namespace bistream {

namespace {

/// Replays a pre-materialized stream (needed when checking against the
/// oracle, which requires the full workload anyway).
class VectorSource final : public StreamSource {
 public:
  explicit VectorSource(const std::vector<TimedTuple>* tuples)
      : tuples_(tuples) {}
  std::optional<TimedTuple> Next() override {
    if (pos_ >= tuples_->size()) return std::nullopt;
    return (*tuples_)[pos_++];
  }

 private:
  const std::vector<TimedTuple>* tuples_;
  size_t pos_ = 0;
};

double ComputeThroughput(const std::vector<TimedTuple>& stream) {
  if (stream.size() < 2) return 0;
  SimTime span = stream.back().arrival - stream.front().arrival;
  if (span == 0) return 0;
  return static_cast<double>(stream.size()) / SimTimeToSeconds(span);
}

}  // namespace

void RunReport::CaptureTelemetry(BicliqueEngine& engine_ref) {
  // Finalize first (idempotent): it joins the wall-clock sampler thread —
  // which takes the closing sample — and folds the workers' trace buffers,
  // so the series/spans copied below are complete on every backend.
  engine_ref.FinalizeDiagnostics();
  series = engine_ref.telemetry_series();
  breakdown = engine_ref.ComputeLatencyBreakdown();
  trace_spans = engine_ref.tracer().spans().size();
  sample_period_ns = engine_ref.options().telemetry.sample_period;
  if (engine_ref.diagnoser() != nullptr) {
    diagnostics = engine_ref.diagnoser()->DiagnosticsJson();
    profile = engine_ref.diagnoser()->ProfileJson();
  }
  timeline = engine_ref.timeline_summary();
  timeline_recorder = engine_ref.timeline_recorder();
}

std::shared_ptr<const JsonValue> RunReport::timeline_trace() const {
  if (timeline_trace_cache_ == nullptr && timeline_recorder != nullptr) {
    // First ask: fold the (now quiescent) rings into the globally ordered
    // timeline and serialize. Post-run work by construction — the engine
    // and its threads are long gone; only the shared recorder survives.
    timeline_trace_cache_ = std::make_shared<const JsonValue>(
        timeline_recorder->ToChromeTrace(timeline_recorder->Fold(), backend));
  }
  return timeline_trace_cache_;
}

JsonValue RunReport::ToJson() const {
  JsonValue stats = JsonValue::Object();
  stats.Set("input_tuples", JsonValue::Number(engine.input_tuples));
  stats.Set("results", JsonValue::Number(engine.results));
  stats.Set("stored", JsonValue::Number(engine.stored));
  stats.Set("probes", JsonValue::Number(engine.probes));
  stats.Set("probe_candidates", JsonValue::Number(engine.probe_candidates));
  stats.Set("expired_tuples", JsonValue::Number(engine.expired_tuples));
  stats.Set("messages", JsonValue::Number(engine.messages));
  stats.Set("bytes", JsonValue::Number(engine.bytes));
  stats.Set("state_bytes", JsonValue::Number(engine.state_bytes));
  stats.Set("peak_state_bytes", JsonValue::Number(engine.peak_state_bytes));
  stats.Set("max_busy_fraction", JsonValue::Number(engine.max_busy_fraction));
  stats.Set("max_joiner_busy_fraction",
            JsonValue::Number(engine.max_joiner_busy_fraction));
  stats.Set("mean_joiner_busy_fraction",
            JsonValue::Number(engine.mean_joiner_busy_fraction));
  stats.Set("makespan_ns", JsonValue::Number(engine.makespan_ns));
  stats.Set("crashes", JsonValue::Number(engine.crashes));
  stats.Set("recoveries", JsonValue::Number(engine.recoveries));
  stats.Set("respawns", JsonValue::Number(engine.respawns));
  // Worst-case crash->detection and detection->caught-up spans over the
  // run's recoveries (virtual ns under sim, measured wall ns under the
  // parallel backend); zero when the run had no recoveries.
  stats.Set("detection_latency_ns",
            JsonValue::Number(engine.detection_latency_max_ns));
  stats.Set("recovery_wall_ns",
            JsonValue::Number(engine.recovery_wall_max_ns));
  stats.Set("checkpoints", JsonValue::Number(engine.checkpoints));
  stats.Set("replayed_messages", JsonValue::Number(engine.replayed_messages));
  stats.Set("suppressed_duplicates",
            JsonValue::Number(engine.suppressed_duplicates));
  stats.Set("restored_tuples", JsonValue::Number(engine.restored_tuples));

  Histogram::Snapshot snap = latency.TakeSnapshot();
  JsonValue lat = JsonValue::Object();
  lat.Set("count", JsonValue::Number(snap.count));
  lat.Set("min_ns", JsonValue::Number(snap.min));
  lat.Set("max_ns", JsonValue::Number(snap.max));
  lat.Set("mean_ns", JsonValue::Number(snap.mean));
  lat.Set("stddev_ns", JsonValue::Number(snap.stddev));
  lat.Set("p50_ns", JsonValue::Number(snap.p50));
  lat.Set("p95_ns", JsonValue::Number(snap.p95));
  lat.Set("p99_ns", JsonValue::Number(snap.p99));

  JsonValue out = JsonValue::Object();
  out.Set("engine", std::move(stats));
  out.Set("results", JsonValue::Number(results));
  out.Set("throughput_tps", JsonValue::Number(throughput_tps));
  out.Set("backend", JsonValue::String(backend));
  // Wall-clock fields are numbers only when a wall-clock backend measured
  // them; sim runs carry explicit nulls (virtual time is not wall time).
  if (wall_measured) {
    out.Set("wall_makespan_ns", JsonValue::Number(wall_makespan_ns));
    out.Set("wall_throughput_tps", JsonValue::Number(wall_throughput_tps));
  } else {
    out.Set("wall_makespan_ns", JsonValue::Null());
    out.Set("wall_throughput_tps", JsonValue::Null());
  }
  out.Set("latency", std::move(lat));
  if (checked) {
    JsonValue chk = JsonValue::Object();
    chk.Set("expected", JsonValue::Number(check.expected));
    chk.Set("produced", JsonValue::Number(check.produced));
    chk.Set("missing", JsonValue::Number(check.missing));
    chk.Set("duplicates", JsonValue::Number(check.duplicates));
    chk.Set("spurious", JsonValue::Number(check.spurious));
    chk.Set("clean", JsonValue::Bool(check.Clean()));
    out.Set("check", std::move(chk));
  }
  out.Set("sample_period_ns", JsonValue::Number(sample_period_ns));
  out.Set("series", series.ToJson());
  out.Set("trace_spans", JsonValue::Number(trace_spans));
  out.Set("breakdown", breakdown.ToJson());

  // Diagnosis sections are schema-required on every artifact; engines that
  // ran without a diagnoser (matrix baseline) emit the empty shapes.
  if (diagnostics.is_object()) {
    out.Set("diagnostics", diagnostics);
  } else {
    JsonValue empty = JsonValue::Object();
    empty.Set("total_events", JsonValue::Number(0));
    empty.Set("errors", JsonValue::Number(0));
    empty.Set("dropped", JsonValue::Number(0));
    empty.Set("counts", JsonValue::Object());
    empty.Set("events", JsonValue::Array());
    empty.Set("windows", JsonValue::Number(0));
    empty.Set("finalized", JsonValue::Bool(false));
    out.Set("diagnostics", std::move(empty));
  }
  if (profile.is_object()) {
    out.Set("profile", profile);
  } else {
    JsonValue empty = JsonValue::Object();
    empty.Set("makespan_ns", JsonValue::Number(0));
    empty.Set("windows", JsonValue::Number(0));
    empty.Set("nodes", JsonValue::Array());
    out.Set("profile", std::move(empty));
  }
  // Timeline summary follows the wall-field convention: an object when the
  // run recorded one, an explicit null otherwise.
  out.Set("timeline", timeline.is_object() ? timeline : JsonValue::Null());
  return out;
}

namespace {

/// Shared post-run bookkeeping for both biclique backends.
RunReport FinishBicliqueRun(BicliqueEngine& engine, CollectorSink& sink,
                            const std::vector<TimedTuple>& stream,
                            const BicliqueOptions& options, bool check) {
  RunReport report;
  report.engine = engine.Stats();
  report.results = sink.count();
  report.latency = sink.latency();
  report.throughput_tps = ComputeThroughput(stream);
  report.backend = runtime::BackendName(engine.executor().kind());
  report.CaptureTelemetry(engine);
  if (check) {
    report.check =
        sink.checker().Check(stream, options.predicate, options.window);
    report.checked = true;
  }
  // Joiner-side emissions exceed sink deliveries by exactly the replay
  // duplicates the recovery dedup filter absorbed.
  BISTREAM_CHECK_EQ(report.results + report.engine.suppressed_duplicates,
                    report.engine.results)
      << "sink and joiner result counts disagree";
  return report;
}

}  // namespace

RunReport RunBicliqueWorkload(const BicliqueOptions& options,
                              const SyntheticWorkloadOptions& workload,
                              bool check) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  CollectorSink sink(check);
  VectorSource replay(&stream);

  if (options.backend == runtime::BackendKind::kParallel) {
    runtime::ParallelExecutorOptions exec_options;
    exec_options.queue_capacity = options.queue_capacity;
    runtime::ParallelExecutor exec(options.cost, exec_options);
    BicliqueEngine engine(&exec, options, &sink);
    // RunUntil returns immediately under the parallel backend, so the
    // stream is injected firehose-style; the bounded inboxes throttle the
    // driver to the cluster's actual service rate.
    engine.RunToCompletion(&replay);
    RunReport report = FinishBicliqueRun(engine, sink, stream, options, check);
    // The parallel clock *is* the wall clock, so the engine makespan is a
    // real elapsed time and yields a measured tuples-per-wall-second.
    report.wall_measured = true;
    report.wall_makespan_ns = report.engine.makespan_ns;
    if (report.wall_makespan_ns > 0) {
      report.wall_throughput_tps =
          static_cast<double>(report.engine.input_tuples) /
          SimTimeToSeconds(report.wall_makespan_ns);
    }
    return report;
  }

  EventLoop loop;
  BicliqueEngine engine(&loop, options, &sink);
  engine.RunToCompletion(&replay);
  return FinishBicliqueRun(engine, sink, stream, options, check);
}

RunReport RunMatrixWorkload(const MatrixOptions& options,
                            const SyntheticWorkloadOptions& workload,
                            bool check) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(check);
  MatrixEngine engine(&loop, options, &sink);
  VectorSource replay(&stream);
  engine.RunToCompletion(&replay);

  RunReport report;
  report.engine = engine.Stats();
  report.results = sink.count();
  report.latency = sink.latency();
  report.throughput_tps = ComputeThroughput(stream);
  if (check) {
    report.check =
        sink.checker().Check(stream, options.predicate, options.window);
    report.checked = true;
  }
  return report;
}

double MeasureCapacity(
    const std::function<RunReport(double rate_per_relation)>& runner,
    const CapacityOptions& options) {
  double lo = options.lo_rate;
  double hi = options.hi_rate;
  BISTREAM_CHECK_LT(lo, hi);

  // If even the low end is unsustainable, report it as the bound.
  RunReport at_lo = runner(lo);
  if (at_lo.engine.max_busy_fraction > options.busy_cap) return lo;

  for (int i = 0; i < options.iterations; ++i) {
    double mid = (lo + hi) / 2;
    RunReport report = runner(mid);
    if (report.engine.max_busy_fraction <= options.busy_cap) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double EstimateAndMeasureCapacity(
    const std::function<RunReport(double rate_per_relation)>& runner,
    double probe_rate, int iterations, double busy_cap) {
  RunReport calibration = runner(probe_rate);
  double busy = calibration.engine.max_busy_fraction;
  if (busy <= 0) return probe_rate;
  double estimate = probe_rate * busy_cap / busy;
  // Never search below the calibration point if it was sustainable.
  CapacityOptions options;
  options.lo_rate = std::max(busy <= busy_cap ? probe_rate : probe_rate / 8,
                             estimate / 4);
  options.hi_rate = std::max(options.lo_rate * 1.1, estimate * 2);
  options.iterations = iterations;
  options.busy_cap = busy_cap;
  return MeasureCapacity(runner, options);
}

SyntheticWorkloadOptions MakeWorkload(double rate_per_relation,
                                      SimTime duration, uint64_t key_domain,
                                      uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = key_domain;
  workload.rate_r = RateSchedule::Constant(rate_per_relation);
  workload.rate_s = RateSchedule::Constant(rate_per_relation);
  workload.total_tuples = static_cast<uint64_t>(
      2.0 * rate_per_relation * SimTimeToSeconds(duration));
  workload.seed = seed;
  return workload;
}

}  // namespace bistream
