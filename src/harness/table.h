/// \file table.h
/// \brief Fixed-width table printing for the experiment harness, so every
/// bench binary emits the paper-style rows/series the experiment index in
/// DESIGN.md promises.

#ifndef BISTREAM_HARNESS_TABLE_H_
#define BISTREAM_HARNESS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bistream {

/// \brief Output encodings for rendered tables.
enum class TableFormat {
  /// Column-aligned, pipe-separated (human-readable, the default).
  kAscii,
  /// RFC-4180-ish CSV (for piping bench output into plotting scripts).
  kCsv,
};

/// \brief Column-aligned ASCII / CSV table writer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// \brief Appends one row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// \brief Renders the table (header, separator, rows).
  std::string Render(TableFormat format) const;
  std::string Render() const { return Render(default_format()); }

  /// \brief Renders to stdout in the process-default format.
  void Print() const;

  /// \brief Sets the process-wide default format (bench `--format=csv`).
  static void SetDefaultFormat(TableFormat format);
  static TableFormat default_format();

  /// Formatting helpers for common cell types.
  static std::string Num(double value, int precision = 1);
  static std::string Int(int64_t value);
  static std::string Bytes(int64_t bytes);
  static std::string Millis(uint64_t nanos);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints an experiment banner (id + description) above a table.
void PrintExperimentHeader(const std::string& id,
                           const std::string& description);

}  // namespace bistream

#endif  // BISTREAM_HARNESS_TABLE_H_
