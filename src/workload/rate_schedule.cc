#include "workload/rate_schedule.h"

#include "common/logging.h"

namespace bistream {

RateSchedule RateSchedule::Constant(double tuples_per_sec) {
  BISTREAM_CHECK_GT(tuples_per_sec, 0.0);
  return RateSchedule({RateStep{0, tuples_per_sec}});
}

Result<RateSchedule> RateSchedule::Make(std::vector<RateStep> steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("rate schedule needs at least one step");
  }
  if (steps.front().start != 0) {
    return Status::InvalidArgument("first rate step must start at time 0");
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].tuples_per_sec <= 0) {
      return Status::InvalidArgument("rate steps must be positive");
    }
    if (i > 0 && steps[i].start <= steps[i - 1].start) {
      return Status::InvalidArgument("rate step starts must increase");
    }
  }
  return RateSchedule(std::move(steps));
}

double RateSchedule::RateAt(SimTime t) const {
  double rate = steps_.front().tuples_per_sec;
  for (const RateStep& step : steps_) {
    if (step.start > t) break;
    rate = step.tuples_per_sec;
  }
  return rate;
}

SimTime RateSchedule::GapAt(SimTime t) const {
  double rate = RateAt(t);
  return static_cast<SimTime>(static_cast<double>(kSecond) / rate);
}

}  // namespace bistream
