/// \file tpch_stream.h
/// \brief A TPC-H-flavoured streaming workload: Orders ⋈ LineItem.
///
/// Models the classic stream-join motif the paper's evaluation draws on: an
/// order event is followed by a burst of line-item events sharing its order
/// key, and the engine joins them on o_orderkey = l_orderkey within a
/// sliding window. Tuples carry schema-rich Row payloads so this workload
/// also exercises the Row/Schema path of the tuple layer.

#ifndef BISTREAM_WORKLOAD_TPCH_STREAM_H_
#define BISTREAM_WORKLOAD_TPCH_STREAM_H_

#include <queue>
#include <vector>

#include "workload/generator.h"

namespace bistream {

/// \brief Configuration for the Orders/LineItem stream pair.
struct TpchStreamOptions {
  /// Orders arrival rate.
  double orders_per_sec = 500;
  /// Line items per order, uniform in [min_lineitems, max_lineitems].
  int min_lineitems = 1;
  int max_lineitems = 7;
  /// Line items trail their order by up to this much.
  SimTime max_lineitem_delay = 2 * kSecond;
  /// Total orders to emit.
  uint64_t total_orders = 2000;
  uint64_t seed = 7;
  uint64_t first_id = 1;
};

/// \brief Returns the Orders schema (shared constant).
std::shared_ptr<const Schema> OrdersSchema();
/// \brief Returns the LineItem schema (shared constant).
std::shared_ptr<const Schema> LineItemSchema();

/// \brief Order stream = relation R, line-item stream = relation S;
/// join key is the order key.
class TpchSource final : public StreamSource {
 public:
  explicit TpchSource(TpchStreamOptions options);

  std::optional<TimedTuple> Next() override;

 private:
  struct LaterArrival {
    bool operator()(const TimedTuple& a, const TimedTuple& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.tuple.id > b.tuple.id;
    }
  };

  /// Creates the next order and queues its trailing line items.
  void GenerateOrderBurst();

  TpchStreamOptions options_;
  Rng rng_;
  SimTime next_order_arrival_ = 0;
  uint64_t orders_emitted_ = 0;
  uint64_t next_id_;
  int64_t next_orderkey_ = 1;
  std::priority_queue<TimedTuple, std::vector<TimedTuple>, LaterArrival>
      pending_;
};

}  // namespace bistream

#endif  // BISTREAM_WORKLOAD_TPCH_STREAM_H_
