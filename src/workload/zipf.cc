#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bistream {

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  BISTREAM_CHECK_GT(n, 0ULL);
  BISTREAM_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::HottestMass() const { return cdf_[0]; }

}  // namespace bistream
