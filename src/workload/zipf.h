/// \file zipf.h
/// \brief Zipf-distributed key sampling for skewed workloads (E7).
///
/// Implements the standard power-law sampler over ranks 1..n with exponent
/// theta (theta = 0 degenerates to uniform): P(rank k) ∝ 1/k^theta. Uses the
/// inverse-CDF method over a precomputed harmonic table for exact sampling;
/// construction is O(n), sampling is O(log n).

#ifndef BISTREAM_WORKLOAD_ZIPF_H_
#define BISTREAM_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace bistream {

/// \brief Exact Zipf(theta) sampler over [0, n).
class ZipfDistribution {
 public:
  /// \param n domain size (> 0)
  /// \param theta skew exponent (>= 0; 0 = uniform)
  ZipfDistribution(uint64_t n, double theta);

  /// \brief Draws one sample in [0, n). Rank 0 is the hottest key.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// \brief Probability mass of the hottest key (diagnostics / tests).
  double HottestMass() const;

 private:
  uint64_t n_;
  double theta_;
  // cdf_[k] = P(rank <= k); ascending, cdf_.back() == 1.
  std::vector<double> cdf_;
};

}  // namespace bistream

#endif  // BISTREAM_WORKLOAD_ZIPF_H_
