#include "workload/tpch_stream.h"

#include "common/logging.h"

namespace bistream {

namespace {
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW",
                             "5-NONE"};
}  // namespace

std::shared_ptr<const Schema> OrdersSchema() {
  static const std::shared_ptr<const Schema> schema =
      Schema::Make({{"o_orderkey", ValueType::kInt64},
                    {"o_custkey", ValueType::kInt64},
                    {"o_totalprice", ValueType::kDouble},
                    {"o_orderpriority", ValueType::kString}})
          .ValueOrDie();
  return schema;
}

std::shared_ptr<const Schema> LineItemSchema() {
  static const std::shared_ptr<const Schema> schema =
      Schema::Make({{"l_orderkey", ValueType::kInt64},
                    {"l_partkey", ValueType::kInt64},
                    {"l_quantity", ValueType::kInt64},
                    {"l_extendedprice", ValueType::kDouble}})
          .ValueOrDie();
  return schema;
}

TpchSource::TpchSource(TpchStreamOptions options)
    : options_(options), rng_(options.seed), next_id_(options.first_id) {
  BISTREAM_CHECK_GT(options_.orders_per_sec, 0.0);
  BISTREAM_CHECK_GE(options_.min_lineitems, 0);
  BISTREAM_CHECK_GE(options_.max_lineitems, options_.min_lineitems);
  next_order_arrival_ = static_cast<SimTime>(
      rng_.NextExponential(static_cast<double>(kSecond) /
                           options_.orders_per_sec));
}

void TpchSource::GenerateOrderBurst() {
  int64_t orderkey = next_orderkey_++;
  SimTime order_arrival = next_order_arrival_;

  TimedTuple order;
  order.arrival = order_arrival;
  order.tuple.id = next_id_++;
  order.tuple.relation = kRelationR;
  order.tuple.ts = static_cast<EventTime>(order_arrival / kMicrosecond);
  order.tuple.key = orderkey;
  double totalprice = 1000.0 + rng_.NextDouble() * 99000.0;
  order.tuple.row = std::make_shared<const Row>(
      OrdersSchema(),
      std::vector<Value>{orderkey,
                         static_cast<int64_t>(rng_.Uniform(100000)),
                         totalprice,
                         std::string(kPriorities[rng_.Uniform(5)])});
  pending_.push(std::move(order));

  int items = static_cast<int>(rng_.UniformInt(options_.min_lineitems,
                                               options_.max_lineitems));
  for (int i = 0; i < items; ++i) {
    TimedTuple item;
    item.arrival =
        order_arrival + rng_.Uniform(options_.max_lineitem_delay + 1);
    item.tuple.id = next_id_++;
    item.tuple.relation = kRelationS;
    item.tuple.ts = static_cast<EventTime>(item.arrival / kMicrosecond);
    item.tuple.key = orderkey;
    item.tuple.row = std::make_shared<const Row>(
        LineItemSchema(),
        std::vector<Value>{orderkey,
                           static_cast<int64_t>(rng_.Uniform(200000)),
                           rng_.UniformInt(1, 50),
                           10.0 + rng_.NextDouble() * 9990.0});
    pending_.push(std::move(item));
  }

  ++orders_emitted_;
  next_order_arrival_ += static_cast<SimTime>(
      rng_.NextExponential(static_cast<double>(kSecond) /
                           options_.orders_per_sec));
}

std::optional<TimedTuple> TpchSource::Next() {
  // Pull order bursts forward until the earliest pending tuple precedes the
  // next order, so the merged stream comes out in arrival order.
  while (orders_emitted_ < options_.total_orders &&
         (pending_.empty() || pending_.top().arrival >= next_order_arrival_)) {
    GenerateOrderBurst();
  }
  if (pending_.empty()) return std::nullopt;
  TimedTuple out = pending_.top();
  pending_.pop();
  return out;
}

}  // namespace bistream
