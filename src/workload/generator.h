/// \file generator.h
/// \brief Synthetic stream sources for the evaluation workloads.
///
/// A StreamSource produces an interleaved, arrival-time-ordered sequence of
/// tuples from the streaming relations. Event timestamps equal arrival time
/// (in the EventTime domain), matching the paper's setup where sources
/// timestamp tuples on entry. All randomness is seeded, so a given options
/// struct always produces the same stream.

#ifndef BISTREAM_WORKLOAD_GENERATOR_H_
#define BISTREAM_WORKLOAD_GENERATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "tuple/tuple.h"
#include "workload/rate_schedule.h"
#include "workload/zipf.h"

namespace bistream {

/// \brief A tuple paired with its (virtual) arrival time at the system edge.
struct TimedTuple {
  SimTime arrival = 0;
  Tuple tuple;
};

/// \brief Pull interface for workload streams.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// \brief Returns the next tuple in arrival order, or nullopt when the
  /// stream is exhausted. Arrival times are non-decreasing.
  virtual std::optional<TimedTuple> Next() = 0;
};

/// \brief Configuration of the two-relation synthetic workload.
struct SyntheticWorkloadOptions {
  /// Join keys are drawn from [0, key_domain).
  uint64_t key_domain = 10000;
  /// Zipf skew per relation (0 = uniform).
  double zipf_theta_r = 0.0;
  double zipf_theta_s = 0.0;
  /// Arrival-rate profiles per relation.
  RateSchedule rate_r = RateSchedule::Constant(1000);
  RateSchedule rate_s = RateSchedule::Constant(1000);
  /// Poisson (exponential gaps) vs. deterministic interarrival.
  bool poisson = true;
  /// Stop after this many tuples in total (R + S).
  uint64_t total_tuples = 10000;
  /// Base RNG seed.
  uint64_t seed = 42;
  /// First tuple ids; must make ids globally unique across sources.
  uint64_t first_id = 1;
};

/// \brief Two-relation synthetic source (equi / band / theta experiments all
/// consume this; only the predicate differs).
class SyntheticSource final : public StreamSource {
 public:
  explicit SyntheticSource(SyntheticWorkloadOptions options);

  std::optional<TimedTuple> Next() override;

  const SyntheticWorkloadOptions& options() const { return options_; }

 private:
  /// Draws the next arrival gap for a relation at local time `t`.
  SimTime NextGap(const RateSchedule& rate, SimTime t, Rng* rng);
  /// Materializes the next tuple of `relation` at its pending arrival time.
  TimedTuple Emit(RelationId relation);
  /// Schedules the subsequent arrival for `relation`.
  void Advance(RelationId relation);

  SyntheticWorkloadOptions options_;
  Rng rng_r_;
  Rng rng_s_;
  std::optional<ZipfDistribution> zipf_r_;
  std::optional<ZipfDistribution> zipf_s_;
  SimTime next_arrival_[2] = {0, 0};
  uint64_t emitted_ = 0;
  uint64_t next_id_;
};

/// \brief Materializes a whole stream (tests / the reference oracle).
std::vector<TimedTuple> DrainSource(StreamSource* source);

/// \brief Configuration of the k-relation synthetic workload (multi-way
/// joins; relations share the key domain and arrival-rate profile).
struct MultiWorkloadOptions {
  uint32_t num_relations = 3;
  uint64_t key_domain = 1000;
  /// Per-relation arrival rate (tuples/s).
  double rate_per_relation = 1000;
  bool poisson = true;
  uint64_t total_tuples = 10000;
  uint64_t seed = 42;
  uint64_t first_id = 1;
};

/// \brief k-relation source; tuples carry relation ids 0..k-1.
class MultiSource final : public StreamSource {
 public:
  explicit MultiSource(MultiWorkloadOptions options);

  std::optional<TimedTuple> Next() override;

 private:
  MultiWorkloadOptions options_;
  std::vector<Rng> rngs_;
  std::vector<SimTime> next_arrival_;
  uint64_t emitted_ = 0;
  uint64_t next_id_;
};

}  // namespace bistream

#endif  // BISTREAM_WORKLOAD_GENERATOR_H_
