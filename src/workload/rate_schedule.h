/// \file rate_schedule.h
/// \brief Piecewise-constant input-rate schedules.
///
/// The elasticity experiments (E8; thesis Figures 20/21 analogue) drive the
/// system with a stepped rate — e.g. 300 → 400 → 200 → 300 tuples/s — and
/// observe the autoscaler adding/removing joiners. A RateSchedule expresses
/// that profile in the simulator's virtual-time domain.

#ifndef BISTREAM_WORKLOAD_RATE_SCHEDULE_H_
#define BISTREAM_WORKLOAD_RATE_SCHEDULE_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace bistream {

/// \brief A rate step effective from `start` until the next step.
struct RateStep {
  SimTime start = 0;
  double tuples_per_sec = 0;
};

/// \brief Piecewise-constant tuples-per-second profile.
class RateSchedule {
 public:
  /// \brief Constant rate forever.
  static RateSchedule Constant(double tuples_per_sec);

  /// \brief Builds a schedule from steps; starts must be strictly
  /// increasing and begin at 0, rates must be positive.
  static Result<RateSchedule> Make(std::vector<RateStep> steps);

  /// \brief The rate effective at virtual time `t`.
  double RateAt(SimTime t) const;

  /// \brief Mean interarrival gap at virtual time `t` (ns).
  SimTime GapAt(SimTime t) const;

  const std::vector<RateStep>& steps() const { return steps_; }

 private:
  explicit RateSchedule(std::vector<RateStep> steps)
      : steps_(std::move(steps)) {}
  std::vector<RateStep> steps_;
};

}  // namespace bistream

#endif  // BISTREAM_WORKLOAD_RATE_SCHEDULE_H_
