/// \file reference_join.h
/// \brief Single-node oracle join and exactly-once result verification.
///
/// The oracle computes the exact expected result multiset of a windowed
/// stream join — every (r, s) pair that matches the predicate with
/// |r.ts − s.ts| <= W — directly from a materialized workload. The engines'
/// outputs are verified against it: completeness (no missed results),
/// no duplicates, and no spurious pairs. This is the ground truth behind
/// all integration and property tests and the E12 protocol experiment.

#ifndef BISTREAM_WORKLOAD_REFERENCE_JOIN_H_
#define BISTREAM_WORKLOAD_REFERENCE_JOIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tuple/join_predicate.h"
#include "workload/generator.h"

namespace bistream {

/// \brief Packs an (r_id, s_id) pairing into one 64-bit key.
/// Tuple ids must fit in 32 bits (workloads start ids at 1).
uint64_t PackPair(uint64_t r_id, uint64_t s_id);

/// \brief Computes the expected result pairs of `stream` joined under
/// `pred` with symmetric window `window` (microseconds, event time).
///
/// Returns a multiset encoded as pair-key -> count; counts are always 1 for
/// workloads with unique ids but the representation keeps duplicate
/// detection exact regardless.
std::unordered_map<uint64_t, uint32_t> ComputeExpectedPairs(
    const std::vector<TimedTuple>& stream, const JoinPredicate& pred,
    EventTime window);

/// \brief Discrepancies found when verifying an engine's output.
struct CheckReport {
  uint64_t expected = 0;
  uint64_t produced = 0;
  uint64_t missing = 0;     // Expected pairs never produced.
  uint64_t duplicates = 0;  // Extra productions of expected pairs.
  uint64_t spurious = 0;    // Produced pairs that were never expected.

  bool Clean() const {
    return missing == 0 && duplicates == 0 && spurious == 0;
  }
  std::string ToString() const;
};

/// \brief Accumulates engine results and verifies them against the oracle.
class ResultChecker {
 public:
  /// \brief Records one emitted result pair (called from the engine sink).
  void OnResult(uint64_t r_id, uint64_t s_id);

  /// \brief Compares accumulated results against the oracle's expectation.
  CheckReport Check(const std::vector<TimedTuple>& stream,
                    const JoinPredicate& pred, EventTime window) const;

  /// \brief Compares against a precomputed expectation (when the same
  /// expectation is reused across engine configurations).
  CheckReport CheckAgainst(
      const std::unordered_map<uint64_t, uint32_t>& expected) const;

  uint64_t total_results() const { return total_; }
  void Reset();

 private:
  std::unordered_map<uint64_t, uint32_t> produced_;
  uint64_t total_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_WORKLOAD_REFERENCE_JOIN_H_
