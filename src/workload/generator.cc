#include "workload/generator.h"

#include "common/logging.h"

namespace bistream {

SyntheticSource::SyntheticSource(SyntheticWorkloadOptions options)
    : options_(std::move(options)),
      rng_r_(options_.seed * 2654435761ULL + 1),
      rng_s_(options_.seed * 2654435761ULL + 2),
      next_id_(options_.first_id) {
  BISTREAM_CHECK_GT(options_.key_domain, 0ULL);
  if (options_.zipf_theta_r > 0) {
    zipf_r_.emplace(options_.key_domain, options_.zipf_theta_r);
  }
  if (options_.zipf_theta_s > 0) {
    zipf_s_.emplace(options_.key_domain, options_.zipf_theta_s);
  }
  // Stagger the very first arrivals so the interleaving is not degenerate.
  next_arrival_[kRelationR] = NextGap(options_.rate_r, 0, &rng_r_);
  next_arrival_[kRelationS] = NextGap(options_.rate_s, 0, &rng_s_);
}

SimTime SyntheticSource::NextGap(const RateSchedule& rate, SimTime t,
                                 Rng* rng) {
  SimTime mean_gap = rate.GapAt(t);
  if (!options_.poisson) return mean_gap;
  double gap = rng->NextExponential(static_cast<double>(mean_gap));
  SimTime g = static_cast<SimTime>(gap);
  return g == 0 ? 1 : g;
}

TimedTuple SyntheticSource::Emit(RelationId relation) {
  Rng* rng = relation == kRelationR ? &rng_r_ : &rng_s_;
  const auto& zipf = relation == kRelationR ? zipf_r_ : zipf_s_;

  TimedTuple out;
  out.arrival = next_arrival_[relation];
  out.tuple.id = next_id_++;
  out.tuple.relation = relation;
  // Event time mirrors arrival time, expressed in microseconds.
  out.tuple.ts = static_cast<EventTime>(out.arrival / kMicrosecond);
  out.tuple.key = zipf.has_value()
                      ? static_cast<int64_t>(zipf->Sample(rng))
                      : static_cast<int64_t>(rng->Uniform(options_.key_domain));
  out.tuple.payload = static_cast<int64_t>(rng->Next64() >> 1);
  return out;
}

void SyntheticSource::Advance(RelationId relation) {
  Rng* rng = relation == kRelationR ? &rng_r_ : &rng_s_;
  const RateSchedule& rate =
      relation == kRelationR ? options_.rate_r : options_.rate_s;
  next_arrival_[relation] += NextGap(rate, next_arrival_[relation], rng);
}

std::optional<TimedTuple> SyntheticSource::Next() {
  if (emitted_ >= options_.total_tuples) return std::nullopt;
  RelationId relation =
      next_arrival_[kRelationR] <= next_arrival_[kRelationS] ? kRelationR
                                                             : kRelationS;
  TimedTuple out = Emit(relation);
  Advance(relation);
  ++emitted_;
  return out;
}

MultiSource::MultiSource(MultiWorkloadOptions options)
    : options_(options), next_id_(options.first_id) {
  BISTREAM_CHECK_GE(options_.num_relations, 2U);
  BISTREAM_CHECK_GT(options_.key_domain, 0ULL);
  BISTREAM_CHECK_GT(options_.rate_per_relation, 0.0);
  SimTime mean_gap = static_cast<SimTime>(static_cast<double>(kSecond) /
                                          options_.rate_per_relation);
  for (uint32_t rel = 0; rel < options_.num_relations; ++rel) {
    rngs_.emplace_back(options_.seed * 0x9E3779B97F4A7C15ULL + rel + 1);
    SimTime first =
        options_.poisson
            ? static_cast<SimTime>(rngs_.back().NextExponential(
                  static_cast<double>(mean_gap)))
            : mean_gap;
    next_arrival_.push_back(first == 0 ? 1 : first);
  }
}

std::optional<TimedTuple> MultiSource::Next() {
  if (emitted_ >= options_.total_tuples) return std::nullopt;
  uint32_t rel = 0;
  for (uint32_t i = 1; i < options_.num_relations; ++i) {
    if (next_arrival_[i] < next_arrival_[rel]) rel = i;
  }
  TimedTuple out;
  out.arrival = next_arrival_[rel];
  out.tuple.id = next_id_++;
  out.tuple.relation = rel;
  out.tuple.ts = static_cast<EventTime>(out.arrival / kMicrosecond);
  out.tuple.key =
      static_cast<int64_t>(rngs_[rel].Uniform(options_.key_domain));
  out.tuple.payload = static_cast<int64_t>(rngs_[rel].Next64() >> 1);

  SimTime mean_gap = static_cast<SimTime>(static_cast<double>(kSecond) /
                                          options_.rate_per_relation);
  SimTime gap = options_.poisson
                    ? static_cast<SimTime>(rngs_[rel].NextExponential(
                          static_cast<double>(mean_gap)))
                    : mean_gap;
  next_arrival_[rel] += gap == 0 ? 1 : gap;
  ++emitted_;
  return out;
}

std::vector<TimedTuple> DrainSource(StreamSource* source) {
  std::vector<TimedTuple> out;
  while (auto next = source->Next()) {
    out.push_back(std::move(*next));
  }
  return out;
}

}  // namespace bistream
