#include "workload/reference_join.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"
#include "index/chained_index.h"

namespace bistream {

uint64_t PackPair(uint64_t r_id, uint64_t s_id) {
  BISTREAM_CHECK_LT(r_id, 1ULL << 32);
  BISTREAM_CHECK_LT(s_id, 1ULL << 32);
  return (r_id << 32) | s_id;
}

std::unordered_map<uint64_t, uint32_t> ComputeExpectedPairs(
    const std::vector<TimedTuple>& stream, const JoinPredicate& pred,
    EventTime window) {
  std::vector<const Tuple*> left;   // Lower relation id ("R").
  std::vector<const Tuple*> right;  // Higher relation id ("S").
  RelationId lo = UINT32_MAX, hi = 0;
  for (const TimedTuple& tt : stream) {
    lo = std::min(lo, tt.tuple.relation);
    hi = std::max(hi, tt.tuple.relation);
  }
  for (const TimedTuple& tt : stream) {
    (tt.tuple.relation == lo ? left : right).push_back(&tt.tuple);
  }

  std::unordered_map<uint64_t, uint32_t> expected;
  auto emit = [&](const Tuple& l, const Tuple& r) {
    if (!WithinWindow(l.ts, r.ts, window)) return;
    ++expected[PackPair(l.id, r.id)];
  };

  switch (pred.kind()) {
    case PredicateKind::kEqui: {
      std::unordered_map<int64_t, std::vector<const Tuple*>> by_key;
      for (const Tuple* s : right) by_key[s->key].push_back(s);
      for (const Tuple* l : left) {
        auto it = by_key.find(l->key);
        if (it == by_key.end()) continue;
        for (const Tuple* r : it->second) emit(*l, *r);
      }
      break;
    }
    case PredicateKind::kBand:
    case PredicateKind::kLessThan: {
      std::multimap<int64_t, const Tuple*> by_key;
      for (const Tuple* s : right) by_key.emplace(s->key, s);
      for (const Tuple* l : left) {
        KeyRange range = pred.ProbeRange(*l, /*stored_relation=*/hi);
        if (range.lo > range.hi) continue;
        for (auto it = by_key.lower_bound(range.lo);
             it != by_key.end() && it->first <= range.hi; ++it) {
          if (pred.Matches(*l, *it->second)) emit(*l, *it->second);
        }
      }
      break;
    }
    case PredicateKind::kTheta: {
      for (const Tuple* l : left) {
        for (const Tuple* r : right) {
          if (pred.Matches(*l, *r)) emit(*l, *r);
        }
      }
      break;
    }
  }
  return expected;
}

std::string CheckReport::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "expected=%llu produced=%llu missing=%llu duplicates=%llu "
                "spurious=%llu",
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(produced),
                static_cast<unsigned long long>(missing),
                static_cast<unsigned long long>(duplicates),
                static_cast<unsigned long long>(spurious));
  return std::string(buf);
}

void ResultChecker::OnResult(uint64_t r_id, uint64_t s_id) {
  ++produced_[PackPair(r_id, s_id)];
  ++total_;
}

CheckReport ResultChecker::Check(const std::vector<TimedTuple>& stream,
                                 const JoinPredicate& pred,
                                 EventTime window) const {
  return CheckAgainst(ComputeExpectedPairs(stream, pred, window));
}

CheckReport ResultChecker::CheckAgainst(
    const std::unordered_map<uint64_t, uint32_t>& expected) const {
  CheckReport report;
  report.produced = total_;
  for (const auto& [pair, count] : expected) {
    report.expected += count;
    auto it = produced_.find(pair);
    uint32_t got = it == produced_.end() ? 0 : it->second;
    if (got < count) report.missing += count - got;
    if (got > count) report.duplicates += got - count;
  }
  for (const auto& [pair, count] : produced_) {
    if (expected.find(pair) == expected.end()) report.spurious += count;
  }
  return report;
}

void ResultChecker::Reset() {
  produced_.clear();
  total_ = 0;
}

}  // namespace bistream
