#include "obs/time_series.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace bistream {

void TimeSeries::Append(
    SimTime timestamp,
    const std::vector<std::pair<std::string, double>>& sample) {
  size_t row = timestamps_.size();
  timestamps_.push_back(timestamp);
  for (const auto& [name, value] : sample) {
    auto [it, inserted] = columns_.try_emplace(name);
    std::vector<double>& column = it->second;
    if (inserted) {
      // Metric appeared mid-run (e.g. scale-out): backfill history with 0.
      column.assign(row, 0.0);
    }
    column.push_back(value);
  }
  // Metrics absent from this sample (e.g. retired units) hold their last
  // value, which reads better on plots than snapping to zero.
  for (auto& [name, column] : columns_) {
    if (column.size() <= row) {
      column.push_back(column.empty() ? 0.0 : column.back());
    }
    BISTREAM_CHECK_EQ(column.size(), timestamps_.size());
  }
}

const std::vector<double>* TimeSeries::Column(const std::string& name) const {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : &it->second;
}

JsonValue TimeSeries::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue times = JsonValue::Array();
  for (SimTime t : timestamps_) times.Push(JsonValue::Number(t));
  root.Set("timestamps_ns", std::move(times));
  JsonValue metrics = JsonValue::Object();
  for (const auto& [name, column] : columns_) {
    JsonValue values = JsonValue::Array();
    for (double v : column) values.Push(JsonValue::Number(v));
    metrics.Set(name, std::move(values));
  }
  root.Set("metrics", std::move(metrics));
  return root;
}

Status TimeSeries::WriteJson(const std::string& path) const {
  return WriteJsonFile(path, ToJson());
}

TelemetrySampler::TelemetrySampler(runtime::Clock* clock,
                                   MetricsRegistry* registry,
                                   TelemetrySamplerOptions options)
    : clock_(clock), registry_(registry), options_(options) {
  BISTREAM_CHECK(clock_ != nullptr);
  BISTREAM_CHECK(registry_ != nullptr);
}

TelemetrySampler::~TelemetrySampler() {
  // Safety net: never destroy a live sampler thread. Normal runs go
  // through Stop() (which also takes the final sample).
  if (sampler_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(stop_mu_);
      stop_requested_ = true;
    }
    stop_cv_.notify_all();
    sampler_thread_.join();
  }
}

void TelemetrySampler::Start(std::function<bool()> stopped) {
  if (options_.sample_period == 0) return;
  BISTREAM_CHECK(!active_);
  active_ = true;
  last_sample_time_ = clock_->now();
  if (options_.wall_clock) {
    // Real-time pacing on a dedicated thread. The thread owns all sampling
    // state until Stop() joins it; the `stopped` poll is unused (it reads
    // driver-side state this thread must not touch).
    sampler_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lk(stop_mu_);
      for (;;) {
        if (stop_cv_.wait_for(
                lk, std::chrono::nanoseconds(options_.sample_period),
                [this] { return stop_requested_; })) {
          return;  // Stop() takes the final sample after the join.
        }
        lk.unlock();
        SampleNow();
        lk.lock();
      }
    });
    return;
  }
  clock_->ScheduleRepeating(
      options_.sample_period, [this, stopped = std::move(stopped)] {
        SampleNow();
        if (stopped && stopped()) {
          active_ = false;
          return false;
        }
        return true;
      });
}

void TelemetrySampler::Stop() {
  if (!sampler_thread_.joinable()) return;  // Sim mode / never started.
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  sampler_thread_.join();
  // Closing totals, taken on the (now exclusive) calling thread. Also
  // guarantees at least one row for runs shorter than a sample period.
  SampleNow();
  active_ = false;
}

bool TelemetrySampler::IsBusyCumulative(const std::string& name) {
  size_t dot = name.rfind('.');
  size_t start = dot == std::string::npos ? 0 : dot + 1;
  // "busy_ns" itself is the shortest qualifying component.
  if (name.size() - start < 7) return false;
  return name.compare(start, 4, "busy") == 0 &&
         name.compare(name.size() - 3, 3, "_ns") == 0;
}

void TelemetrySampler::SampleNow() {
  SimTime now = clock_->now();
  SampleRow sample = registry_->Sample();
  if (options_.derive_busy_fractions) {
    double dt = static_cast<double>(now - last_sample_time_);
    SampleRow derived;
    for (const auto& [name, value] : sample) {
      if (!IsBusyCumulative(name)) continue;
      double prev = 0;
      auto it = last_busy_ns_.find(name);
      if (it != last_busy_ns_.end()) prev = it->second;
      last_busy_ns_[name] = value;
      double fraction = dt > 0 ? (value - prev) / dt : 0.0;
      fraction = std::clamp(fraction, 0.0, 1.0);
      // "<...>busy*_ns" -> "<...>busy*_fraction".
      std::string stem = name.substr(0, name.size() - 3);
      derived.emplace_back(stem + "_fraction", fraction);
    }
    // Keep the row sorted by name: merge the derived columns in.
    sample.insert(sample.end(), derived.begin(), derived.end());
    std::sort(sample.begin(), sample.end());
  }
  series_.Append(now, sample);
  last_sample_time_ = now;
  if (observer_) observer_(now, sample);
  if (post_sample_hook_) post_sample_hook_();
}

}  // namespace bistream
