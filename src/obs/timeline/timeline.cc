#include "obs/timeline/timeline.h"

#include <algorithm>

namespace bistream {

namespace {

std::atomic<uint64_t> g_timeline_serial{0};

using runtime::TimelineEventType;

/// Chrome tids: unit lanes keep their id; the pseudo-lanes map to readable
/// high numbers so they sort after every real unit in the trace viewer.
uint64_t LaneTid(uint32_t lane) {
  if (lane == runtime::kDriverLane) return 1000000;
  if (lane == runtime::kTimerLane) return 1000001;
  return lane;
}

bool IsBegin(TimelineEventType type) {
  return type == TimelineEventType::kTaskBegin ||
         type == TimelineEventType::kDequeueWaitBegin ||
         type == TimelineEventType::kSenderBlock;
}

bool IsEnd(TimelineEventType type) {
  return type == TimelineEventType::kTaskEnd ||
         type == TimelineEventType::kDequeueWaitEnd ||
         type == TimelineEventType::kSenderWake;
}

/// Span name shared by a Begin/End pair (the End variants reuse the Begin
/// name so Chrome's LIFO matching sees one duration event).
const char* SpanName(TimelineEventType type) {
  switch (type) {
    case TimelineEventType::kTaskBegin:
    case TimelineEventType::kTaskEnd:
      return "task";
    case TimelineEventType::kDequeueWaitBegin:
    case TimelineEventType::kDequeueWaitEnd:
      return "dequeue_wait";
    case TimelineEventType::kSenderBlock:
    case TimelineEventType::kSenderWake:
      return "blocked_send";
    default:
      return runtime::TimelineEventName(type);
  }
}

JsonValue EventJson(const TimelineEvent& event) {
  JsonValue object = JsonValue::Object();
  object.Set("at", JsonValue::Number(event.at));
  object.Set("lane", JsonValue::Number(static_cast<uint64_t>(event.lane)));
  object.Set("type",
             JsonValue::String(runtime::TimelineEventName(event.type)));
  object.Set("arg", JsonValue::Number(event.arg));
  return object;
}

}  // namespace

TimelineRecorder::TimelineRecorder(Options options)
    : capacity_(options.ring_capacity == 0 ? 1 : options.ring_capacity),
      serial_(g_timeline_serial.fetch_add(1)) {}

TimelineRecorder::Ring* TimelineRecorder::LocalRing() {
  // Same single-slot TLS cache the tuple tracer uses: one recorder is live
  // at a time in practice, so after the first event a thread records, every
  // later Record() is a pair of thread-local loads away from its ring.
  thread_local uint64_t fast_serial = ~0ULL;
  thread_local Ring* fast_ring = nullptr;
  if (fast_serial == serial_) return fast_ring;
  struct CacheEntry {
    uint64_t serial;
    Ring* ring;
  };
  thread_local std::unordered_map<const TimelineRecorder*, CacheEntry> cache;
  auto it = cache.find(this);
  if (it != cache.end() && it->second.serial == serial_) {
    fast_serial = serial_;
    fast_ring = it->second.ring;
    return fast_ring;
  }
  std::lock_guard<std::mutex> lk(rings_mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_, rings_.size()));
  Ring* ring = rings_.back().get();
  cache[this] = CacheEntry{serial_, ring};
  fast_serial = serial_;
  fast_ring = ring;
  return ring;
}

void TimelineRecorder::Record(runtime::TimelineEventType type, SimTime at,
                              uint32_t lane, uint64_t arg) {
  Ring* ring = LocalRing();
  uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % capacity_];
  slot.at.store(at);
  slot.arg.store(arg);
  slot.lane.store(lane);
  slot.type.store(static_cast<uint32_t>(type));
  // Publish after the slot: a reader that observes this head knows every
  // slot below it is complete.
  ring->head.store(head + 1, std::memory_order_release);
}

void TimelineRecorder::SetLaneName(uint32_t lane, const std::string& name) {
  std::lock_guard<std::mutex> lk(names_mu_);
  lane_names_[lane] = name;
}

void TimelineRecorder::SnapshotRing(const Ring& ring, bool concurrent,
                                    std::vector<TimelineEvent>* out) const {
  uint64_t h1 = ring.head.load(std::memory_order_acquire);
  uint64_t lo = h1 > capacity_ ? h1 - capacity_ : 0;
  if (concurrent) {
    // Copy first, then re-read the head: any sequence whose slot the writer
    // could have been rewriting during the copy window [h1, h2] is
    // discarded (its copied fields are tear-free individually but may mix
    // two events). seq s is safe iff its next overwrite, s + capacity, had
    // not started by h2 — i.e. s + capacity > h2.
    std::vector<TimelineEvent> copied;
    copied.reserve(h1 - lo);
    for (uint64_t seq = lo; seq < h1; ++seq) {
      const Slot& slot = ring.slots[seq % capacity_];
      TimelineEvent event;
      event.at = slot.at.load();
      event.arg = slot.arg.load();
      event.lane = slot.lane.load();
      event.type = static_cast<runtime::TimelineEventType>(slot.type.load());
      event.ring_serial = ring.serial;
      event.seq = seq;
      copied.push_back(event);
    }
    uint64_t h2 = ring.head.load(std::memory_order_acquire);
    uint64_t safe_lo = h2 >= capacity_ ? h2 - capacity_ + 1 : 0;
    for (TimelineEvent& event : copied) {
      if (event.seq >= safe_lo) out->push_back(event);
    }
    return;
  }
  for (uint64_t seq = lo; seq < h1; ++seq) {
    const Slot& slot = ring.slots[seq % capacity_];
    TimelineEvent event;
    event.at = slot.at.load();
    event.arg = slot.arg.load();
    event.lane = slot.lane.load();
    event.type = static_cast<runtime::TimelineEventType>(slot.type.load());
    event.ring_serial = ring.serial;
    event.seq = seq;
    out->push_back(event);
  }
}

namespace {
void SortEvents(std::vector<TimelineEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.ring_serial != b.ring_serial) {
                return a.ring_serial < b.ring_serial;
              }
              return a.seq < b.seq;
            });
}
}  // namespace

std::vector<TimelineEvent> TimelineRecorder::Fold() const {
  std::vector<TimelineEvent> events;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto& ring : rings_) SnapshotRing(*ring, false, &events);
  }
  SortEvents(&events);
  return events;
}

std::vector<TimelineEvent> TimelineRecorder::FlightSnapshot() const {
  std::vector<TimelineEvent> events;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto& ring : rings_) SnapshotRing(*ring, true, &events);
  }
  SortEvents(&events);
  return events;
}

void TimelineRecorder::AddFlightDump(const std::string& label,
                                     std::vector<TimelineEvent> events) {
  std::lock_guard<std::mutex> lk(dumps_mu_);
  dumps_.emplace_back(label, std::move(events));
}

uint64_t TimelineRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t TimelineRecorder::events_dropped() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

std::vector<uint64_t> TimelineRecorder::ring_hwms() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::vector<uint64_t> hwms;
  hwms.reserve(rings_.size());
  for (const auto& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    hwms.push_back(std::min<uint64_t>(head, capacity_));
  }
  return hwms;
}

size_t TimelineRecorder::flight_dumps() const {
  std::lock_guard<std::mutex> lk(dumps_mu_);
  return dumps_.size();
}

JsonValue TimelineRecorder::SummaryJson() const {
  JsonValue summary = JsonValue::Object();
  summary.Set("events_recorded", JsonValue::Number(events_recorded()));
  summary.Set("events_dropped", JsonValue::Number(events_dropped()));
  JsonValue hwms = JsonValue::Array();
  for (uint64_t hwm : ring_hwms()) hwms.Push(JsonValue::Number(hwm));
  summary.Set("ring_hwm", std::move(hwms));
  summary.Set("flight_dumps",
              JsonValue::Number(static_cast<uint64_t>(flight_dumps())));
  return summary;
}

JsonValue TimelineRecorder::ToChromeTrace(
    const std::vector<TimelineEvent>& events,
    const std::string& backend) const {
  // Group per lane, preserving fold order within each lane.
  std::map<uint32_t, std::vector<const TimelineEvent*>> lanes;
  for (const TimelineEvent& event : events) {
    lanes[event.lane].push_back(&event);
  }

  JsonValue trace_events = JsonValue::Array();
  auto meta = [&trace_events](uint64_t tid, const std::string& name) {
    JsonValue m = JsonValue::Object();
    m.Set("ph", JsonValue::String("M"));
    m.Set("name", JsonValue::String("thread_name"));
    m.Set("pid", JsonValue::Number(0));
    m.Set("tid", JsonValue::Number(tid));
    JsonValue args = JsonValue::Object();
    args.Set("name", JsonValue::String(name));
    m.Set("args", std::move(args));
    trace_events.Push(std::move(m));
  };
  {
    std::lock_guard<std::mutex> lk(names_mu_);
    for (const auto& [lane, lane_events] : lanes) {
      (void)lane_events;
      auto it = lane_names_.find(lane);
      std::string name;
      if (it != lane_names_.end()) {
        name = it->second;
      } else if (lane == runtime::kDriverLane) {
        name = "driver";
      } else if (lane == runtime::kTimerLane) {
        name = "timers";
      } else {
        name = "unit-" + std::to_string(lane);
      }
      meta(LaneTid(lane), name);
    }
  }

  auto emit = [&trace_events](const char* ph, const char* name, uint64_t tid,
                              SimTime at, uint64_t arg, bool with_arg) {
    JsonValue e = JsonValue::Object();
    e.Set("ph", JsonValue::String(ph));
    e.Set("name", JsonValue::String(name));
    e.Set("pid", JsonValue::Number(0));
    e.Set("tid", JsonValue::Number(tid));
    e.Set("ts", JsonValue::Number(static_cast<double>(at) / 1000.0));
    if (with_arg) {
      JsonValue args = JsonValue::Object();
      args.Set("arg", JsonValue::Number(arg));
      e.Set("args", std::move(args));
    }
    trace_events.Push(std::move(e));
  };

  for (const auto& [lane, lane_events] : lanes) {
    uint64_t tid = LaneTid(lane);
    // A wrapped ring can open mid-span (its Begin overwritten) or a crash
    // can cut a span short; sanitize so every lane is a coherent LIFO
    // stack — stray Ends are skipped, unclosed Begins are closed at the
    // lane's last timestamp.
    std::vector<TimelineEventType> stack;
    SimTime last_at = 0;
    for (const TimelineEvent* event : lane_events) {
      SimTime at = std::max(event->at, last_at);
      last_at = at;
      if (IsBegin(event->type)) {
        stack.push_back(event->type);
        emit("B", SpanName(event->type), tid, at, event->arg, true);
      } else if (IsEnd(event->type)) {
        if (stack.empty() ||
            std::string(SpanName(stack.back())) != SpanName(event->type)) {
          continue;  // Stray End: its Begin fell off the ring.
        }
        stack.pop_back();
        emit("E", SpanName(event->type), tid, at, event->arg, false);
      } else {
        emit("i", SpanName(event->type), tid, at, event->arg, true);
      }
    }
    while (!stack.empty()) {
      emit("E", SpanName(stack.back()), tid, last_at, 0, false);
      stack.pop_back();
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue::String("ms"));

  JsonValue bistream = JsonValue::Object();
  bistream.Set("backend", JsonValue::String(backend));
  bistream.Set("summary", SummaryJson());
  JsonValue dumps = JsonValue::Array();
  {
    std::lock_guard<std::mutex> lk(dumps_mu_);
    for (const auto& [label, dump_events] : dumps_) {
      JsonValue dump = JsonValue::Object();
      dump.Set("label", JsonValue::String(label));
      JsonValue list = JsonValue::Array();
      for (const TimelineEvent& event : dump_events) {
        list.Push(EventJson(event));
      }
      dump.Set("events", std::move(list));
      dumps.Push(std::move(dump));
    }
  }
  bistream.Set("flight_recorder", std::move(dumps));
  doc.Set("bistream", std::move(bistream));
  return doc;
}

Status ValidateChromeTrace(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("trace document is not a JSON object");
  }
  const JsonValue* trace_events = doc.Find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    return Status::InvalidArgument("trace document has no traceEvents array");
  }
  struct LaneState {
    std::vector<std::string> stack;
    double last_ts = 0;
    bool any = false;
  };
  std::map<double, LaneState> by_tid;
  for (const JsonValue& event : trace_events->elements()) {
    if (!event.is_object()) {
      return Status::InvalidArgument("traceEvents entry is not an object");
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* name = event.Find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr ||
        !name->is_string()) {
      return Status::InvalidArgument("trace event missing ph/name");
    }
    if (ph->AsString() == "M") continue;
    const JsonValue* tid = event.Find("tid");
    const JsonValue* ts = event.Find("ts");
    if (tid == nullptr || !tid->is_number() || ts == nullptr ||
        !ts->is_number()) {
      return Status::InvalidArgument("trace event missing tid/ts");
    }
    LaneState& lane = by_tid[tid->AsNumber()];
    if (lane.any && ts->AsNumber() < lane.last_ts) {
      return Status::InvalidArgument(
          "timestamps regress on tid " + std::to_string(tid->AsNumber()) +
          " at ts " + std::to_string(ts->AsNumber()));
    }
    lane.last_ts = ts->AsNumber();
    lane.any = true;
    if (ph->AsString() == "B") {
      lane.stack.push_back(name->AsString());
    } else if (ph->AsString() == "E") {
      if (lane.stack.empty()) {
        return Status::InvalidArgument("unmatched span end '" +
                                       name->AsString() + "' on tid " +
                                       std::to_string(tid->AsNumber()));
      }
      if (lane.stack.back() != name->AsString()) {
        return Status::InvalidArgument(
            "span end '" + name->AsString() + "' does not match open '" +
            lane.stack.back() + "' on tid " +
            std::to_string(tid->AsNumber()));
      }
      lane.stack.pop_back();
    } else if (ph->AsString() != "i" && ph->AsString() != "I") {
      return Status::InvalidArgument("unsupported trace phase '" +
                                     ph->AsString() + "'");
    }
  }
  for (const auto& [tid, lane] : by_tid) {
    if (!lane.stack.empty()) {
      return Status::InvalidArgument(
          "unclosed span '" + lane.stack.back() + "' on tid " +
          std::to_string(tid));
    }
  }
  return Status::OK();
}

}  // namespace bistream
