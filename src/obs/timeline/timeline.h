/// \file timeline.h
/// \brief Execution timeline recorder: per-thread event rings, deterministic
/// fold, Chrome trace-event export, and crash-time flight snapshots.
///
/// Implements runtime::TimelineSink (see src/runtime/timeline.h for the
/// event model). Each recording thread owns one fixed-capacity SPSC ring:
/// the thread is the only writer, slot fields are relaxed-atomic cells so
/// cross-thread readers (the flight snapshot) see tear-free values, and the
/// monotonic head cursor is released after the slot so a published head
/// guarantees a complete slot. The ring wraps — it always retains the
/// newest `capacity` events and counts what it overwrote, so the same
/// mechanism serves both the full-timeline mode (ring sized to the run) and
/// the bounded flight-recorder mode (small ring, last-N-events postmortem).
///
/// Two read paths:
///   - Fold(): post-quiescence, writers stopped. Merges every ring into one
///     globally ordered timeline: sort by (timestamp, lane, ring serial,
///     sequence). The key is total, so two folds of the same rings are
///     byte-identical, and a sim run (one ring, virtual timestamps) folds
///     byte-identically across runs.
///   - FlightSnapshot(): mid-run, writers live (the driver takes it inside
///     recovery while workers keep recording). Per ring: read head h1
///     (acquire), copy every slot (relaxed), read head h2 (acquire), then
///     keep only sequences in (h2 - capacity, h1) — slots the writer cannot
///     have touched during the copy. Honest and TSan-clean: racing events
///     are dropped, never torn.

#ifndef BISTREAM_OBS_TIMELINE_TIMELINE_H_
#define BISTREAM_OBS_TIMELINE_TIMELINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/relaxed.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/json.h"
#include "runtime/timeline.h"

namespace bistream {

/// \brief One event out of a fold or flight snapshot.
struct TimelineEvent {
  SimTime at = 0;
  uint32_t lane = 0;
  runtime::TimelineEventType type = runtime::TimelineEventType::kTaskBegin;
  uint64_t arg = 0;
  uint64_t ring_serial = 0;  ///< Which thread's ring recorded it.
  uint64_t seq = 0;          ///< Position in that ring's event stream.
};

class TimelineRecorder : public runtime::TimelineSink {
 public:
  struct Options {
    /// Events retained per thread. The full-timeline default comfortably
    /// holds a bench smoke run; flight-recorder users size it down to the
    /// postmortem window they want.
    size_t ring_capacity = 32768;
  };

  explicit TimelineRecorder(Options options);
  ~TimelineRecorder() override = default;

  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  // --- hot path (any thread) ---
  void Record(runtime::TimelineEventType type, SimTime at, uint32_t lane,
              uint64_t arg) override;

  // --- driver side ---
  void SetLaneName(uint32_t lane, const std::string& name) override;

  /// \brief Post-quiescence merge of all rings, globally ordered. Pure
  /// function of ring state: calling it twice yields identical vectors.
  std::vector<TimelineEvent> Fold() const;

  /// \brief Concurrent-safe snapshot (see file comment). Used by the
  /// flight recorder at failure-detection time.
  std::vector<TimelineEvent> FlightSnapshot() const;

  /// \brief Stores a postmortem snapshot (taken at recovery time) for
  /// inclusion in the exported trace. `label` names the trigger, e.g.
  /// "recovery unit 5".
  void AddFlightDump(const std::string& label,
                     std::vector<TimelineEvent> events);

  /// Events ever recorded across all rings.
  uint64_t events_recorded() const;
  /// Events overwritten before any fold could retain them.
  uint64_t events_dropped() const;
  /// Per-ring high-water marks (retained event counts), serial order.
  std::vector<uint64_t> ring_hwms() const;
  size_t flight_dumps() const;

  /// \brief Artifact summary: {events_recorded, events_dropped,
  /// ring_hwm: [...], flight_dumps}. Dropped events are always present in
  /// the artifact — never silently elided.
  JsonValue SummaryJson() const;

  /// \brief Builds a Chrome trace-event document (chrome://tracing /
  /// Perfetto "JSON object format"): `traceEvents` with one tid lane per
  /// unit plus driver and timer lanes, thread_name metadata, and a
  /// `bistream` section carrying the backend tag and any flight dumps.
  JsonValue ToChromeTrace(const std::vector<TimelineEvent>& events,
                          const std::string& backend) const;

 private:
  /// Ring slot. Fields are independent relaxed cells — the head protocol
  /// (release store after the last field) is what makes a published slot
  /// complete; the cells only make concurrent reads of a slot that is
  /// being rewritten tear-free per field (the flight snapshot then drops
  /// those slots entirely).
  struct Slot {
    RelaxedCell<uint64_t> at;
    RelaxedCell<uint64_t> arg;
    RelaxedCell<uint32_t> lane;
    RelaxedCell<uint32_t> type;
  };

  struct Ring {
    Ring(size_t capacity, uint64_t serial)
        : slots(capacity), serial(serial) {}
    std::vector<Slot> slots;
    std::atomic<uint64_t> head{0};  ///< Events ever written; release-stored.
    uint64_t serial;                ///< Creation order, process-unique-ish.
  };

  Ring* LocalRing();
  void SnapshotRing(const Ring& ring, bool concurrent,
                    std::vector<TimelineEvent>* out) const;

  const size_t capacity_;
  const uint64_t serial_;  ///< Recorder identity for the TLS ring cache.

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  mutable std::mutex names_mu_;
  std::map<uint32_t, std::string> lane_names_;

  mutable std::mutex dumps_mu_;
  std::vector<std::pair<std::string, std::vector<TimelineEvent>>> dumps_;
};

/// \brief Sanity-checks a Chrome trace document produced by ToChromeTrace
/// (or handed to `bistream-inspect timeline`): `traceEvents` must exist,
/// every "B" must close with an "E" on the same tid in LIFO order, and
/// timestamps on each tid must be non-decreasing. Returns the first
/// violation; OK means every lane is a coherent nested span stack.
Status ValidateChromeTrace(const JsonValue& doc);

}  // namespace bistream

#endif  // BISTREAM_OBS_TIMELINE_TIMELINE_H_
