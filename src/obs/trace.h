/// \file trace.h
/// \brief Deterministic 1-in-N per-tuple trace spans.
///
/// A traced tuple accumulates per-hop virtual timestamps as it moves
/// ingress → route → (store | join arrival) → ordering-buffer release →
/// probe/emit. From the finished spans the harness derives a latency
/// *breakdown* — how much of end-to-end latency is network/queueing delay,
/// how much is the order-consistent protocol's buffering, and how much is
/// probe work — which the aggregate EngineStats cannot distinguish (E4/E5/
/// E12 motivate this).
///
/// Sampling is deterministic: the tracer counts ingress tuples and traces
/// every N-th one (the 1st, N+1-th, ...), so a fixed seed yields a fixed
/// span population, and tracing perturbs neither routing nor virtual time —
/// traced runs are bit-identical to untraced ones in results and makespan.
/// Because ingress runs on the driver in both backends, sim and parallel
/// runs of the same workload trace the same tuples.
///
/// Hop recorders use set-if-zero semantics, and instrumentation points skip
/// replay-flagged messages entirely, so recovery replay (which pushes the
/// same tuples through the pipeline again) cannot overwrite or double-count
/// the original timeline.
///
/// Concurrent mode (SetConcurrent(true); the parallel backend): hop
/// recorders run on worker threads, so instead of mutating shared spans
/// they append compact events to per-thread buffers — filtered by the
/// Tuple::traced bit, no shared lookup on the hot path — and the driver
/// folds the buffers into the spans after the executor quiesces
/// (MergeThreadBuffers). Fold rules are order-independent (min for
/// first-arrival timestamps, sums for costs/counts), so the resulting
/// spans do not depend on thread scheduling.

#ifndef BISTREAM_OBS_TRACE_H_
#define BISTREAM_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "obs/json.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief Per-hop timeline of one traced tuple. Times are virtual ns.
struct TraceSpan {
  uint64_t tuple_id = 0;
  RelationId relation = kRelationR;
  SimTime ingress = 0;        ///< Injection at the system edge.
  SimTime routed = 0;         ///< Router forked it into store + join copies.
  SimTime store_arrival = 0;  ///< Store copy arrived at its own-side joiner.
  SimTime join_arrival = 0;   ///< First join copy arrived at a probe joiner.
  SimTime released = 0;       ///< Ordering buffer released the join copy.
  SimTime emit = 0;           ///< First result emitted by probing it.
  uint64_t store_cost_ns = 0;   ///< Charged virtual index-insert cost.
  uint64_t probe_cost_ns = 0;   ///< Charged virtual probe cost, all units.
  uint64_t probe_candidates = 0;
  uint64_t results = 0;
  uint32_t probe_units = 0;  ///< Join-copy fan-out observed via arrivals.

  JsonValue ToJson() const;
};

/// \brief Aggregated latency decomposition over finished spans.
///
/// For each probed span: total = (emit ? emit : released) - ingress,
/// queueing = join_arrival - ingress, ordering = released - join_arrival,
/// probe = charged virtual probe cost. Because results are emitted at the
/// release instant (virtual time does not advance inside a node handler),
/// queueing + ordering equals total exactly and probe is the only — tiny —
/// overcount, so the components sum to within a few percent of end-to-end.
struct LatencyBreakdown {
  uint64_t spans = 0;  ///< Spans that reached a probe joiner.
  double mean_total_ns = 0;
  double mean_queue_ns = 0;
  double mean_order_ns = 0;
  double mean_probe_ns = 0;

  JsonValue ToJson() const;
};

/// \brief Deterministic sampling tracer; one per engine.
class TupleTracer {
 public:
  /// \brief Traces every `trace_every`-th ingress tuple; 0 disables.
  explicit TupleTracer(uint64_t trace_every);

  TupleTracer(const TupleTracer&) = delete;
  TupleTracer& operator=(const TupleTracer&) = delete;

  bool enabled() const { return trace_every_ > 0; }

  /// \brief Switches the hop recorders to per-thread event buffering (the
  /// parallel backend). Call once at wiring time, before any recording.
  void SetConcurrent(bool concurrent) { concurrent_ = concurrent; }
  bool concurrent() const { return concurrent_; }

  /// \brief Cheap inline pre-filter for hop call sites: true when recording
  /// this tuple's hop could do anything. In concurrent mode the traced bit
  /// decides outright, letting call sites skip the wall-clock read and the
  /// out-of-line recorder call for the (N-1)-in-N untraced tuples — per-hop
  /// clock reads are what tracing overhead on the parallel backend is made
  /// of. In single-threaded mode untraced tuples still pass (only the span
  /// index knows) and the recorder's Find() no-ops as before.
  bool ShouldRecord(const Tuple& tuple) const {
    return enabled() && (!concurrent_ || tuple.traced);
  }

  /// \brief Ingress sampling decision; returns the new span when this tuple
  /// is selected, nullptr otherwise. Must be called exactly once per
  /// injected tuple (the counter is the sampling clock). Driver-thread only
  /// (injection is driver-side on every backend).
  TraceSpan* OnIngress(const Tuple& tuple, SimTime now);

  /// \brief Looks up a live span; nullptr when the tuple is untraced.
  /// Driver-thread only.
  TraceSpan* Find(RelationId relation, uint64_t id);

  // Hop recorders, tuple-keyed. Safe from worker threads in concurrent
  // mode (the Tuple::traced bit filters; events land in per-thread
  // buffers). All are no-ops for untraced tuples, and timestamp fields are
  // first-arrival-wins so replays cannot rewrite history.
  void OnRouted(const Tuple& tuple, SimTime now);
  void OnStoreArrival(const Tuple& tuple, SimTime now);
  void OnJoinArrival(const Tuple& tuple, SimTime now);
  void OnRelease(const Tuple& tuple, SimTime now);
  void OnStore(const Tuple& tuple, uint64_t cost_ns);
  void OnProbe(const Tuple& tuple, uint64_t candidates, uint64_t matches,
               uint64_t cost_ns, SimTime now);

  // Id-keyed recorder variants (legacy/test entry points). Single-threaded
  // mode only: they consult the shared span index directly.
  void OnRouted(RelationId relation, uint64_t id, SimTime now);
  void OnStoreArrival(RelationId relation, uint64_t id, SimTime now);
  void OnJoinArrival(RelationId relation, uint64_t id, SimTime now);
  void OnRelease(RelationId relation, uint64_t id, SimTime now);
  void OnStore(RelationId relation, uint64_t id, uint64_t cost_ns);
  void OnProbe(RelationId relation, uint64_t id, uint64_t candidates,
               uint64_t matches, uint64_t cost_ns, SimTime now);

  /// \brief Folds every per-thread event buffer into the spans. Driver-only
  /// and only meaningful after the executor has quiesced (the quiescence
  /// handshake publishes the buffers). Idempotent — buffers are drained.
  /// A no-op outside concurrent mode.
  void MergeThreadBuffers();

  uint64_t ingress_seen() const { return ingress_seen_; }
  uint64_t trace_every() const { return trace_every_; }
  const std::deque<TraceSpan>& spans() const { return spans_; }

  LatencyBreakdown ComputeBreakdown() const;

  /// \brief First `limit` spans as a JSON array (artifact size control).
  JsonValue SpansToJson(size_t limit) const;

 private:
  static uint64_t Key(RelationId relation, uint64_t id) {
    // Tuple ids are per-relation sequences; fold the side into the top bit.
    return (static_cast<uint64_t>(relation & 1u) << 63) | id;
  }

  /// \brief One buffered hop observation (concurrent mode).
  struct TraceEvent {
    enum class Kind : uint8_t {
      kRouted,
      kStoreArrival,
      kJoinArrival,
      kRelease,
      kStore,
      kProbe,
    };
    Kind kind;
    uint64_t key;
    SimTime now;
    uint64_t candidates;
    uint64_t matches;
    uint64_t cost_ns;
  };

  /// \brief The calling thread's event buffer, created on first use and
  /// cached in a thread_local keyed by a process-unique serial (so a tracer
  /// allocated at a recycled address cannot inherit a stale pointer).
  std::vector<TraceEvent>* LocalBuffer();
  void AppendEvent(TraceEvent event) { LocalBuffer()->push_back(event); }
  void ApplyEvent(const TraceEvent& event);

  uint64_t trace_every_;
  bool concurrent_ = false;
  uint64_t ingress_seen_ = 0;
  std::deque<TraceSpan> spans_;  // deque: stable addresses for Find().
  std::unordered_map<uint64_t, TraceSpan*> by_tuple_;

  const uint64_t serial_;
  std::mutex buffers_mu_;  // Guards buffer creation, not appends.
  std::vector<std::unique_ptr<std::vector<TraceEvent>>> buffers_;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_TRACE_H_
