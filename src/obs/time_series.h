/// \file time_series.h
/// \brief In-memory metric time series + the telemetry sampler.
///
/// The TelemetrySampler has two pacing modes. Under the sim backend it
/// rides the runtime clock (the simulator's event loop): every
/// `sample_period` of *virtual* time it evaluates every counter and gauge in
/// the engine's MetricsRegistry and appends one row to a TimeSeries. Under
/// the parallel backend (`wall_clock`) a dedicated sampler thread takes the
/// same snapshots every `sample_period` of *real* time while the workers
/// run. This
/// replaces the old single end-of-run aggregate with within-run visibility —
/// throughput ramps, per-joiner busy fractions, state growth, recovery
/// activity — at zero cost to the instrumented hot paths (gauges are lazy).
///
/// Columns may appear mid-run (scale-out registers new per-joiner gauges) or
/// vanish (unit retirement unregisters them); the series backfills new
/// columns with zeros and pads absent ones, so every column always has
/// exactly one value per sampled timestamp.

#ifndef BISTREAM_OBS_TIME_SERIES_H_
#define BISTREAM_OBS_TIME_SERIES_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/clock.h"

namespace bistream {

/// \brief Column-oriented store of sampled metric values over virtual time.
class TimeSeries {
 public:
  /// \brief Appends one sample row. `sample` must be sorted by name (the
  /// registry's Sample() already is). Unknown names start a new column
  /// backfilled with zeros; known names missing from `sample` are padded
  /// with their column's last value.
  void Append(SimTime timestamp,
              const std::vector<std::pair<std::string, double>>& sample);

  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }
  const std::vector<SimTime>& timestamps() const { return timestamps_; }
  const std::map<std::string, std::vector<double>>& columns() const {
    return columns_;
  }

  /// \brief Returns a column by metric name; nullptr when never sampled.
  const std::vector<double>* Column(const std::string& name) const;

  /// \brief {"timestamps_ns": [...], "metrics": {name: [...], ...}}
  JsonValue ToJson() const;

  /// \brief Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  std::vector<SimTime> timestamps_;
  std::map<std::string, std::vector<double>> columns_;
};

/// \brief One sampled row: (metric name, value) pairs sorted by name.
using SampleRow = std::vector<std::pair<std::string, double>>;

/// \brief Options for TelemetrySampler.
struct TelemetrySamplerOptions {
  /// Time between samples (virtual ns under the sim backend, wall ns in
  /// wall-clock mode). 0 disables sampling entirely.
  SimTime sample_period = 0;
  /// Derive a windowed `*_fraction` column from every cumulative busy
  /// gauge — any metric whose final name component starts with "busy" and
  /// ends with "_ns" (busy_ns, busy_probe_ns, ...).
  bool derive_busy_fractions = true;
  /// Pace samples with a dedicated sampler thread on real time instead of
  /// riding the backend clock's timers (the parallel backend's mode).
  /// A repeating backend timer would both hold RunUntilIdle open for up to
  /// one period after quiescence — inflating the measured makespan — and
  /// drift whenever the driver blocks in a backpressured send; a free
  /// thread does neither. The run must call Stop() after the executor
  /// quiesces: it joins the thread and takes the final sample.
  bool wall_clock = false;
};

/// \brief Periodically snapshots a MetricsRegistry into a TimeSeries.
///
/// The sampler owns the only windowed state derived from cumulative gauges,
/// so other consumers (autoscaler, failure detector) can read the same
/// gauges without interference — the PR-1 SampleUtilization sharing hazard
/// is gone by construction.
class TelemetrySampler {
 public:
  TelemetrySampler(runtime::Clock* clock, MetricsRegistry* registry,
                   TelemetrySamplerOptions options);
  ~TelemetrySampler();

  /// \brief Starts periodic sampling. Under the clock-driven (sim) mode
  /// `stopped` is polled each tick; once it returns true the sampler takes
  /// a final sample and stops rescheduling (otherwise it would keep the
  /// event loop from draining forever). In wall-clock mode the poll is
  /// ignored — the sampler thread runs until Stop().
  void Start(std::function<bool()> stopped);

  /// \brief Wall-clock mode teardown: joins the sampler thread, then takes
  /// one final sample on the calling (driver) thread so the series always
  /// ends with the run's closing totals. Idempotent; a no-op in sim mode
  /// or when sampling never started. The join is also the happens-before
  /// edge that lets the driver read series() without further locking.
  void Stop();

  /// \brief Takes one sample immediately (also usable with period 0 for
  /// manual sampling at interesting instants).
  void SampleNow();

  /// \brief Installs a callback invoked after every appended sample with
  /// the full (sorted, fractions included) row — the diagnosis layer's
  /// entry point. It runs inside the sampling tick and must not schedule
  /// events or charge virtual time (zero perturbation).
  void SetSampleObserver(std::function<void(SimTime, const SampleRow&)> fn) {
    observer_ = std::move(fn);
  }

  /// \brief Installs a callback invoked once per sample, after the
  /// observer. The engine resets per-window high-watermarks here so gauges
  /// themselves stay side-effect free.
  void SetPostSampleHook(std::function<void()> fn) {
    post_sample_hook_ = std::move(fn);
  }

  bool active() const { return active_; }
  const TimeSeries& series() const { return series_; }
  SimTime sample_period() const { return options_.sample_period; }

  /// \brief True for cumulative busy gauges: the final name component
  /// starts with "busy" and ends with "_ns".
  static bool IsBusyCumulative(const std::string& name);

 private:
  runtime::Clock* clock_;
  MetricsRegistry* registry_;
  TelemetrySamplerOptions options_;
  TimeSeries series_;
  bool active_ = false;
  std::function<void(SimTime, const SampleRow&)> observer_;
  std::function<void()> post_sample_hook_;
  // Windowed busy-fraction derivation state, private to this sampler.
  // In wall-clock mode all of the above (series_, last_* state, observer
  // calls) is touched exclusively by the sampler thread while it runs;
  // Stop()'s join hands it back to the driver for the final sample.
  SimTime last_sample_time_ = 0;
  std::map<std::string, double> last_busy_ns_;

  // Wall-clock mode only.
  std::thread sampler_thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_TIME_SERIES_H_
