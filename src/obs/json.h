/// \file json.h
/// \brief Minimal JSON value tree: build, serialize, parse.
///
/// The telemetry layer exports machine-readable artifacts (BENCH_*.json) and
/// the bench smoke tests validate them against a checked-in schema, so both
/// a writer and a parser are needed. The container ships no JSON library and
/// adding dependencies is off the table, hence this small hand-rolled one.
/// It covers exactly what the telemetry artifacts use: objects with ordered
/// keys, arrays, finite doubles, strings, bools, null.

#ifndef BISTREAM_OBS_JSON_H_
#define BISTREAM_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bistream {

/// \brief A JSON document node. Value-semantic tree.
///
/// Object keys keep insertion order so exported artifacts are stable and
/// diffable across runs (important for the schema smoke test).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Number(uint64_t n) {
    return Number(static_cast<double>(n));
  }
  static JsonValue Number(int64_t n) { return Number(static_cast<double>(n)); }
  static JsonValue Number(int n) { return Number(static_cast<double>(n)); }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// \brief Appends to an array; converts a null node into an array first.
  JsonValue& Push(JsonValue v);

  /// \brief Sets a key on an object (replacing any existing entry); converts
  /// a null node into an object first.
  JsonValue& Set(const std::string& key, JsonValue v);

  /// Array / object element count.
  size_t size() const;

  /// \brief Array element access (aborts out of range).
  const JsonValue& at(size_t index) const;

  /// \brief Object member lookup; nullptr when absent.
  const JsonValue* Find(const std::string& key) const;

  /// Ordered object members.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Array elements.
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// \brief Serializes the tree. `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// \brief Parses a JSON document (full input must be consumed).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// \brief Writes a JSON document to a file (atomically via rename is
/// overkill here; plain write + explicit Status on failure).
Status WriteJsonFile(const std::string& path, const JsonValue& value,
                     int indent = 2);

/// \brief Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bistream

#endif  // BISTREAM_OBS_JSON_H_
