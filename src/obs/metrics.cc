#include "obs/metrics.h"

namespace bistream {

std::string MetricsRegistry::ScopedName(const std::string& unit_kind,
                                        uint32_t unit_id,
                                        const std::string& metric) {
  return unit_kind + "." + std::to_string(unit_id) + "." + metric;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetTimer(const std::string& name) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> fn) {
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::UnregisterGauge(const std::string& name) {
  gauges_.erase(name);
}

void MetricsRegistry::UnregisterGaugesWithPrefix(const std::string& prefix) {
  auto it = gauges_.lower_bound(prefix);
  while (it != gauges_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = gauges_.erase(it);
  }
}

std::optional<double> MetricsRegistry::ReadGauge(
    const std::string& name) const {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second();
}

std::optional<uint64_t> MetricsRegistry::ReadCounter(
    const std::string& name) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second->value();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Sample() const {
  // Both maps iterate sorted; merge them to keep the combined list sorted.
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size());
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    bool take_counter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first < g->first);
    if (take_counter) {
      out.emplace_back(c->first, static_cast<double>(c->second->value()));
      ++c;
    } else {
      out.emplace_back(g->first, g->second());
      ++g;
    }
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::SampleTimers() const {
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(timers_.size());
  for (const auto& [name, hist] : timers_) {
    out.emplace_back(name, hist->TakeSnapshot());
  }
  return out;
}

}  // namespace bistream
