#include "obs/metrics.h"

#include <unordered_map>

namespace bistream {

namespace {
std::atomic<uint64_t> g_timer_serial{0};
}  // namespace

Timer::Timer() : serial_(g_timer_serial.fetch_add(1)) {}

Histogram* Timer::LocalShard() {
  struct CacheEntry {
    uint64_t serial;
    Histogram* shard;
  };
  thread_local std::unordered_map<const Timer*, CacheEntry> cache;
  auto it = cache.find(this);
  if (it != cache.end() && it->second.serial == serial_) {
    return it->second.shard;
  }
  std::lock_guard<std::mutex> lk(mu_);
  shards_.push_back(std::make_unique<Histogram>());
  Histogram* shard = shards_.back().get();
  cache[this] = CacheEntry{serial_, shard};
  return shard;
}

Histogram Timer::Merged() const {
  std::lock_guard<std::mutex> lk(mu_);
  Histogram out;
  for (const auto& shard : shards_) out.Merge(*shard);
  return out;
}

std::string MetricsRegistry::ScopedName(const std::string& unit_kind,
                                        uint32_t unit_id,
                                        const std::string& metric) {
  return unit_kind + "." + std::to_string(unit_id) + "." + metric;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Timer* MetricsRegistry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::make_unique<Timer>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::UnregisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_.erase(name);
}

void MetricsRegistry::UnregisterGaugesWithPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.lower_bound(prefix);
  while (it != gauges_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = gauges_.erase(it);
  }
}

std::optional<double> MetricsRegistry::ReadGauge(
    const std::string& name) const {
  std::function<double()> fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) return std::nullopt;
    fn = it->second;
  }
  // Evaluated outside mu_: a callback must never run under the registry
  // lock (it may be arbitrarily slow, and consumers read concurrently).
  return fn();
}

std::optional<uint64_t> MetricsRegistry::ReadCounter(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second->value();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Sample() const {
  // Snapshot the gauge callbacks under the lock, evaluate them outside it.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  {
    std::lock_guard<std::mutex> lk(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
  }
  // Both lists iterate sorted; merge them to keep the combined list sorted.
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size());
  auto c = counters.begin();
  auto g = gauges.begin();
  while (c != counters.end() || g != gauges.end()) {
    bool take_counter =
        g == gauges.end() || (c != counters.end() && c->first < g->first);
    if (take_counter) {
      out.emplace_back(c->first, static_cast<double>(c->second->value()));
      ++c;
    } else {
      out.emplace_back(g->first, g->second());
      ++g;
    }
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::SampleTimers() const {
  std::vector<std::pair<std::string, const Timer*>> timers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    timers.reserve(timers_.size());
    for (const auto& [name, timer] : timers_) {
      timers.emplace_back(name, timer.get());
    }
  }
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(timers.size());
  for (const auto& [name, timer] : timers) {
    out.emplace_back(name, timer->TakeSnapshot());
  }
  return out;
}

size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.size();
}

size_t MetricsRegistry::gauge_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::timer_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return timers_.size();
}

}  // namespace bistream
