#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace bistream {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  // NaN/Inf are not representable in JSON; emit null rather than junk.
  if (!std::isfinite(d)) {
    out->append("null");
    return;
  }
  // Integers (the common case: counters, timestamps) print exactly.
  if (d == std::floor(d) && std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", d);
  out->append(buf);
}

/// Recursive-descent parser over a raw buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue v;
    RETURN_NOT_OK(ParseValue(&v));
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue value, JsonValue* out) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    RETURN_NOT_OK(Expect('"'));
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            s.push_back('"');
            break;
          case '\\':
            s.push_back('\\');
            break;
          case '/':
            s.push_back('/');
            break;
          case 'n':
            s.push_back('\n');
            break;
          case 't':
            s.push_back('\t');
            break;
          case 'r':
            s.push_back('\r');
            break;
          case 'b':
            s.push_back('\b');
            break;
          case 'f':
            s.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // Telemetry strings are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              s.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s.push_back(static_cast<char>(0xC0 | (code >> 6)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              s.push_back(static_cast<char>(0xE0 | (code >> 12)));
              s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        s.push_back(c);
      }
    }
    *out = std::move(s);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    RETURN_NOT_OK(Expect('['));
    JsonValue arr = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) {
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      RETURN_NOT_OK(ParseValue(&element));
      arr.Push(std::move(element));
      SkipSpace();
      if (Consume(']')) break;
      RETURN_NOT_OK(Expect(','));
    }
    *out = std::move(arr);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out) {
    RETURN_NOT_OK(Expect('{'));
    JsonValue obj = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      std::string key;
      RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      RETURN_NOT_OK(ParseValue(&value));
      obj.Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) break;
      RETURN_NOT_OK(Expect(','));
    }
    *out = std::move(obj);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue& JsonValue::Push(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  BISTREAM_CHECK(type_ == Type::kArray) << "Push on non-array JsonValue";
  elements_.push_back(std::move(v));
  return elements_.back();
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  BISTREAM_CHECK(type_ == Type::kObject) << "Set on non-object JsonValue";
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return member.second;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return elements_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  BISTREAM_CHECK(type_ == Type::kArray);
  BISTREAM_CHECK_LT(index, elements_.size());
  return elements_[index];
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (elements_.empty()) {
        out->append("[]");
        break;
      }
      // Flat arrays of scalars stay on one line; they dominate time series
      // output and pretty-printing them one-per-line would bloat artifacts.
      bool scalars_only = true;
      for (const JsonValue& e : elements_) {
        if (e.is_array() || e.is_object()) {
          scalars_only = false;
          break;
        }
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (!scalars_only) {
          newline(depth + 1);
        } else if (i > 0 && pretty) {
          out->push_back(' ');
        }
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      if (!scalars_only) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

Status WriteJsonFile(const std::string& path, const JsonValue& value,
                     int indent) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << value.Dump(indent) << "\n";
  out.flush();
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::in);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::Parse(buf.str());
}

}  // namespace bistream
