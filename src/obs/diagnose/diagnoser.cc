#include "obs/diagnose/diagnoser.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace bistream {

namespace {

/// Splits "kind.id.metric" into (kind.id, metric); returns false for names
/// without two dots (engine-scope metrics).
bool SplitScoped(const std::string& name, std::string* scope,
                 std::string* metric) {
  size_t last = name.rfind('.');
  if (last == std::string::npos) return false;
  size_t first = name.find('.');
  if (first == last) return false;
  *scope = name.substr(0, last);
  *metric = name.substr(last + 1);
  return true;
}

void SetStage(JsonValue* stages, double* accounted, const char* key,
              double ns) {
  stages->Set(key, JsonValue::Number(ns));
  *accounted += ns;
}

}  // namespace

Diagnoser::Diagnoser(const MetricsRegistry* registry, DiagnoserOptions options,
                     UnitMetaFn units_fn)
    : registry_(registry),
      options_(options),
      units_fn_(std::move(units_fn)),
      log_(options.max_events),
      profiler_(units_fn_),
      detectors_(options.detectors),
      auditor_(AuditorOptions{options.strict_audit, options.max_expiry_lag_us}) {
  BISTREAM_CHECK(registry_ != nullptr);
}

void Diagnoser::OnSample(SimTime now, const SampleRow& row) {
  if (finalized_) return;
  uint64_t window = windows_++;
  profiler_.OnSample(now, window, row);
  detectors_.OnWindow(now, window, profiler_.current(), &log_);
  if (options_.audit) auditor_.OnSample(now, window, row, &log_);
}

void Diagnoser::Finalize(SimTime now, const FinalCounters& counters) {
  if (finalized_) return;
  finalized_ = true;
  makespan_ns_ = counters.makespan_ns > 0 ? counters.makespan_ns : now;
  if (options_.audit) {
    auditor_.Finalize(now, windows_ == 0 ? 0 : windows_ - 1, counters, &log_);
  }
}

std::optional<SimTime> Diagnoser::HeartbeatSilence(uint32_t unit,
                                                   SimTime now) const {
  std::optional<double> last = registry_->ReadGauge(
      MetricsRegistry::ScopedName("joiner", unit, "last_progress_ns"));
  if (!last.has_value()) return std::nullopt;
  SimTime last_ns = static_cast<SimTime>(*last);
  return now > last_ns ? now - last_ns : 0;
}

JsonValue Diagnoser::DiagnosticsJson() const {
  JsonValue out = log_.ToJson();
  out.Set("windows", JsonValue::Number(windows_));
  out.Set("finalized", JsonValue::Bool(finalized_));
  return out;
}

JsonValue Diagnoser::ProfileJson() const {
  // Group the registry's final sample by unit scope. The registry is the
  // single source of truth; the profiler only contributes run peaks.
  std::map<std::string, std::map<std::string, double>> scopes;
  for (const auto& [name, value] : registry_->Sample()) {
    std::string scope;
    std::string metric;
    if (!SplitScoped(name, &scope, &metric)) continue;
    scopes[scope][metric] = value;
  }

  std::map<uint32_t, UnitMeta> meta_by_id;
  for (const UnitMeta& meta : units_fn_()) meta_by_id[meta.id] = meta;

  const double makespan =
      makespan_ns_ > 0 ? static_cast<double>(makespan_ns_) : 0.0;

  JsonValue nodes = JsonValue::Array();
  for (const auto& [scope, metrics] : scopes) {
    bool is_joiner = scope.rfind("joiner.", 0) == 0;
    bool is_router = scope.rfind("router.", 0) == 0;
    if (!is_joiner && !is_router) continue;
    auto metric = [&metrics = metrics](const char* key) {
      auto it = metrics.find(key);
      return it == metrics.end() ? 0.0 : it->second;
    };
    // Both "joiner." and "router." are 7 characters.
    uint32_t id =
        static_cast<uint32_t>(std::strtoul(scope.c_str() + 7, nullptr, 10));

    JsonValue node = JsonValue::Object();
    node.Set("scope", JsonValue::String(scope));
    node.Set("kind", JsonValue::String(is_joiner ? "joiner" : "router"));
    node.Set("id", JsonValue::Number(static_cast<uint64_t>(id)));
    if (is_joiner) {
      auto it = meta_by_id.find(id);
      if (it != meta_by_id.end()) {
        node.Set("relation", JsonValue::String(
                                 it->second.relation == kRelationR ? "R" : "S"));
        node.Set("subgroup",
                 JsonValue::Number(static_cast<uint64_t>(it->second.subgroup)));
        node.Set("active", JsonValue::Bool(it->second.active));
        node.Set("live", JsonValue::Bool(it->second.live));
      }
    }

    double busy_ns = metric("busy_ns");
    node.Set("busy_ns", JsonValue::Number(busy_ns));
    node.Set("busy_fraction",
             JsonValue::Number(makespan > 0
                                   ? std::clamp(busy_ns / makespan, 0.0, 1.0)
                                   : 0.0));

    JsonValue stages = JsonValue::Object();
    double accounted = 0;
    if (is_joiner) {
      SetStage(&stages, &accounted, "store", metric("busy_store_ns"));
      SetStage(&stages, &accounted, "probe", metric("busy_probe_ns"));
      SetStage(&stages, &accounted, "expire", metric("busy_expire_ns"));
      SetStage(&stages, &accounted, "punctuation", metric("busy_punct_ns"));
      SetStage(&stages, &accounted, "replay", metric("busy_replay_ns"));
      SetStage(&stages, &accounted, "message", metric("busy_msg_ns"));
    } else {
      SetStage(&stages, &accounted, "tuple", metric("busy_tuple_ns"));
      SetStage(&stages, &accounted, "punctuation", metric("busy_punct_ns"));
      SetStage(&stages, &accounted, "batch", metric("busy_batch_ns"));
      SetStage(&stages, &accounted, "control", metric("busy_control_ns"));
    }
    node.Set("stage_ns", std::move(stages));

    JsonValue shares = JsonValue::Object();
    for (const auto& [key, value] : node.Find("stage_ns")->members()) {
      shares.Set(key, JsonValue::Number(
                          busy_ns > 0 ? value.AsNumber() / busy_ns : 0.0));
    }
    node.Set("stage_share", std::move(shares));
    // The stage buckets are designed to partition busy_ns exactly; surface
    // the residual so drift is visible in the artifact instead of silent.
    node.Set("unattributed_ns", JsonValue::Number(busy_ns - accounted));

    node.Set("queue_peak", JsonValue::Number(metric("queue_peak")));
    if (is_joiner) {
      node.Set("peak_window_busy_fraction",
               JsonValue::Number(profiler_.PeakWindowBusyFraction(id)));
      node.Set("peak_window_queue_hwm",
               JsonValue::Number(profiler_.PeakWindowQueueHwm(id)));
      node.Set("stored", JsonValue::Number(metric("stored")));
      node.Set("probes", JsonValue::Number(metric("probes")));
      node.Set("results", JsonValue::Number(metric("results")));
    } else {
      node.Set("tuples_routed", JsonValue::Number(metric("tuples_routed")));
    }
    nodes.Push(std::move(node));
  }

  JsonValue out = JsonValue::Object();
  out.Set("makespan_ns", JsonValue::Number(makespan));
  out.Set("windows", JsonValue::Number(windows_));
  out.Set("nodes", std::move(nodes));
  return out;
}

}  // namespace bistream
