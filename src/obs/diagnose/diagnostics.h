/// \file diagnostics.h
/// \brief Structured diagnostic events + the bounded, deterministic log.
///
/// Every online detector and the invariant auditor report through one
/// DiagnosticLog. Events are plain data — virtual time, sample-window
/// ordinal, detector name, severity, the scope they implicate
/// ("joiner.5", "side.R", "subgroup.S.2", "engine"), a score and the
/// threshold it tripped — so the RunReport can serialize them and the
/// bistream-inspect tool can render a timeline. Emission order is fully
/// determined by the virtual clock and the registry's sorted sample rows,
/// which is what makes the byte-identical determinism tests possible.

#ifndef BISTREAM_OBS_DIAGNOSE_DIAGNOSTICS_H_
#define BISTREAM_OBS_DIAGNOSE_DIAGNOSTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/json.h"
#include "common/time.h"

namespace bistream {

enum class DiagnosticSeverity : uint8_t {
  kInfo = 0,     ///< informational (e.g. an alarm clearing)
  kWarning = 1,  ///< a health signal (backpressure, skew, straggler)
  kError = 2,    ///< an invariant violation (auditor only)
};

const char* DiagnosticSeverityName(DiagnosticSeverity severity);

/// \brief One detector or auditor finding.
struct DiagnosticEvent {
  /// Virtual time of the sample that produced the event.
  SimTime time = 0;
  /// Sample-window ordinal (0-based) within the run.
  uint64_t window = 0;
  /// Producing detector: "backpressure", "skew", "straggler", "audit".
  std::string detector;
  DiagnosticSeverity severity = DiagnosticSeverity::kInfo;
  /// What the event implicates: "joiner.<id>", "router.<id>", "side.R",
  /// "subgroup.<side>.<n>", or "engine".
  std::string scope;
  /// Detector-specific magnitude (imbalance ratio, z-score, queue depth…).
  double score = 0;
  /// The configured trip point the score is compared against.
  double threshold = 0;
  /// Human-readable one-liner.
  std::string message;

  JsonValue ToJson() const;
};

/// \brief Append-only event log with a detail cap and per-(detector,
/// severity) counts. The cap bounds artifact size on pathological runs;
/// counts and totals keep accumulating past it.
class DiagnosticLog {
 public:
  explicit DiagnosticLog(size_t max_events = 256) : max_events_(max_events) {}

  void Emit(DiagnosticEvent event);

  /// \brief Retained events (at most max_events, emission order).
  const std::vector<DiagnosticEvent>& events() const { return events_; }
  uint64_t total_emitted() const { return total_emitted_; }
  uint64_t dropped() const { return total_emitted_ - events_.size(); }
  /// \brief Number of kError events (invariant violations).
  uint64_t errors() const { return errors_; }

  /// \brief {"total_events", "errors", "dropped", "counts", "events"}.
  JsonValue ToJson() const;

  /// \brief Canonical single-line serialization; the detector-determinism
  /// tests compare two runs' strings byte-wise.
  std::string Serialize() const { return ToJson().Dump(); }

 private:
  size_t max_events_;
  std::vector<DiagnosticEvent> events_;
  uint64_t total_emitted_ = 0;
  uint64_t errors_ = 0;
  /// "detector/severity" -> occurrences, e.g. "skew/warning" -> 3.
  std::map<std::string, uint64_t> counts_;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_DIAGNOSE_DIAGNOSTICS_H_
