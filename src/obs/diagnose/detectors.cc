#include "obs/diagnose/detectors.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bistream {

namespace {

char SideLetter(RelationId relation) {
  return relation == kRelationR ? 'R' : 'S';
}

std::string Round2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

double GiniCoefficient(std::vector<double> loads) {
  if (loads.size() < 2) return 0.0;
  std::sort(loads.begin(), loads.end());
  double total = 0;
  double weighted = 0;
  const double n = static_cast<double>(loads.size());
  for (size_t i = 0; i < loads.size(); ++i) {
    total += loads[i];
    weighted += static_cast<double>(i + 1) * loads[i];
  }
  if (total <= 0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

void Detectors::OnWindow(SimTime now, uint64_t window,
                         const std::vector<UnitWindow>& units,
                         DiagnosticLog* log) {
  if (window < options_.warmup_windows) return;
  if (options_.backpressure) Backpressure(now, window, units, log);
  if (options_.skew) Skew(now, window, units, log);
  if (options_.straggler) Straggler(now, window, units, log);
}

void Detectors::SetAlarm(const std::string& detector, const std::string& scope,
                         bool firing, SimTime now, uint64_t window,
                         double score, double threshold,
                         const std::string& message, DiagnosticLog* log) {
  Alarm& alarm = alarms_[detector + "|" + scope];
  if (firing == alarm.raised) return;
  alarm.raised = firing;
  DiagnosticEvent event;
  event.time = now;
  event.window = window;
  event.detector = detector;
  event.severity =
      firing ? DiagnosticSeverity::kWarning : DiagnosticSeverity::kInfo;
  event.scope = scope;
  event.score = score;
  event.threshold = threshold;
  event.message = firing ? message : detector + " cleared on " + scope;
  log->Emit(std::move(event));
}

void Detectors::Backpressure(SimTime now, uint64_t window,
                             const std::vector<UnitWindow>& units,
                             DiagnosticLog* log) {
  for (const UnitWindow& u : units) {
    QueueTrend& trend = queue_trends_[u.meta.id];
    bool grew = trend.has_last && u.queue_depth > trend.last_depth;
    trend.growth_streak = grew ? trend.growth_streak + 1 : 0;
    trend.last_depth = u.queue_depth;
    trend.has_last = true;

    bool firing = trend.growth_streak >= options_.bp_growth_windows &&
                  u.queue_depth >= options_.bp_min_queue;
    SetAlarm("backpressure",
             "joiner." + std::to_string(u.meta.id), firing, now, window,
             u.queue_depth, options_.bp_min_queue,
             "queue grew " + std::to_string(trend.growth_streak) +
                 " consecutive windows to depth " + Round2(u.queue_depth) +
                 " (arrivals outpace drain)",
             log);
  }
}

void Detectors::Skew(SimTime now, uint64_t window,
                     const std::vector<UnitWindow>& units,
                     DiagnosticLog* log) {
  for (RelationId side : {kRelationR, kRelationS}) {
    std::vector<const UnitWindow*> members;
    for (const UnitWindow& u : units) {
      if (u.meta.relation == side && u.meta.active && u.fresh) {
        members.push_back(&u);
      }
    }
    std::string side_scope = std::string("side.") + SideLetter(side);
    if (members.size() < 2) {
      SetAlarm("skew", side_scope, false, now, window, 0, 0, "", log);
      continue;
    }
    double total = 0;
    double max_load = 0;
    const UnitWindow* hottest = members.front();
    std::vector<double> loads;
    loads.reserve(members.size());
    std::map<uint32_t, double> subgroup_loads;
    for (const UnitWindow* u : members) {
      total += u->load;
      loads.push_back(u->load);
      subgroup_loads[u->meta.subgroup] += u->load;
      if (u->load > max_load) {
        max_load = u->load;
        hottest = u;
      }
    }
    double mean = total / static_cast<double>(members.size());
    double imbalance = mean > 0 ? max_load / mean : 0.0;
    double gini = GiniCoefficient(loads);
    bool firing = total >= options_.skew_min_load &&
                  (imbalance >= options_.skew_imbalance ||
                   gini >= options_.skew_gini);

    // Name the hot subgroup too when the side is hash-partitioned: that is
    // the actionable unit of repartitioning.
    uint32_t hot_subgroup = hottest->meta.subgroup;
    std::string message =
        "load imbalance on side " + std::string(1, SideLetter(side)) +
        ": max/mean=" + Round2(imbalance) + " gini=" + Round2(gini) +
        ", hottest joiner." + std::to_string(hottest->meta.id);
    if (subgroup_loads.size() > 1) {
      message += " (subgroup." + std::string(1, SideLetter(side)) + "." +
                 std::to_string(hot_subgroup) + ")";
    }
    SetAlarm("skew", side_scope, firing, now, window, imbalance,
             options_.skew_imbalance, message, log);
  }
}

void Detectors::Straggler(SimTime now, uint64_t window,
                          const std::vector<UnitWindow>& units,
                          DiagnosticLog* log) {
  for (RelationId side : {kRelationR, kRelationS}) {
    std::vector<const UnitWindow*> members;
    for (const UnitWindow& u : units) {
      if (u.meta.relation == side && u.meta.active && u.fresh) {
        members.push_back(&u);
      }
    }
    // A z-score against fewer than three peers is meaningless.
    double mean = 0;
    double sigma = 0;
    if (members.size() >= 3) {
      for (const UnitWindow* u : members) mean += u->busy_fraction;
      mean /= static_cast<double>(members.size());
      for (const UnitWindow* u : members) {
        double d = u->busy_fraction - mean;
        sigma += d * d;
      }
      sigma = std::sqrt(sigma / static_cast<double>(members.size()));
    }
    for (const UnitWindow* u : members) {
      bool firing = false;
      double z = 0;
      if (members.size() >= 3 && sigma >= options_.straggler_min_sigma &&
          u->busy_fraction >= options_.straggler_min_busy) {
        z = (u->busy_fraction - mean) / sigma;
        firing = z >= options_.straggler_z;
      }
      SetAlarm("straggler", "joiner." + std::to_string(u->meta.id), firing,
               now, window, z, options_.straggler_z,
               "joiner." + std::to_string(u->meta.id) + " busy " +
                   Round2(u->busy_fraction) + " vs side " +
                   std::string(1, SideLetter(side)) + " mean " + Round2(mean) +
                   " (z=" + Round2(z) + ")",
               log);
    }
  }
}

}  // namespace bistream
