/// \file diagnoser.h
/// \brief The diagnosis facade: profiler + detectors + auditor behind one
/// sampler observer.
///
/// The engine installs Diagnoser::OnSample as the TelemetrySampler's sample
/// observer, so diagnosis runs exactly once per sample window, inside the
/// existing sampling tick — it schedules no events and charges no virtual
/// time, keeping diagnosed runs bit-identical to plain ones. At the end of
/// the run the engine calls Finalize() with its closing counters; the
/// resulting `diagnostics` and `profile` JSON sections land in the
/// RunReport artifact that `bistream-inspect` reads offline.
///
/// The ops controllers consume the same object online: the autoscaler reads
/// SmoothedBusyFraction() instead of re-deriving utilization windows, and
/// the failure detector reads HeartbeatSilence().

#ifndef BISTREAM_OBS_DIAGNOSE_DIAGNOSER_H_
#define BISTREAM_OBS_DIAGNOSE_DIAGNOSER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/diagnose/auditor.h"
#include "obs/diagnose/detectors.h"
#include "obs/diagnose/diagnostics.h"
#include "obs/diagnose/profiler.h"
#include "obs/metrics.h"

namespace bistream {

struct DiagnoserOptions {
  DetectorOptions detectors;
  bool audit = true;
  /// Audit violations abort (tests) instead of only logging kError.
  bool strict_audit = false;
  /// Theorem-1 bound for the window audit (µs); 0 skips it (full history).
  double max_expiry_lag_us = 0;
  /// Detail cap on retained DiagnosticEvents.
  size_t max_events = 256;
};

class Diagnoser {
 public:
  /// \param registry the engine's metric registry (not owned)
  /// \param units_fn topology metadata callback (engine-installed)
  Diagnoser(const MetricsRegistry* registry, DiagnoserOptions options,
            UnitMetaFn units_fn);

  /// \brief Sampler observer: one call per sample window, with the full
  /// sorted row (fractions included). Must stay side-effect free towards
  /// the simulation.
  void OnSample(SimTime now, const SampleRow& row);

  /// \brief End-of-run audit + profile freeze. Idempotent.
  void Finalize(SimTime now, const FinalCounters& counters);
  bool finalized() const { return finalized_; }

  const DiagnosticLog& log() const { return log_; }
  const StageProfiler& profiler() const { return profiler_; }
  uint64_t windows() const { return windows_; }

  /// \brief EWMA busy fraction for the autoscaler; nullopt until the unit
  /// has a completed window.
  std::optional<double> SmoothedBusyFraction(uint32_t unit) const {
    return profiler_.SmoothedBusyFraction(unit);
  }

  /// \brief Heartbeat silence for the failure detector: now minus the
  /// unit's `last_progress_ns` gauge; nullopt when the gauge is missing.
  std::optional<SimTime> HeartbeatSilence(uint32_t unit, SimTime now) const;

  /// \brief The artifact's "diagnostics" section.
  JsonValue DiagnosticsJson() const;

  /// \brief The artifact's "profile" section: one node entry per router and
  /// joiner with cumulative stage decomposition, shares, and window peaks.
  JsonValue ProfileJson() const;

 private:
  const MetricsRegistry* registry_;
  DiagnoserOptions options_;
  UnitMetaFn units_fn_;
  DiagnosticLog log_;
  StageProfiler profiler_;
  Detectors detectors_;
  InvariantAuditor auditor_;
  uint64_t windows_ = 0;
  bool finalized_ = false;
  SimTime makespan_ns_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_DIAGNOSE_DIAGNOSER_H_
