/// \file profiler.h
/// \brief Per-stage, per-window cost profiler over the sampled metric rows.
///
/// The engine exports cumulative per-unit stage gauges (busy_store_ns,
/// busy_probe_ns, …, stored, probes, queue_hwm). The profiler consumes each
/// sampled row, differences it against the previous sample, and materializes
/// one UnitWindow per live joiner per sample window: windowed busy fraction,
/// per-stage virtual-time deltas, store+probe load, queue depth and the
/// in-window queue high-watermark. Detectors read these windows; the
/// autoscaler reads the EWMA-smoothed busy fraction. Everything here is
/// derived state — the profiler never touches the engine and charges no
/// virtual time.
///
/// The obs layer sits below core, so unit metadata (relation side, subgroup,
/// lifecycle state) flows in through a UnitMetaFn callback the engine
/// installs.

#ifndef BISTREAM_OBS_DIAGNOSE_PROFILER_H_
#define BISTREAM_OBS_DIAGNOSE_PROFILER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/time_series.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief What the engine knows about one joiner unit (topology metadata the
/// obs layer cannot reach directly).
struct UnitMeta {
  uint32_t id = 0;
  RelationId relation = kRelationR;
  uint32_t subgroup = 0;
  bool active = false;  ///< kActive (drives scaling/skew decisions)
  bool live = false;    ///< kActive or kDraining (still serving)
};

/// \brief Supplies the current unit list at each sample (engine-installed).
using UnitMetaFn = std::function<std::vector<UnitMeta>()>;

/// \brief One joiner's view of one sample window (all deltas are
/// window-local; queue_depth is the sample-instant value).
struct UnitWindow {
  UnitMeta meta;
  bool fresh = false;  ///< a previous sample existed, so deltas are valid
  double busy_fraction = 0;
  double store_ns = 0;
  double probe_ns = 0;
  double expire_ns = 0;
  double punct_ns = 0;
  double replay_ns = 0;
  double msg_ns = 0;
  /// Store + probe operations this window — the skew detector's load.
  double load = 0;
  double queue_depth = 0;
  double queue_hwm = 0;
};

/// \brief Reads one gauge value out of a sorted sample row.
double RowValue(const SampleRow& row, const std::string& name,
                double fallback = 0.0);

/// \brief Windowed per-unit stage profiler.
class StageProfiler {
 public:
  explicit StageProfiler(UnitMetaFn units_fn);

  /// \brief Consumes one sampled row (sorted by name).
  void OnSample(SimTime now, uint64_t window, const SampleRow& row);

  /// \brief The most recent window's per-unit views (live units only).
  const std::vector<UnitWindow>& current() const { return current_; }
  uint64_t windows() const { return windows_; }

  /// \brief EWMA over the unit's per-window busy fractions (alpha 0.25).
  /// nullopt until the unit has completed one full window — callers fall
  /// back to their own derivation then.
  std::optional<double> SmoothedBusyFraction(uint32_t unit) const;

  /// \brief Run peaks, for the profile export.
  double PeakWindowBusyFraction(uint32_t unit) const;
  double PeakWindowQueueHwm(uint32_t unit) const;

 private:
  struct PerUnit {
    bool has_prev = false;
    SimTime prev_time = 0;
    double prev_busy_ns = 0;
    double prev_store_ns = 0;
    double prev_probe_ns = 0;
    double prev_expire_ns = 0;
    double prev_punct_ns = 0;
    double prev_replay_ns = 0;
    double prev_msg_ns = 0;
    double prev_load = 0;
    double ewma_busy = 0;
    bool ewma_valid = false;
    double peak_busy_fraction = 0;
    double peak_queue_hwm = 0;
  };

  UnitMetaFn units_fn_;
  std::map<uint32_t, PerUnit> units_;
  std::vector<UnitWindow> current_;
  uint64_t windows_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_DIAGNOSE_PROFILER_H_
