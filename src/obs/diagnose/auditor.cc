#include "obs/diagnose/auditor.h"

#include <array>

#include "common/logging.h"

namespace bistream {

namespace {

std::string LastComponent(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

bool InvariantAuditor::IsMonotone(const std::string& name) {
  std::string comp = LastComponent(name);
  if (TelemetrySampler::IsBusyCumulative(comp)) return true;
  static constexpr std::array<const char*, 15> kMonotone = {
      "input_tuples", "results",       "stored",        "probes",
      "messages",     "bytes",         "tuples_routed", "punctuations",
      "round",        "release_round", "crashes",       "recoveries",
      "checkpoints",  "queue_peak",    "last_progress_ns"};
  for (const char* candidate : kMonotone) {
    if (comp == candidate) return true;
  }
  return false;
}

void InvariantAuditor::Violation(SimTime now, uint64_t window,
                                 const std::string& scope, double score,
                                 double threshold, const std::string& message,
                                 DiagnosticLog* log) {
  ++violations_;
  DiagnosticEvent event;
  event.time = now;
  event.window = window;
  event.detector = "audit";
  event.severity = DiagnosticSeverity::kError;
  event.scope = scope;
  event.score = score;
  event.threshold = threshold;
  event.message = message;
  log->Emit(std::move(event));
  BISTREAM_CHECK(!options_.strict) << "invariant violation: " << message;
}

void InvariantAuditor::OnSample(SimTime now, uint64_t window,
                                const SampleRow& row, DiagnosticLog* log) {
  double stored_total = -1;
  double routed_total = 0;
  double replayed_total = 0;
  bool saw_router = false;
  for (const auto& [name, value] : row) {
    // Ordering/monotonicity: cumulative counters and protocol rounds never
    // regress. Half-a-count tolerance absorbs double rounding.
    if (IsMonotone(name)) {
      auto it = last_values_.find(name);
      if (it != last_values_.end() && value < it->second - 0.5) {
        Violation(now, window, name, value, it->second,
                  "monotone metric '" + name + "' regressed from " +
                      std::to_string(it->second) + " to " +
                      std::to_string(value),
                  log);
      }
      last_values_[name] = value;
    }
    // Window: Theorem-1 expiry lag bounded by window + slack.
    if (options_.max_expiry_lag_us > 0 &&
        LastComponent(name) == "expiry_lag_us" &&
        value > options_.max_expiry_lag_us + 0.5) {
      Violation(now, window, name, value, options_.max_expiry_lag_us,
                "Theorem-1 expiry lag " + std::to_string(value) +
                    "us exceeds window + slack = " +
                    std::to_string(options_.max_expiry_lag_us) + "us on " +
                    name,
                log);
    }
    if (name == "engine.stored") stored_total = value;
    if (StartsWith(name, "router.")) {
      std::string comp = LastComponent(name);
      if (comp == "tuples_routed") {
        routed_total += value;
        saw_router = true;
      } else if (comp == "replayed") {
        replayed_total += value;
      }
    }
  }
  // Conservation (instantaneous direction): a tuple must be routed (or
  // replayed to a replacement) before any joiner can have stored it.
  if (stored_total >= 0 && saw_router &&
      stored_total > routed_total + replayed_total + 0.5) {
    Violation(now, window, "engine", stored_total,
              routed_total + replayed_total,
              "conservation: stored " + std::to_string(stored_total) +
                  " exceeds routed " + std::to_string(routed_total) +
                  " + replayed " + std::to_string(replayed_total),
              log);
  }
}

void InvariantAuditor::Finalize(SimTime now, uint64_t window,
                                const FinalCounters& c, DiagnosticLog* log) {
  // Routers are immortal and the source edge is lossless, so every injected
  // tuple is either routed into a round or counted as arriving after the
  // stop-flush.
  if (c.routed + c.dropped_after_stop != c.input_tuples) {
    Violation(now, window, "engine",
              static_cast<double>(c.routed + c.dropped_after_stop),
              static_cast<double>(c.input_tuples),
              "conservation: routed " + std::to_string(c.routed) +
                  " + dropped_after_stop " +
                  std::to_string(c.dropped_after_stop) + " != input " +
                  std::to_string(c.input_tuples),
              log);
  }
  bool fault_free = c.crashes == 0 && c.messages_dropped == 0 &&
                    c.messages_dropped_dead == 0 &&
                    c.messages_lost_on_crash == 0;
  if (fault_free) {
    // Every routed tuple is stored by exactly one unit of its subgroup.
    if (c.stored != c.routed) {
      Violation(now, window, "engine", static_cast<double>(c.stored),
                static_cast<double>(c.routed),
                "conservation: fault-free run stored " +
                    std::to_string(c.stored) + " != routed " +
                    std::to_string(c.routed),
                log);
    }
    if (c.suppressed_duplicates != 0) {
      Violation(now, window, "engine",
                static_cast<double>(c.suppressed_duplicates), 0,
                "fault-free run suppressed " +
                    std::to_string(c.suppressed_duplicates) +
                    " replay duplicates",
                log);
    }
  } else if (c.stored > c.routed + c.replayed_messages) {
    Violation(now, window, "engine", static_cast<double>(c.stored),
              static_cast<double>(c.routed + c.replayed_messages),
              "conservation: stored " + std::to_string(c.stored) +
                  " exceeds routed + replayed " +
                  std::to_string(c.routed + c.replayed_messages),
              log);
  }
  // Emitted results reach the sink minus exactly the replay-flagged
  // duplicates the recovery filter absorbed.
  if (c.suppressed_duplicates > c.results) {
    Violation(now, window, "engine",
              static_cast<double>(c.suppressed_duplicates),
              static_cast<double>(c.results),
              "suppressed duplicates exceed emitted results", log);
  }
}

}  // namespace bistream
