/// \file auditor.h
/// \brief Online invariant auditor over the sampled metric rows.
///
/// Three invariant families, all checked with O(1) retained state per
/// metric:
///
///  - ordering: cumulative counters and protocol rounds never regress
///    (pairwise-FIFO + punctuation monotonicity surface as monotone
///    router rounds, joiner release rounds, and every `*_ns`/count
///    counter);
///  - window: each joiner's Theorem-1 expiry lag (most advanced expiry
///    scan minus oldest surviving sub-index) stays within
///    window + expiry_slack — state neither outlives the bound nor is
///    dropped early enough to have been probed;
///  - conservation: stores never exceed routed tuples plus recovery
///    replays at any sample instant, and at Finalize the full balance
///    holds (fault-free runs: routed + dropped_after_stop == input and
///    stored == routed; emitted results == sink deliveries + suppressed
///    replay duplicates).
///
/// Violations emit kError DiagnosticEvents; in strict mode (tests) they
/// abort via BISTREAM_CHECK so regressions fail loudly.

#ifndef BISTREAM_OBS_DIAGNOSE_AUDITOR_H_
#define BISTREAM_OBS_DIAGNOSE_AUDITOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/diagnose/diagnostics.h"
#include "obs/time_series.h"

namespace bistream {

/// \brief End-of-run totals the engine hands to Finalize().
struct FinalCounters {
  uint64_t input_tuples = 0;
  uint64_t routed = 0;
  uint64_t dropped_after_stop = 0;
  uint64_t stored = 0;
  uint64_t replayed_messages = 0;
  uint64_t results = 0;
  uint64_t suppressed_duplicates = 0;
  uint64_t crashes = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_dropped_dead = 0;
  uint64_t messages_lost_on_crash = 0;
  SimTime makespan_ns = 0;
};

struct AuditorOptions {
  /// Abort on violation instead of only logging kError (tests).
  bool strict = false;
  /// Upper bound for each joiner's `expiry_lag_us` gauge; 0 disables the
  /// window check (full-history runs have no expiry to bound).
  double max_expiry_lag_us = 0;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditorOptions options) : options_(options) {}

  /// \brief Checks one sampled row (sorted by name).
  void OnSample(SimTime now, uint64_t window, const SampleRow& row,
                DiagnosticLog* log);

  /// \brief End-of-run balance checks over the engine's final counters.
  void Finalize(SimTime now, uint64_t window, const FinalCounters& counters,
                DiagnosticLog* log);

  uint64_t violations() const { return violations_; }

 private:
  /// True for metrics that must never decrease (matched on the final
  /// name component).
  static bool IsMonotone(const std::string& name);
  void Violation(SimTime now, uint64_t window, const std::string& scope,
                 double score, double threshold, const std::string& message,
                 DiagnosticLog* log);

  AuditorOptions options_;
  uint64_t violations_ = 0;
  std::map<std::string, double> last_values_;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_DIAGNOSE_AUDITOR_H_
