#include "obs/diagnose/profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace bistream {

double RowValue(const SampleRow& row, const std::string& name,
                double fallback) {
  auto it = std::lower_bound(
      row.begin(), row.end(), name,
      [](const std::pair<std::string, double>& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it == row.end() || it->first != name) return fallback;
  return it->second;
}

StageProfiler::StageProfiler(UnitMetaFn units_fn)
    : units_fn_(std::move(units_fn)) {
  BISTREAM_CHECK(units_fn_ != nullptr);
}

void StageProfiler::OnSample(SimTime now, uint64_t window,
                             const SampleRow& row) {
  (void)window;
  current_.clear();
  constexpr double kAlpha = 0.25;
  for (const UnitMeta& meta : units_fn_()) {
    if (!meta.live) continue;
    std::string scope = MetricsRegistry::ScopedName("joiner", meta.id, "");
    double busy_ns = RowValue(row, scope + "busy_ns");
    double store_ns = RowValue(row, scope + "busy_store_ns");
    double probe_ns = RowValue(row, scope + "busy_probe_ns");
    double expire_ns = RowValue(row, scope + "busy_expire_ns");
    double punct_ns = RowValue(row, scope + "busy_punct_ns");
    double replay_ns = RowValue(row, scope + "busy_replay_ns");
    double msg_ns = RowValue(row, scope + "busy_msg_ns");
    double load = RowValue(row, scope + "stored") + RowValue(row, scope + "probes");

    PerUnit& unit = units_[meta.id];
    UnitWindow view;
    view.meta = meta;
    view.queue_depth = RowValue(row, scope + "queue_depth");
    view.queue_hwm = RowValue(row, scope + "queue_hwm");
    if (unit.has_prev && now > unit.prev_time) {
      double dt = static_cast<double>(now - unit.prev_time);
      view.fresh = true;
      view.busy_fraction =
          std::clamp((busy_ns - unit.prev_busy_ns) / dt, 0.0, 1.0);
      view.store_ns = std::max(0.0, store_ns - unit.prev_store_ns);
      view.probe_ns = std::max(0.0, probe_ns - unit.prev_probe_ns);
      view.expire_ns = std::max(0.0, expire_ns - unit.prev_expire_ns);
      view.punct_ns = std::max(0.0, punct_ns - unit.prev_punct_ns);
      view.replay_ns = std::max(0.0, replay_ns - unit.prev_replay_ns);
      view.msg_ns = std::max(0.0, msg_ns - unit.prev_msg_ns);
      view.load = std::max(0.0, load - unit.prev_load);
      unit.ewma_busy = unit.ewma_valid
                           ? kAlpha * view.busy_fraction +
                                 (1.0 - kAlpha) * unit.ewma_busy
                           : view.busy_fraction;
      unit.ewma_valid = true;
      unit.peak_busy_fraction =
          std::max(unit.peak_busy_fraction, view.busy_fraction);
      unit.peak_queue_hwm = std::max(unit.peak_queue_hwm, view.queue_hwm);
    }
    unit.has_prev = true;
    unit.prev_time = now;
    unit.prev_busy_ns = busy_ns;
    unit.prev_store_ns = store_ns;
    unit.prev_probe_ns = probe_ns;
    unit.prev_expire_ns = expire_ns;
    unit.prev_punct_ns = punct_ns;
    unit.prev_replay_ns = replay_ns;
    unit.prev_msg_ns = msg_ns;
    unit.prev_load = load;
    current_.push_back(std::move(view));
  }
  ++windows_;
}

std::optional<double> StageProfiler::SmoothedBusyFraction(
    uint32_t unit) const {
  auto it = units_.find(unit);
  if (it == units_.end() || !it->second.ewma_valid) return std::nullopt;
  return it->second.ewma_busy;
}

double StageProfiler::PeakWindowBusyFraction(uint32_t unit) const {
  auto it = units_.find(unit);
  return it == units_.end() ? 0.0 : it->second.peak_busy_fraction;
}

double StageProfiler::PeakWindowQueueHwm(uint32_t unit) const {
  auto it = units_.find(unit);
  return it == units_.end() ? 0.0 : it->second.peak_queue_hwm;
}

}  // namespace bistream
