#include "obs/diagnose/diagnostics.h"

namespace bistream {

const char* DiagnosticSeverityName(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kInfo:
      return "info";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kError:
      return "error";
  }
  return "unknown";
}

JsonValue DiagnosticEvent::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("time_ns", JsonValue::Number(time));
  out.Set("window", JsonValue::Number(window));
  out.Set("detector", JsonValue::String(detector));
  out.Set("severity", JsonValue::String(DiagnosticSeverityName(severity)));
  out.Set("scope", JsonValue::String(scope));
  out.Set("score", JsonValue::Number(score));
  out.Set("threshold", JsonValue::Number(threshold));
  out.Set("message", JsonValue::String(message));
  return out;
}

void DiagnosticLog::Emit(DiagnosticEvent event) {
  ++total_emitted_;
  if (event.severity == DiagnosticSeverity::kError) ++errors_;
  ++counts_[event.detector + "/" + DiagnosticSeverityName(event.severity)];
  if (events_.size() < max_events_) {
    events_.push_back(std::move(event));
  }
}

JsonValue DiagnosticLog::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("total_events", JsonValue::Number(total_emitted_));
  out.Set("errors", JsonValue::Number(errors_));
  out.Set("dropped", JsonValue::Number(dropped()));
  JsonValue counts = JsonValue::Object();
  for (const auto& [key, n] : counts_) {
    counts.Set(key, JsonValue::Number(n));
  }
  out.Set("counts", std::move(counts));
  JsonValue events = JsonValue::Array();
  for (const DiagnosticEvent& event : events_) {
    events.Push(event.ToJson());
  }
  out.Set("events", std::move(events));
  return out;
}

}  // namespace bistream
