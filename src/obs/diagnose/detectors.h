/// \file detectors.h
/// \brief Online health detectors over the profiler's per-window views.
///
/// Three deterministic, registry-driven detectors:
///
///  - backpressure: a unit's input queue has grown for N consecutive sample
///    windows (arrival rate sustained above drain rate) and sits above a
///    floor — the canonical overload precursor;
///  - skew: per-unit (and, under ContHash, per-subgroup) store+probe load
///    imbalance on one relation side, scored by max/mean ratio and the Gini
///    coefficient — the E7 hot-partition signal;
///  - straggler: one unit's windowed busy fraction is a z-score outlier
///    against its own biclique side — slow node, not slow workload.
///
/// Detectors are edge-triggered: an alarm emits one kWarning event when it
/// enters and one kInfo event when it clears, so event volume is bounded by
/// state transitions rather than windows. All state is per-scope O(1);
/// nothing here reads the engine or the clock.

#ifndef BISTREAM_OBS_DIAGNOSE_DETECTORS_H_
#define BISTREAM_OBS_DIAGNOSE_DETECTORS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/diagnose/diagnostics.h"
#include "obs/diagnose/profiler.h"

namespace bistream {

/// \brief Detector configuration (engine-visible; BicliqueOptions carries
/// one).
struct DetectorOptions {
  bool backpressure = true;
  bool skew = true;
  bool straggler = true;
  /// Sample windows to ignore before judging (the first delta covers the
  /// partially-idle startup span).
  uint64_t warmup_windows = 1;

  /// Backpressure: queue depth strictly grew for this many consecutive
  /// windows and the latest depth is at least bp_min_queue.
  uint64_t bp_growth_windows = 3;
  double bp_min_queue = 8;

  /// Skew: trips when max/mean per-unit window load >= skew_imbalance or
  /// the side's Gini coefficient >= skew_gini, provided the side handled at
  /// least skew_min_load operations that window (idle sides are noise).
  double skew_imbalance = 2.0;
  double skew_gini = 0.4;
  double skew_min_load = 64;

  /// Straggler: a unit's busy-fraction z-score against its side's mean
  /// exceeds straggler_z, with floors on the unit's own busy fraction and
  /// the side's stddev to mask idle/homogeneous sides.
  double straggler_z = 2.0;
  double straggler_min_busy = 0.30;
  double straggler_min_sigma = 0.02;
};

/// \brief The detector bank. Feed it one window at a time.
class Detectors {
 public:
  explicit Detectors(DetectorOptions options) : options_(options) {}

  /// \brief Evaluates all enabled detectors over one profiled window,
  /// emitting enter/clear events into `log`.
  void OnWindow(SimTime now, uint64_t window,
                const std::vector<UnitWindow>& units, DiagnosticLog* log);

 private:
  struct Alarm {
    bool raised = false;
  };

  void Backpressure(SimTime now, uint64_t window,
                    const std::vector<UnitWindow>& units, DiagnosticLog* log);
  void Skew(SimTime now, uint64_t window, const std::vector<UnitWindow>& units,
            DiagnosticLog* log);
  void Straggler(SimTime now, uint64_t window,
                 const std::vector<UnitWindow>& units, DiagnosticLog* log);
  /// Edge-triggers `scope`'s alarm: emits on raise/clear transitions only.
  void SetAlarm(const std::string& detector, const std::string& scope,
                bool firing, SimTime now, uint64_t window, double score,
                double threshold, const std::string& message,
                DiagnosticLog* log);

  DetectorOptions options_;
  /// "detector|scope" -> alarm state.
  std::map<std::string, Alarm> alarms_;
  /// Backpressure streaks: unit -> (last queue depth, consecutive growth).
  struct QueueTrend {
    double last_depth = 0;
    uint64_t growth_streak = 0;
    bool has_last = false;
  };
  std::map<uint32_t, QueueTrend> queue_trends_;
};

/// \brief Gini coefficient of a non-negative load vector (0 = perfectly
/// even, -> 1 = one unit carries everything). Exposed for tests.
double GiniCoefficient(std::vector<double> loads);

}  // namespace bistream

#endif  // BISTREAM_OBS_DIAGNOSE_DETECTORS_H_
