/// \file metrics.h
/// \brief Named metric registry: counters, callback gauges, histogram timers.
///
/// One registry per engine. Hot-path updates go through stable Counter* /
/// Timer* pointers obtained once at wiring time — an update is a single
/// relaxed atomic add (counters) or a record into a thread-private histogram
/// shard (timers): no lookup, no lock, no allocation. Gauges are registered
/// as callbacks and are only evaluated when sampled, so instrumented code
/// pays nothing between samples.
///
/// Thread safety: every registry operation is safe to call concurrently —
/// registration races lookup races sampling. Counter::Increment is a relaxed
/// fetch-add; Timer::Record lands in a per-thread Histogram shard and
/// SampleTimers() merges the shards (Histogram::Merge) into one snapshot, so
/// recording threads never contend on a shared histogram. Gauge callbacks
/// must themselves be safe to evaluate from the sampling thread (the
/// engine's gauges read RelaxedCell-backed stats, which are).
///
/// Naming convention (see DESIGN.md §9 for the full catalogue):
///   engine.<metric>               engine-wide scope
///   router.<id>.<metric>          per-router scope
///   joiner.<id>.<metric>          per-joiner scope
/// Cumulative time counters end in `_ns`; the telemetry sampler derives a
/// windowed `*.busy_fraction` column from every `*.busy_ns` gauge.

#ifndef BISTREAM_OBS_METRICS_H_
#define BISTREAM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace bistream {

/// \brief Monotonic event counter with a stable address for hot paths.
/// Increment is a relaxed atomic add: safe from any thread, no ordering
/// implied (totals are exact once the writers have quiesced).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Duration recorder backed by per-thread Histogram shards.
///
/// Record() writes into a shard owned by the calling thread (created on its
/// first record, cached in a thread_local), so concurrent recorders never
/// touch the same histogram. Merged() / TakeSnapshot() fold every shard
/// with Histogram::Merge — a read-side cost paid only at sample time.
class Timer {
 public:
  Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// \brief Records one duration (ns). Callable from any thread.
  void Record(uint64_t ns) { LocalShard()->Record(ns); }

  /// \brief All shards merged into one histogram value.
  Histogram Merged() const;

  Histogram::Snapshot TakeSnapshot() const { return Merged().TakeSnapshot(); }
  uint64_t count() const { return Merged().count(); }

 private:
  /// \brief This thread's shard, created under mu_ on first use. The
  /// thread_local cache is keyed by a process-unique serial so a Timer
  /// allocated at a recycled address cannot inherit a stale shard pointer.
  Histogram* LocalShard();

  const uint64_t serial_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Histogram>> shards_;
};

/// \brief Registry of named metrics scoped to one engine instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Builds "kind.id.metric", e.g. ScopedName("joiner", 3, "probes").
  static std::string ScopedName(const std::string& unit_kind, uint32_t unit_id,
                                const std::string& metric);

  /// \brief Returns the counter with this name, creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// \brief Returns the sharded timer with this name, creating it on first
  /// use. Values are durations in nanoseconds (virtual or wall, caller's
  /// convention).
  Timer* GetTimer(const std::string& name);

  /// \brief Registers (or replaces — unit recovery re-registers) a gauge
  /// evaluated lazily at sample time. Must be side-effect free and safe to
  /// call from the sampling thread: several consumers (sampler, autoscaler,
  /// failure detector) read independently.
  void RegisterGauge(const std::string& name, std::function<double()> fn);

  /// \brief Drops a gauge (e.g. when its backing unit is destroyed).
  void UnregisterGauge(const std::string& name);

  /// \brief Drops every gauge whose name starts with `prefix`.
  void UnregisterGaugesWithPrefix(const std::string& prefix);

  /// \brief Reads one gauge; nullopt when not registered.
  std::optional<double> ReadGauge(const std::string& name) const;

  /// \brief Reads one counter; nullopt when not registered.
  std::optional<uint64_t> ReadCounter(const std::string& name) const;

  /// \brief Evaluates every counter and gauge, sorted by name. This is the
  /// sampler's entry point; counters and gauges share one namespace here.
  std::vector<std::pair<std::string, double>> Sample() const;

  /// \brief Snapshots every timer (shards merged), sorted by name.
  std::vector<std::pair<std::string, Histogram::Snapshot>> SampleTimers()
      const;

  size_t counter_count() const;
  size_t gauge_count() const;
  size_t timer_count() const;

 private:
  // std::map keeps iteration (and therefore export) order deterministic;
  // unique_ptr gives the stable hot-path addresses. mu_ makes registration
  // safe against concurrent lookup and sampling; the returned pointers are
  // themselves thread-safe, so hot paths never re-enter the lock.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::function<double()>> gauges_;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_METRICS_H_
