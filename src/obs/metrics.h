/// \file metrics.h
/// \brief Named metric registry: counters, callback gauges, histogram timers.
///
/// One registry per engine. Hot-path updates go through stable Counter* /
/// Histogram* pointers obtained once at wiring time — an update is a single
/// add with no lookup, no lock, no allocation (the simulator is
/// single-threaded; "lock-free-style" here means the update cost profile,
/// not atomics). Gauges are registered as callbacks and are only evaluated
/// when sampled, so instrumented code pays nothing between samples.
///
/// Naming convention (see DESIGN.md §9 for the full catalogue):
///   engine.<metric>               engine-wide scope
///   router.<id>.<metric>          per-router scope
///   joiner.<id>.<metric>          per-joiner scope
/// Cumulative time counters end in `_ns`; the telemetry sampler derives a
/// windowed `*.busy_fraction` column from every `*.busy_ns` gauge.

#ifndef BISTREAM_OBS_METRICS_H_
#define BISTREAM_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace bistream {

/// \brief Monotonic event counter with a stable address for hot paths.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// \brief Registry of named metrics scoped to one engine instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Builds "kind.id.metric", e.g. ScopedName("joiner", 3, "probes").
  static std::string ScopedName(const std::string& unit_kind, uint32_t unit_id,
                                const std::string& metric);

  /// \brief Returns the counter with this name, creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// \brief Returns the histogram-backed timer with this name, creating it
  /// on first use. Values are durations in virtual nanoseconds.
  Histogram* GetTimer(const std::string& name);

  /// \brief Registers (or replaces — unit recovery re-registers) a gauge
  /// evaluated lazily at sample time. Must be side-effect free: several
  /// consumers (sampler, autoscaler, failure detector) read independently.
  void RegisterGauge(const std::string& name, std::function<double()> fn);

  /// \brief Drops a gauge (e.g. when its backing unit is destroyed).
  void UnregisterGauge(const std::string& name);

  /// \brief Drops every gauge whose name starts with `prefix`.
  void UnregisterGaugesWithPrefix(const std::string& prefix);

  /// \brief Reads one gauge; nullopt when not registered.
  std::optional<double> ReadGauge(const std::string& name) const;

  /// \brief Reads one counter; nullopt when not registered.
  std::optional<uint64_t> ReadCounter(const std::string& name) const;

  /// \brief Evaluates every counter and gauge, sorted by name. This is the
  /// sampler's entry point; counters and gauges share one namespace here.
  std::vector<std::pair<std::string, double>> Sample() const;

  /// \brief Snapshots every timer, sorted by name.
  std::vector<std::pair<std::string, Histogram::Snapshot>> SampleTimers()
      const;

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t timer_count() const { return timers_.size(); }

 private:
  // std::map keeps iteration (and therefore export) order deterministic;
  // unique_ptr gives the stable hot-path addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> timers_;
  std::map<std::string, std::function<double()>> gauges_;
};

}  // namespace bistream

#endif  // BISTREAM_OBS_METRICS_H_
