#include "obs/trace.h"

#include <atomic>

namespace bistream {

namespace {
std::atomic<uint64_t> g_tracer_serial{0};
}  // namespace

TupleTracer::TupleTracer(uint64_t trace_every)
    : trace_every_(trace_every), serial_(g_tracer_serial.fetch_add(1)) {}

std::vector<TupleTracer::TraceEvent>* TupleTracer::LocalBuffer() {
  // Single-slot fast path: serials are process-unique, so a serial match
  // alone identifies the tracer. One tracer is live at a time in practice,
  // making this the steady state — the map below only backs concurrent
  // tracers (tests) and slot misses.
  thread_local uint64_t fast_serial = ~0ULL;
  thread_local std::vector<TraceEvent>* fast_buffer = nullptr;
  if (fast_serial == serial_) return fast_buffer;
  struct CacheEntry {
    uint64_t serial;
    std::vector<TraceEvent>* buffer;
  };
  thread_local std::unordered_map<const TupleTracer*, CacheEntry> cache;
  auto it = cache.find(this);
  if (it != cache.end() && it->second.serial == serial_) {
    fast_serial = serial_;
    fast_buffer = it->second.buffer;
    return it->second.buffer;
  }
  std::lock_guard<std::mutex> lk(buffers_mu_);
  buffers_.push_back(std::make_unique<std::vector<TraceEvent>>());
  std::vector<TraceEvent>* buffer = buffers_.back().get();
  cache[this] = CacheEntry{serial_, buffer};
  fast_serial = serial_;
  fast_buffer = buffer;
  return buffer;
}

void TupleTracer::ApplyEvent(const TraceEvent& event) {
  auto it = by_tuple_.find(event.key);
  if (it == by_tuple_.end()) return;
  TraceSpan* span = it->second;
  // First-arrival-wins for the timestamp hops and sums for the cost/count
  // fields: both are order-independent, so the folded span is the same
  // regardless of which thread's buffer is applied first.
  switch (event.kind) {
    case TraceEvent::Kind::kRouted:
      if (span->routed == 0 || event.now < span->routed) {
        span->routed = event.now;
      }
      break;
    case TraceEvent::Kind::kStoreArrival:
      if (span->store_arrival == 0 || event.now < span->store_arrival) {
        span->store_arrival = event.now;
      }
      break;
    case TraceEvent::Kind::kJoinArrival:
      if (span->join_arrival == 0 || event.now < span->join_arrival) {
        span->join_arrival = event.now;
      }
      ++span->probe_units;
      break;
    case TraceEvent::Kind::kRelease:
      if (span->released == 0 || event.now < span->released) {
        span->released = event.now;
      }
      break;
    case TraceEvent::Kind::kStore:
      span->store_cost_ns += event.cost_ns;
      break;
    case TraceEvent::Kind::kProbe:
      span->probe_candidates += event.candidates;
      span->results += event.matches;
      span->probe_cost_ns += event.cost_ns;
      if (event.matches > 0 &&
          (span->emit == 0 || event.now < span->emit)) {
        span->emit = event.now;
      }
      break;
  }
}

void TupleTracer::MergeThreadBuffers() {
  if (!concurrent_) return;
  std::lock_guard<std::mutex> lk(buffers_mu_);
  for (auto& buffer : buffers_) {
    for (const TraceEvent& event : *buffer) ApplyEvent(event);
    buffer->clear();
  }
}

void TupleTracer::OnRouted(const Tuple& tuple, SimTime now) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kRouted, Key(tuple.relation, tuple.id),
                 now, 0, 0, 0});
    return;
  }
  OnRouted(tuple.relation, tuple.id, now);
}

void TupleTracer::OnStoreArrival(const Tuple& tuple, SimTime now) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kStoreArrival,
                 Key(tuple.relation, tuple.id), now, 0, 0, 0});
    return;
  }
  OnStoreArrival(tuple.relation, tuple.id, now);
}

void TupleTracer::OnJoinArrival(const Tuple& tuple, SimTime now) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kJoinArrival,
                 Key(tuple.relation, tuple.id), now, 0, 0, 0});
    return;
  }
  OnJoinArrival(tuple.relation, tuple.id, now);
}

void TupleTracer::OnRelease(const Tuple& tuple, SimTime now) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kRelease, Key(tuple.relation, tuple.id),
                 now, 0, 0, 0});
    return;
  }
  OnRelease(tuple.relation, tuple.id, now);
}

void TupleTracer::OnStore(const Tuple& tuple, uint64_t cost_ns) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kStore, Key(tuple.relation, tuple.id), 0,
                 0, 0, cost_ns});
    return;
  }
  OnStore(tuple.relation, tuple.id, cost_ns);
}

void TupleTracer::OnProbe(const Tuple& tuple, uint64_t candidates,
                          uint64_t matches, uint64_t cost_ns, SimTime now) {
  if (!enabled()) return;
  if (concurrent_) {
    if (!tuple.traced) return;
    AppendEvent({TraceEvent::Kind::kProbe, Key(tuple.relation, tuple.id),
                 now, candidates, matches, cost_ns});
    return;
  }
  OnProbe(tuple.relation, tuple.id, candidates, matches, cost_ns, now);
}

JsonValue TraceSpan::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("tuple_id", JsonValue::Number(tuple_id));
  v.Set("relation", JsonValue::Number(static_cast<uint64_t>(relation)));
  v.Set("ingress_ns", JsonValue::Number(ingress));
  v.Set("routed_ns", JsonValue::Number(routed));
  v.Set("store_arrival_ns", JsonValue::Number(store_arrival));
  v.Set("join_arrival_ns", JsonValue::Number(join_arrival));
  v.Set("released_ns", JsonValue::Number(released));
  v.Set("emit_ns", JsonValue::Number(emit));
  v.Set("store_cost_ns", JsonValue::Number(store_cost_ns));
  v.Set("probe_cost_ns", JsonValue::Number(probe_cost_ns));
  v.Set("probe_candidates", JsonValue::Number(probe_candidates));
  v.Set("results", JsonValue::Number(results));
  v.Set("probe_units", JsonValue::Number(static_cast<uint64_t>(probe_units)));
  return v;
}

JsonValue LatencyBreakdown::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("spans", JsonValue::Number(spans));
  v.Set("mean_total_ns", JsonValue::Number(mean_total_ns));
  v.Set("mean_queue_ns", JsonValue::Number(mean_queue_ns));
  v.Set("mean_order_ns", JsonValue::Number(mean_order_ns));
  v.Set("mean_probe_ns", JsonValue::Number(mean_probe_ns));
  return v;
}

TraceSpan* TupleTracer::OnIngress(const Tuple& tuple, SimTime now) {
  if (!enabled()) return nullptr;
  uint64_t ordinal = ingress_seen_++;
  if (ordinal % trace_every_ != 0) return nullptr;
  spans_.emplace_back();
  TraceSpan* span = &spans_.back();
  span->tuple_id = tuple.id;
  span->relation = tuple.relation;
  span->ingress = now;
  by_tuple_[Key(tuple.relation, tuple.id)] = span;
  return span;
}

TraceSpan* TupleTracer::Find(RelationId relation, uint64_t id) {
  if (!enabled()) return nullptr;
  auto it = by_tuple_.find(Key(relation, id));
  return it == by_tuple_.end() ? nullptr : it->second;
}

void TupleTracer::OnRouted(RelationId relation, uint64_t id, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->routed == 0) span->routed = now;
}

void TupleTracer::OnStoreArrival(RelationId relation, uint64_t id,
                                 SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->store_arrival == 0) span->store_arrival = now;
}

void TupleTracer::OnJoinArrival(RelationId relation, uint64_t id,
                                SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->join_arrival == 0) span->join_arrival = now;
  ++span->probe_units;
}

void TupleTracer::OnRelease(RelationId relation, uint64_t id, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->released == 0) span->released = now;
}

void TupleTracer::OnStore(RelationId relation, uint64_t id,
                          uint64_t cost_ns) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  span->store_cost_ns += cost_ns;
}

void TupleTracer::OnProbe(RelationId relation, uint64_t id,
                          uint64_t candidates, uint64_t matches,
                          uint64_t cost_ns, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  span->probe_candidates += candidates;
  span->results += matches;
  span->probe_cost_ns += cost_ns;
  if (matches > 0 && span->emit == 0) span->emit = now;
}

LatencyBreakdown TupleTracer::ComputeBreakdown() const {
  LatencyBreakdown b;
  double total = 0, queue = 0, order = 0, probe = 0;
  for (const TraceSpan& span : spans_) {
    // Only spans that actually reached a probe joiner decompose; store-only
    // or in-flight spans have no end-to-end latency to attribute.
    if (span.join_arrival == 0 || span.released == 0) continue;
    SimTime done = span.emit != 0 ? span.emit : span.released;
    if (done < span.ingress) continue;
    ++b.spans;
    total += static_cast<double>(done - span.ingress);
    queue += static_cast<double>(span.join_arrival - span.ingress);
    order += static_cast<double>(span.released - span.join_arrival);
    probe += static_cast<double>(span.probe_cost_ns);
  }
  if (b.spans > 0) {
    double n = static_cast<double>(b.spans);
    b.mean_total_ns = total / n;
    b.mean_queue_ns = queue / n;
    b.mean_order_ns = order / n;
    b.mean_probe_ns = probe / n;
  }
  return b;
}

JsonValue TupleTracer::SpansToJson(size_t limit) const {
  JsonValue arr = JsonValue::Array();
  size_t n = 0;
  for (const TraceSpan& span : spans_) {
    if (n++ >= limit) break;
    arr.Push(span.ToJson());
  }
  return arr;
}

}  // namespace bistream
