#include "obs/trace.h"

namespace bistream {

JsonValue TraceSpan::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("tuple_id", JsonValue::Number(tuple_id));
  v.Set("relation", JsonValue::Number(static_cast<uint64_t>(relation)));
  v.Set("ingress_ns", JsonValue::Number(ingress));
  v.Set("routed_ns", JsonValue::Number(routed));
  v.Set("store_arrival_ns", JsonValue::Number(store_arrival));
  v.Set("join_arrival_ns", JsonValue::Number(join_arrival));
  v.Set("released_ns", JsonValue::Number(released));
  v.Set("emit_ns", JsonValue::Number(emit));
  v.Set("store_cost_ns", JsonValue::Number(store_cost_ns));
  v.Set("probe_cost_ns", JsonValue::Number(probe_cost_ns));
  v.Set("probe_candidates", JsonValue::Number(probe_candidates));
  v.Set("results", JsonValue::Number(results));
  v.Set("probe_units", JsonValue::Number(static_cast<uint64_t>(probe_units)));
  return v;
}

JsonValue LatencyBreakdown::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("spans", JsonValue::Number(spans));
  v.Set("mean_total_ns", JsonValue::Number(mean_total_ns));
  v.Set("mean_queue_ns", JsonValue::Number(mean_queue_ns));
  v.Set("mean_order_ns", JsonValue::Number(mean_order_ns));
  v.Set("mean_probe_ns", JsonValue::Number(mean_probe_ns));
  return v;
}

TraceSpan* TupleTracer::OnIngress(const Tuple& tuple, SimTime now) {
  if (!enabled()) return nullptr;
  uint64_t ordinal = ingress_seen_++;
  if (ordinal % trace_every_ != 0) return nullptr;
  spans_.emplace_back();
  TraceSpan* span = &spans_.back();
  span->tuple_id = tuple.id;
  span->relation = tuple.relation;
  span->ingress = now;
  by_tuple_[Key(tuple.relation, tuple.id)] = span;
  return span;
}

TraceSpan* TupleTracer::Find(RelationId relation, uint64_t id) {
  if (!enabled()) return nullptr;
  auto it = by_tuple_.find(Key(relation, id));
  return it == by_tuple_.end() ? nullptr : it->second;
}

void TupleTracer::OnRouted(RelationId relation, uint64_t id, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->routed == 0) span->routed = now;
}

void TupleTracer::OnStoreArrival(RelationId relation, uint64_t id,
                                 SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->store_arrival == 0) span->store_arrival = now;
}

void TupleTracer::OnJoinArrival(RelationId relation, uint64_t id,
                                SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->join_arrival == 0) span->join_arrival = now;
  ++span->probe_units;
}

void TupleTracer::OnRelease(RelationId relation, uint64_t id, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  if (span->released == 0) span->released = now;
}

void TupleTracer::OnStore(RelationId relation, uint64_t id,
                          uint64_t cost_ns) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  span->store_cost_ns += cost_ns;
}

void TupleTracer::OnProbe(RelationId relation, uint64_t id,
                          uint64_t candidates, uint64_t matches,
                          uint64_t cost_ns, SimTime now) {
  TraceSpan* span = Find(relation, id);
  if (span == nullptr) return;
  span->probe_candidates += candidates;
  span->results += matches;
  span->probe_cost_ns += cost_ns;
  if (matches > 0 && span->emit == 0) span->emit = now;
}

LatencyBreakdown TupleTracer::ComputeBreakdown() const {
  LatencyBreakdown b;
  double total = 0, queue = 0, order = 0, probe = 0;
  for (const TraceSpan& span : spans_) {
    // Only spans that actually reached a probe joiner decompose; store-only
    // or in-flight spans have no end-to-end latency to attribute.
    if (span.join_arrival == 0 || span.released == 0) continue;
    SimTime done = span.emit != 0 ? span.emit : span.released;
    if (done < span.ingress) continue;
    ++b.spans;
    total += static_cast<double>(done - span.ingress);
    queue += static_cast<double>(span.join_arrival - span.ingress);
    order += static_cast<double>(span.released - span.join_arrival);
    probe += static_cast<double>(span.probe_cost_ns);
  }
  if (b.spans > 0) {
    double n = static_cast<double>(b.spans);
    b.mean_total_ns = total / n;
    b.mean_queue_ns = queue / n;
    b.mean_order_ns = order / n;
    b.mean_probe_ns = probe / n;
  }
  return b;
}

JsonValue TupleTracer::SpansToJson(size_t limit) const {
  JsonValue arr = JsonValue::Array();
  size_t n = 0;
  for (const TraceSpan& span : spans_) {
    if (n++ >= limit) break;
    arr.Push(span.ToJson());
  }
  return arr;
}

}  // namespace bistream
