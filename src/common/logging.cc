#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bistream {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "fatal") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
          g_min_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace bistream
