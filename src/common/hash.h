/// \file hash.h
/// \brief 64-bit hashing used for key partitioning and hash indexes.
///
/// Partitioning decisions (ContHash subgroup selection, matrix cell
/// assignment, hash sub-index buckets) all go through these functions so that
/// the whole system agrees on key placement. The integer mixer is the
/// MurmurHash3 finalizer; strings use FNV-1a folded through the same mixer.

#ifndef BISTREAM_COMMON_HASH_H_
#define BISTREAM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace bistream {

/// \brief MurmurHash3 fmix64 finalizer; a strong 64-bit integer mixer.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Hashes a signed 64-bit key (the common join-attribute type).
inline uint64_t HashInt64(int64_t key) {
  return HashMix64(static_cast<uint64_t>(key));
}

/// \brief Hashes a byte string (FNV-1a, then mixed).
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return HashMix64(h);
}

/// \brief Combines two hashes (order-dependent).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashMix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace bistream

#endif  // BISTREAM_COMMON_HASH_H_
