/// \file memory_tracker.h
/// \brief Explicit byte accounting for stream state.
///
/// The join-biclique model's central memory claim (no replication, so total
/// stored bytes ≈ |R| + |S| versus the join-matrix's √p-fold blow-up) is
/// verified by instrumenting every stateful structure with a MemoryTracker.
/// Trackers form a parent chain so per-unit usage rolls up to per-engine
/// totals without double counting.

#ifndef BISTREAM_COMMON_MEMORY_TRACKER_H_
#define BISTREAM_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.h"

namespace bistream {

/// \brief Hierarchical byte counter. Not thread-safe (the simulator is
/// single-threaded by design).
class MemoryTracker {
 public:
  MemoryTracker() = default;
  explicit MemoryTracker(std::string label, MemoryTracker* parent = nullptr)
      : label_(std::move(label)), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// \brief Records an allocation of `bytes`.
  void Allocate(size_t bytes) {
    current_ += static_cast<int64_t>(bytes);
    if (current_ > peak_) peak_ = current_;
    if (parent_ != nullptr) parent_->Allocate(bytes);
  }

  /// \brief Records a release of `bytes`; must not exceed current usage.
  void Release(size_t bytes) {
    current_ -= static_cast<int64_t>(bytes);
    BISTREAM_CHECK_GE(current_, 0) << "over-release on tracker " << label_;
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  /// \brief Bytes currently accounted.
  int64_t current_bytes() const { return current_; }
  /// \brief High-water mark since construction (or last ResetPeak).
  int64_t peak_bytes() const { return peak_; }
  const std::string& label() const { return label_; }

  /// \brief Resets the high-water mark to current usage.
  void ResetPeak() { peak_ = current_; }

 private:
  std::string label_;
  MemoryTracker* parent_ = nullptr;
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_COMMON_MEMORY_TRACKER_H_
