/// \file memory_tracker.h
/// \brief Explicit byte accounting for stream state.
///
/// The join-biclique model's central memory claim (no replication, so total
/// stored bytes ≈ |R| + |S| versus the join-matrix's √p-fold blow-up) is
/// verified by instrumenting every stateful structure with a MemoryTracker.
/// Trackers form a parent chain so per-unit usage rolls up to per-engine
/// totals without double counting.

#ifndef BISTREAM_COMMON_MEMORY_TRACKER_H_
#define BISTREAM_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.h"

namespace bistream {

/// \brief Hierarchical byte counter. Thread-safe: the counters are relaxed
/// atomics (each joiner updates its own tracker, but all roll up into the
/// shared engine-level parent, which worker threads hit concurrently under
/// the parallel backend). The peak is maintained with a CAS-max, so it can
/// transiently under-report interleaved concurrent peaks by design — it is
/// a capacity diagnostic, not an invariant.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  explicit MemoryTracker(std::string label, MemoryTracker* parent = nullptr)
      : label_(std::move(label)), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// \brief Records an allocation of `bytes`.
  void Allocate(size_t bytes) {
    int64_t now =
        current_.fetch_add(static_cast<int64_t>(bytes),
                           std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->Allocate(bytes);
  }

  /// \brief Records a release of `bytes`; must not exceed current usage.
  void Release(size_t bytes) {
    int64_t now = current_.fetch_sub(static_cast<int64_t>(bytes),
                                     std::memory_order_relaxed) -
                  static_cast<int64_t>(bytes);
    BISTREAM_CHECK_GE(now, 0) << "over-release on tracker " << label_;
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  /// \brief Bytes currently accounted.
  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// \brief High-water mark since construction (or last ResetPeak).
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  const std::string& label() const { return label_; }

  /// \brief Resets the high-water mark to current usage.
  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  std::string label_;
  MemoryTracker* parent_ = nullptr;
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace bistream

#endif  // BISTREAM_COMMON_MEMORY_TRACKER_H_
