/// \file config.h
/// \brief Minimal `--key=value` command-line configuration for the bench and
/// example binaries, so every experiment parameter in DESIGN.md's index can
/// be overridden without recompiling.

#ifndef BISTREAM_COMMON_CONFIG_H_
#define BISTREAM_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace bistream {

/// \brief Parsed flag set with typed, defaulted getters.
class Config {
 public:
  Config() = default;

  /// \brief Parses `--key=value` (or bare `--key`, stored as "true") args.
  ///
  /// Non-flag arguments are collected into positional(). Returns
  /// InvalidArgument on malformed flags (e.g. `--=x`).
  static Result<Config> FromArgs(int argc, char** argv);

  /// \brief Builds a config directly from key/value pairs (tests).
  static Config FromMap(std::map<std::string, std::string> values);

  bool Has(const std::string& key) const;

  /// Typed getters; return `fallback` when the key is absent and abort via
  /// CHECK when a present value fails to parse (flag typos should be loud).
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// \brief Parses a comma-separated integer list (e.g. `--units=4,8,16`).
  std::vector<int64_t> GetIntList(const std::string& key,
                                  std::vector<int64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bistream

#endif  // BISTREAM_COMMON_CONFIG_H_
