/// \file relaxed.h
/// \brief Tear-free counter cell for single-writer hot paths.
///
/// The engine's per-unit statistics (NodeStats, RouterStats, JoinerStats,
/// ...) are written by exactly one thread at a time — the unit's worker
/// under the parallel backend, the event loop under sim — but the wall-clock
/// telemetry sampler reads them from its own thread mid-run. A plain field
/// would make every such read a data race; a full atomic RMW would put a
/// lock-prefixed instruction on the sim hot path for no benefit (there is
/// never writer/writer contention).
///
/// RelaxedCell threads that needle: storage is std::atomic<T> but every
/// operation is a relaxed load and/or a relaxed store — `+=` compiles to the
/// same load/add/store the plain field did, with no lock prefix and no
/// fences. Readers on other threads get tear-free, eventually-visible
/// values, which is exactly the guarantee a monitoring gauge needs (the
/// precise cross-thread totals are read after the executor quiesces, whose
/// acquire/release handshake publishes everything).
///
/// Contract: a cell must have a single writer, or its writers must already
/// be serialized by an external mutex. Concurrent unserialized writers lose
/// increments (load+store is not fetch_add) — that situation is a design
/// bug, not something this type papers over.

#ifndef BISTREAM_COMMON_RELAXED_H_
#define BISTREAM_COMMON_RELAXED_H_

#include <atomic>
#include <ostream>

namespace bistream {

template <typename T>
class RelaxedCell {
 public:
  constexpr RelaxedCell() = default;
  constexpr RelaxedCell(T value) : value_(value) {}  // NOLINT: implicit

  // Copyable so the stat structs that embed cells stay copyable.
  RelaxedCell(const RelaxedCell& other) : value_(other.load()) {}
  RelaxedCell& operator=(const RelaxedCell& other) {
    store(other.load());
    return *this;
  }

  RelaxedCell& operator=(T value) {
    store(value);
    return *this;
  }

  operator T() const { return load(); }  // NOLINT: implicit

  T load() const { return value_.load(std::memory_order_relaxed); }
  void store(T value) { value_.store(value, std::memory_order_relaxed); }

  // Single-writer read-modify-writes: relaxed load + relaxed store, no RMW.
  RelaxedCell& operator+=(T delta) {
    store(load() + delta);
    return *this;
  }
  RelaxedCell& operator-=(T delta) {
    store(load() - delta);
    return *this;
  }
  RelaxedCell& operator++() {
    store(load() + 1);
    return *this;
  }
  T operator++(int) {
    T old = load();
    store(old + 1);
    return old;
  }

 private:
  std::atomic<T> value_{};
};

// Streams as the underlying value (the CHECK macros stream their operands).
template <typename T>
std::ostream& operator<<(std::ostream& os, const RelaxedCell<T>& cell) {
  return os << cell.load();
}

}  // namespace bistream

#endif  // BISTREAM_COMMON_RELAXED_H_
