#include "common/config.h"

#include <cstdlib>
#include <string_view>

#include "common/logging.h"

namespace bistream {

Result<Config> Config::FromArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      config.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    std::string key(eq == std::string_view::npos ? arg : arg.substr(0, eq));
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name in '" +
                                     std::string(argv[i]) + "'");
    }
    std::string value =
        eq == std::string_view::npos ? "true" : std::string(arg.substr(eq + 1));
    config.values_[key] = std::move(value);
  }
  return config;
}

Config Config::FromMap(std::map<std::string, std::string> values) {
  Config config;
  config.values_ = std::move(values);
  return config;
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  BISTREAM_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects an integer, got '" << it->second << "'";
  return value;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  BISTREAM_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects a number, got '" << it->second << "'";
  return value;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  BISTREAM_LOG(Fatal) << "flag --" << key << " expects a boolean, got '" << v
                      << "'";
  return fallback;
}

std::vector<int64_t> Config::GetIntList(const std::string& key,
                                        std::vector<int64_t> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<int64_t> out;
  const std::string& v = it->second;
  size_t pos = 0;
  while (pos <= v.size()) {
    size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    std::string item = v.substr(pos, comma - pos);
    if (!item.empty()) {
      char* end = nullptr;
      int64_t value = std::strtoll(item.c_str(), &end, 10);
      BISTREAM_CHECK(end != nullptr && *end == '\0')
          << "flag --" << key << " expects integers, got '" << item << "'";
      out.push_back(value);
    }
    pos = comma + 1;
  }
  BISTREAM_CHECK(!out.empty()) << "flag --" << key << " list is empty";
  return out;
}

}  // namespace bistream
