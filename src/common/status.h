/// \file status.h
/// \brief Error propagation primitives (Arrow/RocksDB style Status + Result).
///
/// BiStream never throws exceptions across module boundaries. Fallible
/// operations return a Status, or a Result<T> when they also produce a value.
/// The RETURN_NOT_OK / BISTREAM_ASSIGN_OR_RETURN macros keep call sites terse.

#ifndef BISTREAM_COMMON_STATUS_H_
#define BISTREAM_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace bistream {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kDataLoss = 10,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// The OK state stores no heap state, so returning Status::OK() is free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  /// \brief Returns the singleton-like OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// \brief Returns the error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Null for OK; shared so Status is cheap to copy on error paths too.
  std::shared_ptr<const State> state_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must check ok() (or use BISTREAM_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief Returns the error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief Returns the held value; aborts if this holds an error.
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(repr_)); }

  /// \brief Moves the value out; aborts if this holds an error.
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace bistream

/// \brief Propagates a non-OK Status out of the enclosing function.
#define RETURN_NOT_OK(expr)                 \
  do {                                      \
    ::bistream::Status _st = (expr);        \
    if (!_st.ok()) return _st;              \
  } while (false)

#define BISTREAM_CONCAT_IMPL(x, y) x##y
#define BISTREAM_CONCAT(x, y) BISTREAM_CONCAT_IMPL(x, y)

/// \brief Evaluates a Result<T> expression; on error returns its Status,
/// otherwise assigns the value to `lhs`.
#define BISTREAM_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  BISTREAM_ASSIGN_OR_RETURN_IMPL(                                   \
      BISTREAM_CONCAT(_result_, __LINE__), lhs, rexpr)

#define BISTREAM_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                   \
  if (!result_name.ok()) return result_name.status();           \
  lhs = std::move(result_name).ValueOrDie()

#endif  // BISTREAM_COMMON_STATUS_H_
