#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace bistream {

namespace {
// 64 octaves x 32 sub-buckets covers the full uint64 range.
constexpr int kOctaves = 64;
}  // namespace

int Histogram::NumBuckets() { return kOctaves * kSubBuckets; }

Histogram::Histogram() : buckets_(NumBuckets(), 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  int octave = msb - kSubBucketBits + 1;
  return octave * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  int octave = bucket / kSubBuckets;
  int sub = bucket % kSubBuckets;
  int shift = octave - 1;
  uint64_t base = (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  uint64_t width = shift >= 1 ? (1ULL << shift) : 1;
  return base + width - 1;
}

void Histogram::Record(uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  int bucket = BucketFor(value);
  BISTREAM_CHECK_LT(bucket, NumBuckets());
  buckets_[bucket] += count;
  count_ += count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  double v = static_cast<double>(value);
  double c = static_cast<double>(count);
  sum_ += v * c;
  sum_squares_ += v * v * c;
}

void Histogram::Merge(const Histogram& other) {
  BISTREAM_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
}

void Histogram::Reset() {
  for (RelaxedCell<uint64_t>& bucket : buckets_) bucket = 0;
  count_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ == 0) return 0.0;
  double n = static_cast<double>(count_);
  double variance = sum_squares_ / n - (sum_ / n) * (sum_ / n);
  return variance > 0 ? std::sqrt(variance) : 0.0;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  // The extremes are tracked exactly; don't let bucketing round them.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int bucket = 0; bucket < NumBuckets(); ++bucket) {
    seen += buckets_[bucket];
    if (seen > rank) {
      uint64_t upper = BucketUpperBound(bucket);
      return upper < max_.load() ? upper : max_.load();
    }
  }
  return max_.load();
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_;
  snap.min = min();
  snap.max = max();
  snap.mean = mean();
  snap.stddev = stddev();
  snap.p50 = P50();
  snap.p95 = P95();
  snap.p99 = P99();
  return snap;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(P50()),
                static_cast<unsigned long long>(P95()),
                static_cast<unsigned long long>(P99()),
                static_cast<unsigned long long>(max()));
  return std::string(buf);
}

}  // namespace bistream
