/// \file time.h
/// \brief Time domains used throughout BiStream.
///
/// Two distinct clocks exist and must not be confused:
///   - SimTime: virtual wall-clock nanoseconds advanced by the discrete-event
///     simulator (src/sim). Message latency, service time, punctuation
///     cadence and end-to-end result latency live in this domain.
///   - EventTime: application timestamps attached to tuples (microseconds).
///     Window membership and Theorem-1 expiry live in this domain.
/// Keeping them as distinct named types catches accidental mixing at call
/// sites; conversions are always explicit.

#ifndef BISTREAM_COMMON_TIME_H_
#define BISTREAM_COMMON_TIME_H_

#include <cstdint>

namespace bistream {

/// Virtual wall-clock time in nanoseconds (simulator domain).
using SimTime = uint64_t;

/// Application (event) time in microseconds (tuple-timestamp domain).
using EventTime = int64_t;

/// Sentinel for "no event time yet" (e.g. empty sub-index bounds).
inline constexpr EventTime kNoEventTime = INT64_MIN;

/// Window scope meaning "join against the full stream history" (the
/// paper's full-history joins): large enough that no realistic timestamp
/// difference exceeds it, small enough that window arithmetic never
/// overflows. Nothing ever expires under this scope.
inline constexpr EventTime kFullHistoryWindow = INT64_MAX / 4;

/// Common SimTime unit helpers.
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Common EventTime unit helpers (microsecond base).
inline constexpr EventTime kEventMicro = 1;
inline constexpr EventTime kEventMilli = 1000;
inline constexpr EventTime kEventSecond = 1000 * kEventMilli;

/// \brief Converts virtual nanoseconds to (double) seconds.
inline double SimTimeToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// \brief Converts virtual nanoseconds to (double) milliseconds.
inline double SimTimeToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace bistream

#endif  // BISTREAM_COMMON_TIME_H_
