/// \file logging.h
/// \brief Lightweight leveled logging and invariant-check macros.
///
/// BISTREAM_CHECK* macros abort on violated invariants (programming errors);
/// recoverable conditions must use Status instead. Log output goes to stderr
/// and can be silenced globally, which benchmarks do by default.

#ifndef BISTREAM_COMMON_LOGGING_H_
#define BISTREAM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bistream {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Parses "debug"/"info"/"warning"/"error"/"fatal" (case-insensitive;
/// "warn" accepted). Returns false and leaves `out` untouched on junk input.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

/// \brief Stream-style log message; emits on destruction. Fatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Discards everything streamed into it (for compiled-out levels).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace bistream

#define BISTREAM_LOG(level)                                              \
  ::bistream::internal::LogMessage(::bistream::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                   \
      .stream()

#define BISTREAM_CHECK(cond)                                             \
  if (!(cond))                                                           \
  BISTREAM_LOG(Fatal) << "Check failed: " #cond " "

#define BISTREAM_CHECK_OP(lhs, rhs, op)                                  \
  if (!((lhs)op(rhs)))                                                   \
  BISTREAM_LOG(Fatal) << "Check failed: " #lhs " " #op " " #rhs " ("     \
                      << (lhs) << " vs " << (rhs) << ") "

#define BISTREAM_CHECK_EQ(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, ==)
#define BISTREAM_CHECK_NE(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, !=)
#define BISTREAM_CHECK_LT(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, <)
#define BISTREAM_CHECK_LE(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, <=)
#define BISTREAM_CHECK_GT(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, >)
#define BISTREAM_CHECK_GE(lhs, rhs) BISTREAM_CHECK_OP(lhs, rhs, >=)

/// \brief Aborts if a Status-returning expression fails.
#define BISTREAM_CHECK_OK(expr)                                          \
  do {                                                                   \
    ::bistream::Status _check_st = (expr);                               \
    BISTREAM_CHECK(_check_st.ok()) << _check_st.ToString();              \
  } while (false)

#endif  // BISTREAM_COMMON_LOGGING_H_
