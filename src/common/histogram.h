/// \file histogram.h
/// \brief Log-bucketed histogram for latency and size distributions.
///
/// HDR-style: values are bucketed with bounded relative error (~1/32), so
/// quantile queries are cheap and the memory footprint is fixed regardless of
/// the number of recorded samples. Used by the metrics layer for end-to-end
/// result latency (E4, E5) and by the autoscaler for smoothing.
///
/// Thread contract: all mutable state lives in RelaxedCells, so a histogram
/// with a single writer (a Timer shard, a sim-side collector) may be read —
/// Merge, quantiles, TakeSnapshot — from another thread mid-run without
/// tearing. A mid-run read is an *approximation*: the reader can observe
/// count_ ahead of sum_ (or vice versa) because the fields update one
/// relaxed store at a time. That is the monitoring-grade guarantee the
/// wall-clock sampler needs; exact totals are read after the writer joins
/// or the executor's quiescence handshake publishes everything. Concurrent
/// *writers* remain a design bug (RelaxedCell increments are load+store).

#ifndef BISTREAM_COMMON_HISTOGRAM_H_
#define BISTREAM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/relaxed.h"

namespace bistream {

/// \brief Fixed-memory histogram over non-negative 64-bit values.
class Histogram {
 public:
  /// \brief Immutable point-in-time view of a histogram.
  ///
  /// A Snapshot is a plain value: once taken it never changes, so telemetry
  /// consumers can hold it while the source histogram keeps recording.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0;
    double stddev = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };

  Histogram();

  /// \brief Records one sample.
  void Record(uint64_t value);

  /// \brief Records `count` identical samples.
  void RecordMany(uint64_t value, uint64_t count);

  /// \brief Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// \brief Drops all recorded samples.
  void Reset();

  uint64_t count() const { return count_.load(); }
  uint64_t min() const { return count_.load() == 0 ? 0 : min_.load(); }
  uint64_t max() const { return max_.load(); }
  double mean() const;
  double stddev() const;

  /// \brief Returns the approximate value at quantile q in [0, 1].
  ///
  /// The answer has bounded relative error from bucketing (about 3%).
  /// Edge cases are exact: q <= 0 returns min(), q >= 1 returns max(), and
  /// an empty histogram returns 0 for any q.
  uint64_t ValueAtQuantile(double q) const;

  /// \brief Captures the current distribution as an immutable value.
  Snapshot TakeSnapshot() const;

  /// Convenience accessors for the usual reporting quantiles.
  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P95() const { return ValueAtQuantile(0.95); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }

  /// \brief One-line summary (count/mean/p50/p95/p99/max).
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  /// Maps a value to its bucket index.
  static int BucketFor(uint64_t value);
  /// Returns a representative (upper-bound) value for a bucket.
  static uint64_t BucketUpperBound(int bucket);
  static int NumBuckets();

  std::vector<RelaxedCell<uint64_t>> buckets_;
  RelaxedCell<uint64_t> count_ = 0;
  RelaxedCell<uint64_t> min_ = UINT64_MAX;
  RelaxedCell<uint64_t> max_ = 0;
  RelaxedCell<double> sum_ = 0;
  RelaxedCell<double> sum_squares_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_COMMON_HISTOGRAM_H_
