#include "common/status.h"

namespace bistream {

namespace {
const std::string kEmptyString;  // NOLINT(runtime/string)
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return state_ == nullptr ? kEmptyString : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace bistream
