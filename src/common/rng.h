/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// Everything stochastic in BiStream (workload generation, random routing,
/// simulated latency jitter, fault injection) draws from an explicitly seeded
/// Rng so that simulation runs are bit-for-bit reproducible. The generator is
/// xoshiro256**, seeded via splitmix64, which is both fast and statistically
/// strong enough for simulation purposes.

#ifndef BISTREAM_COMMON_RNG_H_
#define BISTREAM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace bistream {

/// \brief splitmix64 step; used for seeding and as a cheap mixing function.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic xoshiro256** generator.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical sequences.
  explicit Rng(uint64_t seed = 0xB157BEA7ULL) { Reseed(seed); }

  /// \brief Re-initializes the state from a 64-bit seed.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  /// \brief Returns the next 64 uniformly random bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    BISTREAM_CHECK_GT(bound, 0ULL);
    // Debiased multiply-shift (Lemire); the retry loop is rarely taken.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    BISTREAM_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// \brief Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// \brief Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean) {
    BISTREAM_CHECK_GT(mean, 0.0);
    return -mean * std::log1p(-NextDouble());
  }

  /// \brief Forks an independent generator; deterministic in (state, salt).
  Rng Fork(uint64_t salt) {
    uint64_t seed = Next64() ^ (salt * 0x9E3779B97f4A7C15ULL);
    return Rng(seed);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace bistream

#endif  // BISTREAM_COMMON_RNG_H_
