/// \file network.h
/// \brief The simulated interconnect: nodes plus point-to-point channels.
///
/// Channels deliver messages after a base latency plus uniform jitter. By
/// default every channel preserves FIFO order (the TCP assumption behind the
/// paper's pairwise-FIFO protocol, Definition 8): delivery times are clamped
/// to be non-decreasing per channel. Tests and E12 disable the clamp via the
/// fault options to reproduce the missed/duplicate-result scenarios that the
/// order-consistent protocol exists to prevent.

#ifndef BISTREAM_SIM_NETWORK_H_
#define BISTREAM_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace bistream {

/// \brief Per-channel delivery behaviour.
struct ChannelOptions {
  /// Base one-way latency.
  SimTime latency_ns = 200 * kMicrosecond;
  /// Uniform jitter in [0, jitter_ns] added per message.
  SimTime jitter_ns = 0;
  /// When true (default) deliveries never reorder within the channel.
  bool preserve_fifo = true;
  /// Probability a message is silently lost (fault injection; the
  /// order-consistent protocol assumes a lossless transport — Definition 7
  /// — and tests use this knob to show the oracle detects violations).
  double drop_probability = 0.0;
};

/// \brief A unidirectional FIFO (or deliberately faulty) link to one node.
class Channel {
 public:
  Channel(EventLoop* loop, SimNode* dst, ChannelOptions options, Rng rng);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// \brief Sends a message; it is delivered to the destination node after
  /// the modeled latency. Wire bytes are accounted for E11.
  void Send(Message msg);

  SimNode* destination() const { return dst_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  EventLoop* loop_;
  SimNode* dst_;
  ChannelOptions options_;
  Rng rng_;
  SimTime last_delivery_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

/// \brief Owns the simulated cluster's nodes and channels and aggregates
/// network-wide traffic counters (the communication-cost experiment E11).
class SimNetwork {
 public:
  /// \param loop the shared event loop (not owned)
  /// \param cost default channel latency/jitter source
  /// \param seed base RNG seed; each channel forks a deterministic stream
  SimNetwork(EventLoop* loop, const CostModel& cost, uint64_t seed);

  /// \brief Creates a node with a debug label; the network keeps ownership.
  SimNode* AddNode(const std::string& label);

  /// \brief Creates a channel to `dst` using the default latency/jitter.
  Channel* Connect(SimNode* dst);

  /// \brief Creates a channel to `dst` with explicit options.
  Channel* Connect(SimNode* dst, ChannelOptions options);

  EventLoop* loop() const { return loop_; }
  const CostModel& cost() const { return cost_; }

  /// \brief Total messages sent across all channels.
  uint64_t total_messages() const;
  /// \brief Total bytes sent across all channels.
  uint64_t total_bytes() const;
  /// \brief Messages silently lost in transit across all channels (the
  /// drop_probability fault knob).
  uint64_t total_dropped() const;
  /// \brief Deliveries discarded because the destination node was down.
  uint64_t total_dropped_dead() const;
  /// \brief Inbox messages wiped by node crashes.
  uint64_t total_lost_on_crash() const;

  const std::vector<std::unique_ptr<SimNode>>& nodes() const {
    return nodes_;
  }

 private:
  EventLoop* loop_;
  CostModel cost_;
  Rng rng_;
  uint32_t next_node_id_ = 0;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace bistream

#endif  // BISTREAM_SIM_NETWORK_H_
