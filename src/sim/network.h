/// \file network.h
/// \brief The simulated interconnect: nodes plus point-to-point channels.
///
/// Channels deliver messages after a base latency plus uniform jitter. By
/// default every channel preserves FIFO order (the TCP assumption behind the
/// paper's pairwise-FIFO protocol, Definition 8): delivery times are clamped
/// to be non-decreasing per channel. Tests and E12 disable the clamp via the
/// fault options to reproduce the missed/duplicate-result scenarios that the
/// order-consistent protocol exists to prevent.
///
/// SimNetwork is the sim implementation of the runtime substrate's Executor
/// interface — the deterministic, virtual-time backend the engines default
/// to. The runtime/parallel executor is the wall-clock alternative.

#ifndef BISTREAM_SIM_NETWORK_H_
#define BISTREAM_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/cost_model.h"
#include "runtime/executor.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace bistream {

/// \brief A unidirectional FIFO (or deliberately faulty) link to one node.
class Channel : public runtime::Transport {
 public:
  Channel(EventLoop* loop, SimNode* dst, ChannelOptions options, Rng rng);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// \brief Sends a message; it is delivered to the destination node after
  /// the modeled latency. Wire bytes are accounted for E11.
  void Send(Message msg) override;

  SimNode* destination() const override { return dst_; }
  uint64_t messages_sent() const override { return messages_sent_; }
  uint64_t bytes_sent() const override { return bytes_sent_; }
  uint64_t messages_dropped() const override { return messages_dropped_; }

 private:
  EventLoop* loop_;
  SimNode* dst_;
  ChannelOptions options_;
  Rng rng_;
  SimTime last_delivery_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

/// \brief Owns the simulated cluster's nodes and channels and aggregates
/// network-wide traffic counters (the communication-cost experiment E11).
class SimNetwork : public runtime::Executor {
 public:
  /// \param loop the shared event loop (not owned)
  /// \param cost default channel latency/jitter source
  /// \param seed base RNG seed; each channel forks a deterministic stream
  SimNetwork(EventLoop* loop, const CostModel& cost, uint64_t seed);

  /// \brief Creates a node with a debug label; the network keeps ownership.
  SimNode* AddNode(const std::string& label);

  /// \brief Creates a channel to `dst` using the default latency/jitter.
  Channel* Connect(SimNode* dst);

  /// \brief Creates a channel to `dst` with explicit options.
  Channel* Connect(SimNode* dst, ChannelOptions options);

  EventLoop* loop() const { return loop_; }

  // --- runtime::Executor implementation ---
  runtime::BackendKind kind() const override {
    return runtime::BackendKind::kSim;
  }
  runtime::Unit* AddUnit(const std::string& label) override {
    return AddNode(label);
  }
  runtime::Transport* Connect(runtime::Unit* dst) override {
    return Connect(static_cast<SimNode*>(dst));
  }
  runtime::Transport* Connect(runtime::Unit* dst,
                              ChannelOptions options) override {
    return Connect(static_cast<SimNode*>(dst), options);
  }
  runtime::Clock* clock() override { return loop_; }
  const CostModel& cost() const override { return cost_; }
  void RunUntil(SimTime deadline) override { loop_->RunUntil(deadline); }
  void RunUntilIdle() override { loop_->RunUntilIdle(); }
  uint64_t pending_events() const override { return loop_->pending(); }
  void ForEachUnit(const std::function<void(runtime::Unit&)>& fn) override {
    for (const auto& node : nodes_) fn(*node);
  }

  /// \brief Total messages sent across all channels.
  uint64_t total_messages() const override;
  /// \brief Total bytes sent across all channels.
  uint64_t total_bytes() const override;
  /// \brief Messages silently lost in transit across all channels (the
  /// drop_probability fault knob).
  uint64_t total_dropped() const override;
  /// \brief Deliveries discarded because the destination node was down.
  uint64_t total_dropped_dead() const override;
  /// \brief Inbox messages wiped by node crashes.
  uint64_t total_lost_on_crash() const override;

  const std::vector<std::unique_ptr<SimNode>>& nodes() const {
    return nodes_;
  }

  /// \brief Installs the timeline recorder on every current and future
  /// node. The shared reference is held until the network is destroyed
  /// (matching the Executor ownership contract; single-threaded, so the
  /// retention is about interface symmetry, not thread lifetimes).
  void SetTimeline(std::shared_ptr<runtime::TimelineSink> sink) override {
    timeline_ = std::move(sink);
    for (auto& node : nodes_) node->SetTimeline(timeline_.get());
    if (timeline_ != nullptr) {
      for (auto& node : nodes_) {
        timeline_->SetLaneName(node->id(), node->label());
      }
    }
  }
  runtime::TimelineSink* timeline() const override {
    return timeline_.get();
  }

 private:
  EventLoop* loop_;
  CostModel cost_;
  Rng rng_;
  uint32_t next_node_id_ = 0;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::shared_ptr<runtime::TimelineSink> timeline_;
};

}  // namespace bistream

#endif  // BISTREAM_SIM_NETWORK_H_
