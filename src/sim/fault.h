/// \file fault.h
/// \brief Compatibility shim: the fault plan / injector moved to the
/// backend-neutral runtime layer (runtime/fault/fault.h) so the same seeded
/// FaultPlan can kill simulated nodes or real worker threads. Sim callers
/// keep constructing `FaultInjector(&loop, ...)` — EventLoop implements
/// runtime::Clock.

#ifndef BISTREAM_SIM_FAULT_H_
#define BISTREAM_SIM_FAULT_H_

#include "runtime/fault/fault.h"
#include "sim/event_loop.h"

#endif  // BISTREAM_SIM_FAULT_H_
