#include "sim/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace bistream {

void EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  BISTREAM_CHECK(fn != nullptr);
  if (when < now_) when = now_;
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

uint64_t EventLoop::RunUntilIdle() {
  uint64_t ran = 0;
  while (!heap_.empty()) {
    // priority_queue::top() is const; the function object must be moved out,
    // so copy the header fields first and const_cast the payload move. This
    // is safe: the element is popped immediately after.
    Event& top = const_cast<Event&>(heap_.top());
    SimTime when = top.when;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    now_ = when;
    fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

uint64_t EventLoop::RunUntil(SimTime deadline) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Event& top = const_cast<Event&>(heap_.top());
    SimTime when = top.when;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    now_ = when;
    fn();
    ++ran;
    ++executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

}  // namespace bistream
