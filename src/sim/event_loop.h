/// \file event_loop.h
/// \brief Deterministic discrete-event scheduler.
///
/// The whole simulated cluster runs on one EventLoop: channels schedule
/// message deliveries, nodes schedule their service completions, sources
/// schedule tuple arrivals. Events at equal virtual times fire in schedule
/// order (a monotone sequence number breaks ties), so runs are bit-for-bit
/// reproducible — the property the exactly-once tests rely on.

#ifndef BISTREAM_SIM_EVENT_LOOP_H_
#define BISTREAM_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"
#include "runtime/clock.h"

namespace bistream {

/// \brief Min-heap driven virtual-time event scheduler. Implements the
/// runtime substrate's Clock interface: every unit of the sim backend
/// shares this one clock, so timers interleave deterministically with
/// message deliveries. (Clock::ScheduleAfter/ScheduleRepeating come from
/// the base; they build on the two overrides below.)
class EventLoop : public runtime::Clock {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Current virtual time (nanoseconds).
  SimTime now() const override { return now_; }

  /// \brief Schedules `fn` to run at absolute virtual time `when`.
  /// `when` earlier than now() is clamped to now() (fires next).
  void ScheduleAt(SimTime when, std::function<void()> fn) override;

  /// \brief Runs events until the queue drains. Returns events executed.
  uint64_t RunUntilIdle();

  /// \brief Runs events with time <= deadline; leaves later events queued.
  /// Advances now() to min(deadline, last event time). Returns events run.
  uint64_t RunUntil(SimTime deadline);

  /// \brief Pending event count.
  size_t pending() const { return heap_.size(); }

  /// \brief Total events executed since construction.
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_SIM_EVENT_LOOP_H_
