#include "sim/node.h"

#include "common/logging.h"

namespace bistream {

SimNode::SimNode(EventLoop* loop, uint32_t id, std::string label)
    : loop_(loop), id_(id), label_(std::move(label)) {
  BISTREAM_CHECK(loop_ != nullptr);
}

void SimNode::Deliver(Message msg) {
  if (!alive_) {
    ++stats_.messages_dropped_dead;
    return;
  }
  inbox_.push_back(std::move(msg));
  if (inbox_.size() > stats_.max_queue_depth) {
    stats_.max_queue_depth = inbox_.size();
  }
  if (inbox_.size() > window_queue_hwm_) {
    window_queue_hwm_ = inbox_.size();
  }
  MaybeScheduleService();
}

void SimNode::Fail() {
  if (!alive_) return;
  alive_ = false;
  ++stats_.crashes;
  stats_.messages_lost_on_crash += inbox_.size();
  inbox_.clear();
  // A scheduled ServiceOne may still fire; it bails out on !alive_.
  busy_until_ = 0;
}

void SimNode::Restart() {
  if (alive_) return;
  alive_ = true;
  ++stats_.restarts;
  busy_until_ = loop_->now();
}

void SimNode::MaybeScheduleService() {
  if (service_scheduled_ || inbox_.empty()) return;
  service_scheduled_ = true;
  SimTime start = std::max(loop_->now(), busy_until_);
  loop_->ScheduleAt(start, [this] { ServiceOne(); });
}

void SimNode::ServiceOne() {
  service_scheduled_ = false;
  if (!alive_ || inbox_.empty()) return;
  BISTREAM_CHECK(handler_ != nullptr)
      << "node " << label_ << " serviced before SetHandler";
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();

  ++stats_.messages_processed;
  if (msg.kind == Message::Kind::kTuple) {
    ++stats_.tuple_messages;
  } else if (msg.kind == Message::Kind::kBatch) {
    stats_.tuple_messages += msg.batch.size();
  } else if (msg.kind == Message::Kind::kPunctuation) {
    ++stats_.punctuation_messages;
  }

  // Timeline span in virtual time: the handler dispatch happens at now(),
  // the task "ends" when the charged service time elapses. The lane scope
  // routes any events the handler records (punctuation rounds, checkpoints)
  // onto this unit's track — the sim runs every handler on the one driver
  // thread, so the thread-local lane is the only lane signal there is.
  SimTime dispatch = loop_->now();
  SimTime service;
  {
    runtime::TimelineLaneScope lane(id_);
    runtime::TimelineRecord(timeline_, runtime::TimelineEventType::kTaskBegin,
                            dispatch, static_cast<uint64_t>(msg.kind));
    service = handler_(msg);
    runtime::TimelineRecord(timeline_, runtime::TimelineEventType::kTaskEnd,
                            dispatch + service,
                            static_cast<uint64_t>(msg.kind));
  }
  stats_.busy_ns += service;
  switch (msg.kind) {
    case Message::Kind::kTuple:
      stats_.busy_tuple_ns += service;
      break;
    case Message::Kind::kPunctuation:
      stats_.busy_punctuation_ns += service;
      break;
    case Message::Kind::kBatch:
      stats_.busy_batch_ns += service;
      break;
    case Message::Kind::kControl:
      stats_.busy_control_ns += service;
      break;
  }
  busy_until_ = loop_->now() + service;
  MaybeScheduleService();
}

double SimNode::SampleUtilization(SimTime now) {
  SimTime elapsed = now - last_sample_time_;
  // Charge queued-but-unserviced backlog as pending busy time so overload
  // reads as >100% rather than saturating at 1.0.
  SimTime busy = stats_.busy_ns;
  double util = 0.0;
  if (elapsed > 0) {
    util = static_cast<double>(busy - last_sample_busy_) /
           static_cast<double>(elapsed);
  }
  last_sample_time_ = now;
  last_sample_busy_ = busy;
  return util;
}

}  // namespace bistream
