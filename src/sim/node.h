/// \file node.h
/// \brief A simulated processing unit: a single-threaded server with an
/// input queue, sequential service, and utilization accounting.
///
/// Nodes model the paper's "processing units" (Storm executors / the
/// thesis's container pods) and implement the runtime substrate's Unit
/// interface. Each delivered message is serviced in FIFO order; the handler
/// returns the virtual service time it consumed, which extends the node's
/// busy horizon. Utilization over a sampling interval is what the
/// ops/autoscaler module reads as its "CPU" metric.
///
/// Nodes also carry the failure model: Fail() kills the process (the inbox
/// is lost, later deliveries are dropped and counted) and Restart() brings
/// an empty-state process back up. Crashes are silent — nothing notifies
/// the rest of the cluster; detecting the death from the outside is the
/// ops::FailureDetector's job.

#ifndef BISTREAM_SIM_NODE_H_
#define BISTREAM_SIM_NODE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "runtime/timeline.h"
#include "runtime/unit.h"
#include "sim/event_loop.h"

namespace bistream {

/// \brief A single-threaded simulated service instance.
class SimNode : public runtime::Unit {
 public:
  SimNode(EventLoop* loop, uint32_t id, std::string label);

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  /// \brief Installs the message handler. Must be set before first delivery.
  void SetHandler(NodeHandler handler) override {
    handler_ = std::move(handler);
  }

  /// \brief Enqueues a message for service (called by Channel at the
  /// message's delivery time).
  void Deliver(Message msg) override;

  /// \brief Kills the node: the queued inbox is lost with the process, any
  /// in-flight service is abandoned, and later deliveries are dropped (and
  /// counted) until Restart(). Idempotent. The crash is silent — no other
  /// service is informed.
  void Fail() override;

  /// \brief Brings a failed node back up with an empty inbox. The handler
  /// stays installed, but any in-memory state the handler's owner held is
  /// the owner's problem — the sim models only the process lifecycle.
  void Restart() override;

  /// \brief False between Fail() and Restart().
  bool alive() const override { return alive_; }

  uint32_t id() const override { return id_; }
  const std::string& label() const override { return label_; }
  const NodeStats& stats() const override { return stats_; }

  /// \brief Virtual time when the node finishes its current backlog.
  SimTime busy_until() const { return busy_until_; }

  /// \brief Messages waiting for service.
  size_t queue_depth() const override { return inbox_.size(); }

  /// \brief Highest queue depth since the last ResetWindowQueueHwm() call.
  /// stats().max_queue_depth keeps the run-global peak; this per-window
  /// high-watermark is what the telemetry sampler exports, so transient
  /// backpressure spikes between samples are not understated.
  size_t window_queue_hwm() const override { return window_queue_hwm_; }

  /// \brief Opens a new high-watermark window. A standing backlog still
  /// counts against the fresh window, so the mark restarts at the current
  /// depth rather than zero.
  void ResetWindowQueueHwm() override { window_queue_hwm_ = inbox_.size(); }

  /// \brief Windowed utilization: busy fraction since the previous call
  /// (or since construction for the first call). Advances the sample point.
  /// The autoscaler's CPU-utilization proxy. Values can exceed 1.0 when the
  /// node's backlog extends beyond `now` (overload).
  double SampleUtilization(SimTime now) override;

  /// \brief The shared event loop: every sim unit's timers and service
  /// events interleave on the one deterministic clock.
  runtime::Clock* clock() override { return loop_; }

  /// \brief Timeline recorder (virtual-timestamp parity with the parallel
  /// backend); SimNetwork wires this when a sink is installed.
  void SetTimeline(runtime::TimelineSink* timeline) { timeline_ = timeline; }

 private:
  void MaybeScheduleService();
  void ServiceOne();

  EventLoop* loop_;
  uint32_t id_;
  std::string label_;
  NodeHandler handler_;
  std::deque<Message> inbox_;
  bool alive_ = true;
  bool service_scheduled_ = false;
  SimTime busy_until_ = 0;
  NodeStats stats_;
  size_t window_queue_hwm_ = 0;
  SimTime last_sample_time_ = 0;
  SimTime last_sample_busy_ = 0;
  runtime::TimelineSink* timeline_ = nullptr;
};

}  // namespace bistream

#endif  // BISTREAM_SIM_NODE_H_
