#include "sim/network.h"

#include "common/logging.h"

namespace bistream {

Channel::Channel(EventLoop* loop, SimNode* dst, ChannelOptions options,
                 Rng rng)
    : loop_(loop), dst_(dst), options_(options), rng_(rng) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(dst_ != nullptr);
}

void Channel::Send(Message msg) {
  ++messages_sent_;
  bytes_sent_ += msg.WireBytes();
  if (options_.drop_probability > 0 &&
      rng_.NextBool(options_.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  SimTime jitter =
      options_.jitter_ns > 0 ? rng_.Uniform(options_.jitter_ns + 1) : 0;
  SimTime deliver_at = loop_->now() + options_.latency_ns + jitter;
  if (options_.preserve_fifo && deliver_at < last_delivery_) {
    deliver_at = last_delivery_;
  }
  last_delivery_ = deliver_at;
  SimNode* dst = dst_;
  loop_->ScheduleAt(deliver_at, [dst, m = std::move(msg)]() mutable {
    dst->Deliver(std::move(m));
  });
}

SimNetwork::SimNetwork(EventLoop* loop, const CostModel& cost, uint64_t seed)
    : loop_(loop), cost_(cost), rng_(seed) {
  BISTREAM_CHECK(loop_ != nullptr);
}

SimNode* SimNetwork::AddNode(const std::string& label) {
  nodes_.push_back(std::make_unique<SimNode>(loop_, next_node_id_++, label));
  SimNode* node = nodes_.back().get();
  if (timeline_ != nullptr) {
    node->SetTimeline(timeline_.get());
    timeline_->SetLaneName(node->id(), label);
  }
  return node;
}

Channel* SimNetwork::Connect(SimNode* dst) {
  ChannelOptions options;
  options.latency_ns = cost_.net_latency_ns;
  options.jitter_ns = cost_.net_jitter_ns;
  options.preserve_fifo = true;
  return Connect(dst, options);
}

Channel* SimNetwork::Connect(SimNode* dst, ChannelOptions options) {
  channels_.push_back(std::make_unique<Channel>(
      loop_, dst, options, rng_.Fork(channels_.size() + 1)));
  return channels_.back().get();
}

uint64_t SimNetwork::total_messages() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->messages_sent();
  return total;
}

uint64_t SimNetwork::total_bytes() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->bytes_sent();
  return total;
}

uint64_t SimNetwork::total_dropped() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->messages_dropped();
  return total;
}

uint64_t SimNetwork::total_dropped_dead() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().messages_dropped_dead;
  return total;
}

uint64_t SimNetwork::total_lost_on_crash() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().messages_lost_on_crash;
  return total;
}

}  // namespace bistream
