/// \file fault.h
/// \brief Declarative, deterministic crash injection, backend-neutral.
///
/// A FaultPlan names the crashes of a run, either explicitly (crash unit 3
/// at t = 1.5 s) or stochastically (a Poisson process with a given rate over
/// a horizon). The FaultInjector expands the plan into a concrete, seeded
/// schedule at Start() and fires each crash through a caller-supplied
/// callback — this layer knows nothing about engines or topologies, so
/// victim resolution (e.g. "a random live joiner") lives with the caller,
/// fed by a deterministic 64-bit draw from the plan's RNG. Equal seeds give
/// bit-identical crash schedules, which is what lets the recovery tests
/// assert exactly-once results deterministically across runs.
///
/// The injector targets any runtime::Clock: under the simulator that is the
/// EventLoop (virtual time, deterministic firing order); under the parallel
/// backend it is the executor's driver clock, whose timer thread fires the
/// crash on the driver while worker threads are live — a real mid-run kill.
/// Only the *schedule* is deterministic on a wall clock; where the crash
/// lands relative to in-flight tuples is decided by real interleaving, and
/// exactly-once then rests on checkpoint/replay + dedup, not on timing.

#ifndef BISTREAM_RUNTIME_FAULT_FAULT_H_
#define BISTREAM_RUNTIME_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "runtime/clock.h"

namespace bistream {

/// \brief The declarative crash schedule of one run.
struct FaultPlan {
  /// \brief One planned crash.
  struct Crash {
    /// Time at which the process dies (virtual or wall, backend-defined).
    SimTime at = 0;
    /// Explicit victim (a joiner unit id). Unset = let the crash callback
    /// pick a victim from the supplied random draw.
    std::optional<uint32_t> unit;
  };

  /// Explicit crashes, in any order.
  std::vector<Crash> crashes;

  /// Additional Poisson crash process: mean crashes per second, generated
  /// over [0, horizon]. 0 disables.
  double crash_rate_per_sec = 0.0;
  SimTime horizon = 0;

  /// Seed for the Poisson arrivals and the victim-selection draws.
  uint64_t seed = 0x5EED;
};

/// \brief Applies one crash. `draw` is a deterministic uniform 64-bit value
/// for victim selection when `crash.unit` is unset. Returns the crashed unit
/// id, or nullopt when no victim could be crashed (already down, none live).
using CrashFn =
    std::function<std::optional<uint32_t>(const FaultPlan::Crash& crash,
                                          uint64_t draw)>;

/// \brief One crash that actually landed (the injector's timeline).
struct InjectedFault {
  SimTime at = 0;
  uint32_t unit = 0;
};

/// \brief Schedules a FaultPlan's crashes on a backend clock.
class FaultInjector {
 public:
  /// \param clock shared backend clock (not owned). Under the parallel
  ///   backend pass the executor's driver clock so the CrashFn runs on the
  ///   driver thread, where engine mutation is legal.
  /// \param crash crash application callback (typically bound to
  ///   BicliqueEngine::InjectCrash)
  FaultInjector(runtime::Clock* clock, FaultPlan plan, CrashFn crash);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// \brief Expands the plan (explicit + Poisson arrivals) into a concrete
  /// schedule and registers every crash with the clock. Call once.
  void Start();

  /// \brief Crashes in the expanded schedule (known after Start()).
  size_t scheduled_crashes() const { return schedule_.size(); }

  /// \brief Crashes that landed, in firing order.
  const std::vector<InjectedFault>& timeline() const { return timeline_; }

 private:
  struct ScheduledCrash {
    FaultPlan::Crash crash;
    uint64_t draw = 0;
  };

  runtime::Clock* clock_;
  FaultPlan plan_;
  CrashFn crash_;
  Rng rng_;
  bool started_ = false;
  std::vector<ScheduledCrash> schedule_;
  std::vector<InjectedFault> timeline_;
};

}  // namespace bistream

#endif  // BISTREAM_RUNTIME_FAULT_FAULT_H_
