#include "runtime/fault/fault.h"

#include <algorithm>

#include "common/logging.h"

namespace bistream {

FaultInjector::FaultInjector(runtime::Clock* clock, FaultPlan plan,
                             CrashFn crash)
    : clock_(clock),
      plan_(std::move(plan)),
      crash_(std::move(crash)),
      rng_(plan_.seed) {
  BISTREAM_CHECK(clock_ != nullptr);
  BISTREAM_CHECK(crash_ != nullptr);
  BISTREAM_CHECK_GE(plan_.crash_rate_per_sec, 0.0);
}

void FaultInjector::Start() {
  BISTREAM_CHECK(!started_);
  started_ = true;

  for (const FaultPlan::Crash& crash : plan_.crashes) {
    schedule_.push_back(ScheduledCrash{crash, 0});
  }
  if (plan_.crash_rate_per_sec > 0 && plan_.horizon > 0) {
    double mean_gap_ns = 1e9 / plan_.crash_rate_per_sec;
    SimTime t = clock_->now();
    while (true) {
      t += static_cast<SimTime>(rng_.NextExponential(mean_gap_ns));
      if (t > plan_.horizon) break;
      FaultPlan::Crash crash;
      crash.at = t;
      schedule_.push_back(ScheduledCrash{crash, 0});
    }
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const ScheduledCrash& a, const ScheduledCrash& b) {
              return a.crash.at < b.crash.at;
            });
  // Victim draws are assigned in schedule order so the sequence of draws —
  // and therefore every victim choice — is a pure function of the seed.
  for (ScheduledCrash& sc : schedule_) {
    sc.draw = rng_.Next64();
  }
  for (const ScheduledCrash& sc : schedule_) {
    clock_->ScheduleAt(sc.crash.at, [this, sc] {
      std::optional<uint32_t> victim = crash_(sc.crash, sc.draw);
      if (victim.has_value()) {
        timeline_.push_back(InjectedFault{clock_->now(), *victim});
      }
    });
  }
}

}  // namespace bistream
