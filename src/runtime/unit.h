/// \file unit.h
/// \brief The runtime substrate's processing-unit interface.
///
/// A Unit models the paper's "processing unit" (a Storm executor / container
/// pod): a logically single-threaded server with a FIFO input queue, a
/// message handler, and busy-time accounting. The sim backend services the
/// queue on the deterministic event loop and charges virtual nanoseconds
/// returned by the handler; the parallel backend dedicates a worker thread
/// per unit and measures real wall time around the handler instead.

#ifndef BISTREAM_RUNTIME_UNIT_H_
#define BISTREAM_RUNTIME_UNIT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/relaxed.h"
#include "common/time.h"
#include "runtime/clock.h"
#include "runtime/message.h"

namespace bistream {

/// \brief Handler invoked once per serviced message; returns the virtual
/// service time (ns) the message consumed. Backends that measure real time
/// (the parallel executor) ignore the return value.
using NodeHandler = std::function<SimTime(const Message& msg)>;

/// \brief Cumulative per-unit statistics. Under the sim backend the busy
/// fields are virtual nanoseconds from the cost model; under the parallel
/// backend they are measured wall nanoseconds.
///
/// Fields are RelaxedCells so the wall-clock telemetry sampler can read
/// them tear-free from its own thread mid-run; each field still has a
/// single writer (the unit's worker, or writers serialized by the unit's
/// queue mutex), so the relaxed load+store updates lose nothing.
struct NodeStats {
  RelaxedCell<uint64_t> messages_processed = 0;
  RelaxedCell<uint64_t> tuple_messages = 0;
  RelaxedCell<uint64_t> punctuation_messages = 0;
  RelaxedCell<SimTime> busy_ns = 0;
  /// Per-event-type decomposition of busy_ns: where this unit's service
  /// time actually goes (data vs. protocol vs. control), surfaced by the
  /// telemetry layer. Sums to busy_ns.
  RelaxedCell<SimTime> busy_tuple_ns = 0;
  RelaxedCell<SimTime> busy_punctuation_ns = 0;
  RelaxedCell<SimTime> busy_batch_ns = 0;
  RelaxedCell<SimTime> busy_control_ns = 0;
  RelaxedCell<size_t> max_queue_depth = 0;
  /// Sends that found this unit's bounded inbox full and had to wait
  /// (sender-side backpressure stalls), and the total wall time spent
  /// waiting. Always 0 under sim (the simulated queue is unbounded).
  RelaxedCell<uint64_t> blocked_sends = 0;
  RelaxedCell<SimTime> blocked_ns = 0;
  /// Total time messages sat in this unit's inbox between enqueue and the
  /// worker popping them (queueing delay, not service). Always 0 under sim
  /// (the event loop models queueing in virtual time instead).
  RelaxedCell<SimTime> dequeue_wait_ns = 0;
  /// Deliveries that arrived while the node was down (silently dropped).
  RelaxedCell<uint64_t> messages_dropped_dead = 0;
  /// Queued messages wiped by a crash (in-memory inbox lost with the
  /// process).
  RelaxedCell<uint64_t> messages_lost_on_crash = 0;
  RelaxedCell<uint64_t> crashes = 0;
  RelaxedCell<uint64_t> restarts = 0;
};

namespace runtime {

/// \brief One processing unit of the engine, backend-agnostic.
///
/// Thread-safety contract: SetHandler is called once before the first
/// Deliver. Deliver may be called from any thread (backends serialize
/// internally). Individual stats() fields are tear-free to read from any
/// thread mid-run (RelaxedCells) — that is what the wall-clock telemetry
/// sampler does — but only eventually consistent; totals are exact once
/// the executor has quiesced (RunUntilIdle returned).
class Unit {
 public:
  virtual ~Unit() = default;

  /// \brief Installs the message handler. Must be set before first delivery.
  virtual void SetHandler(NodeHandler handler) = 0;

  /// \brief Enqueues a message for FIFO service.
  virtual void Deliver(Message msg) = 0;

  /// \brief Kills the unit (process-failure model). Backends without a
  /// failure model may refuse; engines must gate crash injection on the
  /// executor's capabilities.
  virtual void Fail() = 0;

  /// \brief Brings a failed unit back up with an empty inbox.
  virtual void Restart() = 0;

  /// \brief False between Fail() and Restart().
  virtual bool alive() const = 0;

  virtual uint32_t id() const = 0;
  virtual const std::string& label() const = 0;
  virtual const NodeStats& stats() const = 0;

  /// \brief Messages waiting for service.
  virtual size_t queue_depth() const = 0;

  /// \brief Highest queue depth since the last ResetWindowQueueHwm() call.
  /// stats().max_queue_depth keeps the run-global peak; this per-window
  /// high-watermark is what the telemetry sampler exports, so transient
  /// backpressure spikes between samples are not understated.
  virtual size_t window_queue_hwm() const = 0;

  /// \brief Opens a new high-watermark window. A standing backlog still
  /// counts against the fresh window, so the mark restarts at the current
  /// depth rather than zero.
  virtual void ResetWindowQueueHwm() = 0;

  /// \brief Windowed utilization: busy fraction since the previous call
  /// (or since construction for the first call). Advances the sample point.
  virtual double SampleUtilization(SimTime now) = 0;

  /// \brief This unit's clock. Timers scheduled here run in the unit's own
  /// execution context (the event loop under sim, the unit's worker thread
  /// under parallel), so unit code can self-schedule without locking.
  virtual Clock* clock() = 0;

  /// \brief Cumulative busy time (virtual or wall, backend-defined).
  SimTime busy_ns() const { return stats().busy_ns; }
};

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_UNIT_H_
