/// \file clock.h
/// \brief The runtime substrate's time and timer interface.
///
/// Everything core/ knows about time goes through a Clock: the current
/// timestamp (virtual nanoseconds under the simulator, wall nanoseconds
/// under a real backend) and one-shot / repeating timers. The sim backend's
/// EventLoop implements Clock directly; the parallel backend hands each
/// unit a clock whose timers are delivered through the unit's own task
/// queue, so timer callbacks never race the unit's handler.

#ifndef BISTREAM_RUNTIME_CLOCK_H_
#define BISTREAM_RUNTIME_CLOCK_H_

#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/time.h"

namespace bistream {
namespace runtime {

/// \brief Timestamp + timer source. Implementations define whether now()
/// is virtual (deterministic simulation) or wall-clock (real execution);
/// core/ code must not assume either.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Current time in nanoseconds (virtual or wall, backend-defined).
  virtual SimTime now() const = 0;

  /// \brief Schedules `fn` to run at absolute time `when` (clamped to
  /// now() when already past). The execution context is backend-defined:
  /// the simulator runs it on the event loop; a unit-affine clock of the
  /// parallel backend runs it on that unit's worker thread.
  virtual void ScheduleAt(SimTime when, std::function<void()> fn) = 0;

  /// \brief Schedules `fn` to run `delay` nanoseconds from now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now() + delay, std::move(fn));
  }

  /// \brief Runs `fn` every `period` ns, starting one period from now, for
  /// as long as `fn` returns true. A tick that returns false is the last —
  /// nothing stays scheduled, so the backend can quiesce. The rearm happens
  /// inside the tick itself, so on a unit-affine clock every tick runs on
  /// that unit's thread.
  void ScheduleRepeating(SimTime period, std::function<bool()> fn) {
    BISTREAM_CHECK(fn != nullptr);
    BISTREAM_CHECK_GT(period, 0ULL);
    ScheduleAfter(period, [this, period, fn = std::move(fn)]() mutable {
      if (!fn()) return;
      ScheduleRepeating(period, std::move(fn));
    });
  }
};

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_CLOCK_H_
