/// \file cost_model.h
/// \brief Calibrated per-operation virtual service times.
///
/// The simulator executes all join work for real (hash probes, tree walks,
/// window expiry over real tuples) but charges *virtual* time from this cost
/// model, so throughput and latency shapes reflect the paper's distributed
/// setting rather than this container's single core. Defaults are calibrated
/// against bench/micro_index on commodity hardware; every figure-level bench
/// allows overriding them (--cost_probe_ns etc.) for sensitivity analysis.

#ifndef BISTREAM_RUNTIME_COST_MODEL_H_
#define BISTREAM_RUNTIME_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "common/time.h"

namespace bistream {

/// \brief Virtual nanosecond charges for the simulated units' work.
///
/// The per-message costs are calibrated to the Storm-era per-tuple
/// framework overhead the paper's testbed pays (tens of microseconds per
/// tuple end to end: queueing, de/serialization, dispatch), while the
/// index-operation costs come from bench/micro_index on commodity
/// hardware. These ratios — messaging >> per-candidate probe work — are
/// what give the evaluation its shapes (hash routing wins equi joins;
/// broadcast strategies bottleneck on fan-out).
struct CostModel {
  /// Fixed cost of receiving/dispatching one message at a unit.
  SimTime message_fixed_ns = 50000;
  /// Per-byte deserialization cost of an inbound message.
  double message_per_byte_ns = 0.5;
  /// Sender-side cost per outbound message copy (serialize + enqueue);
  /// charged to the service that fans the message out.
  SimTime send_ns = 2000;
  /// Cost of inserting one tuple into an in-memory sub-index.
  SimTime insert_ns = 500;
  /// Cost per candidate tuple examined by a probe.
  SimTime probe_candidate_ns = 500;
  /// Fixed cost of initiating a probe (index lookup/descent).
  SimTime probe_fixed_ns = 500;
  /// Cost of materializing and emitting one join result.
  SimTime emit_result_ns = 500;
  /// Cost of a routing decision at a router.
  SimTime route_ns = 2000;
  /// Cost of processing a punctuation at a joiner.
  SimTime punctuation_ns = 2000;
  /// Cost of dropping one expired sub-index (dereference, O(1) per chain
  /// link — the Theorem-1 payoff; per-tuple expiry would charge per tuple).
  SimTime expire_subindex_ns = 1000;
  /// Fixed cost of initiating a checkpoint (fault tolerance).
  SimTime checkpoint_fixed_ns = 20000;
  /// Per-tuple cost of serializing window state into a checkpoint.
  SimTime checkpoint_tuple_ns = 100;

  /// One-way network latency between any two services.
  SimTime net_latency_ns = 200 * kMicrosecond;
  /// Uniform jitter added on top of the base latency.
  SimTime net_jitter_ns = 50 * kMicrosecond;

  /// \brief Returns the defaults (documented above).
  static CostModel Default() { return CostModel(); }

  /// \brief Deserialization charge for an inbound message of `bytes`.
  SimTime MessageCost(size_t bytes) const {
    return message_fixed_ns +
           static_cast<SimTime>(message_per_byte_ns *
                                static_cast<double>(bytes));
  }

  /// \brief Charge for a probe that examined `candidates` stored tuples and
  /// emitted `matches` results.
  SimTime ProbeCost(uint64_t candidates, uint64_t matches) const {
    return probe_fixed_ns + candidates * probe_candidate_ns +
           matches * emit_result_ns;
  }

  /// \brief Charge for snapshotting a window of `tuples` stored tuples.
  SimTime CheckpointCost(uint64_t tuples) const {
    return checkpoint_fixed_ns + tuples * checkpoint_tuple_ns;
  }

  /// \brief Sender-side charge for one outbound copy of `bytes`.
  SimTime SendCost(size_t bytes) const {
    return send_ns + static_cast<SimTime>(message_per_byte_ns *
                                          static_cast<double>(bytes));
  }
};

}  // namespace bistream

#endif  // BISTREAM_RUNTIME_COST_MODEL_H_
