#include "runtime/message.h"

#include <cstdio>

namespace bistream {

size_t Message::WireBytes() const {
  // Envelope: kind + router + seq + round + framing.
  size_t bytes = 1 + 4 + 8 + 8 + 4;
  switch (kind) {
    case Kind::kTuple:
      bytes += 1 /*stream*/ + tuple.SerializedSize();
      break;
    case Kind::kPunctuation:
      break;
    case Kind::kControl:
      bytes += 1 + 8;
      break;
    case Kind::kBatch:
      for (const BatchEntry& entry : batch) {
        // Per-entry: stream + seq + round delta + tuple.
        bytes += 1 + 8 + 8 + entry.tuple.SerializedSize();
      }
      break;
  }
  return bytes;
}

std::string Message::ToString() const {
  char buf[224];
  switch (kind) {
    case Kind::kTuple:
      std::snprintf(buf, sizeof(buf), "Tuple(%s, %s, router=%u seq=%llu)",
                    tuple.ToString().c_str(),
                    stream == StreamKind::kStore ? "store" : "join", router_id,
                    static_cast<unsigned long long>(seq));
      break;
    case Kind::kPunctuation:
      std::snprintf(buf, sizeof(buf), "Punct(router=%u seq=%llu round=%llu)",
                    router_id, static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(round));
      break;
    case Kind::kControl:
      std::snprintf(buf, sizeof(buf), "Control(op=%d arg=%llu)",
                    static_cast<int>(control),
                    static_cast<unsigned long long>(control_arg));
      break;
    case Kind::kBatch:
      std::snprintf(buf, sizeof(buf), "Batch(%zu tuples, router=%u)",
                    batch.size(), router_id);
      break;
  }
  return std::string(buf);
}

Message MakeTupleMessage(Tuple tuple, StreamKind stream, uint32_t router_id,
                         uint64_t seq, uint64_t round) {
  Message msg;
  msg.kind = Message::Kind::kTuple;
  msg.tuple = std::move(tuple);
  msg.stream = stream;
  msg.router_id = router_id;
  msg.seq = seq;
  msg.round = round;
  return msg;
}

Message MakePunctuation(uint32_t router_id, uint64_t seq, uint64_t round,
                        bool final_punct) {
  Message msg;
  msg.kind = Message::Kind::kPunctuation;
  msg.router_id = router_id;
  msg.seq = seq;
  msg.round = round;
  msg.final_punct = final_punct;
  return msg;
}

Message MakeControl(ControlOp op, uint64_t arg) {
  Message msg;
  msg.kind = Message::Kind::kControl;
  msg.control = op;
  msg.control_arg = arg;
  return msg;
}

Message MakeBatch(std::vector<BatchEntry> entries, uint32_t router_id) {
  Message msg;
  msg.kind = Message::Kind::kBatch;
  msg.router_id = router_id;
  msg.batch = std::move(entries);
  if (!msg.batch.empty()) {
    // Envelope seq/round mirror the last (highest) entry for diagnostics.
    msg.seq = msg.batch.back().seq;
    msg.round = msg.batch.back().round;
  }
  return msg;
}

}  // namespace bistream
