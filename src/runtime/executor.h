/// \file executor.h
/// \brief The runtime substrate: everything core/ needs from an execution
/// backend.
///
/// An Executor owns the cluster's units and transports and drives them to
/// completion. Two backends implement it: the deterministic simulator
/// (sim/SimNetwork — virtual time, cost-model charges, fault injection)
/// and the multithreaded parallel executor (runtime/parallel — one worker
/// thread per unit, wall-clock time, measured busy accounting). Core engine
/// code programs against this interface only; which backend it gets is a
/// construction-time choice.

#ifndef BISTREAM_RUNTIME_EXECUTOR_H_
#define BISTREAM_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/time.h"
#include "runtime/clock.h"
#include "runtime/cost_model.h"
#include "runtime/transport.h"
#include "runtime/unit.h"

namespace bistream {
namespace runtime {

class TimelineSink;

/// \brief Which execution backend an Executor implements.
enum class BackendKind : uint8_t {
  /// Deterministic single-threaded simulation on virtual time.
  kSim = 0,
  /// Real threads on wall-clock time.
  kParallel = 1,
};

inline const char* BackendName(BackendKind kind) {
  return kind == BackendKind::kSim ? "sim" : "parallel";
}

/// \brief Execution backend: unit/transport factory plus the run loop.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual BackendKind kind() const = 0;

  /// \brief True when units execute concurrently (handlers on different
  /// units may run at the same time). Engines use this to gate features
  /// that assume single-threaded execution (fault injection, elastic
  /// scaling), to lock shared sinks, and to switch the telemetry sampler
  /// and joiner stage accounting from virtual to wall-clock mode.
  bool concurrent() const { return kind() != BackendKind::kSim; }

  /// \brief Creates a unit with a debug label; the executor keeps ownership.
  virtual Unit* AddUnit(const std::string& label) = 0;

  /// \brief Creates a transport to `dst` with backend-default behaviour.
  virtual Transport* Connect(Unit* dst) = 0;

  /// \brief Creates a transport to `dst` with explicit options (latency /
  /// jitter / fault knobs are sim-only; the parallel backend ignores them).
  virtual Transport* Connect(Unit* dst, ChannelOptions options) = 0;

  /// \brief The driver-side clock (virtual under sim, wall under parallel).
  /// Individual units additionally expose unit-affine clocks via
  /// Unit::clock().
  virtual Clock* clock() = 0;

  /// \brief The cost model units charge virtual time from. The parallel
  /// backend carries one too (handlers still compute the virtual charges;
  /// the executor just ignores them in favor of measured time).
  virtual const CostModel& cost() const = 0;

  /// \brief Runs until `deadline`. The sim backend executes every event
  /// with timestamp <= deadline and advances virtual now() to the deadline.
  /// The parallel backend treats this as a driver-side service point: it
  /// drains driver tasks and returns immediately — wall time is not
  /// throttled to the workload's virtual arrival schedule (injection runs
  /// firehose; a full unit queue blocks the driver as backpressure).
  virtual void RunUntil(SimTime deadline) = 0;

  /// \brief Runs until the whole cluster is quiescent: no queued messages,
  /// no pending tasks, and no armed one-shot work. Repeating timers whose
  /// callback has stopped rearming do not hold this open.
  virtual void RunUntilIdle() = 0;

  /// \brief In-flight work items (events under sim; queued messages plus
  /// pending tasks/timers under parallel). An observability gauge, not a
  /// synchronization primitive.
  virtual uint64_t pending_events() const = 0;

  /// \brief Total messages sent across all transports.
  virtual uint64_t total_messages() const = 0;
  /// \brief Total bytes sent across all transports.
  virtual uint64_t total_bytes() const = 0;
  /// \brief Messages silently lost in transit (fault injection; 0 on
  /// backends without a fault model).
  virtual uint64_t total_dropped() const = 0;
  /// \brief Deliveries discarded because the destination unit was down.
  virtual uint64_t total_dropped_dead() const = 0;
  /// \brief Inbox messages wiped by unit crashes.
  virtual uint64_t total_lost_on_crash() const = 0;

  /// \brief Worst observed lateness of a fired timer (wall ns between a
  /// timer's deadline and the timer thread dispatching it). 0 on the sim
  /// backend, whose virtual timers are exact by construction.
  virtual SimTime timer_lag_max_ns() const { return 0; }

  /// \brief Timer callbacks dispatched so far. 0 under sim (virtual timers
  /// are ordinary events there and need no lag accounting).
  virtual uint64_t timer_fires() const { return 0; }

  /// \brief Installs the execution-timeline recorder. Backends emit
  /// scheduling events (task begin/end, dequeue waits, sender blocking,
  /// timer fires) into it; see runtime/timeline.h for the event model. Set
  /// before units are created so lane names register. Ownership is shared:
  /// the executor keeps its reference until it is destroyed (worker threads
  /// parked in instrumented waits hold the raw pointer across the park, so
  /// the sink must outlive them — shared ownership makes that structural
  /// rather than a caller obligation). Default: timeline not supported,
  /// events discarded.
  virtual void SetTimeline(std::shared_ptr<TimelineSink> sink) {
    (void)sink;
  }

  /// \brief The installed timeline sink, or nullptr when recording is off.
  virtual TimelineSink* timeline() const { return nullptr; }

  /// \brief Visits every unit the executor owns, in creation order.
  virtual void ForEachUnit(const std::function<void(Unit&)>& fn) = 0;
};

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_EXECUTOR_H_
