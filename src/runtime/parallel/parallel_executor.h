/// \file parallel_executor.h
/// \brief The multithreaded wall-clock execution backend.
///
/// Each unit is a dedicated worker thread draining a bounded MPSC FIFO
/// queue; transports hand messages straight to the destination queue, so
/// delivery is pairwise FIFO per sender — exactly the transport assumption
/// (Definition 8) the order-consistent punctuation protocol needs, which is
/// why the protocol carries over from the simulator unchanged. Time is the
/// wall clock (nanoseconds since executor construction) and NodeStats busy
/// time is measured around the handler instead of charged from the cost
/// model.
///
/// Threading model:
///  - One worker thread per unit (a unit is logically single-threaded, so
///    its handler never races itself). Multiplexing units onto fewer
///    threads would deadlock under backpressure — a router blocked pushing
///    into a full joiner queue must not occupy the thread that joiner
///    needs to drain it — so the thread count equals the unit count.
///  - One timer thread owns the timer heap. Unit-affine timers (armed via
///    Unit::clock()) are dispatched into the unit's own task queue and run
///    on its worker thread; driver timers (armed via Executor::clock())
///    run on the driver thread inside RunUntil/RunUntilIdle.
///  - A full destination queue blocks the sender (backpressure). The
///    driver injecting tuples is throttled the same way, which is what
///    makes firehose injection safe.
///  - Quiescence is an atomic count of in-flight work items (queued
///    messages, queued tasks, armed timers). Every enqueue of child work
///    happens before the parent item's decrement, so observing zero with
///    acquire ordering means the cluster is quiescent and all unit stats
///    are safe to read.
///
/// Process failure is real thread lifecycle: Fail() poisons the unit under
/// its queue mutex (queued work dies, counted messages_lost_on_crash),
/// wakes blocked senders (whose in-flight sends drop, counted
/// messages_dropped_dead), and joins the worker — the crash lands at a
/// message boundary, since a C++ thread cannot be safely interrupted
/// mid-handler. Restart() spawns a fresh worker on the same inbox. Not
/// implemented (engines must gate on Executor::concurrent()): message
/// dropping and reordering fault injection — those model lossy transports,
/// which the in-process handoff is not. Mid-run telemetry IS supported:
/// NodeStats fields are
/// tear-free RelaxedCells, and the substrate additionally measures its own
/// contention — sender blocking in Deliver (blocked_sends / blocked_ns),
/// inbox queueing delay (dequeue_wait_ns), and timer-thread dispatch lag
/// (timer_lag_max_ns / timer_fires) — for the wall-clock sampler to export.

#ifndef BISTREAM_RUNTIME_PARALLEL_PARALLEL_EXECUTOR_H_
#define BISTREAM_RUNTIME_PARALLEL_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.h"
#include "runtime/timeline.h"

namespace bistream {
namespace runtime {

class ParallelExecutor;

struct ParallelExecutorOptions {
  /// Bounded per-unit message-queue capacity; a full queue blocks senders.
  size_t queue_capacity = 1024;
};

/// \brief One engine unit backed by a dedicated worker thread.
class ParallelUnit final : public Unit {
 public:
  ParallelUnit(ParallelExecutor* exec, uint32_t id, std::string label,
               size_t queue_capacity);
  ~ParallelUnit() override;

  ParallelUnit(const ParallelUnit&) = delete;
  ParallelUnit& operator=(const ParallelUnit&) = delete;

  /// \brief Installs the handler. Must happen before the first delivery.
  void SetHandler(NodeHandler handler) override;

  /// \brief Enqueues a message; blocks while the queue is at capacity
  /// (sender-side backpressure). Callable from any thread.
  void Deliver(Message msg) override;

  /// \brief Kills the unit: wipes the inbox and task queue (counting
  /// messages_lost_on_crash), releases blocked senders (their sends drop
  /// dead), and joins the worker thread. The in-service message, if any,
  /// completes first — the crash lands at a message boundary. Idempotent.
  /// Callable from any thread except this unit's own worker.
  void Fail() override;
  /// \brief Spawns a fresh worker for a failed unit. Idempotent.
  void Restart() override;
  bool alive() const override {
    return !dead_.load(std::memory_order_acquire);
  }

  uint32_t id() const override { return id_; }
  const std::string& label() const override { return label_; }

  /// \brief Stable only after the executor has quiesced (the worker writes
  /// these fields without a lock; RunUntilIdle's acquire on the in-flight
  /// counter publishes them).
  const NodeStats& stats() const override { return stats_; }

  size_t queue_depth() const override;
  size_t window_queue_hwm() const override;
  void ResetWindowQueueHwm() override;
  double SampleUtilization(SimTime now) override;

  /// \brief Unit-affine clock: timers run on this unit's worker thread.
  Clock* clock() override { return &clock_; }

 private:
  friend class ParallelExecutor;

  /// Clock whose timers are delivered through the owning unit's task queue.
  class UnitClock final : public Clock {
   public:
    explicit UnitClock(ParallelUnit* unit) : unit_(unit) {}
    SimTime now() const override;
    void ScheduleAt(SimTime when, std::function<void()> fn) override;

   private:
    ParallelUnit* unit_;
  };

  /// \brief Enqueues a closure to run on the worker thread (timer
  /// dispatch). Unbounded: timer callbacks must never block the timer
  /// thread behind data backpressure.
  void PostTask(std::function<void()> fn);

  void StartWorker();
  void StopWorker();
  void Run();

  ParallelExecutor* exec_;
  uint32_t id_;
  std::string label_;
  size_t capacity_;
  UnitClock clock_;
  NodeHandler handler_;

  /// Inbox entries carry their enqueue timestamp so the worker can account
  /// queueing delay (dequeue_wait_ns) separately from service time.
  struct InboxEntry {
    Message msg;
    SimTime enqueue_ns = 0;
  };

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<InboxEntry> inbox_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  /// Crash flag: transitions happen under mu_ (so condvar predicates are
  /// race-free); atomic so alive() is readable from any thread lock-free.
  std::atomic<bool> dead_{false};
  size_t window_queue_hwm_ = 0;  // Guarded by mu_ (senders update it).
  size_t max_queue_depth_ = 0;   // Guarded by mu_; copied to stats_ on read.

  /// Written only by the worker thread (busy/message counters), except the
  /// queue-depth fields the worker copies from the mu_-guarded mirrors.
  NodeStats stats_;
  SimTime last_sample_time_ = 0;
  SimTime last_sample_busy_ = 0;

  std::thread worker_;
};

/// \brief A transport delivering directly into the destination's queue.
class ParallelTransport final : public Transport {
 public:
  explicit ParallelTransport(ParallelUnit* dst) : dst_(dst) {}

  void Send(Message msg) override;

  ParallelUnit* destination() const override { return dst_; }
  uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_dropped() const override { return 0; }

 private:
  ParallelUnit* dst_;
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
};

/// \brief The wall-clock, thread-per-unit Executor implementation.
class ParallelExecutor final : public Executor {
 public:
  explicit ParallelExecutor(const CostModel& cost,
                            ParallelExecutorOptions options = {});
  ~ParallelExecutor() override;

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  BackendKind kind() const override { return BackendKind::kParallel; }

  Unit* AddUnit(const std::string& label) override;
  Transport* Connect(Unit* dst) override;
  /// \brief Options are accepted for interface parity but ignored: the
  /// in-process handoff has no modeled latency/jitter/drop and is always
  /// FIFO.
  Transport* Connect(Unit* dst, ChannelOptions options) override;

  Clock* clock() override { return &driver_clock_; }
  const CostModel& cost() const override { return cost_; }

  /// \brief Driver-side service point: drains driver-clock tasks and
  /// returns immediately. Wall execution is not throttled to the virtual
  /// deadline — see the file comment.
  void RunUntil(SimTime deadline) override;

  /// \brief Blocks until every queued message, task, and armed timer has
  /// completed. Also the publication point for unit stats.
  void RunUntilIdle() override;

  uint64_t pending_events() const override {
    return static_cast<uint64_t>(
        outstanding_.load(std::memory_order_acquire));
  }

  uint64_t total_messages() const override;
  uint64_t total_bytes() const override;
  uint64_t total_dropped() const override { return 0; }
  uint64_t total_dropped_dead() const override;
  uint64_t total_lost_on_crash() const override;

  /// \brief Worst dispatch lateness over all fired timers (wall ns). The
  /// timer thread is the single writer; reads are tear-free relaxed loads.
  SimTime timer_lag_max_ns() const override {
    return timer_lag_max_ns_.load();
  }
  uint64_t timer_fires() const override { return timer_fires_.load(); }

  /// \brief Timeline sink handoff: the hot paths read an atomic raw
  /// pointer; the shared_ptr reference is retained (previous sinks go to a
  /// retired list) until the executor — and therefore every worker thread,
  /// joined in ~ParallelExecutor — is gone. A worker parked inside an
  /// instrumented dequeue-wait holds the raw pointer across the park, so
  /// the sink's lifetime must cover the threads', not the installer's.
  void SetTimeline(std::shared_ptr<TimelineSink> sink) override {
    std::lock_guard<std::mutex> lk(timeline_owner_mu_);
    timeline_.store(sink.get(), std::memory_order_release);
    if (timeline_owner_ != nullptr) {
      timeline_retired_.push_back(std::move(timeline_owner_));
    }
    timeline_owner_ = std::move(sink);
  }
  TimelineSink* timeline() const override {
    return timeline_.load(std::memory_order_acquire);
  }

  void ForEachUnit(const std::function<void(Unit&)>& fn) override;

  /// \brief Worker threads spawned (== units created).
  size_t worker_threads() const {
    std::lock_guard<std::mutex> lk(units_mu_);
    return units_.size();
  }

  /// \brief Wall nanoseconds since executor construction.
  SimTime NowNs() const;

 private:
  friend class ParallelUnit;

  class DriverClock final : public Clock {
   public:
    explicit DriverClock(ParallelExecutor* exec) : exec_(exec) {}
    SimTime now() const override;
    void ScheduleAt(SimTime when, std::function<void()> fn) override;

   private:
    ParallelExecutor* exec_;
  };

  struct TimerEntry {
    SimTime when;
    uint64_t seq;
    ParallelUnit* unit;  // nullptr => driver-clock timer.
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// \brief Arms a timer. `unit == nullptr` targets the driver thread.
  void ArmTimer(ParallelUnit* unit, SimTime when, std::function<void()> fn);
  void TimerLoop();
  void PostDriverTask(std::function<void()> fn);
  void DrainDriverTasks();

  void IncOutstanding() {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
  }
  void DecOutstanding();

  CostModel cost_;
  ParallelExecutorOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  DriverClock driver_clock_;

  /// Guards units_/transports_: the driver adds units mid-run (recovery
  /// respawn, scale-out) while the sampler thread walks ForEachUnit and
  /// sums transport totals.
  mutable std::mutex units_mu_;
  std::vector<std::unique_ptr<ParallelUnit>> units_;
  std::vector<std::unique_ptr<ParallelTransport>> transports_;
  uint32_t next_unit_id_ = 0;

  /// In-flight work items; zero (with acquire) means quiescent.
  std::atomic<int64_t> outstanding_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater>
      timer_heap_;
  uint64_t next_timer_seq_ = 0;
  bool timer_stop_ = false;
  /// Written only by the timer thread (inside TimerLoop).
  RelaxedCell<SimTime> timer_lag_max_ns_ = 0;
  RelaxedCell<uint64_t> timer_fires_ = 0;
  std::thread timer_thread_;

  std::mutex driver_mu_;
  std::deque<std::function<void()>> driver_tasks_;

  std::atomic<TimelineSink*> timeline_{nullptr};
  std::mutex timeline_owner_mu_;
  std::shared_ptr<TimelineSink> timeline_owner_;
  std::vector<std::shared_ptr<TimelineSink>> timeline_retired_;
};

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_PARALLEL_PARALLEL_EXECUTOR_H_
