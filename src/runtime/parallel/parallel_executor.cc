#include "runtime/parallel/parallel_executor.h"

#include <utility>

#include "common/logging.h"

namespace bistream {
namespace runtime {

// --- ParallelUnit ---

ParallelUnit::ParallelUnit(ParallelExecutor* exec, uint32_t id,
                           std::string label, size_t queue_capacity)
    : exec_(exec),
      id_(id),
      label_(std::move(label)),
      capacity_(queue_capacity),
      clock_(this) {
  BISTREAM_CHECK(exec_ != nullptr);
  BISTREAM_CHECK_GE(capacity_, size_t{1});
}

ParallelUnit::~ParallelUnit() { StopWorker(); }

void ParallelUnit::SetHandler(NodeHandler handler) {
  // Pre-start wiring: the worker reads handler_ only after a delivery,
  // whose queue mutex orders it after this write.
  std::lock_guard<std::mutex> lk(mu_);
  handler_ = std::move(handler);
}

void ParallelUnit::Deliver(Message msg) {
  // Count the message before it becomes poppable: were the increment to
  // follow the push, the receiving worker could pop, finish, and decrement
  // first, letting the executor observe a transient zero and declare
  // quiescence with work still in flight.
  exec_->IncOutstanding();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (inbox_.size() >= capacity_ && !stop_ && !dead_) {
      // Backpressure stall: record the count and the wall time spent
      // blocked. Writers are serialized by mu_, so the relaxed cells are
      // safe, and the sampler thread reads them tear-free mid-run. The
      // timeline span lands on the *sender's* lane (this thread), with the
      // destination unit as the argument.
      TimelineSink* timeline = exec_->timeline();
      SimTime blocked_start = exec_->NowNs();
      TimelineRecord(timeline, TimelineEventType::kSenderBlock,
                     blocked_start, id_);
      ++stats_.blocked_sends;
      not_full_.wait(lk, [this] {
        return inbox_.size() < capacity_ || stop_ || dead_;
      });
      SimTime woke = exec_->NowNs();
      stats_.blocked_ns += woke - blocked_start;
      TimelineRecord(timeline, TimelineEventType::kSenderWake, woke, id_);
    }
    if (dead_) {
      // The in-flight send fails: the destination process is gone. This is
      // the backpressure-safe crash semantics — a sender blocked on a full
      // inbox is released, not deadlocked, when the receiver dies.
      ++stats_.messages_dropped_dead;
      lk.unlock();
      exec_->DecOutstanding();
      return;
    }
    BISTREAM_CHECK(!stop_) << "delivery to " << label_
                           << " after executor shutdown";
    inbox_.push_back(InboxEntry{std::move(msg), exec_->NowNs()});
    if (inbox_.size() > max_queue_depth_) max_queue_depth_ = inbox_.size();
    if (inbox_.size() > window_queue_hwm_) window_queue_hwm_ = inbox_.size();
  }
  not_empty_.notify_one();
}

void ParallelUnit::Fail() {
  std::thread victim;
  size_t wiped = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_.load(std::memory_order_relaxed)) return;  // Idempotent.
    // Queued-but-unprocessed messages die with the process; pending timer
    // tasks target a thread that no longer exists.
    stats_.messages_lost_on_crash += inbox_.size();
    wiped = inbox_.size() + tasks_.size();
    inbox_.clear();
    tasks_.clear();
    ++stats_.crashes;
    dead_.store(true, std::memory_order_release);
    victim = std::move(worker_);
  }
  // Wake the worker (to exit) and any senders blocked on the full inbox
  // (to fail their sends).
  not_empty_.notify_all();
  not_full_.notify_all();
  // Join at a message boundary: a C++ thread cannot be interrupted
  // mid-handler, so the in-service message (if any) completes and its
  // outputs land. Everything queued behind it is already gone.
  if (victim.joinable()) victim.join();
  // Each wiped entry held one in-flight count from its enqueue.
  for (size_t i = 0; i < wiped; ++i) exec_->DecOutstanding();
}

void ParallelUnit::Restart() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!dead_.load(std::memory_order_relaxed)) return;  // Idempotent.
    ++stats_.restarts;
    dead_.store(false, std::memory_order_release);
  }
  StartWorker();
}

size_t ParallelUnit::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inbox_.size();
}

size_t ParallelUnit::window_queue_hwm() const {
  std::lock_guard<std::mutex> lk(mu_);
  return window_queue_hwm_;
}

void ParallelUnit::ResetWindowQueueHwm() {
  std::lock_guard<std::mutex> lk(mu_);
  window_queue_hwm_ = inbox_.size();
}

double ParallelUnit::SampleUtilization(SimTime now) {
  // Same windowed busy-fraction the sim node reports; only meaningful when
  // the executor is quiescent (post-run) or from the worker itself.
  SimTime elapsed = now - last_sample_time_;
  SimTime busy = stats_.busy_ns;
  double util = 0.0;
  if (elapsed > 0) {
    util = static_cast<double>(busy - last_sample_busy_) /
           static_cast<double>(elapsed);
  }
  last_sample_time_ = now;
  last_sample_busy_ = busy;
  return util;
}

SimTime ParallelUnit::UnitClock::now() const { return unit_->exec_->NowNs(); }

void ParallelUnit::UnitClock::ScheduleAt(SimTime when,
                                         std::function<void()> fn) {
  unit_->exec_->ArmTimer(unit_, when, std::move(fn));
}

void ParallelUnit::PostTask(std::function<void()> fn) {
  // Increment-before-push, same reason as Deliver().
  exec_->IncOutstanding();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (dead_.load(std::memory_order_relaxed)) {
      // A timer firing for a dead unit vanishes — there is no worker to
      // run it, and holding its outstanding count would wedge quiescence.
      lk.unlock();
      exec_->DecOutstanding();
      return;
    }
    tasks_.push_back(std::move(fn));
  }
  not_empty_.notify_one();
}

void ParallelUnit::StartWorker() {
  worker_ = std::thread([this] { Run(); });
}

void ParallelUnit::StopWorker() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ParallelUnit::Run() {
  // Every event this thread records belongs to this unit's lane.
  ThreadTimelineLane() = id_;
  for (;;) {
    std::function<void()> task;
    Message msg;
    SimTime enqueue_ns = 0;
    bool have_msg = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      auto ready = [this] {
        return stop_ || dead_.load(std::memory_order_relaxed) ||
               !tasks_.empty() || !inbox_.empty();
      };
      TimelineSink* timeline = exec_->timeline();
      if (timeline != nullptr && !ready()) {
        // Idle span: only opened when the inbox is actually empty, so an
        // always-busy worker pays nothing beyond the predicate check.
        timeline->Record(TimelineEventType::kDequeueWaitBegin,
                         exec_->NowNs(), id_, 0);
        not_empty_.wait(lk, ready);
        timeline->Record(TimelineEventType::kDequeueWaitEnd, exec_->NowNs(),
                         id_, 0);
      } else {
        not_empty_.wait(lk, ready);
      }
      // Crash: Fail() wiped the queues under mu_ before setting dead_, so
      // there is nothing left to drain — the worker just exits.
      if (dead_.load(std::memory_order_relaxed)) return;
      // Timer tasks first: they are rare control work (punctuation ticks)
      // and must not starve behind a full data backlog.
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (!inbox_.empty()) {
        msg = std::move(inbox_.front().msg);
        enqueue_ns = inbox_.front().enqueue_ns;
        inbox_.pop_front();
        have_msg = true;
        // Publish queue peaks into stats_ while we hold mu_ anyway.
        stats_.max_queue_depth = max_queue_depth_;
        not_full_.notify_one();
      } else {
        return;  // stop_ && drained.
      }
    }
    if (task) {
      // Timer callbacks are loop work, not unit service time — mirrors the
      // sim, where Router::Tick runs as an event-loop event and only the
      // messages it sends get charged at their receivers. They still get a
      // timeline span (arg = kTimerTaskArg) so punctuation ticks are
      // visible on the unit's lane.
      if (TimelineSink* timeline = exec_->timeline()) {
        SimTime task_start = exec_->NowNs();
        timeline->Record(TimelineEventType::kTaskBegin, task_start, id_,
                         kTimerTaskArg);
        task();
        timeline->Record(TimelineEventType::kTaskEnd, exec_->NowNs(), id_,
                         kTimerTaskArg);
      } else {
        task();
      }
      exec_->DecOutstanding();
      continue;
    }
    if (!have_msg) continue;
    BISTREAM_CHECK(handler_ != nullptr)
        << "unit " << label_ << " serviced before SetHandler";
    ++stats_.messages_processed;
    if (msg.kind == Message::Kind::kTuple) {
      ++stats_.tuple_messages;
    } else if (msg.kind == Message::Kind::kBatch) {
      stats_.tuple_messages += msg.batch.size();
    } else if (msg.kind == Message::Kind::kPunctuation) {
      ++stats_.punctuation_messages;
    }
    SimTime start = exec_->NowNs();
    // Queueing delay (enqueue to pop): distinct from service time below, so
    // the sampler can tell a slow handler from a deep backlog.
    if (start > enqueue_ns) stats_.dequeue_wait_ns += start - enqueue_ns;
    // The task span reuses the clock reads the busy accounting already
    // makes: recording costs two ring writes, nothing more.
    TimelineSink* timeline = exec_->timeline();
    TimelineRecord(timeline, TimelineEventType::kTaskBegin, start,
                   static_cast<uint64_t>(msg.kind));
    handler_(msg);  // Virtual-time return value ignored: time is measured.
    SimTime service = exec_->NowNs() - start;
    stats_.busy_ns += service;
    TimelineRecord(timeline, TimelineEventType::kTaskEnd, start + service,
                   static_cast<uint64_t>(msg.kind));
    switch (msg.kind) {
      case Message::Kind::kTuple:
        stats_.busy_tuple_ns += service;
        break;
      case Message::Kind::kPunctuation:
        stats_.busy_punctuation_ns += service;
        break;
      case Message::Kind::kBatch:
        stats_.busy_batch_ns += service;
        break;
      case Message::Kind::kControl:
        stats_.busy_control_ns += service;
        break;
    }
    exec_->DecOutstanding();
  }
}

// --- ParallelTransport ---

void ParallelTransport::Send(Message msg) {
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.WireBytes(), std::memory_order_relaxed);
  dst_->Deliver(std::move(msg));
}

// --- ParallelExecutor ---

ParallelExecutor::ParallelExecutor(const CostModel& cost,
                                   ParallelExecutorOptions options)
    : cost_(cost),
      options_(options),
      epoch_(std::chrono::steady_clock::now()),
      driver_clock_(this) {
  BISTREAM_CHECK_GE(options_.queue_capacity, size_t{1});
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  std::lock_guard<std::mutex> lk(units_mu_);
  for (auto& unit : units_) unit->StopWorker();
}

SimTime ParallelExecutor::NowNs() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Unit* ParallelExecutor::AddUnit(const std::string& label) {
  ParallelUnit* unit;
  {
    std::lock_guard<std::mutex> lk(units_mu_);
    units_.push_back(std::make_unique<ParallelUnit>(
        this, next_unit_id_++, label, options_.queue_capacity));
    unit = units_.back().get();
  }
  if (TimelineSink* timeline = this->timeline()) {
    timeline->SetLaneName(unit->id_, label);
  }
  unit->StartWorker();
  return unit;
}

Transport* ParallelExecutor::Connect(Unit* dst) {
  std::lock_guard<std::mutex> lk(units_mu_);
  transports_.push_back(
      std::make_unique<ParallelTransport>(static_cast<ParallelUnit*>(dst)));
  return transports_.back().get();
}

Transport* ParallelExecutor::Connect(Unit* dst, ChannelOptions /*options*/) {
  return Connect(dst);
}

void ParallelExecutor::RunUntil(SimTime /*deadline*/) { DrainDriverTasks(); }

void ParallelExecutor::RunUntilIdle() {
  for (;;) {
    DrainDriverTasks();
    std::unique_lock<std::mutex> lk(idle_mu_);
    if (outstanding_.load(std::memory_order_acquire) == 0) return;
    {
      std::lock_guard<std::mutex> dlk(driver_mu_);
      if (!driver_tasks_.empty()) continue;  // Run our own work first.
    }
    // The wait_for bound is a belt-and-braces fallback; DecOutstanding and
    // PostDriverTask both notify.
    idle_cv_.wait_for(lk, std::chrono::milliseconds(5));
  }
}

uint64_t ParallelExecutor::total_messages() const {
  std::lock_guard<std::mutex> lk(units_mu_);
  uint64_t total = 0;
  for (const auto& t : transports_) total += t->messages_sent();
  return total;
}

uint64_t ParallelExecutor::total_bytes() const {
  std::lock_guard<std::mutex> lk(units_mu_);
  uint64_t total = 0;
  for (const auto& t : transports_) total += t->bytes_sent();
  return total;
}

uint64_t ParallelExecutor::total_dropped_dead() const {
  std::lock_guard<std::mutex> lk(units_mu_);
  uint64_t total = 0;
  for (const auto& u : units_) total += u->stats().messages_dropped_dead;
  return total;
}

uint64_t ParallelExecutor::total_lost_on_crash() const {
  std::lock_guard<std::mutex> lk(units_mu_);
  uint64_t total = 0;
  for (const auto& u : units_) total += u->stats().messages_lost_on_crash;
  return total;
}

void ParallelExecutor::ForEachUnit(const std::function<void(Unit&)>& fn) {
  std::lock_guard<std::mutex> lk(units_mu_);
  for (auto& unit : units_) fn(*unit);
}

SimTime ParallelExecutor::DriverClock::now() const { return exec_->NowNs(); }

void ParallelExecutor::DriverClock::ScheduleAt(SimTime when,
                                               std::function<void()> fn) {
  exec_->ArmTimer(nullptr, when, std::move(fn));
}

void ParallelExecutor::ArmTimer(ParallelUnit* unit, SimTime when,
                                std::function<void()> fn) {
  BISTREAM_CHECK(fn != nullptr);
  IncOutstanding();
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_heap_.push(TimerEntry{when, next_timer_seq_++, unit, std::move(fn)});
  }
  timer_cv_.notify_all();
}

void ParallelExecutor::TimerLoop() {
  ThreadTimelineLane() = kTimerLane;
  std::unique_lock<std::mutex> lk(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timer_heap_.empty()) {
      timer_cv_.wait(lk);
      continue;
    }
    SimTime when = timer_heap_.top().when;
    SimTime now = NowNs();
    if (now < when) {
      timer_cv_.wait_until(lk, epoch_ + std::chrono::nanoseconds(when));
      continue;
    }
    // Dispatch lag: how late the timer thread is firing this deadline.
    // Single writer (this thread); the sampler reads the cells tear-free.
    if (now - when > timer_lag_max_ns_.load()) {
      timer_lag_max_ns_.store(now - when);
    }
    ++timer_fires_;
    TimelineRecord(timeline(), TimelineEventType::kTimerFire, now,
                   now - when);
    // priority_queue::top() is const; move the payload out before popping
    // (safe: popped immediately).
    TimerEntry& top = const_cast<TimerEntry&>(timer_heap_.top());
    ParallelUnit* unit = top.unit;
    std::function<void()> fn = std::move(top.fn);
    timer_heap_.pop();
    lk.unlock();
    // Hand the callback to its execution context *before* releasing this
    // timer's outstanding count, so quiescence can't be observed between.
    if (unit != nullptr) {
      unit->PostTask(std::move(fn));
    } else {
      PostDriverTask(std::move(fn));
    }
    DecOutstanding();
    lk.lock();
  }
}

void ParallelExecutor::PostDriverTask(std::function<void()> fn) {
  IncOutstanding();
  {
    std::lock_guard<std::mutex> lk(driver_mu_);
    driver_tasks_.push_back(std::move(fn));
  }
  idle_cv_.notify_all();
}

void ParallelExecutor::DrainDriverTasks() {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lk(driver_mu_);
      if (driver_tasks_.empty()) return;
      task = std::move(driver_tasks_.front());
      driver_tasks_.pop_front();
    }
    task();
    DecOutstanding();
  }
}

void ParallelExecutor::DecOutstanding() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

}  // namespace runtime
}  // namespace bistream
