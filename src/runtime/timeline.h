/// \file timeline.h
/// \brief Execution-timeline event model and recording interface.
///
/// The runtime substrate (parallel executor, sim nodes, routers, the
/// engine's recovery coordinator) emits scheduling and lifecycle events —
/// task begin/end, inbox dequeue waits, sender blocking, timer fires,
/// punctuation rounds, checkpoint/replay, crash/detect/respawn — into a
/// TimelineSink. The concrete recorder (per-thread SPSC rings, Chrome
/// trace export) lives in src/obs/timeline; this header holds only the
/// event model and the abstract sink so the runtime layer stays free of
/// any obs dependency (obs links runtime, not the other way around).
///
/// Every event carries a *lane*: the unit id whose execution it belongs
/// to, or one of the two pseudo-lanes below. Worker threads set their
/// lane once at loop entry; the driver and timer threads use the
/// pseudo-lanes; sim sets a lane scope around each handler dispatch. The
/// Chrome export renders one track per lane.

#ifndef BISTREAM_RUNTIME_TIMELINE_H_
#define BISTREAM_RUNTIME_TIMELINE_H_

#include <cstdint>
#include <string>

#include "common/time.h"

namespace bistream {
namespace runtime {

/// \brief What happened. Begin/End pairs render as nested Chrome spans on
/// their lane; the rest render as instants.
enum class TimelineEventType : uint8_t {
  kTaskBegin = 0,     ///< Unit handler dispatch started (arg: message kind).
  kTaskEnd,           ///< Handler returned (at = begin + service).
  kDequeueWaitBegin,  ///< Worker went idle waiting on an empty inbox.
  kDequeueWaitEnd,    ///< Worker woke with work (or stop) available.
  kSenderBlock,       ///< Send blocked on a full inbox (arg: dest unit).
  kSenderWake,        ///< Blocked send admitted (arg: dest unit).
  kTimerFire,         ///< Timer callback dispatched (arg: lag ns).
  kPunctRound,        ///< Router advanced a punctuation round (arg: round).
  kCheckpoint,        ///< Joiner checkpoint taken (arg: round).
  kReplay,            ///< Replay span sent to a respawned unit (arg: unit).
  kCrash,             ///< Unit killed (arg: unit).
  kDetect,            ///< Failure detector fired (arg: failed unit).
  kRespawn,           ///< Replacement unit live (arg: replacement unit).
};

inline const char* TimelineEventName(TimelineEventType type) {
  switch (type) {
    case TimelineEventType::kTaskBegin: return "task";
    case TimelineEventType::kTaskEnd: return "task_end";
    case TimelineEventType::kDequeueWaitBegin: return "dequeue_wait";
    case TimelineEventType::kDequeueWaitEnd: return "dequeue_wait_end";
    case TimelineEventType::kSenderBlock: return "blocked_send";
    case TimelineEventType::kSenderWake: return "blocked_send_end";
    case TimelineEventType::kTimerFire: return "timer_fire";
    case TimelineEventType::kPunctRound: return "punct_round";
    case TimelineEventType::kCheckpoint: return "checkpoint";
    case TimelineEventType::kReplay: return "replay";
    case TimelineEventType::kCrash: return "crash";
    case TimelineEventType::kDetect: return "detect";
    case TimelineEventType::kRespawn: return "respawn";
  }
  return "unknown";
}

/// Pseudo-lanes: the driver thread (injection, recovery coordination) and
/// the parallel backend's central timer thread. Real unit ids are small,
/// so the top of the id space is safe to reserve.
inline constexpr uint32_t kDriverLane = 0xfffffffeu;
inline constexpr uint32_t kTimerLane = 0xffffffffu;

/// kTaskBegin/kTaskEnd arg distinguishing a timer-posted task (punctuation
/// tick) from message service, whose arg is the small Message::Kind value.
inline constexpr uint64_t kTimerTaskArg = 0xff;

/// \brief Abstract recorder. Record() must be wait-free and allocation-free
/// on the hot path (the obs implementation writes a fixed ring slot); it is
/// called concurrently from every worker thread plus the driver and timer
/// threads. SetLaneName is driver-side (unit creation/respawn) and may lock.
class TimelineSink {
 public:
  virtual ~TimelineSink() = default;

  virtual void Record(TimelineEventType type, SimTime at, uint32_t lane,
                      uint64_t arg) = 0;

  virtual void SetLaneName(uint32_t lane, const std::string& name) = 0;
};

/// \brief The lane the current thread's events belong to. Worker threads
/// set this to their unit id at loop entry; everything else defaults to
/// the driver lane.
inline uint32_t& ThreadTimelineLane() {
  thread_local uint32_t lane = kDriverLane;
  return lane;
}

/// \brief RAII lane override for the sim backend, where every handler runs
/// on the one driver thread: ServiceOne scopes the lane to the node id so
/// events recorded inside the handler land on that unit's track.
class TimelineLaneScope {
 public:
  explicit TimelineLaneScope(uint32_t lane) : prev_(ThreadTimelineLane()) {
    ThreadTimelineLane() = lane;
  }
  ~TimelineLaneScope() { ThreadTimelineLane() = prev_; }

  TimelineLaneScope(const TimelineLaneScope&) = delete;
  TimelineLaneScope& operator=(const TimelineLaneScope&) = delete;

 private:
  uint32_t prev_;
};

/// \brief Null-safe record on the current thread's lane: compiles to a
/// single branch when the timeline is disabled (sink == nullptr), which is
/// the zero-perturbation guarantee the benches rely on.
inline void TimelineRecord(TimelineSink* sink, TimelineEventType type,
                           SimTime at, uint64_t arg = 0) {
  if (sink) sink->Record(type, at, ThreadTimelineLane(), arg);
}

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_TIMELINE_H_
