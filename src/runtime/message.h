/// \file message.h
/// \brief Messages exchanged between engine units, on any backend.
///
/// One concrete message type keeps the hot path allocation-light; the
/// router/joiner protocols of both engines (biclique and matrix) are encoded
/// in its fields. kTuple messages carry a data tuple on either the store or
/// the join stream; kPunctuation messages carry the order-consistent
/// protocol's signal counters; kControl messages carry coordinator commands
/// (topology epoch changes for elastic scaling).

#ifndef BISTREAM_RUNTIME_MESSAGE_H_
#define BISTREAM_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tuple/tuple.h"

namespace bistream {

/// \brief Which logical stream a tuple message belongs to (Section 3.2 of
/// the model restatement: each input tuple forks into a store stream copy
/// and join stream copies).
enum class StreamKind : uint8_t {
  kStore = 0,
  kJoin = 1,
};

/// \brief Coordinator control verbs (elastic scaling).
enum class ControlOp : uint8_t {
  kNone = 0,
  /// Joiner: begin draining (stop receiving stores; kept for probes).
  kStartDrain = 1,
  /// Joiner: fully retired; stop participating.
  kRetire = 2,
  /// Router/joiner: adopt the attached topology epoch.
  kEpochChange = 3,
  /// Router: emit a final punctuation and halt the cadence. Sent through
  /// the same FIFO path as the data so it arrives after all tuples.
  kStopFlush = 4,
};

/// \brief One sequenced tuple inside a batch message.
struct BatchEntry {
  Tuple tuple;
  StreamKind stream = StreamKind::kStore;
  uint64_t seq = 0;
  uint64_t round = 0;
};

/// \brief The single wire message type of the simulated cluster.
struct Message {
  enum class Kind : uint8_t {
    kTuple = 0,
    kPunctuation = 1,
    kControl = 2,
    /// Mini-batch of sequenced tuples for one destination (BiStream's
    /// batching optimization: one framework-overhead charge amortized over
    /// `batch.size()` tuples).
    kBatch = 3,
  };

  Kind kind = Kind::kTuple;

  // --- kTuple fields ---
  Tuple tuple;
  StreamKind stream = StreamKind::kStore;
  /// True when this copy is a recovery replay of a message originally sent
  /// to a failed unit. Join results produced from replayed probes pass the
  /// engine's duplicate-suppression filter (some may already have been
  /// emitted before the crash).
  bool replayed = false;

  // --- kBatch payload ---
  std::vector<BatchEntry> batch;

  // --- ordering-protocol fields (kTuple and kPunctuation) ---
  /// Router that sequenced this message.
  uint32_t router_id = 0;
  /// Router-local monotonically increasing counter (Definition 8).
  uint64_t seq = 0;
  /// Punctuation round this message belongs to / announces.
  uint64_t round = 0;
  /// True on the punctuation a stopping router emits for its last round:
  /// the router will punctuate no further rounds, so order buffers may
  /// treat every later round as already closed by it. Routers on a
  /// wall-clock backend stop at *different* final rounds (their tick
  /// cadences run on independent worker threads); without this marker the
  /// highest rounds would wait forever for punctuations that never come.
  bool final_punct = false;

  // --- kControl fields ---
  ControlOp control = ControlOp::kNone;
  /// Epoch number for kEpochChange; unit id for drain/retire.
  uint64_t control_arg = 0;

  /// \brief Wire size in bytes for the network cost model.
  size_t WireBytes() const;

  std::string ToString() const;
};

/// \brief Builds a tuple-carrying message.
Message MakeTupleMessage(Tuple tuple, StreamKind stream, uint32_t router_id,
                         uint64_t seq, uint64_t round);

/// \brief Builds a punctuation (signal-tuple) message announcing that the
/// router has finished emitting round `round` at counter `seq`. Pass
/// `final_punct` on the stopping router's last round.
Message MakePunctuation(uint32_t router_id, uint64_t seq, uint64_t round,
                        bool final_punct = false);

/// \brief Builds a coordinator control message.
Message MakeControl(ControlOp op, uint64_t arg);

/// \brief Builds a mini-batch message from sequenced entries.
Message MakeBatch(std::vector<BatchEntry> entries, uint32_t router_id);

}  // namespace bistream

#endif  // BISTREAM_RUNTIME_MESSAGE_H_
