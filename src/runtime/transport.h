/// \file transport.h
/// \brief The runtime substrate's point-to-point send interface.
///
/// A Transport is a unidirectional FIFO link from one sender to one
/// destination unit — the abstraction behind the paper's pairwise-FIFO
/// assumption (Definition 8). The sim backend implements it with modeled
/// latency/jitter/fault channels; the parallel backend with a direct
/// bounded-queue handoff (in-process delivery is trivially FIFO per sender).

#ifndef BISTREAM_RUNTIME_TRANSPORT_H_
#define BISTREAM_RUNTIME_TRANSPORT_H_

#include <cstdint>

#include "common/time.h"
#include "runtime/message.h"
#include "runtime/unit.h"

namespace bistream {

/// \brief Per-channel delivery behaviour. The latency/jitter/fault knobs
/// are honored by the sim backend only; the parallel backend delivers
/// immediately and always preserves FIFO.
struct ChannelOptions {
  /// Base one-way latency.
  SimTime latency_ns = 200 * kMicrosecond;
  /// Uniform jitter in [0, jitter_ns] added per message.
  SimTime jitter_ns = 0;
  /// When true (default) deliveries never reorder within the channel.
  bool preserve_fifo = true;
  /// Probability a message is silently lost (fault injection; the
  /// order-consistent protocol assumes a lossless transport — Definition 7
  /// — and tests use this knob to show the oracle detects violations).
  double drop_probability = 0.0;
};

namespace runtime {

/// \brief A unidirectional link to one unit. Send may block (parallel
/// backend backpressure when the destination queue is full) but never
/// reorders messages from the same sender.
class Transport {
 public:
  virtual ~Transport() = default;

  /// \brief Sends a message toward the destination unit. Wire bytes are
  /// accounted for the communication-cost experiments.
  virtual void Send(Message msg) = 0;

  virtual Unit* destination() const = 0;
  virtual uint64_t messages_sent() const = 0;
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t messages_dropped() const = 0;
};

}  // namespace runtime
}  // namespace bistream

#endif  // BISTREAM_RUNTIME_TRANSPORT_H_
