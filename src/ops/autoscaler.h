/// \file autoscaler.h
/// \brief HPA-style horizontal autoscaling policies over the biclique
/// engine's elastic control plane.
///
/// BiStream's adaptivity claim is that the join-biclique topology makes
/// scale-out/in cheap (no state migration); this module supplies the policy
/// loop that *decides* when to scale, modeled on the Kubernetes Horizontal
/// Pod Autoscaler the thesis restatement evaluates: a periodic controller
/// samples a per-unit resource metric (CPU-utilization proxy or window
/// state bytes), computes desired replicas = ceil(current · avg / target),
/// and steps the engine toward it. E8 records the resulting timeline.

#ifndef BISTREAM_OPS_AUTOSCALER_H_
#define BISTREAM_OPS_AUTOSCALER_H_

#include <map>
#include <vector>

#include "core/engine.h"

namespace bistream {

/// \brief Which per-unit metric drives scaling.
enum class ScaleMetric : uint8_t {
  /// Busy fraction of each joiner's service loop (HPA CPU utilization).
  kCpu = 0,
  /// Bytes of window state held per joiner (HPA memory, alpha API).
  kMemory = 1,
};

/// \brief Controller configuration.
struct AutoscalerOptions {
  ScaleMetric metric = ScaleMetric::kCpu;
  /// The relation side this controller scales (run one per side).
  RelationId side = kRelationR;
  /// Control-loop period (HPA default 30 s wall; virtual here).
  SimTime interval = 5 * kSecond;
  /// Target average utilization for kCpu (e.g. 0.80 = 80%).
  double target_cpu = 0.80;
  /// Target average per-unit state bytes for kMemory.
  int64_t target_memory_bytes = 64 << 20;
  /// Replica bounds (HPA minReplicas/maxReplicas).
  uint32_t min_replicas = 1;
  uint32_t max_replicas = 8;
  /// Minimum time between scaling actions.
  SimTime cooldown = 10 * kSecond;
  /// Dead band around ratio 1.0 within which no action is taken.
  double tolerance = 0.10;
};

/// \brief One controller observation (the E8 timeline rows).
struct AutoscalerSample {
  SimTime time = 0;
  double metric_value = 0;  // Avg utilization (kCpu) or avg bytes (kMemory).
  size_t active_replicas = 0;
  size_t desired_replicas = 0;
  bool scaled = false;
};

/// \brief The periodic scaling controller.
class Autoscaler {
 public:
  /// \param engine engine to control (not owned; must outlive this)
  Autoscaler(BicliqueEngine* engine, AutoscalerOptions options);

  /// \brief Schedules the control loop on the engine's event loop.
  void Start();

  /// \brief Halts the loop after the current tick.
  void Stop() { stopped_ = true; }

  const std::vector<AutoscalerSample>& timeline() const { return timeline_; }

 private:
  void Tick();
  /// Average metric across the side's active joiners, read from the
  /// engine's metrics registry.
  double SampleMetric();

  BicliqueEngine* engine_;
  AutoscalerOptions options_;
  bool started_ = false;
  bool stopped_ = false;
  SimTime last_action_time_ = 0;
  /// Registry busy_ns gauges are cumulative; the controller keeps its own
  /// per-unit sampling window so it never disturbs the telemetry sampler
  /// (or any other consumer) reading the same gauges.
  struct BusyWindow {
    double busy_ns = 0;
    SimTime time = 0;
  };
  std::map<uint32_t, BusyWindow> busy_windows_;
  std::vector<AutoscalerSample> timeline_;
};

}  // namespace bistream

#endif  // BISTREAM_OPS_AUTOSCALER_H_
