/// \file failure_detector.h
/// \brief Heartbeat-timeout failure detection for joiner units.
///
/// The order-consistent protocol gives every joiner a natural heartbeat for
/// free: routers punctuate every live unit each round, so a healthy joiner
/// processes a punctuation at least once per punctuation interval even when
/// no data flows. The detector runs beside the autoscaler as a periodic
/// controller: any active or draining unit silent for longer than the
/// timeout is declared failed and handed to the engine's recovery
/// coordinator (BicliqueEngine::RecoverUnit). Because the engine fences the
/// suspect before provisioning a replacement, a false positive (slow but
/// alive unit) degrades to an unnecessary recovery, never to a split brain.

#ifndef BISTREAM_OPS_FAILURE_DETECTOR_H_
#define BISTREAM_OPS_FAILURE_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace bistream {

/// \brief Detector configuration.
struct FailureDetectorOptions {
  /// Scan period of the detection loop.
  SimTime check_interval = 20 * kMillisecond;
  /// A unit silent (no punctuation processed) for longer than this is
  /// declared failed. Must exceed the punctuation interval by a healthy
  /// margin or slow-but-alive units get recovered spuriously.
  SimTime timeout = 100 * kMillisecond;
  /// Quiet period after a recovery action before the next scan — gives the
  /// replacement time to catch up before it could be suspected itself.
  SimTime backoff = 200 * kMillisecond;
  /// Stop after this many recoveries (safety valve; 0 = unlimited).
  uint64_t max_recoveries = 0;
};

/// \brief One detection (the fault-recovery timeline rows).
struct DetectionEvent {
  SimTime time = 0;
  uint32_t failed_unit = 0;
  uint32_t replacement_unit = 0;
  /// How long the unit had been silent when declared failed.
  SimTime silence_ns = 0;
};

/// \brief The periodic failure-detection controller.
class FailureDetector {
 public:
  /// \param engine engine to watch (not owned; must outlive this)
  FailureDetector(BicliqueEngine* engine, FailureDetectorOptions options);

  /// \brief Schedules the detection loop on the engine's event loop.
  void Start();

  /// \brief Halts the loop after the current tick.
  void Stop() { stopped_ = true; }

  const std::vector<DetectionEvent>& detections() const {
    return detections_;
  }

 private:
  void Tick();

  BicliqueEngine* engine_;
  FailureDetectorOptions options_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<DetectionEvent> detections_;
};

}  // namespace bistream

#endif  // BISTREAM_OPS_FAILURE_DETECTOR_H_
