#include "ops/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"

namespace bistream {

Autoscaler::Autoscaler(BicliqueEngine* engine, AutoscalerOptions options)
    : engine_(engine), options_(options) {
  BISTREAM_CHECK(engine_ != nullptr);
  BISTREAM_CHECK_GE(options_.min_replicas, 1U);
  BISTREAM_CHECK_GE(options_.max_replicas, options_.min_replicas);
  BISTREAM_CHECK_GT(options_.interval, 0ULL);
}

void Autoscaler::Start() {
  BISTREAM_CHECK(!started_);
  started_ = true;
  engine_->clock()->ScheduleAfter(options_.interval, [this] { Tick(); });
}

double Autoscaler::SampleMetric() {
  double total = 0;
  size_t count = 0;
  SimTime now = engine_->clock()->now();
  const MetricsRegistry& metrics = engine_->metrics();
  engine_->ForEachLiveJoiner(options_.side, [&](Joiner& joiner, runtime::Unit&) {
    // Only active units drive the decision: draining units are already on
    // their way out and would bias the average down.
    uint32_t unit = joiner.unit_id();
    if (engine_->topology().unit(unit).state != UnitState::kActive) {
      return;
    }
    if (options_.metric == ScaleMetric::kCpu) {
      // Preferred source: the diagnosis layer's EWMA-smoothed per-window
      // busy fraction — less tick-phase noise than a raw two-point window.
      // Falls back to the local derivation when diagnosis is off or the
      // sampler has not produced a full window yet (sample_period == 0).
      std::optional<double> smoothed;
      if (const Diagnoser* diag = engine_->diagnoser()) {
        smoothed = diag->SmoothedBusyFraction(unit);
      }
      double fraction = 0;
      if (smoothed.has_value()) {
        fraction = *smoothed;
      } else {
        std::optional<double> busy = metrics.ReadGauge(
            MetricsRegistry::ScopedName("joiner", unit, "busy_ns"));
        if (!busy.has_value()) return;
        BusyWindow& window = busy_windows_[unit];
        if (now > window.time) {
          fraction = std::clamp(
              (*busy - window.busy_ns) /
                  static_cast<double>(now - window.time),
              0.0, 1.0);
        }
        window = BusyWindow{*busy, now};
      }
      total += fraction;
    } else {
      std::optional<double> bytes = metrics.ReadGauge(
          MetricsRegistry::ScopedName("joiner", unit, "state_bytes"));
      if (!bytes.has_value()) return;
      total += *bytes;
    }
    ++count;
  });
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

void Autoscaler::Tick() {
  if (stopped_) return;

  AutoscalerSample sample;
  sample.time = engine_->clock()->now();
  sample.metric_value = SampleMetric();
  sample.active_replicas = engine_->ActiveJoiners(options_.side);

  double target = options_.metric == ScaleMetric::kCpu
                      ? options_.target_cpu
                      : static_cast<double>(options_.target_memory_bytes);
  double ratio = target > 0 ? sample.metric_value / target : 0.0;

  // HPA formula: desired = ceil(current * ratio), with a tolerance dead
  // band, replica bounds, and a cooldown between actions.
  size_t desired = sample.active_replicas;
  if (std::abs(ratio - 1.0) > options_.tolerance) {
    desired = static_cast<size_t>(std::ceil(
        static_cast<double>(sample.active_replicas) * ratio));
  }
  desired = std::max<size_t>(desired, options_.min_replicas);
  desired = std::min<size_t>(desired, options_.max_replicas);
  sample.desired_replicas = desired;

  bool cooled =
      sample.time - last_action_time_ >= options_.cooldown ||
      last_action_time_ == 0;
  if (cooled && desired != sample.active_replicas) {
    // One step per tick keeps the timeline smooth (and mirrors how the
    // thesis's figures show pods being added/removed one at a time).
    Status status;
    if (desired > sample.active_replicas) {
      status = engine_->ScaleOut(options_.side).status();
    } else {
      status = engine_->ScaleIn(options_.side).status();
    }
    if (status.ok()) {
      sample.scaled = true;
      last_action_time_ = sample.time;
    } else {
      BISTREAM_LOG(Warning) << "autoscaler action failed: "
                            << status.ToString();
    }
  }

  timeline_.push_back(sample);
  engine_->clock()->ScheduleAfter(options_.interval, [this] { Tick(); });
}

}  // namespace bistream
