#include "ops/failure_detector.h"

#include <optional>

#include "common/logging.h"

namespace bistream {

FailureDetector::FailureDetector(BicliqueEngine* engine,
                                 FailureDetectorOptions options)
    : engine_(engine), options_(options) {
  BISTREAM_CHECK(engine_ != nullptr);
  BISTREAM_CHECK_GT(options_.check_interval, 0ULL);
  BISTREAM_CHECK_GT(options_.timeout, 0ULL);
}

void FailureDetector::Start() {
  BISTREAM_CHECK(!started_);
  started_ = true;
  engine_->clock()->ScheduleAfter(options_.check_interval, [this] { Tick(); });
}

void FailureDetector::Tick() {
  // Once the run has stopped, punctuations cease cluster-wide and every
  // joiner goes silent; without this guard the detector would "recover"
  // perfectly healthy units forever and keep the loop from draining.
  if (stopped_ || engine_->stopped()) return;

  // Scan first, act after: RecoverUnit grows the topology's unit vector,
  // which would invalidate the records this loop walks. One recovery per
  // scan — the epoch/replay machinery is per-activation-round, and a
  // rescan after the backoff handles multi-failure storms.
  SimTime now = engine_->clock()->now();
  uint32_t suspect = 0;
  SimTime suspect_silence = 0;
  bool found = false;
  for (const UnitRecord& u : engine_->topology().units()) {
    if (u.state != UnitState::kActive && u.state != UnitState::kDraining) {
      continue;
    }
    // Liveness is read from the telemetry surface, not the Joiner object —
    // the same signal operators would watch. The diagnosis layer wraps the
    // heartbeat gauge (identical numbers); the raw read is the fallback
    // when diagnostics are disabled.
    std::optional<SimTime> measured;
    if (const Diagnoser* diag = engine_->diagnoser()) {
      measured = diag->HeartbeatSilence(u.id, now);
    }
    if (!measured.has_value()) {
      std::optional<double> heartbeat = engine_->metrics().ReadGauge(
          MetricsRegistry::ScopedName("joiner", u.id, "last_progress_ns"));
      if (!heartbeat.has_value()) continue;
      SimTime last = static_cast<SimTime>(*heartbeat);
      measured = now > last ? now - last : 0;
    }
    SimTime silence = *measured;
    if (silence <= options_.timeout) continue;
    suspect = u.id;
    suspect_silence = silence;
    found = true;
    break;
  }

  bool acted = false;
  if (found) {
    Result<uint32_t> replacement = engine_->RecoverUnit(suspect);
    if (replacement.ok()) {
      detections_.push_back(
          DetectionEvent{now, suspect, *replacement, suspect_silence});
      acted = true;
    } else {
      BISTREAM_LOG(Warning) << "recovery of silent unit " << suspect
                            << " failed: "
                            << replacement.status().ToString();
    }
  }

  if (options_.max_recoveries > 0 &&
      detections_.size() >= options_.max_recoveries) {
    stopped_ = true;
    return;
  }
  engine_->clock()->ScheduleAfter(
      acted ? options_.backoff : options_.check_interval, [this] { Tick(); });
}

}  // namespace bistream
