#include "index/chained_index.h"

#include <algorithm>

#include "common/logging.h"

namespace bistream {

ChainedIndex::ChainedIndex(ChainedIndexOptions options)
    : options_(options), active_(MakeSubIndex(options.kind)) {
  BISTREAM_CHECK_GT(options_.archive_period, 0);
  BISTREAM_CHECK_GE(options_.window, 0);
}

ChainedIndex::~ChainedIndex() {
  // Release remaining accounting so parent trackers stay balanced.
  if (options_.tracker != nullptr) {
    options_.tracker->Release(bytes());
  }
}

void ChainedIndex::Insert(const Tuple& tuple) {
  size_t before = active_->bytes();
  active_->Insert(tuple);
  if (options_.tracker != nullptr) {
    options_.tracker->Allocate(active_->bytes() - before);
  }
  ++stats_.inserted_tuples;
  // Paper semantics: insert, update the bounds, then archive the active
  // sub-index once its span has reached the archive period P.
  if (active_->max_ts() - active_->min_ts() >= options_.archive_period) {
    SealActive();
  }
}

void ChainedIndex::SealActive() {
  if (active_->empty()) return;
  chain_.push_back(std::move(active_));
  active_ = MakeSubIndex(options_.kind);
  ++stats_.sealed_subindexes;
}

bool ChainedIndex::Expired(const SubIndex& sub, EventTime observed_ts) const {
  if (sub.empty()) return false;
  return observed_ts - sub.max_ts() > options_.window + options_.expiry_slack;
}

void ChainedIndex::DropSubIndex(std::unique_ptr<SubIndex> sub) {
  stats_.expired_tuples += sub->size();
  ++stats_.expired_subindexes;
  if (options_.tracker != nullptr) {
    options_.tracker->Release(sub->bytes());
  }
  // `sub` is dereferenced here; memory returns to the allocator wholesale,
  // which is exactly the paper's point about sub-index-granularity discard.
}

uint64_t ChainedIndex::Expire(EventTime observed_ts) {
  // Out-of-order probes can pass older timestamps; the auditor's bound is
  // against the most advanced scan, so keep the running maximum.
  if (last_expire_observed_ts_ == kNoEventTime ||
      observed_ts > last_expire_observed_ts_) {
    last_expire_observed_ts_ = observed_ts;
  }
  uint64_t dropped = 0;
  // The chain is ordered by construction time, and within one relation event
  // time grows (sources are timestamp-ordered), so once a sub-index
  // survives, all newer ones do too.
  while (!chain_.empty() && Expired(*chain_.front(), observed_ts)) {
    dropped += chain_.front()->size();
    DropSubIndex(std::move(chain_.front()));
    chain_.pop_front();
  }
  if (Expired(*active_, observed_ts)) {
    dropped += active_->size();
    DropSubIndex(std::move(active_));
    active_ = MakeSubIndex(options_.kind);
  }
  return dropped;
}

uint64_t ChainedIndex::ExpireAndProbe(const Tuple& probe,
                                      const JoinPredicate& pred,
                                      const MatchSink& sink) {
  Expire(probe.ts);
  return ProbeOnly(probe, pred, sink);
}

uint64_t ChainedIndex::ProbeOnly(const Tuple& probe, const JoinPredicate& pred,
                                 const MatchSink& sink) {
  uint64_t examined = 0;
  // Wrap the sink with the pair-level window check: surviving sub-indexes
  // may straddle the window boundary, and out-of-order probes may see
  // stored tuples newer than probe.ts + W.
  MatchSink windowed = [&](const Tuple& stored) {
    if (WithinWindow(probe.ts, stored.ts, options_.window)) sink(stored);
  };
  for (const auto& sub : chain_) {
    examined += sub->Probe(probe, pred, windowed);
  }
  examined += active_->Probe(probe, pred, windowed);
  stats_.probe_candidates += examined;
  return examined;
}

std::vector<Tuple> ChainedIndex::SnapshotTuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(size());
  MatchSink collect = [&](const Tuple& stored) { tuples.push_back(stored); };
  for (const auto& sub : chain_) sub->ForEach(collect);
  active_->ForEach(collect);
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.id < b.id;
  });
  return tuples;
}

void ChainedIndex::RestoreFrom(const std::vector<Tuple>& tuples) {
  BISTREAM_CHECK_EQ(size(), 0u);
  // Snapshot order is (ts, id)-sorted, so replayed inserts reconstruct the
  // same archive-period partitioning an uninterrupted run would have built.
  for (const Tuple& tuple : tuples) Insert(tuple);
}

void ChainedIndex::Clear() {
  if (options_.tracker != nullptr) {
    options_.tracker->Release(bytes());
  }
  chain_.clear();
  active_ = MakeSubIndex(options_.kind);
  last_expire_observed_ts_ = kNoEventTime;
}

EventTime ChainedIndex::oldest_live_max_ts() const {
  if (!chain_.empty()) return chain_.front()->max_ts();
  return active_->max_ts();
}

size_t ChainedIndex::size() const {
  size_t total = active_->size();
  for (const auto& sub : chain_) total += sub->size();
  return total;
}

size_t ChainedIndex::num_subindexes() const {
  return chain_.size() + (active_->empty() ? 0 : 1);
}

size_t ChainedIndex::bytes() const {
  size_t total = active_->bytes();
  for (const auto& sub : chain_) total += sub->bytes();
  return total;
}

}  // namespace bistream
