/// \file sub_index.h
/// \brief Sub-index implementations for the chained in-memory index.
///
/// A sub-index stores the tuples of one archive period (the paper's P) and
/// tracks the min/max event timestamps it contains, which is what lets the
/// ChainedIndex discard whole sub-indexes by Theorem 1 instead of touching
/// individual tuples. Three implementations cover the predicate classes:
/// hash (equi), ordered (band / inequality range probes) and scan
/// (arbitrary theta).

#ifndef BISTREAM_INDEX_SUB_INDEX_H_
#define BISTREAM_INDEX_SUB_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "tuple/join_predicate.h"
#include "tuple/tuple.h"

namespace bistream {

/// \brief Callback invoked for each stored tuple matching a probe.
using MatchSink = std::function<void(const Tuple& stored)>;

/// \brief Storage + probe interface for one archive period's tuples.
class SubIndex {
 public:
  virtual ~SubIndex() = default;

  /// \brief Stores a tuple and widens the [min_ts, max_ts] bounds.
  virtual void Insert(const Tuple& tuple) = 0;

  /// \brief Finds stored tuples matching `probe` under `pred` and feeds them
  /// to `sink`. Returns the number of candidate tuples examined (the probe's
  /// work, which drives the simulator's service-time model). The sink sees
  /// every candidate that satisfies the predicate; window filtering is the
  /// caller's job (the sub-index knows keys, not window scope).
  virtual uint64_t Probe(const Tuple& probe, const JoinPredicate& pred,
                         const MatchSink& sink) const = 0;

  /// \brief Visits every stored tuple in unspecified order (checkpointing;
  /// callers needing determinism sort the collected tuples themselves).
  virtual void ForEach(const MatchSink& sink) const = 0;

  /// \brief Number of stored tuples.
  virtual size_t size() const = 0;

  /// \brief Approximate bytes held (payload + container overhead).
  virtual size_t bytes() const = 0;

  /// \brief Smallest event timestamp stored; kNoEventTime when empty.
  EventTime min_ts() const { return min_ts_; }
  /// \brief Largest event timestamp stored; kNoEventTime when empty.
  EventTime max_ts() const { return max_ts_; }

  bool empty() const { return size() == 0; }

 protected:
  /// Widens the timestamp bounds to include `ts`.
  void NoteTimestamp(EventTime ts) {
    if (min_ts_ == kNoEventTime || ts < min_ts_) min_ts_ = ts;
    if (max_ts_ == kNoEventTime || ts > max_ts_) max_ts_ = ts;
  }

  /// Per-stored-tuple container overhead charged to bytes().
  static constexpr size_t kEntryOverhead = 32;

 private:
  EventTime min_ts_ = kNoEventTime;
  EventTime max_ts_ = kNoEventTime;
};

/// \brief Creates a sub-index of the requested kind.
std::unique_ptr<SubIndex> MakeSubIndex(IndexKind kind);

/// \brief Hash multimap on the join key; O(1) equality probes.
///
/// Non-point probe ranges (band, theta) degrade to a full scan, mirroring
/// the fact that a hash index cannot answer range predicates; the engine
/// avoids this by honoring JoinPredicate::RecommendedIndex().
class HashSubIndex final : public SubIndex {
 public:
  void Insert(const Tuple& tuple) override;
  uint64_t Probe(const Tuple& probe, const JoinPredicate& pred,
                 const MatchSink& sink) const override;
  void ForEach(const MatchSink& sink) const override;
  size_t size() const override { return size_; }
  size_t bytes() const override { return bytes_; }

 private:
  std::unordered_map<int64_t, std::vector<Tuple>> buckets_;
  size_t size_ = 0;
  size_t bytes_ = 0;
};

/// \brief Ordered container on the join key; logarithmic range probes for
/// band and inequality predicates (the paper's binary-search-tree index).
class OrderedSubIndex final : public SubIndex {
 public:
  void Insert(const Tuple& tuple) override;
  uint64_t Probe(const Tuple& probe, const JoinPredicate& pred,
                 const MatchSink& sink) const override;
  void ForEach(const MatchSink& sink) const override;
  size_t size() const override { return size_; }
  size_t bytes() const override { return bytes_; }

 private:
  std::multimap<int64_t, Tuple> tree_;
  size_t size_ = 0;
  size_t bytes_ = 0;
};

/// \brief Append log; probes scan everything (arbitrary theta predicates).
class ScanSubIndex final : public SubIndex {
 public:
  void Insert(const Tuple& tuple) override;
  uint64_t Probe(const Tuple& probe, const JoinPredicate& pred,
                 const MatchSink& sink) const override;
  void ForEach(const MatchSink& sink) const override;
  size_t size() const override { return log_.size(); }
  size_t bytes() const override { return bytes_; }

 private:
  std::vector<Tuple> log_;
  size_t bytes_ = 0;
};

}  // namespace bistream

#endif  // BISTREAM_INDEX_SUB_INDEX_H_
