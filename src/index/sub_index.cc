#include "index/sub_index.h"

#include "common/logging.h"

namespace bistream {

std::unique_ptr<SubIndex> MakeSubIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return std::make_unique<HashSubIndex>();
    case IndexKind::kOrdered:
      return std::make_unique<OrderedSubIndex>();
    case IndexKind::kScan:
      return std::make_unique<ScanSubIndex>();
  }
  BISTREAM_LOG(Fatal) << "unknown IndexKind";
  return nullptr;
}

// ---------------------------------------------------------------- Hash ----

void HashSubIndex::Insert(const Tuple& tuple) {
  buckets_[tuple.key].push_back(tuple);
  ++size_;
  bytes_ += tuple.SerializedSize() + kEntryOverhead;
  NoteTimestamp(tuple.ts);
}

uint64_t HashSubIndex::Probe(const Tuple& probe, const JoinPredicate& pred,
                             const MatchSink& sink) const {
  KeyRange range = pred.ProbeRange(probe, /*stored_relation=*/
                                   probe.relation == kRelationR ? kRelationS
                                                                : kRelationR);
  uint64_t examined = 0;
  if (range.lo == range.hi) {
    // Point probe: the common (equi) case.
    auto it = buckets_.find(range.lo);
    if (it != buckets_.end()) {
      for (const Tuple& stored : it->second) {
        ++examined;
        if (pred.Matches(probe, stored)) sink(stored);
      }
    }
    return examined;
  }
  // Range or theta probe against a hash layout: full scan.
  for (const auto& [key, bucket] : buckets_) {
    if (key < range.lo || key > range.hi) continue;
    for (const Tuple& stored : bucket) {
      ++examined;
      if (pred.Matches(probe, stored)) sink(stored);
    }
  }
  return examined;
}

void HashSubIndex::ForEach(const MatchSink& sink) const {
  for (const auto& [key, bucket] : buckets_) {
    for (const Tuple& stored : bucket) sink(stored);
  }
}

// ------------------------------------------------------------- Ordered ----

void OrderedSubIndex::Insert(const Tuple& tuple) {
  tree_.emplace(tuple.key, tuple);
  ++size_;
  bytes_ += tuple.SerializedSize() + kEntryOverhead;
  NoteTimestamp(tuple.ts);
}

uint64_t OrderedSubIndex::Probe(const Tuple& probe, const JoinPredicate& pred,
                                const MatchSink& sink) const {
  KeyRange range = pred.ProbeRange(probe, /*stored_relation=*/
                                   probe.relation == kRelationR ? kRelationS
                                                                : kRelationR);
  if (range.lo > range.hi) return 0;  // Provably empty probe.
  uint64_t examined = 0;
  auto it = tree_.lower_bound(range.lo);
  for (; it != tree_.end() && it->first <= range.hi; ++it) {
    ++examined;
    if (pred.Matches(probe, it->second)) sink(it->second);
  }
  return examined;
}

void OrderedSubIndex::ForEach(const MatchSink& sink) const {
  for (const auto& [key, stored] : tree_) sink(stored);
}

// ---------------------------------------------------------------- Scan ----

void ScanSubIndex::Insert(const Tuple& tuple) {
  log_.push_back(tuple);
  bytes_ += tuple.SerializedSize() + kEntryOverhead;
  NoteTimestamp(tuple.ts);
}

uint64_t ScanSubIndex::Probe(const Tuple& probe, const JoinPredicate& pred,
                             const MatchSink& sink) const {
  for (const Tuple& stored : log_) {
    if (pred.Matches(probe, stored)) sink(stored);
  }
  return log_.size();
}

void ScanSubIndex::ForEach(const MatchSink& sink) const {
  for (const Tuple& stored : log_) sink(stored);
}

}  // namespace bistream
