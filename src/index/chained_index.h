/// \file chained_index.h
/// \brief The paper's chained in-memory index.
///
/// Streaming tuples are partitioned by discrete event-time intervals of
/// length P (the archive period) into sub-indexes, chained in construction
/// order. The active sub-index absorbs inserts; once its timestamp span
/// reaches P it is archived and a fresh one opened. Stale data is discarded
/// at sub-index granularity using the paper's Theorem 1:
///
///   a stored tuple r can be dropped once an opposite-relation tuple s with
///   s.ts - r.ts > W has been seen, so a whole sub-index is droppable once
///   probe.ts - sub.max_ts > W.
///
/// This makes expiry O(1) amortized per sub-index instead of O(1) per tuple,
/// which is the mechanism E6 sweeps.

#ifndef BISTREAM_INDEX_CHAINED_INDEX_H_
#define BISTREAM_INDEX_CHAINED_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "index/sub_index.h"

namespace bistream {

/// \brief Configuration of a ChainedIndex.
struct ChainedIndexOptions {
  /// Sub-index layout; pick JoinPredicate::RecommendedIndex().
  IndexKind kind = IndexKind::kHash;
  /// Archive period P: a sub-index is sealed when max_ts - min_ts >= P.
  EventTime archive_period = 1 * kEventSecond;
  /// Sliding-window scope W used by Theorem-1 expiry.
  EventTime window = 10 * kEventSecond;
  /// Allowed lateness: extra event time a sub-index is retained beyond W
  /// before Theorem-1 discard. Theorem 1 assumes the probing stream's
  /// timestamps are (near-)ordered; derived streams — e.g. the multi-way
  /// cascade's intermediate pairs, stamped max(r.ts, s.ts) — can regress by
  /// bounded processing skew, and the slack keeps state alive for those
  /// slightly-older probes. Join results are unaffected (the pair-level
  /// window check stays exact); only memory reclamation is delayed.
  EventTime expiry_slack = 0;
  /// Optional byte accounting sink (not owned; may be null).
  MemoryTracker* tracker = nullptr;
};

/// \brief Counters exported by a ChainedIndex for metrics and tests.
struct ChainedIndexStats {
  uint64_t inserted_tuples = 0;
  uint64_t expired_tuples = 0;
  uint64_t expired_subindexes = 0;
  uint64_t sealed_subindexes = 0;
  uint64_t probe_candidates = 0;  // Candidates examined across all probes.
};

/// \brief One relation partition's windowed state on a processing unit.
class ChainedIndex {
 public:
  explicit ChainedIndex(ChainedIndexOptions options);
  ~ChainedIndex();

  ChainedIndex(const ChainedIndex&) = delete;
  ChainedIndex& operator=(const ChainedIndex&) = delete;

  /// \brief Stores a tuple into the active sub-index, sealing it into the
  /// chain first if its span has reached the archive period.
  void Insert(const Tuple& tuple);

  /// \brief Discards sub-indexes made entirely stale by an observed
  /// opposite-relation timestamp (Theorem 1). Returns tuples dropped.
  uint64_t Expire(EventTime observed_ts);

  /// \brief Expires against probe.ts, then probes every surviving sub-index.
  ///
  /// The sink receives predicate matches; pair-level window filtering
  /// (|r.ts - s.ts| <= W) is still applied here so results are exact even
  /// when a surviving sub-index straddles the window boundary. Returns the
  /// number of candidates examined (probe work).
  uint64_t ExpireAndProbe(const Tuple& probe, const JoinPredicate& pred,
                          const MatchSink& sink);

  /// \brief Probes without expiring (used by the join-matrix baseline cells
  /// which expire on their own cadence).
  uint64_t ProbeOnly(const Tuple& probe, const JoinPredicate& pred,
                     const MatchSink& sink);

  /// \brief Copies every stored tuple, sorted by (ts, id) so equal states
  /// serialize identically regardless of sub-index layout (checkpointing).
  std::vector<Tuple> SnapshotTuples() const;

  /// \brief Rebuilds the index from a checkpoint snapshot. The index must be
  /// empty (freshly constructed or Clear()ed); sub-index boundaries are
  /// re-derived by replaying the inserts in snapshot order.
  void RestoreFrom(const std::vector<Tuple>& tuples);

  /// \brief Drops all state and releases its byte accounting (models the
  /// memory loss of a process crash).
  void Clear();

  /// \brief Stored tuples across all sub-indexes.
  size_t size() const;
  /// \brief Chain length including the active sub-index (when non-empty).
  size_t num_subindexes() const;
  /// \brief Accounted bytes across all sub-indexes.
  size_t bytes() const;

  const ChainedIndexStats& stats() const { return stats_; }
  const ChainedIndexOptions& options() const { return options_; }

  /// \brief Largest opposite-relation timestamp any Expire() scan has
  /// observed; kNoEventTime before the first scan. Together with
  /// oldest_live_max_ts() this exposes the Theorem-1 bound the invariant
  /// auditor checks: after every scan,
  ///   last_expire_observed_ts - oldest_live_max_ts <= window + slack.
  EventTime last_expire_observed_ts() const { return last_expire_observed_ts_; }

  /// \brief max_ts of the oldest surviving sub-index (the expiry frontier);
  /// kNoEventTime when the index is empty.
  EventTime oldest_live_max_ts() const;

 private:
  /// Seals the active sub-index into the archive chain.
  void SealActive();
  /// Drops one archived sub-index and releases its accounting.
  void DropSubIndex(std::unique_ptr<SubIndex> sub);
  /// True if Theorem 1 allows dropping `sub` given `observed_ts`.
  bool Expired(const SubIndex& sub, EventTime observed_ts) const;

  ChainedIndexOptions options_;
  // Archived sub-indexes, oldest first; expiry pops from the front.
  std::deque<std::unique_ptr<SubIndex>> chain_;
  std::unique_ptr<SubIndex> active_;
  ChainedIndexStats stats_;
  EventTime last_expire_observed_ts_ = kNoEventTime;
};

/// \brief Pair-level window test shared by all engines and the oracle:
/// a result (r, s) is valid iff |r.ts - s.ts| <= window.
inline bool WithinWindow(EventTime a, EventTime b, EventTime window) {
  EventTime diff = a >= b ? a - b : b - a;
  return diff <= window;
}

}  // namespace bistream

#endif  // BISTREAM_INDEX_CHAINED_INDEX_H_
