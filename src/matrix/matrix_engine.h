/// \file matrix_engine.h
/// \brief The join-matrix baseline engine (Stamos–Young fragment-and-
/// replicate, as revisited for streams by Elseidy et al.).
///
/// p = rows × cols cells; R tuples are assigned a row (round-robin) and
/// replicated to all cells of that row, S tuples a column. The engine
/// mirrors BicliqueEngine's driver/metrics surface so E1–E3 and E11 compare
/// the two models on identical substrates, workloads and cost models. The
/// grid is static: the model's awkwardness under scaling is part of what
/// the paper contrasts against (resizing a matrix requires repartitioning
/// or migrating stored fragments, which join-biclique avoids).

#ifndef BISTREAM_MATRIX_MATRIX_ENGINE_H_
#define BISTREAM_MATRIX_MATRIX_ENGINE_H_

#include <cmath>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "matrix/matrix_cell.h"
#include "sim/network.h"
#include "workload/generator.h"

namespace bistream {

/// \brief Matrix engine configuration.
struct MatrixOptions {
  uint32_t rows = 4;
  uint32_t cols = 4;
  uint32_t num_routers = 2;
  JoinPredicate predicate = JoinPredicate::Equi();
  std::optional<IndexKind> index_kind;
  EventTime window = 10 * kEventSecond;
  EventTime archive_period = 1 * kEventSecond;
  CostModel cost;
  uint64_t seed = 1;

  /// \brief The most-square grid for a unit budget p (the paper's √p × √p
  /// comparison shape): the factorization a×b <= p maximizing a*b with
  /// |a-b| minimal.
  static MatrixOptions Square(uint32_t total_units);
};

/// \brief The join-matrix engine over the simulated cluster.
class MatrixEngine {
 public:
  MatrixEngine(EventLoop* loop, MatrixOptions options, ResultSink* sink);

  MatrixEngine(const MatrixEngine&) = delete;
  MatrixEngine& operator=(const MatrixEngine&) = delete;

  /// \brief No-op (kept symmetric with BicliqueEngine; the matrix needs no
  /// punctuation cadence), but marks the run start for metrics.
  void Start();

  /// \brief Injects one tuple at the current virtual time.
  void InjectNow(Tuple tuple);

  /// \brief Drives a whole source to completion and drains the cluster.
  void RunToCompletion(StreamSource* source);

  EngineStats Stats() const;
  const MemoryTracker& memory() const { return tracker_; }
  SimNetwork& network() { return net_; }
  uint32_t rows() const { return options_.rows; }
  uint32_t cols() const { return options_.cols; }
  MatrixCell* cell(uint32_t row, uint32_t col);

 private:
  /// Router dispatch: assign an axis slot and replicate along it.
  SimTime RouteTuple(uint32_t router_index, const Message& msg);

  EventLoop* loop_;
  MatrixOptions options_;
  ResultSink* sink_;
  MemoryTracker tracker_;
  SimNetwork net_;
  std::vector<SimNode*> router_nodes_;
  std::vector<Channel*> source_channels_;
  std::vector<std::unique_ptr<MatrixCell>> cells_;
  std::vector<SimNode*> cell_nodes_;
  /// channels_[router][cell] -> channel.
  std::vector<std::vector<Channel*>> channels_;
  /// Per-router round-robin cursors for row / column assignment.
  std::vector<uint64_t> row_cursor_;
  std::vector<uint64_t> col_cursor_;
  uint64_t next_router_rr_ = 0;
  uint64_t input_tuples_ = 0;
  SimTime start_time_ = 0;
  bool started_ = false;
};

}  // namespace bistream

#endif  // BISTREAM_MATRIX_MATRIX_ENGINE_H_
