#include "matrix/matrix_cell.h"

#include <string>

#include "common/logging.h"

namespace bistream {

namespace {
ChainedIndexOptions IndexOptionsFor(const MatrixCellOptions& options,
                                    MemoryTracker* tracker) {
  ChainedIndexOptions index_options;
  index_options.kind = options.index_kind;
  index_options.archive_period = options.archive_period;
  index_options.window = options.window;
  index_options.tracker = tracker;
  return index_options;
}
}  // namespace

MatrixCell::MatrixCell(MatrixCellOptions options, EventLoop* loop,
                       ResultSink* sink, MemoryTracker* parent_tracker)
    : options_(options),
      loop_(loop),
      sink_(sink),
      tracker_("cell-" + std::to_string(options.cell_id), parent_tracker),
      r_index_(IndexOptionsFor(options_, &tracker_)),
      s_index_(IndexOptionsFor(options_, &tracker_)) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
}

SimTime MatrixCell::Handle(const Message& msg) {
  if (msg.kind != Message::Kind::kTuple) {
    return options_.cost.punctuation_ns;
  }
  const Tuple& tuple = msg.tuple;
  bool is_r = tuple.relation == kRelationR;
  ChainedIndex& own = is_r ? r_index_ : s_index_;
  ChainedIndex& opposite = is_r ? s_index_ : r_index_;

  uint64_t matches = 0;
  MatchSink emit = [&](const Tuple& stored) {
    JoinResult result;
    if (is_r) {
      result.r_id = tuple.id;
      result.s_id = stored.id;
    } else {
      result.r_id = stored.id;
      result.s_id = tuple.id;
    }
    result.ts = std::max(tuple.ts, stored.ts);
    result.key = tuple.key;
    result.emit_time = loop_->now();
    result.latency_ns =
        tuple.origin <= result.emit_time ? result.emit_time - tuple.origin : 0;
    result.producer_unit = options_.cell_id;
    sink_->OnResult(result);
    ++matches;
  };

  // Probe the opposite relation's window (also expiring it per Theorem 1),
  // then store into the own-relation window: probe-before-store guarantees
  // (r, s) is produced exactly once, at whichever of the two copies'
  // meeting cell processes the later tuple.
  uint64_t candidates =
      opposite.ExpireAndProbe(tuple, options_.predicate, emit);
  own.Insert(tuple);

  if (is_r) {
    ++stats_.stored_r;
  } else {
    ++stats_.stored_s;
  }
  stats_.results += matches;
  stats_.probe_candidates += candidates;

  return options_.cost.MessageCost(msg.WireBytes()) + options_.cost.insert_ns +
         options_.cost.ProbeCost(candidates, matches);
}

}  // namespace bistream
