#include "matrix/matrix_engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace bistream {

MatrixOptions MatrixOptions::Square(uint32_t total_units) {
  BISTREAM_CHECK_GE(total_units, 1U);
  MatrixOptions options;
  // Most-square exact factorization: largest divisor a <= sqrt(p).
  uint32_t best_rows = 1;
  for (uint32_t a = 1; a * a <= total_units; ++a) {
    if (total_units % a == 0) best_rows = a;
  }
  options.rows = best_rows;
  options.cols = total_units / best_rows;
  return options;
}

MatrixEngine::MatrixEngine(EventLoop* loop, MatrixOptions options,
                           ResultSink* sink)
    : loop_(loop),
      options_(std::move(options)),
      sink_(sink),
      tracker_("matrix-engine"),
      net_(loop, options_.cost, options_.seed) {
  BISTREAM_CHECK(loop_ != nullptr);
  BISTREAM_CHECK(sink_ != nullptr);
  BISTREAM_CHECK_GE(options_.rows, 1U);
  BISTREAM_CHECK_GE(options_.cols, 1U);
  BISTREAM_CHECK_GE(options_.num_routers, 1U);

  IndexKind index_kind =
      options_.index_kind.value_or(options_.predicate.RecommendedIndex());

  for (uint32_t row = 0; row < options_.rows; ++row) {
    for (uint32_t col = 0; col < options_.cols; ++col) {
      uint32_t cell_id = row * options_.cols + col;
      MatrixCellOptions cell_options;
      cell_options.cell_id = cell_id;
      cell_options.predicate = options_.predicate;
      cell_options.index_kind = index_kind;
      cell_options.window = options_.window;
      cell_options.archive_period = options_.archive_period;
      cell_options.cost = options_.cost;
      cells_.push_back(std::make_unique<MatrixCell>(cell_options, loop_,
                                                    sink_, &tracker_));
      MatrixCell* cell_ptr = cells_.back().get();
      SimNode* node = net_.AddNode("cell-" + std::to_string(row) + "-" +
                                   std::to_string(col));
      node->SetHandler(
          [cell_ptr](const Message& msg) { return cell_ptr->Handle(msg); });
      cell_nodes_.push_back(node);
    }
  }

  channels_.resize(options_.num_routers);
  row_cursor_.assign(options_.num_routers, 0);
  col_cursor_.assign(options_.num_routers, 0);
  for (uint32_t i = 0; i < options_.num_routers; ++i) {
    SimNode* node = net_.AddNode("mrouter-" + std::to_string(i));
    node->SetHandler([this, i](const Message& msg) {
      return RouteTuple(i, msg);
    });
    router_nodes_.push_back(node);
    source_channels_.push_back(net_.Connect(node));
    channels_[i].reserve(cells_.size());
    for (SimNode* cell_node : cell_nodes_) {
      channels_[i].push_back(net_.Connect(cell_node));
    }
  }
}

void MatrixEngine::Start() {
  BISTREAM_CHECK(!started_);
  started_ = true;
  start_time_ = loop_->now();
}

void MatrixEngine::InjectNow(Tuple tuple) {
  BISTREAM_CHECK(started_) << "InjectNow before Start";
  tuple.origin = loop_->now();
  Message msg = MakeTupleMessage(std::move(tuple), StreamKind::kStore,
                                 /*router_id=*/0, /*seq=*/0, /*round=*/0);
  source_channels_[next_router_rr_++ % source_channels_.size()]->Send(
      std::move(msg));
  ++input_tuples_;
}

void MatrixEngine::RunToCompletion(StreamSource* source) {
  Start();
  while (auto next = source->Next()) {
    loop_->RunUntil(next->arrival);
    InjectNow(std::move(next->tuple));
  }
  loop_->RunUntilIdle();
}

SimTime MatrixEngine::RouteTuple(uint32_t router_index, const Message& msg) {
  if (msg.kind != Message::Kind::kTuple) {
    return options_.cost.punctuation_ns;
  }
  const Tuple& tuple = msg.tuple;
  SimTime send_cost = 0;
  auto send_to = [&](uint32_t cell_id) {
    Message copy =
        MakeTupleMessage(tuple, StreamKind::kStore, router_index, 0, 0);
    send_cost += options_.cost.SendCost(copy.WireBytes());
    channels_[router_index][cell_id]->Send(std::move(copy));
  };
  if (tuple.relation == kRelationR) {
    // Assign a row, replicate to all its cells (fragment-and-replicate).
    uint32_t row =
        static_cast<uint32_t>(row_cursor_[router_index]++ % options_.rows);
    for (uint32_t col = 0; col < options_.cols; ++col) {
      send_to(row * options_.cols + col);
    }
  } else {
    uint32_t col =
        static_cast<uint32_t>(col_cursor_[router_index]++ % options_.cols);
    for (uint32_t row = 0; row < options_.rows; ++row) {
      send_to(row * options_.cols + col);
    }
  }
  return options_.cost.route_ns + send_cost +
         options_.cost.MessageCost(msg.WireBytes());
}

MatrixCell* MatrixEngine::cell(uint32_t row, uint32_t col) {
  BISTREAM_CHECK_LT(row, options_.rows);
  BISTREAM_CHECK_LT(col, options_.cols);
  return cells_[row * options_.cols + col].get();
}

EngineStats MatrixEngine::Stats() const {
  EngineStats stats;
  stats.input_tuples = input_tuples_;
  for (const auto& cell : cells_) {
    const MatrixCellStats& cs = cell->stats();
    stats.results += cs.results;
    stats.stored += cs.stored_r + cs.stored_s;
    stats.probe_candidates += cs.probe_candidates;
    stats.expired_tuples += cell->r_index().stats().expired_tuples +
                            cell->s_index().stats().expired_tuples;
    stats.expired_subindexes += cell->r_index().stats().expired_subindexes +
                                cell->s_index().stats().expired_subindexes;
  }
  stats.messages = net_.total_messages();
  stats.bytes = net_.total_bytes();
  stats.state_bytes = tracker_.current_bytes();
  stats.peak_state_bytes = tracker_.peak_bytes();
  stats.makespan_ns = loop_->now() - start_time_;
  if (stats.makespan_ns > 0) {
    for (const auto& node : net_.nodes()) {
      double busy = static_cast<double>(node->stats().busy_ns) /
                    static_cast<double>(stats.makespan_ns);
      stats.max_busy_fraction = std::max(stats.max_busy_fraction, busy);
    }
  }
  return stats;
}

}  // namespace bistream
