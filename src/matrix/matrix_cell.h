/// \file matrix_cell.h
/// \brief One cell of the join-matrix baseline.
///
/// In the join-matrix (fragment-and-replicate) model the a×b grid cell
/// (i, j) is responsible for the partial product R_i ⋈ S_j. Every R tuple
/// assigned to row i is replicated to all b cells of the row and *stored* in
/// each; S tuples symmetrically along columns. A cell therefore holds both a
/// local R window and a local S window; an arriving tuple probes the
/// opposite window (which also drives Theorem-1 expiry) and is then stored.
/// Because the pair (r, s) coexists only at the single cell
/// (row(r), col(s)) and probe+store is atomic per arrival, exactly-once
/// holds without any ordering protocol — at the price of √p-fold state
/// replication, the deficiency join-biclique removes.

#ifndef BISTREAM_MATRIX_MATRIX_CELL_H_
#define BISTREAM_MATRIX_MATRIX_CELL_H_

#include <memory>

#include "common/memory_tracker.h"
#include "core/result_sink.h"
#include "index/chained_index.h"
#include "runtime/cost_model.h"
#include "sim/event_loop.h"
#include "runtime/message.h"

namespace bistream {

/// \brief Cell configuration.
struct MatrixCellOptions {
  uint32_t cell_id = 0;
  JoinPredicate predicate = JoinPredicate::Equi();
  IndexKind index_kind = IndexKind::kHash;
  EventTime window = 10 * kEventSecond;
  EventTime archive_period = 1 * kEventSecond;
  CostModel cost;
};

/// \brief Per-cell statistics.
struct MatrixCellStats {
  uint64_t stored_r = 0;
  uint64_t stored_s = 0;
  uint64_t results = 0;
  uint64_t probe_candidates = 0;
};

/// \brief One join-matrix processing unit.
class MatrixCell {
 public:
  MatrixCell(MatrixCellOptions options, EventLoop* loop, ResultSink* sink,
             MemoryTracker* parent_tracker);

  /// \brief SimNode handler: probe the opposite window, then store.
  SimTime Handle(const Message& msg);

  const MatrixCellStats& stats() const { return stats_; }
  const ChainedIndex& r_index() const { return r_index_; }
  const ChainedIndex& s_index() const { return s_index_; }
  const MemoryTracker& memory() const { return tracker_; }

 private:
  MatrixCellOptions options_;
  EventLoop* loop_;
  ResultSink* sink_;
  MemoryTracker tracker_;
  ChainedIndex r_index_;
  ChainedIndex s_index_;
  MatrixCellStats stats_;
};

}  // namespace bistream

#endif  // BISTREAM_MATRIX_MATRIX_CELL_H_
