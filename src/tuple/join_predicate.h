/// \file join_predicate.h
/// \brief Join predicates over tuple pairs.
///
/// The join-biclique model covers the full Cartesian space of the two
/// relations, so any predicate is supported. The predicate also advertises
/// which in-memory sub-index kind evaluates it efficiently (hash for equi,
/// ordered for band/inequality, scan for arbitrary theta) and which routing
/// strategy the paper recommends for its selectivity class.

#ifndef BISTREAM_TUPLE_JOIN_PREDICATE_H_
#define BISTREAM_TUPLE_JOIN_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "tuple/tuple.h"

namespace bistream {

/// \brief Kinds of sub-index a ChainedIndex can be built from.
enum class IndexKind : uint8_t {
  /// Hash multimap on the join key; O(1) equality probes.
  kHash = 0,
  /// Ordered container on the join key; range probes for band/inequality.
  kOrdered = 1,
  /// Plain append log; probes scan every stored tuple (arbitrary theta).
  kScan = 2,
};

const char* IndexKindToString(IndexKind kind);

/// \brief Predicate families with distinct evaluation plans.
enum class PredicateKind : uint8_t {
  /// left.key == right.key.
  kEqui = 0,
  /// |left.key - right.key| <= band_width.
  kBand = 1,
  /// left.key < right.key (left = lower relation id).
  kLessThan = 2,
  /// Arbitrary user function over full tuples.
  kTheta = 3,
};

const char* PredicateKindToString(PredicateKind kind);

/// \brief Routing families from the paper: content-sensitive hash routing
/// for low-selectivity equi joins, content-insensitive random routing
/// (store-random, probe-broadcast) otherwise.
enum class RoutingKind : uint8_t {
  kContHash = 0,
  kContRand = 1,
};

/// \brief Inclusive key interval used for ordered-index probes.
struct KeyRange {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

/// \brief An immutable, cheaply copyable join predicate.
class JoinPredicate {
 public:
  /// \brief Equality on the join key (the low-selectivity case).
  static JoinPredicate Equi();

  /// \brief Band join: |left.key - right.key| <= width, width >= 0.
  static JoinPredicate Band(int64_t width);

  /// \brief Inequality: left.key < right.key, where "left" is the tuple of
  /// the lower relation id.
  static JoinPredicate LessThan();

  /// \brief Arbitrary theta predicate over full tuples. The function must be
  /// pure. `name` is used in logs and reports.
  static JoinPredicate Theta(
      std::string name,
      std::function<bool(const Tuple& left, const Tuple& right)> fn);

  PredicateKind kind() const { return kind_; }
  int64_t band_width() const { return band_width_; }

  /// \brief True if the pair matches. Tuples may be passed in either order;
  /// the tuple with the smaller relation id is treated as "left".
  bool Matches(const Tuple& a, const Tuple& b) const;

  /// \brief The stored-key interval that can match `probe` when probing the
  /// window of `stored_relation`. Exact for equi/band/less-than; full range
  /// for theta (which must scan).
  KeyRange ProbeRange(const Tuple& probe, RelationId stored_relation) const;

  /// \brief Sub-index kind that evaluates this predicate efficiently.
  IndexKind RecommendedIndex() const;

  /// \brief Paper-recommended routing strategy for this predicate class.
  RoutingKind RecommendedRouting() const;

  const std::string& name() const { return name_; }

 private:
  JoinPredicate(PredicateKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

  PredicateKind kind_;
  std::string name_;
  int64_t band_width_ = 0;
  std::function<bool(const Tuple&, const Tuple&)> theta_fn_;
};

}  // namespace bistream

#endif  // BISTREAM_TUPLE_JOIN_PREDICATE_H_
