#include "tuple/join_predicate.h"

#include "common/logging.h"

namespace bistream {

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kOrdered:
      return "ordered";
    case IndexKind::kScan:
      return "scan";
  }
  return "?";
}

const char* PredicateKindToString(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEqui:
      return "equi";
    case PredicateKind::kBand:
      return "band";
    case PredicateKind::kLessThan:
      return "less-than";
    case PredicateKind::kTheta:
      return "theta";
  }
  return "?";
}

JoinPredicate JoinPredicate::Equi() {
  return JoinPredicate(PredicateKind::kEqui, "equi");
}

JoinPredicate JoinPredicate::Band(int64_t width) {
  BISTREAM_CHECK_GE(width, 0);
  JoinPredicate p(PredicateKind::kBand, "band");
  p.band_width_ = width;
  return p;
}

JoinPredicate JoinPredicate::LessThan() {
  return JoinPredicate(PredicateKind::kLessThan, "less-than");
}

JoinPredicate JoinPredicate::Theta(
    std::string name, std::function<bool(const Tuple&, const Tuple&)> fn) {
  BISTREAM_CHECK(fn != nullptr);
  JoinPredicate p(PredicateKind::kTheta, std::move(name));
  p.theta_fn_ = std::move(fn);
  return p;
}

namespace {
// Saturating add/sub keep band probe ranges well-defined at the int64 edges.
int64_t SatAdd(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}
int64_t SatSub(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}
}  // namespace

bool JoinPredicate::Matches(const Tuple& a, const Tuple& b) const {
  const Tuple& left = a.relation <= b.relation ? a : b;
  const Tuple& right = a.relation <= b.relation ? b : a;
  switch (kind_) {
    case PredicateKind::kEqui:
      return left.key == right.key;
    case PredicateKind::kBand: {
      int64_t diff = SatSub(left.key, right.key);
      if (diff < 0) {
        // |diff| with INT64_MIN safety.
        if (diff == std::numeric_limits<int64_t>::min()) return false;
        diff = -diff;
      }
      return diff <= band_width_;
    }
    case PredicateKind::kLessThan:
      return left.key < right.key;
    case PredicateKind::kTheta:
      return theta_fn_(left, right);
  }
  return false;
}

KeyRange JoinPredicate::ProbeRange(const Tuple& probe,
                                   RelationId stored_relation) const {
  switch (kind_) {
    case PredicateKind::kEqui:
      return KeyRange{probe.key, probe.key};
    case PredicateKind::kBand:
      return KeyRange{SatSub(probe.key, band_width_),
                      SatAdd(probe.key, band_width_)};
    case PredicateKind::kLessThan: {
      // left.key < right.key, "left" = lower relation id.
      KeyRange range;
      if (probe.relation < stored_relation) {
        // probe is left: stored keys must be > probe.key.
        if (probe.key == std::numeric_limits<int64_t>::max()) {
          // No key can be strictly greater; return an empty range.
          return KeyRange{1, 0};
        }
        range.lo = probe.key + 1;
      } else {
        // probe is right: stored keys must be < probe.key.
        if (probe.key == std::numeric_limits<int64_t>::min()) {
          return KeyRange{1, 0};
        }
        range.hi = probe.key - 1;
      }
      return range;
    }
    case PredicateKind::kTheta:
      return KeyRange{};  // Full range: theta must scan.
  }
  return KeyRange{};
}

IndexKind JoinPredicate::RecommendedIndex() const {
  switch (kind_) {
    case PredicateKind::kEqui:
      return IndexKind::kHash;
    case PredicateKind::kBand:
    case PredicateKind::kLessThan:
      return IndexKind::kOrdered;
    case PredicateKind::kTheta:
      return IndexKind::kScan;
  }
  return IndexKind::kScan;
}

RoutingKind JoinPredicate::RecommendedRouting() const {
  return kind_ == PredicateKind::kEqui ? RoutingKind::kContHash
                                       : RoutingKind::kContRand;
}

}  // namespace bistream
