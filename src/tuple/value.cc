#include "tuple/value.h"

#include <cstdio>

#include "common/hash.h"
#include "common/logging.h"

namespace bistream {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  BISTREAM_CHECK(type() == ValueType::kInt64)
      << "Value is " << ValueTypeToString(type()) << ", not int64";
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  BISTREAM_CHECK(type() == ValueType::kDouble)
      << "Value is " << ValueTypeToString(type()) << ", not double";
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  BISTREAM_CHECK(type() == ValueType::kString)
      << "Value is " << ValueTypeToString(type()) << ", not string";
  return std::get<std::string>(repr_);
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(repr_));
    case ValueType::kDouble:
      return std::get<double>(repr_);
    default:
      BISTREAM_LOG(Fatal) << "Value of type " << ValueTypeToString(type())
                          << " is not numeric";
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6E756C6CULL;
    case ValueType::kInt64:
      return HashInt64(std::get<int64_t>(repr_));
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      // Normalize -0.0 so equal doubles hash equally.
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashMix64(bits);
    }
    case ValueType::kString:
      return HashBytes(std::get<std::string>(repr_));
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 4 + std::get<std::string>(repr_).size();
  }
  return 0;
}

std::string Value::ToString() const {
  char buf[64];
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(std::get<int64_t>(repr_)));
      return buf;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(repr_));
      return buf;
    case ValueType::kString:
      return "\"" + std::get<std::string>(repr_) + "\"";
  }
  return "?";
}

}  // namespace bistream
