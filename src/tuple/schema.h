/// \file schema.h
/// \brief Tuple schemas (Definition 1 of the stream model): named, typed
/// attribute lists shared by all tuples of a streaming relation.

#ifndef BISTREAM_TUPLE_SCHEMA_H_
#define BISTREAM_TUPLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/value.h"

namespace bistream {

/// \brief One attribute of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const = default;
};

/// \brief Immutable attribute list; shared by reference between tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// \brief Builds a schema, rejecting duplicate attribute names.
  static Result<std::shared_ptr<const Schema>> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the named attribute, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  std::string ToString() const;
  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

/// \brief A materialized row matching some schema; the optional rich payload
/// of a Tuple (see tuple.h).
class Row {
 public:
  Row(std::shared_ptr<const Schema> schema, std::vector<Value> values);

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const;

  /// \brief Looks a value up by attribute name; NotFound if absent.
  Result<Value> ValueOf(const std::string& name) const;

  /// \brief Approximate in-memory / wire size in bytes.
  size_t ByteSize() const;

  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Value> values_;
};

}  // namespace bistream

#endif  // BISTREAM_TUPLE_SCHEMA_H_
