/// \file value.h
/// \brief Dynamically typed attribute values for tuple rows.
///
/// The join engine's hot path operates on a fixed int64 join key (see
/// tuple.h); Value is the general attribute representation carried in the
/// optional Row payload that examples and richer workloads use.

#ifndef BISTREAM_TUPLE_VALUE_H_
#define BISTREAM_TUPLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace bistream {

/// \brief Attribute data types supported in rows.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeToString(ValueType type);

/// \brief A single dynamically typed attribute value.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}              // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; abort on type mismatch (programming error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// \brief Numeric view: int64 widened to double; aborts on string/null.
  double AsNumeric() const;

  /// \brief 64-bit hash consistent with common/hash.h partitioning.
  uint64_t Hash() const;

  /// \brief Approximate in-memory / wire size in bytes.
  size_t ByteSize() const;

  /// \brief Total ordering: by type index, then by value.
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace bistream

#endif  // BISTREAM_TUPLE_VALUE_H_
