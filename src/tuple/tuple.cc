#include "tuple/tuple.h"

#include <cstdio>

#include "common/hash.h"

namespace bistream {

std::string Tuple::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Tuple{id=%llu rel=%u ts=%lld key=%lld payload=%lld%s}",
                static_cast<unsigned long long>(id), relation,
                static_cast<long long>(ts), static_cast<long long>(key),
                static_cast<long long>(payload),
                row != nullptr ? " +row" : "");
  return std::string(buf);
}

uint64_t JoinResult::PairKey() const {
  return HashCombine(HashMix64(r_id), HashMix64(s_id));
}

}  // namespace bistream
