#include "tuple/schema.h"

#include <unordered_set>

#include "common/logging.h"

namespace bistream {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Result<std::shared_ptr<const Schema>> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema field with empty name");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate schema field '" + f.name +
                                     "'");
    }
  }
  return std::make_shared<const Schema>(Schema(std::move(fields)));
}

const Field& Schema::field(size_t i) const {
  BISTREAM_CHECK_LT(i, fields_.size());
  return fields_[i];
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeToString(fields_[i].type);
  }
  out += ">";
  return out;
}

Row::Row(std::shared_ptr<const Schema> schema, std::vector<Value> values)
    : schema_(std::move(schema)), values_(std::move(values)) {
  BISTREAM_CHECK(schema_ != nullptr);
  BISTREAM_CHECK_EQ(values_.size(), schema_->num_fields())
      << "row arity does not match schema " << schema_->ToString();
}

const Value& Row::value(size_t i) const {
  BISTREAM_CHECK_LT(i, values_.size());
  return values_[i];
}

Result<Value> Row::ValueOf(const std::string& name) const {
  BISTREAM_ASSIGN_OR_RETURN(size_t index, schema_->FieldIndex(name));
  return values_[index];
}

size_t Row::ByteSize() const {
  size_t total = 0;
  for (const Value& v : values_) total += v.ByteSize();
  return total;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace bistream
