/// \file tuple.h
/// \brief Streaming tuples and join results.
///
/// A Tuple is the unit of data flowing through the system. The engine's hot
/// path (routing, indexing, window expiry) touches only the fixed-size
/// header: unique id, relation index, event timestamp and a 64-bit join key.
/// Applications that need full rows attach an optional shared Row payload;
/// the engine treats it as opaque bytes (it only contributes to the
/// serialized-size cost model and is available to custom theta predicates).

#ifndef BISTREAM_TUPLE_TUPLE_H_
#define BISTREAM_TUPLE_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/time.h"
#include "tuple/schema.h"

namespace bistream {

/// \brief Index of a streaming relation. Two-way joins use kRelationR /
/// kRelationS; multi-way joins use 0..k-1.
using RelationId = uint32_t;

inline constexpr RelationId kRelationR = 0;
inline constexpr RelationId kRelationS = 1;

/// \brief A streaming tuple.
struct Tuple {
  /// Globally unique id assigned by the source; (relation, id) identifies a
  /// tuple for the exactly-once result accounting.
  uint64_t id = 0;
  /// Which streaming relation this tuple belongs to.
  RelationId relation = kRelationR;
  /// Event timestamp (Definition 2's time domain), microseconds.
  EventTime ts = 0;
  /// The join attribute. Equi joins compare keys for equality; band joins
  /// compare |r.key - s.key| <= band; custom theta predicates may ignore it.
  int64_t key = 0;
  /// Opaque application payload (cheap fixed slot).
  int64_t payload = 0;
  /// Optional full row for schema-rich applications; shared and immutable.
  std::shared_ptr<const Row> row;
  /// Virtual arrival time at the system edge (metrics only; set by the
  /// driver when the tuple is injected; not part of the wire size).
  SimTime origin = 0;
  /// True when the tuple tracer selected this tuple at ingress (metrics
  /// only; not part of the wire size). Carried on every copy so workers on
  /// a concurrent backend can filter trace recording without consulting the
  /// tracer's shared span index.
  bool traced = false;

  /// \brief Wire size in bytes: fixed header plus the encoded row, if any.
  ///
  /// Drives the serialization term of the simulator's cost model and the
  /// MemoryTracker accounting of stored windows.
  size_t SerializedSize() const {
    // id + relation + ts + key + payload + framing.
    size_t bytes = 8 + 4 + 8 + 8 + 8 + 4;
    if (row != nullptr) bytes += row->ByteSize();
    return bytes;
  }

  std::string ToString() const;
};

/// \brief One emitted join result: the matched pair plus timing metadata.
struct JoinResult {
  /// Identity of the R-side tuple (its Tuple::id).
  uint64_t r_id = 0;
  /// Identity of the S-side (or other-relation) tuple.
  uint64_t s_id = 0;
  /// Output event timestamp. BiStream assigns the max of the two input
  /// timestamps so the derived stream stays ordered by event time.
  EventTime ts = 0;
  /// The probing tuple's join key (for equi joins this is the shared key);
  /// lets downstream stages — e.g. the multi-way cascade — re-join the
  /// derived stream without re-materializing the inputs.
  int64_t key = 0;
  /// Virtual time at which the result was produced (for latency metrics).
  SimTime emit_time = 0;
  /// emit_time minus the probing tuple's arrival: the end-to-end time the
  /// system took to surface this result once it became derivable.
  SimTime latency_ns = 0;
  /// Unit that produced the result (for audit / dedup diagnostics).
  uint32_t producer_unit = 0;
  /// True when produced by a recovery-replayed probe; the engine's
  /// duplicate-suppression filter only drops results carrying this flag,
  /// so genuine protocol bugs stay visible to the checking collector.
  bool replayed = false;

  /// \brief Canonical 64-bit identity of the (r, s) pairing, used by the
  /// checking collector to detect duplicates and misses.
  uint64_t PairKey() const;
};

}  // namespace bistream

#endif  // BISTREAM_TUPLE_TUPLE_H_
