// bistream-inspect — offline analysis of BENCH_*.json run artifacts.
//
// Modes:
//   bistream-inspect <artifact.json>            health report over the
//                                               artifact's diagnostics and
//                                               per-stage profile sections
//   bistream-inspect --diff <base> <candidate>  A/B regression diff with
//                                               per-stage attribution
//   bistream-inspect timeline <trace.json>      execution-timeline report
//                                               over a --timeline_out Chrome
//                                               trace: per-worker
//                                               utilization/blocking, the
//                                               longest stall with its
//                                               cause, and the flight-
//                                               recorder crash postmortem
//   bistream-inspect --self-check               verdict-logic self test
//
// Thresholds (all overridable):
//   --max_errors=0         health: max tolerated invariant violations
//   --max_peak_busy=0      health: cap on any node's busy fraction
//                          (0 disables the check)
//   --max_detection_ms=0   health: cap on the worst measured crash
//                          detection latency (0 disables; only meaningful
//                          for wall-clock artifacts with faults)
//   --stage_ratio=1.5      diff: a stage regressed when its total virtual
//                          time grew by at least this factor ...
//   --share_delta=0.05     ... and its share of busy time grew by at least
//                          this much (absolute)
//   --latency_ratio=1.5    diff: p99 latency regression factor
//   --throughput_ratio=0.8 diff: throughput floor (candidate/base)
//
// Exit codes: 0 healthy / no regression, 1 threshold breach or regression,
// 2 malformed input or usage error. The tier-1 inspect smoke test drives
// all three.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "obs/json.h"
#include "obs/timeline/timeline.h"

namespace bistream {
namespace {

struct Thresholds {
  double max_errors = 0;
  double max_peak_busy = 0;   // 0 = disabled
  double max_detection_ms = 0;  // 0 = disabled
  double stage_ratio = 1.5;
  double share_delta = 0.05;
  double latency_ratio = 1.5;
  double throughput_ratio = 0.8;
};

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

/// Everything the analyses need from one artifact, aggregated over runs.
struct ArtifactSummary {
  std::string experiment;
  size_t runs = 0;
  double diagnostic_errors = 0;
  double diagnostic_events = 0;
  /// "detector/severity" -> count, summed over runs.
  std::map<std::string, double> event_counts;
  /// Retained detail events as (severity, detector, scope, message).
  std::vector<std::vector<std::string>> events;
  /// Joiner stage -> total virtual ns, summed over runs and units.
  std::map<std::string, double> stage_ns;
  double joiner_busy_ns = 0;
  double peak_busy_fraction = 0;
  std::string peak_busy_scope;
  double mean_throughput_tps = 0;
  double mean_p99_ns = 0;
  /// Fault-recovery telemetry, summed (counters) / maxed (latencies) over
  /// runs. All zero for fault-free artifacts.
  double crashes = 0;
  double recoveries = 0;
  double respawns = 0;
  double suppressed_duplicates = 0;
  double detection_latency_max_ns = 0;
  double recovery_wall_max_ns = 0;
  /// True when any run was wall-measured (backend "parallel"): recoveries
  /// there must come with real worker-thread respawns.
  bool wall_measured = false;
};

/// Parses and validates one artifact. Returns non-OK for anything the
/// analyses cannot work with (the caller maps that to exit code 2).
Result<ArtifactSummary> Summarize(const JsonValue& artifact,
                                  const std::string& path) {
  ArtifactSummary out;
  if (!artifact.is_object()) {
    return Status::InvalidArgument(path + ": artifact root is not an object");
  }
  if (const JsonValue* exp = artifact.Find("experiment")) {
    if (exp->is_string()) out.experiment = exp->AsString();
  }
  const JsonValue* runs = artifact.Find("runs");
  if (runs == nullptr || !runs->is_array() || runs->size() == 0) {
    return Status::InvalidArgument(path +
                                   ": missing or empty 'runs' array");
  }
  out.runs = runs->size();

  double throughput_sum = 0;
  double p99_sum = 0;
  for (size_t i = 0; i < runs->size(); ++i) {
    const JsonValue& run = runs->at(i);
    const JsonValue* report = run.Find("report");
    if (report == nullptr || !report->is_object()) {
      return Status::InvalidArgument(path + ": runs[" + std::to_string(i) +
                                     "] has no report object");
    }
    const JsonValue* diagnostics = report->Find("diagnostics");
    const JsonValue* profile = report->Find("profile");
    if (diagnostics == nullptr || !diagnostics->is_object() ||
        profile == nullptr || !profile->is_object()) {
      return Status::InvalidArgument(
          path + ": runs[" + std::to_string(i) +
          "] lacks diagnostics/profile sections (artifact predates the "
          "diagnosis layer?)");
    }

    out.diagnostic_errors += NumberOr(diagnostics->Find("errors"), 0);
    out.diagnostic_events += NumberOr(diagnostics->Find("total_events"), 0);
    if (const JsonValue* counts = diagnostics->Find("counts")) {
      for (const auto& [key, value] : counts->members()) {
        out.event_counts[key] += NumberOr(&value, 0);
      }
    }
    if (const JsonValue* events = diagnostics->Find("events")) {
      for (const JsonValue& event : events->elements()) {
        const JsonValue* severity = event.Find("severity");
        const JsonValue* detector = event.Find("detector");
        const JsonValue* scope = event.Find("scope");
        const JsonValue* message = event.Find("message");
        out.events.push_back(
            {severity != nullptr && severity->is_string() ? severity->AsString()
                                                          : "?",
             detector != nullptr && detector->is_string() ? detector->AsString()
                                                          : "?",
             scope != nullptr && scope->is_string() ? scope->AsString() : "?",
             message != nullptr && message->is_string() ? message->AsString()
                                                        : ""});
      }
    }

    const JsonValue* nodes = profile->Find("nodes");
    if (nodes == nullptr || !nodes->is_array()) {
      return Status::InvalidArgument(path + ": runs[" + std::to_string(i) +
                                     "].report.profile has no nodes array");
    }
    for (const JsonValue& node : nodes->elements()) {
      const JsonValue* kind = node.Find("kind");
      double busy_fraction = NumberOr(node.Find("busy_fraction"), 0);
      if (busy_fraction > out.peak_busy_fraction) {
        out.peak_busy_fraction = busy_fraction;
        const JsonValue* scope = node.Find("scope");
        out.peak_busy_scope =
            scope != nullptr && scope->is_string() ? scope->AsString() : "?";
      }
      if (kind == nullptr || !kind->is_string() || kind->AsString() != "joiner") {
        continue;
      }
      out.joiner_busy_ns += NumberOr(node.Find("busy_ns"), 0);
      if (const JsonValue* stages = node.Find("stage_ns")) {
        for (const auto& [stage, ns] : stages->members()) {
          out.stage_ns[stage] += NumberOr(&ns, 0);
        }
      }
    }

    throughput_sum += NumberOr(report->Find("throughput_tps"), 0);
    if (const JsonValue* latency = report->Find("latency")) {
      p99_sum += NumberOr(latency->Find("p99_ns"), 0);
    }
    if (const JsonValue* backend = report->Find("backend")) {
      if (backend->is_string() && backend->AsString() == "parallel") {
        out.wall_measured = true;
      }
    }
    if (const JsonValue* engine = report->Find("engine")) {
      out.crashes += NumberOr(engine->Find("crashes"), 0);
      out.recoveries += NumberOr(engine->Find("recoveries"), 0);
      out.respawns += NumberOr(engine->Find("respawns"), 0);
      out.suppressed_duplicates +=
          NumberOr(engine->Find("suppressed_duplicates"), 0);
      out.detection_latency_max_ns =
          std::max(out.detection_latency_max_ns,
                   NumberOr(engine->Find("detection_latency_ns"), 0));
      out.recovery_wall_max_ns =
          std::max(out.recovery_wall_max_ns,
                   NumberOr(engine->Find("recovery_wall_ns"), 0));
    }
  }
  out.mean_throughput_tps = throughput_sum / static_cast<double>(out.runs);
  out.mean_p99_ns = p99_sum / static_cast<double>(out.runs);
  return out;
}

Result<ArtifactSummary> LoadAndSummarize(const std::string& path) {
  Result<JsonValue> parsed = ReadJsonFile(path);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return Summarize(*parsed, path);
}

void PrintStageTable(const ArtifactSummary& s) {
  std::printf("  per-stage joiner time (all runs, all units):\n");
  for (const auto& [stage, ns] : s.stage_ns) {
    double share = s.joiner_busy_ns > 0 ? ns / s.joiner_busy_ns : 0;
    std::printf("    %-12s %14.0f ns  %5.1f%%\n", stage.c_str(), ns,
                share * 100);
  }
}

/// Health verdict over one artifact. Returns the number of breaches.
int AnalyzeHealth(const ArtifactSummary& s, const Thresholds& t,
                  bool verbose) {
  int breaches = 0;
  if (verbose) {
    std::printf("health report: %s (%zu runs)\n",
                s.experiment.empty() ? "<unnamed>" : s.experiment.c_str(),
                s.runs);
    std::printf("  diagnostic events: %.0f (errors: %.0f)\n",
                s.diagnostic_events, s.diagnostic_errors);
    for (const auto& [key, count] : s.event_counts) {
      std::printf("    %-24s %6.0f\n", key.c_str(), count);
    }
    size_t shown = 0;
    for (const auto& event : s.events) {
      if (event[0] == "info") continue;  // Alarm clears are noise here.
      if (++shown > 10) {
        std::printf("    ... (%zu more)\n", s.events.size() - shown + 1);
        break;
      }
      std::printf("    [%s] %s @ %s: %s\n", event[0].c_str(),
                  event[1].c_str(), event[2].c_str(), event[3].c_str());
    }
    PrintStageTable(s);
    std::printf("  peak node busy fraction: %.3f (%s)\n",
                s.peak_busy_fraction, s.peak_busy_scope.c_str());
    if (s.crashes > 0) {
      std::printf(
          "  fault recovery: %.0f crash(es), %.0f recovered, "
          "%.0f worker respawn(s)\n",
          s.crashes, s.recoveries, s.respawns);
      std::printf(
          "    detection latency max: %.1f ms, recovery wall max: %.1f ms, "
          "replay duplicates suppressed: %.0f\n",
          s.detection_latency_max_ns / 1e6, s.recovery_wall_max_ns / 1e6,
          s.suppressed_duplicates);
    }
  }
  // A wall-clock recovery without a worker respawn means the replacement
  // never got a real thread — the recovery protocol "succeeded" on a dead
  // unit. Never legal, so no threshold to tune.
  if (s.wall_measured && s.recoveries > 0 && s.respawns <= 0) {
    std::printf(
        "BREACH: %.0f wall-clock recover(ies) but zero worker respawns\n",
        s.recoveries);
    ++breaches;
  }
  if (t.max_detection_ms > 0 &&
      s.detection_latency_max_ns > t.max_detection_ms * 1e6) {
    std::printf("BREACH: crash detection took %.1f ms, tolerated %.1f ms\n",
                s.detection_latency_max_ns / 1e6, t.max_detection_ms);
    ++breaches;
  }
  if (s.diagnostic_errors > t.max_errors) {
    std::printf("BREACH: %.0f invariant violation(s), tolerated %.0f\n",
                s.diagnostic_errors, t.max_errors);
    ++breaches;
  }
  if (t.max_peak_busy > 0 && s.peak_busy_fraction > t.max_peak_busy) {
    std::printf("BREACH: peak busy fraction %.3f (%s) exceeds %.3f\n",
                s.peak_busy_fraction, s.peak_busy_scope.c_str(),
                t.max_peak_busy);
    ++breaches;
  }
  if (breaches == 0) std::printf("healthy: no threshold breaches\n");
  return breaches;
}

/// A/B regression diff. Returns the number of regressions found.
int AnalyzeDiff(const ArtifactSummary& base, const ArtifactSummary& cand,
                const Thresholds& t, bool verbose) {
  int regressions = 0;
  if (verbose) {
    std::printf("A/B diff: base %zu runs vs candidate %zu runs\n", base.runs,
                cand.runs);
    std::printf("  %-12s %14s %14s %7s %8s %8s\n", "stage", "base_ns",
                "cand_ns", "ratio", "share_b", "share_c");
  }
  // Stage attribution: a regression names the stage whose cost grew, not
  // just "the run got slower".
  for (const auto& [stage, base_ns] : base.stage_ns) {
    auto it = cand.stage_ns.find(stage);
    double cand_ns = it == cand.stage_ns.end() ? 0 : it->second;
    double base_share =
        base.joiner_busy_ns > 0 ? base_ns / base.joiner_busy_ns : 0;
    double cand_share =
        cand.joiner_busy_ns > 0 ? cand_ns / cand.joiner_busy_ns : 0;
    double ratio = base_ns > 0 ? cand_ns / base_ns : (cand_ns > 0 ? 1e9 : 1);
    if (verbose) {
      std::printf("  %-12s %14.0f %14.0f %7.2f %7.1f%% %7.1f%%\n",
                  stage.c_str(), base_ns, cand_ns, ratio, base_share * 100,
                  cand_share * 100);
    }
    // Tiny absolute stages are noise regardless of ratio.
    if (base_ns < 1000 && cand_ns < 1000) continue;
    if (ratio >= t.stage_ratio && cand_share - base_share >= t.share_delta) {
      std::printf(
          "REGRESSION: stage '%s' grew %.2fx (share %.1f%% -> %.1f%%)\n",
          stage.c_str(), ratio, base_share * 100, cand_share * 100);
      ++regressions;
    }
  }
  if (base.mean_p99_ns > 0 &&
      cand.mean_p99_ns / base.mean_p99_ns >= t.latency_ratio) {
    std::printf("REGRESSION: mean p99 latency %.0f ns -> %.0f ns (%.2fx)\n",
                base.mean_p99_ns, cand.mean_p99_ns,
                cand.mean_p99_ns / base.mean_p99_ns);
    ++regressions;
  }
  if (base.mean_throughput_tps > 0 &&
      cand.mean_throughput_tps / base.mean_throughput_tps <
          t.throughput_ratio) {
    std::printf("REGRESSION: throughput %.0f tps -> %.0f tps (%.2fx)\n",
                base.mean_throughput_tps, cand.mean_throughput_tps,
                cand.mean_throughput_tps / base.mean_throughput_tps);
    ++regressions;
  }
  if (cand.diagnostic_errors > base.diagnostic_errors) {
    std::printf("REGRESSION: invariant violations %.0f -> %.0f\n",
                base.diagnostic_errors, cand.diagnostic_errors);
    ++regressions;
  }
  if (regressions == 0) std::printf("no regression detected\n");
  return regressions;
}

// -------------------------------------------------------------- timeline --

/// Per-worker-lane aggregates over one Chrome trace (all times in µs, the
/// trace-event unit).
struct LaneUsage {
  std::string name;
  double first_us = 0;
  double last_us = 0;
  double task_us = 0;
  double wait_us = 0;
  double blocked_us = 0;
  size_t spans = 0;
  bool any = false;
};

/// Analyzes a validated Chrome trace: per-lane utilization/blocking, the
/// longest stall with its cause, and the flight-recorder postmortem
/// (crash -> detect -> respawn must appear in order). Returns the number of
/// breaches (out-of-order postmortems).
int AnalyzeTimeline(const JsonValue& doc, bool verbose) {
  std::map<int64_t, LaneUsage> lanes;
  const JsonValue* events = doc.Find("traceEvents");
  // Span begins per lane, name+ts (ValidateChromeTrace guaranteed LIFO).
  std::map<int64_t, std::vector<std::pair<std::string, double>>> stacks;
  double stall_us = 0;
  int64_t stall_tid = 0;
  double stall_at_us = 0;
  std::string stall_cause;
  for (const JsonValue& event : events->elements()) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* tid = event.Find("tid");
    if (ph == nullptr || tid == nullptr) continue;
    int64_t lane = static_cast<int64_t>(tid->AsNumber());
    LaneUsage& usage = lanes[lane];
    const std::string& phase = ph->AsString();
    if (phase == "M") {
      const JsonValue* args = event.Find("args");
      const JsonValue* name =
          args != nullptr ? args->Find("name") : nullptr;
      if (name != nullptr && name->is_string()) usage.name = name->AsString();
      continue;
    }
    double ts = NumberOr(event.Find("ts"), 0);
    if (!usage.any || ts < usage.first_us) usage.first_us = ts;
    if (ts > usage.last_us) usage.last_us = ts;
    usage.any = true;
    const JsonValue* name = event.Find("name");
    std::string span = name != nullptr && name->is_string()
                           ? name->AsString()
                           : std::string();
    if (phase == "B") {
      stacks[lane].emplace_back(span, ts);
    } else if (phase == "E") {
      auto& stack = stacks[lane];
      if (stack.empty()) continue;
      double dur = ts - stack.back().second;
      double begin = stack.back().second;
      stack.pop_back();
      ++usage.spans;
      if (span == "task") {
        usage.task_us += dur;
      } else {
        // Both stall kinds: dequeue_wait (idle, inbox empty) and
        // blocked_send (backpressure on a full destination inbox).
        if (span == "dequeue_wait") {
          usage.wait_us += dur;
        } else {
          usage.blocked_us += dur;
        }
        if (dur > stall_us) {
          stall_us = dur;
          stall_tid = lane;
          stall_at_us = begin;
          stall_cause = span;
        }
      }
    }
  }

  if (verbose) {
    const JsonValue* bistream = doc.Find("bistream");
    const JsonValue* summary =
        bistream != nullptr ? bistream->Find("summary") : nullptr;
    const JsonValue* backend =
        bistream != nullptr ? bistream->Find("backend") : nullptr;
    std::printf("timeline report (%s backend)\n",
                backend != nullptr && backend->is_string()
                    ? backend->AsString().c_str()
                    : "?");
    if (summary != nullptr) {
      std::printf("  events recorded: %.0f, dropped: %.0f\n",
                  NumberOr(summary->Find("events_recorded"), 0),
                  NumberOr(summary->Find("events_dropped"), 0));
    }
    std::printf("  %-16s %10s %8s %8s %8s %7s\n", "lane", "span_ms",
                "task%", "wait%", "block%", "spans");
    for (const auto& [tid, usage] : lanes) {
      if (!usage.any) continue;
      double span = usage.last_us - usage.first_us;
      double denom = span > 0 ? span : 1;
      std::string label =
          usage.name.empty() ? std::to_string(tid) : usage.name;
      std::printf("  %-16s %10.2f %7.1f%% %7.1f%% %7.1f%% %7zu\n",
                  label.c_str(), span / 1000.0, usage.task_us / denom * 100,
                  usage.wait_us / denom * 100,
                  usage.blocked_us / denom * 100, usage.spans);
    }
    if (stall_us > 0) {
      const LaneUsage& usage = lanes[stall_tid];
      std::string label =
          usage.name.empty() ? std::to_string(stall_tid) : usage.name;
      std::printf(
          "  longest stall: %.2f ms on %s at t=%.2f ms — %s\n",
          stall_us / 1000.0, label.c_str(), stall_at_us / 1000.0,
          stall_cause == "dequeue_wait"
              ? "dequeue_wait (inbox empty, worker idle)"
              : "blocked_send (backpressure: destination inbox full)");
    } else {
      std::printf("  longest stall: none recorded\n");
    }
  }

  // Flight-recorder postmortem: every dump must show crash -> detect ->
  // respawn in timestamp order. The gaps are the measured detection and
  // respawn latencies.
  int breaches = 0;
  const JsonValue* bistream = doc.Find("bistream");
  const JsonValue* dumps =
      bistream != nullptr ? bistream->Find("flight_recorder") : nullptr;
  size_t dump_count = dumps != nullptr ? dumps->size() : 0;
  if (verbose && dump_count > 0) {
    std::printf("  flight recorder: %zu dump(s)\n", dump_count);
  }
  for (size_t i = 0; i < dump_count; ++i) {
    const JsonValue& dump = dumps->at(i);
    const JsonValue* label = dump.Find("label");
    const JsonValue* dump_events = dump.Find("events");
    double crash_ns = -1;
    double detect_ns = -1;
    double respawn_ns = -1;
    size_t count = 0;
    if (dump_events != nullptr) {
      count = dump_events->size();
      for (const JsonValue& event : dump_events->elements()) {
        const JsonValue* type = event.Find("type");
        if (type == nullptr || !type->is_string()) continue;
        double at = NumberOr(event.Find("at"), 0);
        // Keep the first crash and the detect/respawn that follow it (one
        // dump per recovery; later events would belong to the next one).
        if (type->AsString() == "crash" && crash_ns < 0) crash_ns = at;
        if (type->AsString() == "detect" && detect_ns < 0) detect_ns = at;
        if (type->AsString() == "respawn" && respawn_ns < 0) respawn_ns = at;
      }
    }
    if (verbose) {
      std::printf("    [%zu] %s: %zu events", i,
                  label != nullptr && label->is_string()
                      ? label->AsString().c_str()
                      : "?",
                  count);
      if (crash_ns >= 0 && detect_ns >= 0 && respawn_ns >= 0) {
        std::printf(
            "; crash @%.2f ms -> detect +%.2f ms -> respawn +%.2f ms",
            crash_ns / 1e6, (detect_ns - crash_ns) / 1e6,
            (respawn_ns - detect_ns) / 1e6);
      }
      std::printf("\n");
    }
    if (crash_ns < 0 || detect_ns < 0 || respawn_ns < 0) {
      std::printf(
          "BREACH: flight dump %zu lacks the crash/detect/respawn triple\n",
          i);
      ++breaches;
      continue;
    }
    if (!(crash_ns <= detect_ns && detect_ns <= respawn_ns)) {
      std::printf(
          "BREACH: flight dump %zu postmortem out of order "
          "(crash=%.0f detect=%.0f respawn=%.0f ns)\n",
          i, crash_ns, detect_ns, respawn_ns);
      ++breaches;
    }
  }
  if (verbose && breaches == 0) {
    std::printf("timeline healthy: spans nested, postmortems in order\n");
  }
  return breaches;
}

// ------------------------------------------------------------ self check --

JsonValue MakeSyntheticRun(double store_ns, double probe_ns, double errors,
                           double recoveries = 0, double respawns = 0) {
  JsonValue stages = JsonValue::Object();
  stages.Set("store", JsonValue::Number(store_ns));
  stages.Set("probe", JsonValue::Number(probe_ns));
  stages.Set("expire", JsonValue::Number(500.0));
  stages.Set("punctuation", JsonValue::Number(2000.0));
  stages.Set("replay", JsonValue::Number(0.0));
  stages.Set("message", JsonValue::Number(1500.0));
  double busy = store_ns + probe_ns + 500.0 + 2000.0 + 1500.0;

  JsonValue node = JsonValue::Object();
  node.Set("scope", JsonValue::String("joiner.0"));
  node.Set("kind", JsonValue::String("joiner"));
  node.Set("id", JsonValue::Number(0));
  node.Set("busy_ns", JsonValue::Number(busy));
  node.Set("busy_fraction", JsonValue::Number(busy / 1e6));
  node.Set("stage_ns", std::move(stages));

  JsonValue nodes = JsonValue::Array();
  nodes.Push(std::move(node));
  JsonValue profile = JsonValue::Object();
  profile.Set("makespan_ns", JsonValue::Number(1e6));
  profile.Set("windows", JsonValue::Number(4));
  profile.Set("nodes", std::move(nodes));

  JsonValue diagnostics = JsonValue::Object();
  diagnostics.Set("total_events", JsonValue::Number(errors));
  diagnostics.Set("errors", JsonValue::Number(errors));
  diagnostics.Set("dropped", JsonValue::Number(0));
  diagnostics.Set("counts", JsonValue::Object());
  diagnostics.Set("events", JsonValue::Array());

  JsonValue latency = JsonValue::Object();
  latency.Set("p99_ns", JsonValue::Number(50000.0));

  JsonValue report = JsonValue::Object();
  report.Set("diagnostics", std::move(diagnostics));
  report.Set("profile", std::move(profile));
  report.Set("throughput_tps", JsonValue::Number(1000.0));
  report.Set("latency", std::move(latency));
  if (recoveries > 0) {
    // A faulted wall-clock run: crashes + recoveries in the engine stats.
    JsonValue engine = JsonValue::Object();
    engine.Set("crashes", JsonValue::Number(recoveries));
    engine.Set("recoveries", JsonValue::Number(recoveries));
    engine.Set("respawns", JsonValue::Number(respawns));
    engine.Set("detection_latency_ns", JsonValue::Number(5e7));
    engine.Set("recovery_wall_ns", JsonValue::Number(1e8));
    engine.Set("suppressed_duplicates", JsonValue::Number(0));
    report.Set("engine", std::move(engine));
    report.Set("backend", JsonValue::String("parallel"));
  }

  JsonValue run = JsonValue::Object();
  run.Set("params", JsonValue::Object());
  run.Set("report", std::move(report));
  return run;
}

JsonValue MakeSyntheticArtifact(double store_ns, double probe_ns,
                                double errors, double recoveries = 0,
                                double respawns = 0) {
  JsonValue runs = JsonValue::Array();
  runs.Push(MakeSyntheticRun(store_ns, probe_ns, errors, recoveries,
                             respawns));
  JsonValue artifact = JsonValue::Object();
  artifact.Set("experiment", JsonValue::String("self-check"));
  artifact.Set("runs", std::move(runs));
  return artifact;
}

/// Builds a synthetic Chrome trace with one worker lane. `order` positions
/// the postmortem triple: "ok" emits crash<=detect<=respawn, "bad" swaps
/// detect before crash.
JsonValue MakeSyntheticTrace(bool nested, const std::string& order) {
  JsonValue events = JsonValue::Array();
  auto push = [&events](const char* ph, const char* name, double ts) {
    JsonValue e = JsonValue::Object();
    e.Set("ph", JsonValue::String(ph));
    e.Set("name", JsonValue::String(name));
    e.Set("ts", JsonValue::Number(ts));
    e.Set("pid", JsonValue::Number(1));
    e.Set("tid", JsonValue::Number(0));
    events.Push(std::move(e));
  };
  push("B", "task", 0);
  push("E", "task", 100);
  push("B", "dequeue_wait", 100);
  if (nested) {
    push("E", "dequeue_wait", 400);
  } else {
    push("E", "task", 400);  // Mismatched name: broken nesting.
  }
  push("B", "task", 400);
  push("E", "task", 450);

  JsonValue dump_events = JsonValue::Array();
  auto instant = [&dump_events](const char* type, double at) {
    JsonValue e = JsonValue::Object();
    e.Set("at", JsonValue::Number(at));
    e.Set("lane", JsonValue::Number(0));
    e.Set("type", JsonValue::String(type));
    e.Set("arg", JsonValue::Number(0));
    dump_events.Push(std::move(e));
  };
  if (order == "ok") {
    instant("crash", 1e6);
    instant("detect", 3e6);
    instant("respawn", 9e6);
  } else {
    instant("detect", 1e6);
    instant("crash", 3e6);
    instant("respawn", 9e6);
  }
  JsonValue dump = JsonValue::Object();
  dump.Set("label", JsonValue::String("synthetic recovery"));
  dump.Set("events", std::move(dump_events));
  JsonValue dumps = JsonValue::Array();
  dumps.Push(std::move(dump));

  JsonValue summary = JsonValue::Object();
  summary.Set("events_recorded", JsonValue::Number(6));
  summary.Set("events_dropped", JsonValue::Number(0));
  JsonValue bistream = JsonValue::Object();
  bistream.Set("backend", JsonValue::String("parallel"));
  bistream.Set("summary", std::move(summary));
  bistream.Set("flight_recorder", std::move(dumps));

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", JsonValue::String("ms"));
  doc.Set("bistream", std::move(bistream));
  return doc;
}

int g_failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("%s: %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

/// Exercises the verdict logic against synthetic artifacts with known
/// answers; guards the analysis code itself (runs in tier-1).
int SelfCheck(const Thresholds& t) {
  JsonValue base = MakeSyntheticArtifact(10000, 20000, 0);
  JsonValue probe_2x = MakeSyntheticArtifact(10000, 40000, 0);
  JsonValue broken = MakeSyntheticArtifact(10000, 20000, 3);

  Result<ArtifactSummary> base_summary = Summarize(base, "base");
  Result<ArtifactSummary> cand_summary = Summarize(probe_2x, "cand");
  Result<ArtifactSummary> broken_summary = Summarize(broken, "broken");
  Expect(base_summary.ok() && cand_summary.ok() && broken_summary.ok(),
         "synthetic artifacts summarize");
  if (g_failures > 0) return 1;

  Expect(AnalyzeHealth(*base_summary, t, false) == 0,
         "clean artifact reads healthy");
  Expect(AnalyzeHealth(*broken_summary, t, false) > 0,
         "invariant violations breach health");
  Expect(AnalyzeDiff(*base_summary, *base_summary, t, false) == 0,
         "identical artifacts diff clean");
  Expect(AnalyzeDiff(*base_summary, *cand_summary, t, false) > 0,
         "2x probe cost flags a regression");

  // The flagged stage must be the probe stage: attribution, not just
  // detection.
  const double base_probe = base_summary->stage_ns.at("probe");
  const double cand_probe = cand_summary->stage_ns.at("probe");
  const double base_store = base_summary->stage_ns.at("store");
  const double cand_store = cand_summary->stage_ns.at("store");
  Expect(cand_probe / base_probe >= t.stage_ratio &&
             cand_store / base_store < t.stage_ratio,
         "regression attributes to the probe stage only");

  // Recovery verdicts: a recovered wall-clock run reads healthy, the same
  // run with no worker respawn breaches, and a slow detection trips the
  // --max_detection_ms cap.
  JsonValue recovered = MakeSyntheticArtifact(10000, 20000, 0, 1, 1);
  JsonValue respawnless = MakeSyntheticArtifact(10000, 20000, 0, 1, 0);
  Result<ArtifactSummary> recovered_summary = Summarize(recovered, "rec");
  Result<ArtifactSummary> respawnless_summary =
      Summarize(respawnless, "norespawn");
  Expect(recovered_summary.ok() && respawnless_summary.ok(),
         "faulted artifacts summarize");
  if (g_failures > 0) return 1;
  Expect(AnalyzeHealth(*recovered_summary, t, false) == 0,
         "recovered wall-clock run reads healthy");
  Expect(AnalyzeHealth(*respawnless_summary, t, false) > 0,
         "recovery without worker respawn breaches health");
  Thresholds strict = t;
  strict.max_detection_ms = 10;  // Synthetic detection latency is 50 ms.
  Expect(AnalyzeHealth(*recovered_summary, strict, false) > 0,
         "slow detection breaches --max_detection_ms");

  JsonValue malformed = JsonValue::Object();
  malformed.Set("experiment", JsonValue::String("x"));
  Expect(!Summarize(malformed, "malformed").ok(),
         "artifact without runs is rejected");

  // Timeline verdicts: a well-nested trace with an ordered postmortem reads
  // healthy; broken nesting is rejected by the validator; a misordered
  // crash/detect/respawn triple breaches.
  JsonValue healthy_trace = MakeSyntheticTrace(true, "ok");
  JsonValue broken_trace = MakeSyntheticTrace(false, "ok");
  JsonValue misordered_trace = MakeSyntheticTrace(true, "bad");
  Expect(ValidateChromeTrace(healthy_trace).ok(),
         "nested trace passes validation");
  Expect(!ValidateChromeTrace(broken_trace).ok(),
         "broken span nesting is rejected");
  Expect(AnalyzeTimeline(healthy_trace, false) == 0,
         "ordered postmortem reads healthy");
  Expect(AnalyzeTimeline(misordered_trace, false) > 0,
         "misordered postmortem breaches");
  JsonValue no_events = JsonValue::Object();
  Expect(!ValidateChromeTrace(no_events).ok(),
         "trace without traceEvents is rejected");

  return g_failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  Result<Config> config_result = Config::FromArgs(argc, argv);
  if (!config_result.ok()) {
    std::fprintf(stderr, "bad flags: %s\n",
                 config_result.status().message().c_str());
    return 2;
  }
  const Config& config = *config_result;
  Thresholds t;
  t.max_errors = config.GetDouble("max_errors", t.max_errors);
  t.max_peak_busy = config.GetDouble("max_peak_busy", t.max_peak_busy);
  t.max_detection_ms =
      config.GetDouble("max_detection_ms", t.max_detection_ms);
  t.stage_ratio = config.GetDouble("stage_ratio", t.stage_ratio);
  t.share_delta = config.GetDouble("share_delta", t.share_delta);
  t.latency_ratio = config.GetDouble("latency_ratio", t.latency_ratio);
  t.throughput_ratio =
      config.GetDouble("throughput_ratio", t.throughput_ratio);

  if (config.GetBool("self_check", false)) {
    return SelfCheck(t);
  }

  const std::vector<std::string>& paths = config.positional();
  if (!paths.empty() && paths[0] == "timeline") {
    if (paths.size() != 2) {
      std::fprintf(stderr,
                   "usage: bistream-inspect timeline <trace.json>\n");
      return 2;
    }
    Result<JsonValue> doc = ReadJsonFile(paths[1]);
    if (!doc.ok()) {
      std::fprintf(stderr, "malformed input: %s: %s\n", paths[1].c_str(),
                   doc.status().message().c_str());
      return 2;
    }
    // Structural validation first: a trace whose spans do not nest (or
    // whose lanes run backwards in time) is malformed input, not a breach.
    Status valid = ValidateChromeTrace(*doc);
    if (!valid.ok()) {
      std::fprintf(stderr, "malformed trace: %s: %s\n", paths[1].c_str(),
                   valid.message().c_str());
      return 2;
    }
    return AnalyzeTimeline(*doc, true) > 0 ? 1 : 0;
  }
  if (config.GetBool("diff", false)) {
    if (paths.size() != 2) {
      std::fprintf(stderr,
                   "usage: bistream-inspect --diff <base.json> <cand.json>\n");
      return 2;
    }
    Result<ArtifactSummary> base = LoadAndSummarize(paths[0]);
    Result<ArtifactSummary> cand = LoadAndSummarize(paths[1]);
    if (!base.ok() || !cand.ok()) {
      std::fprintf(stderr, "malformed input: %s\n",
                   (!base.ok() ? base.status() : cand.status())
                       .message()
                       .c_str());
      return 2;
    }
    return AnalyzeDiff(*base, *cand, t, true) > 0 ? 1 : 0;
  }

  if (paths.size() != 1) {
    std::fprintf(
        stderr,
        "usage: bistream-inspect <artifact.json>\n"
        "       bistream-inspect --diff <base.json> <candidate.json>\n"
        "       bistream-inspect timeline <trace.json>\n"
        "       bistream-inspect --self_check\n");
    return 2;
  }
  Result<ArtifactSummary> summary = LoadAndSummarize(paths[0]);
  if (!summary.ok()) {
    std::fprintf(stderr, "malformed input: %s\n",
                 summary.status().message().c_str());
    return 2;
  }
  return AnalyzeHealth(*summary, t, true) > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bistream

int main(int argc, char** argv) { return bistream::Main(argc, argv); }
