// TPC-H-flavoured streaming join: Orders ⋈ LineItem on o_orderkey =
// l_orderkey within a sliding window, computing running revenue per order
// priority class — the schema-rich (Row/Schema) API surface, plus a custom
// aggregating ResultSink that needs the matched rows.
//
// Because the engine's JoinResult carries tuple identities (not payloads),
// the sink keeps a bounded id → row cache fed by a tee on the source —
// the pattern a downstream aggregation service would use.
//
// Run:  ./tpch_order_totals [--orders=4000]

#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/config.h"
#include "core/engine.h"
#include "workload/tpch_stream.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

/// Tees a stream, retaining each tuple's Row keyed by tuple id.
class RowCacheSource final : public StreamSource {
 public:
  RowCacheSource(StreamSource* inner,
                 std::unordered_map<uint64_t, std::shared_ptr<const Row>>*
                     cache)
      : inner_(inner), cache_(cache) {}

  std::optional<TimedTuple> Next() override {
    auto next = inner_->Next();
    if (next.has_value() && next->tuple.row != nullptr) {
      (*cache_)[next->tuple.id] = next->tuple.row;
    }
    return next;
  }

 private:
  StreamSource* inner_;
  std::unordered_map<uint64_t, std::shared_ptr<const Row>>* cache_;
};

/// Aggregates joined (order, lineitem) pairs into revenue per priority.
class RevenueSink final : public ResultSink {
 public:
  explicit RevenueSink(
      const std::unordered_map<uint64_t, std::shared_ptr<const Row>>* cache)
      : cache_(cache) {}

  void OnResult(const JoinResult& result) override {
    ++pairs_;
    auto order = cache_->find(result.r_id);
    auto item = cache_->find(result.s_id);
    if (order == cache_->end() || item == cache_->end()) return;
    std::string priority =
        order->second->ValueOf("o_orderpriority")->AsString();
    double price = item->second->ValueOf("l_extendedprice")->AsDouble();
    revenue_[priority] += price;
  }

  uint64_t pairs() const { return pairs_; }
  const std::map<std::string, double>& revenue() const { return revenue_; }

 private:
  const std::unordered_map<uint64_t, std::shared_ptr<const Row>>* cache_;
  uint64_t pairs_ = 0;
  std::map<std::string, double> revenue_;
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  TpchStreamOptions stream_options;
  stream_options.orders_per_sec = config.GetDouble("orders_per_sec", 800);
  stream_options.total_orders =
      static_cast<uint64_t>(config.GetInt("orders", 4000));
  TpchSource tpch(stream_options);

  std::unordered_map<uint64_t, std::shared_ptr<const Row>> row_cache;
  RowCacheSource source(&tpch, &row_cache);
  RevenueSink sink(&row_cache);

  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;  // Orders side.
  options.joiners_s = 4;  // LineItem side (higher rate).
  options.subgroups_r = 2;
  options.subgroups_s = 4;
  options.predicate = JoinPredicate::Equi();
  options.window = 5 * kEventSecond;  // Line items trail orders by <= 2 s.
  options.archive_period = 500 * kEventMilli;

  EventLoop loop;
  BicliqueEngine engine(&loop, options, &sink);
  engine.RunToCompletion(&source);

  std::printf("orders ⋈ lineitems: %llu joined pairs\n",
              static_cast<unsigned long long>(sink.pairs()));
  std::printf("revenue by order priority:\n");
  for (const auto& [priority, revenue] : sink.revenue()) {
    std::printf("  %-10s $%.2f\n", priority.c_str(), revenue);
  }
  EngineStats stats = engine.Stats();
  std::printf("engine: %llu tuples, %.1f msgs/tuple, peak state %lld bytes\n",
              static_cast<unsigned long long>(stats.input_tuples),
              static_cast<double>(stats.messages) /
                  static_cast<double>(stats.input_tuples),
              static_cast<long long>(stats.peak_state_bytes));
  return 0;
}
