// Quickstart: the smallest complete BiStream program.
//
// Builds a join-biclique engine (2 routers, 2+2 joiners), streams two
// synthetic relations through it, and joins them on key equality over a
// 5-second sliding window. Shows the three things every application does:
// configure BicliqueOptions, provide a ResultSink, and drive a
// StreamSource to completion.
//
// Run:  ./quickstart [--rate=2000] [--tuples=20000]

#include <cstdio>

#include "common/config.h"
#include "core/engine.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  // 1. Describe the join: equality on the tuple key, 5 s sliding window.
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.subgroups_r = 2;  // Pure hash routing: cheapest for equi joins.
  options.subgroups_s = 2;
  options.predicate = JoinPredicate::Equi();
  options.window = 5 * kEventSecond;
  options.archive_period = 500 * kEventMilli;

  // 2. A sink receives every join result; CollectorSink counts and tracks
  //    latency (you can also implement ResultSink yourself).
  CollectorSink sink;

  // 3. A workload: two relations at --rate tuples/s each, keys from a
  //    domain of 1000, timestamps = arrival times.
  SyntheticWorkloadOptions workload;
  workload.key_domain = 1000;
  double rate = config.GetDouble("rate", 2000);
  workload.rate_r = RateSchedule::Constant(rate);
  workload.rate_s = RateSchedule::Constant(rate);
  workload.total_tuples =
      static_cast<uint64_t>(config.GetInt("tuples", 20000));
  SyntheticSource source(workload);

  // 4. Run: the engine owns routers/joiners on a simulated cluster and
  //    drives the event loop until every result is emitted.
  EventLoop loop;
  BicliqueEngine engine(&loop, options, &sink);
  engine.RunToCompletion(&source);

  EngineStats stats = engine.Stats();
  std::printf("input tuples : %llu\n",
              static_cast<unsigned long long>(stats.input_tuples));
  std::printf("join results : %llu\n",
              static_cast<unsigned long long>(sink.count()));
  std::printf("latency      : %s\n", sink.latency().Summary().c_str());
  std::printf("state bytes  : %lld (peak %lld)\n",
              static_cast<long long>(stats.state_bytes),
              static_cast<long long>(stats.peak_state_bytes));
  std::printf("messages     : %llu (%.1f per tuple)\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<double>(stats.messages) /
                  static_cast<double>(stats.input_tuples));
  return 0;
}
