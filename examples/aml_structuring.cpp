// Anti-money-laundering "structuring" detection: an arbitrary *theta*
// join. Two wire-transfer streams are correlated by a predicate no index
// can serve — pairs of transfers whose amounts sum into the band just
// under the $10,000 reporting threshold within a 5-second window —
// exercising the engine's scan-index path and the join-biclique model's
// headline generality claim: every edge of the biclique covers part of
// the Cartesian space, so *any* predicate evaluates correctly.
//
// Run:  ./aml_structuring [--transfers_per_sec=800] [--events=20000]

#include <cstdio>

#include "common/config.h"
#include "core/query.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

/// Two transfer streams (e.g. two acquiring banks); payload = cents.
class TransferSource final : public StreamSource {
 public:
  TransferSource(double per_stream_rate, uint64_t total)
      : rate_(per_stream_rate), total_(total), rng_(31) {
    next_arrival_[0] = Gap();
    next_arrival_[1] = Gap();
  }

  std::optional<TimedTuple> Next() override {
    if (emitted_ >= total_) return std::nullopt;
    int stream = next_arrival_[0] <= next_arrival_[1] ? 0 : 1;
    TimedTuple tt;
    tt.arrival = next_arrival_[stream];
    tt.tuple.id = ++last_id_;
    tt.tuple.relation = stream == 0 ? kRelationR : kRelationS;
    tt.tuple.ts = static_cast<EventTime>(tt.arrival / kMicrosecond);
    tt.tuple.key = rng_.UniformInt(1, 2000);  // Account id (not joined on).
    // Most transfers are mundane; a minority sit in the 4-5k band that
    // pairs into the structuring range.
    tt.tuple.payload = rng_.NextBool(0.02)
                           ? rng_.UniformInt(400000, 500000)
                           : rng_.UniformInt(1000, 350000);
    next_arrival_[stream] += Gap();
    ++emitted_;
    return tt;
  }

 private:
  SimTime Gap() {
    return static_cast<SimTime>(
        rng_.NextExponential(static_cast<double>(kSecond) / rate_));
  }

  double rate_;
  uint64_t total_;
  Rng rng_;
  SimTime next_arrival_[2];
  uint64_t last_id_ = 0;
  uint64_t emitted_ = 0;
};

class AlertSink final : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    ++alerts_;
    latency_.Record(result.latency_ns);
  }
  uint64_t alerts() const { return alerts_; }
  const Histogram& latency() const { return latency_; }

 private:
  uint64_t alerts_ = 0;
  Histogram latency_;
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  // The structuring predicate: amounts sum to [9000, 10000) dollars.
  JoinPredicate structuring = JoinPredicate::Theta(
      "structuring", [](const Tuple& a, const Tuple& b) {
        int64_t total_cents = a.payload + b.payload;
        return total_cents >= 900000 && total_cents < 1000000;
      });

  TransferSource source(
      config.GetDouble("transfers_per_sec", 800),
      static_cast<uint64_t>(config.GetInt("events", 20000)));
  AlertSink sink;

  // Theta joins derive ContRand routing and the scan index automatically.
  auto stats = RunQuery(StreamJoinQuery::Join(structuring)
                            .Window(5 * kEventSecond)
                            .Parallelism(3, 3)
                            .Routers(2),
                        &source, &sink);
  if (!stats.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("transfers screened : %llu\n",
              static_cast<unsigned long long>(stats->input_tuples));
  std::printf("structuring alerts : %llu\n",
              static_cast<unsigned long long>(sink.alerts()));
  std::printf("alert latency      : %s\n", sink.latency().Summary().c_str());
  std::printf("scan probe work    : %.0f candidates/probe (theta joins "
              "examine the full window)\n",
              stats->probes > 0
                  ? static_cast<double>(stats->probe_candidates) /
                        static_cast<double>(stats->probes)
                  : 0.0);
  return 0;
}
