// Cross-venue price correlation: a *band* (non-equi) stream join.
//
// Two exchanges stream trade ticks; we flag pairs of trades whose prices
// are within --band cents of each other and whose timestamps fall within a
// 2-second window — the classic "find correlated executions across venues"
// query. Band predicates cannot be hash-partitioned, so the engine runs
// the content-insensitive ContRand strategy over an ordered (BST) chained
// index — the paper's high-selectivity configuration.
//
// Run:  ./stock_band_join [--trades_per_sec=2000] [--band=5]

#include <cstdio>

#include "common/config.h"
#include "core/engine.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

/// Two venues quoting around a shared random-walk mid price (cents).
class TickSource final : public StreamSource {
 public:
  TickSource(double per_venue_rate, uint64_t total)
      : rate_(per_venue_rate), total_(total), rng_(7) {
    next_arrival_[0] = NextGap();
    next_arrival_[1] = NextGap();
  }

  std::optional<TimedTuple> Next() override {
    if (emitted_ >= total_) return std::nullopt;
    int venue = next_arrival_[0] <= next_arrival_[1] ? 0 : 1;

    // Random-walk mid plus a small venue-specific spread.
    mid_ += rng_.UniformInt(-5, 5);
    if (mid_ < 1000) mid_ = 1000;
    int64_t price = mid_ + rng_.UniformInt(-50, 50);

    TimedTuple tt;
    tt.arrival = next_arrival_[venue];
    tt.tuple.id = ++last_id_;
    tt.tuple.relation = venue == 0 ? kRelationR : kRelationS;
    tt.tuple.ts = static_cast<EventTime>(tt.arrival / kMicrosecond);
    tt.tuple.key = price;                       // Join attribute: price.
    tt.tuple.payload = rng_.UniformInt(1, 500);  // Shares.
    next_arrival_[venue] += NextGap();
    ++emitted_;
    return tt;
  }

 private:
  SimTime NextGap() {
    return static_cast<SimTime>(
        rng_.NextExponential(static_cast<double>(kSecond) / rate_));
  }

  double rate_;
  uint64_t total_;
  Rng rng_;
  SimTime next_arrival_[2];
  int64_t mid_ = 15000;  // $150.00 in cents.
  uint64_t last_id_ = 0;
  uint64_t emitted_ = 0;
};

class CorrelationSink final : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    ++pairs_;
    latency_.Record(result.latency_ns);
  }
  uint64_t pairs() const { return pairs_; }
  const Histogram& latency() const { return latency_; }

 private:
  uint64_t pairs_ = 0;
  Histogram latency_;
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  int64_t band = config.GetInt("band", 5);  // Cents.
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 3;
  options.joiners_s = 3;
  // Band joins require ContRand (subgroups = 1): store anywhere on the own
  // side, probe-broadcast to the opposite side.
  options.subgroups_r = 1;
  options.subgroups_s = 1;
  options.predicate = JoinPredicate::Band(band);
  options.window = 1 * kEventSecond;
  options.archive_period = 125 * kEventMilli;

  TickSource source(config.GetDouble("trades_per_sec", 2000),
                    static_cast<uint64_t>(config.GetInt("events", 40000)));
  CorrelationSink sink;

  EventLoop loop;
  BicliqueEngine engine(&loop, options, &sink);
  engine.RunToCompletion(&source);

  EngineStats stats = engine.Stats();
  std::printf("ticks processed    : %llu\n",
              static_cast<unsigned long long>(stats.input_tuples));
  std::printf("correlated pairs   : %llu (band = %lld cents, 2 s window)\n",
              static_cast<unsigned long long>(sink.pairs()),
              static_cast<long long>(band));
  std::printf("detection latency  : %s\n", sink.latency().Summary().c_str());
  std::printf("probe work         : %.1f candidates/probe across %llu probes\n",
              stats.probes > 0
                  ? static_cast<double>(stats.probe_candidates) /
                        static_cast<double>(stats.probes)
                  : 0.0,
              static_cast<unsigned long long>(stats.probes));
  return 0;
}
