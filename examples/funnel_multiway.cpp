// Conversion-funnel analytics: a k-way (here 4-way) streaming join.
//
// Four event streams keyed by user id — ad impressions, site visits,
// add-to-cart events, purchases — are joined left-deep with per-stage
// windows: a conversion is counted when a user progresses through all
// four steps, each within the configured window of the previous ones.
// Built on KWayCascade, the paper's multi-way join realized as cascaded
// join-biclique stages (core/multiway.h).
//
// Run:  ./funnel_multiway [--users=5000] [--events=20000]

#include <cstdio>

#include "common/config.h"
#include "core/multiway.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

/// A funnel sink that also tracks time-to-convert (first to last step).
class FunnelSink final : public KWaySink {
 public:
  void OnKTuple(const KWayResult& result) override {
    ++conversions_;
    latency_.Record(result.latency_ns);
  }
  uint64_t conversions() const { return conversions_; }
  const Histogram& latency() const { return latency_; }

 private:
  uint64_t conversions_ = 0;
  Histogram latency_;
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  // Event streams: relation 0 = impression, 1 = visit, 2 = add-to-cart,
  // 3 = purchase; join key = user id. Rates taper down the funnel is
  // approximated here by a shared rate with a modest user domain so
  // multi-step coincidences actually occur.
  MultiWorkloadOptions workload;
  workload.num_relations = 4;
  workload.key_domain = static_cast<uint64_t>(config.GetInt("users", 5000));
  workload.rate_per_relation = config.GetDouble("rate", 800);
  workload.total_tuples =
      static_cast<uint64_t>(config.GetInt("events", 20000));
  workload.seed = 77;
  MultiSource source(workload);

  KWayOptions options;
  options.stages.resize(3);
  const char* step_names[] = {"impression→visit", "…→add-to-cart",
                              "…→purchase"};
  EventTime windows[] = {2 * kEventSecond, 4 * kEventSecond,
                         8 * kEventSecond};
  for (size_t i = 0; i < options.stages.size(); ++i) {
    BicliqueOptions& stage = options.stages[i];
    stage.num_routers = 2;
    stage.joiners_r = 2;
    stage.joiners_s = 2;
    stage.subgroups_r = 2;
    stage.subgroups_s = 2;
    stage.window = windows[i];
    stage.archive_period = windows[i] / 8;
  }

  EventLoop loop;
  FunnelSink sink;
  KWayCascade cascade(&loop, options, &sink);
  cascade.RunToCompletion(&source);

  std::printf("funnel stages (per-stage windows):\n");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  %-18s window %lld s, partial matches: %llu\n",
                step_names[i],
                static_cast<long long>(windows[i] / kEventSecond),
                static_cast<unsigned long long>(cascade.IntermediateCount(i)));
  }
  std::printf("full conversions     : %llu\n",
              static_cast<unsigned long long>(sink.conversions()));
  std::printf("detection latency    : %s\n",
              sink.latency().Summary().c_str());
  for (size_t stage = 0; stage < 3; ++stage) {
    EngineStats stats = cascade.StageStats(stage);
    std::printf("stage %zu: %llu inputs, %.0f%% peak busy\n", stage + 1,
                static_cast<unsigned long long>(stats.input_tuples),
                stats.max_busy_fraction * 100);
  }
  return 0;
}
