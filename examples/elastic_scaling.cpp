// Elastic scaling demo: join-biclique's headline operational property.
//
// Streams a bursty workload (quiet → spike → quiet) through the engine
// with an HPA-style CPU autoscaler attached to each joiner side, then
// prints the controller timeline. Because the biclique scales by routing-
// epoch changes plus natural window expiry, no stored tuple ever migrates
// — and the run verifies that results stayed exactly-once throughout.
//
// Run:  ./elastic_scaling [--spike_rate=600] [--base_rate=150]

#include <cstdio>

#include "common/config.h"
#include "harness/table.h"
#include "ops/autoscaler.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  double base = config.GetDouble("base_rate", 150);
  double spike = config.GetDouble("spike_rate", 600);

  // Quiet for 1 min, spike for 2 min, quiet again.
  auto schedule = RateSchedule::Make({{0, base},
                                      {60 * kSecond, spike},
                                      {180 * kSecond, base}})
                      .ValueOrDie();
  SyntheticWorkloadOptions workload;
  workload.key_domain = 100;
  workload.rate_r = schedule;
  workload.rate_s = schedule;
  workload.total_tuples =
      static_cast<uint64_t>(config.GetInt("events", 120000));
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  BicliqueOptions options;
  options.num_routers = 1;
  options.joiners_r = 1;
  options.joiners_s = 1;
  options.window = 30 * kEventSecond;
  options.archive_period = 3 * kEventSecond;
  options.retire_grace_factor = 1.2;
  // Per-candidate work heavy enough that the spike saturates one joiner.
  options.cost.probe_candidate_ns = 20000;

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);

  AutoscalerOptions scaler_options;
  scaler_options.metric = ScaleMetric::kCpu;
  scaler_options.interval = 10 * kSecond;
  scaler_options.target_cpu = 0.75;
  scaler_options.min_replicas = 1;
  scaler_options.max_replicas = 4;
  scaler_options.cooldown = 20 * kSecond;
  scaler_options.side = kRelationR;
  Autoscaler scaler_r(&engine, scaler_options);
  scaler_options.side = kRelationS;
  Autoscaler scaler_s(&engine, scaler_options);

  engine.Start();
  scaler_r.Start();
  scaler_s.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  scaler_r.Stop();
  scaler_s.Stop();
  engine.FlushAndStop();
  loop.RunUntilIdle();

  std::printf("R-side autoscaler timeline (target %.0f%% CPU):\n",
              75.0);
  TablePrinter table({"t_s", "rate_tps", "cpu", "replicas", "action"});
  for (const AutoscalerSample& s : scaler_r.timeline()) {
    table.AddRow({TablePrinter::Num(SimTimeToSeconds(s.time), 0),
                  TablePrinter::Num(schedule.RateAt(s.time) * 2, 0),
                  TablePrinter::Num(s.metric_value * 100, 0) + "%",
                  TablePrinter::Int(static_cast<int64_t>(s.active_replicas)),
                  s.scaled ? "scale" : "-"});
  }
  table.Print();

  CheckReport check =
      sink.checker().Check(stream, options.predicate, options.window);
  std::printf("\nresults: %llu joined pairs, exactly-once check: %s\n",
              static_cast<unsigned long long>(sink.count()),
              check.Clean() ? "PASS" : check.ToString().c_str());
  std::printf("no stored tuple migrated during any scaling action — new "
              "units fill via routing; old units drain via window expiry\n");
  return 0;
}
