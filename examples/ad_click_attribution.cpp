// Ad-click attribution: the classic production stream equi join (Google's
// Photon motivates it): join the click stream against the impression
// stream on ad_id within an attribution window, and bill the advertiser
// for every attributed click.
//
// Relation R = impressions (ad served), relation S = clicks. A click is
// attributed when it matches an impression of the same ad within 30 s.
// Uses content-sensitive (hash) routing — the low-selectivity equi-join
// case — and schema-rich Row payloads to carry the bid price.
//
// Run:  ./ad_click_attribution [--impressions_per_sec=3000] [--ctr=0.05]

#include <cstdio>
#include <map>

#include "common/config.h"
#include "core/engine.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

std::shared_ptr<const Schema> ImpressionSchema() {
  static const auto schema =
      Schema::Make({{"ad_id", ValueType::kInt64},
                    {"campaign", ValueType::kString},
                    {"bid_price", ValueType::kDouble}})
          .ValueOrDie();
  return schema;
}

/// Generates impressions and, with probability --ctr, a click trailing the
/// impression by up to 20 s.
class AdSource final : public StreamSource {
 public:
  AdSource(double impressions_per_sec, double ctr, uint64_t total)
      : rate_(impressions_per_sec), ctr_(ctr), total_(total), rng_(99) {}

  std::optional<TimedTuple> Next() override {
    while (pending_.empty() && produced_ < total_) {
      GenerateImpression();
    }
    if (pending_.empty()) return std::nullopt;
    auto it = pending_.begin();
    TimedTuple out = it->second;
    pending_.erase(it);
    return out;
  }

 private:
  void GenerateImpression() {
    next_arrival_ += static_cast<SimTime>(
        rng_.NextExponential(static_cast<double>(kSecond) / rate_));
    int64_t ad_id = static_cast<int64_t>(rng_.Uniform(500));
    double bid = 0.05 + rng_.NextDouble() * 1.95;

    TimedTuple imp;
    imp.arrival = next_arrival_;
    imp.tuple.id = next_id_++;
    imp.tuple.relation = kRelationR;
    imp.tuple.ts = static_cast<EventTime>(imp.arrival / kMicrosecond);
    imp.tuple.key = ad_id;
    imp.tuple.row = std::make_shared<const Row>(
        ImpressionSchema(),
        std::vector<Value>{ad_id, std::string("campaign-") +
                                      std::to_string(ad_id % 20),
                           bid});
    pending_.emplace(OrderKey(imp), imp);
    ++produced_;

    if (rng_.NextBool(ctr_)) {
      TimedTuple click;
      click.arrival = imp.arrival + rng_.Uniform(20 * kSecond);
      click.tuple.id = next_id_++;
      click.tuple.relation = kRelationS;
      click.tuple.ts = static_cast<EventTime>(click.arrival / kMicrosecond);
      click.tuple.key = ad_id;
      click.tuple.payload = static_cast<int64_t>(bid * 1000);  // Micros.
      pending_.emplace(OrderKey(click), click);
      ++produced_;
    }
  }

  static std::pair<SimTime, uint64_t> OrderKey(const TimedTuple& tt) {
    return {tt.arrival, tt.tuple.id};
  }

  double rate_;
  double ctr_;
  uint64_t total_;
  Rng rng_;
  SimTime next_arrival_ = 0;
  uint64_t next_id_ = 1;
  uint64_t produced_ = 0;
  std::map<std::pair<SimTime, uint64_t>, TimedTuple> pending_;
};

/// Attribution sink: counts attributed clicks and sums billed revenue.
class BillingSink final : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    ++attributed_;
    latency_.Record(result.latency_ns);
  }
  uint64_t attributed() const { return attributed_; }
  const Histogram& latency() const { return latency_; }

 private:
  uint64_t attributed_ = 0;
  Histogram latency_;
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  Config config = Config::FromArgs(argc, argv).ValueOrDie();

  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 4;  // Impression side holds the bigger window.
  options.joiners_s = 2;
  options.subgroups_r = 4;  // ContHash: equi join on ad_id.
  options.subgroups_s = 2;
  options.predicate = JoinPredicate::Equi();
  options.window = 30 * kEventSecond;  // Attribution window.
  options.archive_period = 3 * kEventSecond;

  AdSource source(config.GetDouble("impressions_per_sec", 3000),
                  config.GetDouble("ctr", 0.05),
                  static_cast<uint64_t>(config.GetInt("events", 60000)));
  BillingSink sink;

  EventLoop loop;
  BicliqueEngine engine(&loop, options, &sink);
  engine.RunToCompletion(&source);

  EngineStats stats = engine.Stats();
  std::printf("events ingested    : %llu\n",
              static_cast<unsigned long long>(stats.input_tuples));
  std::printf("attributed clicks  : %llu\n",
              static_cast<unsigned long long>(sink.attributed()));
  std::printf("attribution latency: %s\n",
              sink.latency().Summary().c_str());
  std::printf("window state       : %lld bytes across %zu impression units\n",
              static_cast<long long>(stats.state_bytes),
              engine.ActiveJoiners(kRelationR));
  return 0;
}
