file(REMOVE_RECURSE
  "CMakeFiles/random_differential_test.dir/core/random_differential_test.cc.o"
  "CMakeFiles/random_differential_test.dir/core/random_differential_test.cc.o.d"
  "random_differential_test"
  "random_differential_test.pdb"
  "random_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
