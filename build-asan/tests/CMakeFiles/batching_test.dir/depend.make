# Empty dependencies file for batching_test.
# This may be replaced when dependencies are built.
