file(REMOVE_RECURSE
  "CMakeFiles/batching_test.dir/core/batching_test.cc.o"
  "CMakeFiles/batching_test.dir/core/batching_test.cc.o.d"
  "batching_test"
  "batching_test.pdb"
  "batching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
