file(REMOVE_RECURSE
  "CMakeFiles/cross_backend_test.dir/runtime/cross_backend_test.cc.o"
  "CMakeFiles/cross_backend_test.dir/runtime/cross_backend_test.cc.o.d"
  "cross_backend_test"
  "cross_backend_test.pdb"
  "cross_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
