# Empty compiler generated dependencies file for cross_backend_test.
# This may be replaced when dependencies are built.
