# Empty dependencies file for diagnose_test.
# This may be replaced when dependencies are built.
