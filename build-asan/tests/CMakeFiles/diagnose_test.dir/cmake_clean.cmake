file(REMOVE_RECURSE
  "CMakeFiles/diagnose_test.dir/obs/diagnose_test.cc.o"
  "CMakeFiles/diagnose_test.dir/obs/diagnose_test.cc.o.d"
  "diagnose_test"
  "diagnose_test.pdb"
  "diagnose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
