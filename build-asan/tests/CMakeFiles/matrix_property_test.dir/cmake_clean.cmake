file(REMOVE_RECURSE
  "CMakeFiles/matrix_property_test.dir/matrix/matrix_property_test.cc.o"
  "CMakeFiles/matrix_property_test.dir/matrix/matrix_property_test.cc.o.d"
  "matrix_property_test"
  "matrix_property_test.pdb"
  "matrix_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
