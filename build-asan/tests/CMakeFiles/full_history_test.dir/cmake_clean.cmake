file(REMOVE_RECURSE
  "CMakeFiles/full_history_test.dir/core/full_history_test.cc.o"
  "CMakeFiles/full_history_test.dir/core/full_history_test.cc.o.d"
  "full_history_test"
  "full_history_test.pdb"
  "full_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
