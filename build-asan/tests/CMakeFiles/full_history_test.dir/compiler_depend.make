# Empty compiler generated dependencies file for full_history_test.
# This may be replaced when dependencies are built.
