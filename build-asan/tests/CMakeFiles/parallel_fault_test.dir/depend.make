# Empty dependencies file for parallel_fault_test.
# This may be replaced when dependencies are built.
