file(REMOVE_RECURSE
  "CMakeFiles/parallel_fault_test.dir/runtime/parallel_fault_test.cc.o"
  "CMakeFiles/parallel_fault_test.dir/runtime/parallel_fault_test.cc.o.d"
  "parallel_fault_test"
  "parallel_fault_test.pdb"
  "parallel_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
