# Empty dependencies file for chained_index_test.
# This may be replaced when dependencies are built.
