file(REMOVE_RECURSE
  "CMakeFiles/chained_index_test.dir/index/chained_index_test.cc.o"
  "CMakeFiles/chained_index_test.dir/index/chained_index_test.cc.o.d"
  "chained_index_test"
  "chained_index_test.pdb"
  "chained_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chained_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
