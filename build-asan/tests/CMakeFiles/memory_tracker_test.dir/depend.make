# Empty dependencies file for memory_tracker_test.
# This may be replaced when dependencies are built.
