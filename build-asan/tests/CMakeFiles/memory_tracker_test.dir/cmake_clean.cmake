file(REMOVE_RECURSE
  "CMakeFiles/memory_tracker_test.dir/common/memory_tracker_test.cc.o"
  "CMakeFiles/memory_tracker_test.dir/common/memory_tracker_test.cc.o.d"
  "memory_tracker_test"
  "memory_tracker_test.pdb"
  "memory_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
