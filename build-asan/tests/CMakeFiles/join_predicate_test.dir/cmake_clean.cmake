file(REMOVE_RECURSE
  "CMakeFiles/join_predicate_test.dir/tuple/join_predicate_test.cc.o"
  "CMakeFiles/join_predicate_test.dir/tuple/join_predicate_test.cc.o.d"
  "join_predicate_test"
  "join_predicate_test.pdb"
  "join_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
