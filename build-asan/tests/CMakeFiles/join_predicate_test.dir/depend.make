# Empty dependencies file for join_predicate_test.
# This may be replaced when dependencies are built.
