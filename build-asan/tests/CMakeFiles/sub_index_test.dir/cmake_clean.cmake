file(REMOVE_RECURSE
  "CMakeFiles/sub_index_test.dir/index/sub_index_test.cc.o"
  "CMakeFiles/sub_index_test.dir/index/sub_index_test.cc.o.d"
  "sub_index_test"
  "sub_index_test.pdb"
  "sub_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sub_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
