# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sub_index_test.
