# Empty dependencies file for sub_index_test.
# This may be replaced when dependencies are built.
