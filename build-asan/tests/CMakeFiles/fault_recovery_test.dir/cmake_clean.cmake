file(REMOVE_RECURSE
  "CMakeFiles/fault_recovery_test.dir/core/fault_recovery_test.cc.o"
  "CMakeFiles/fault_recovery_test.dir/core/fault_recovery_test.cc.o.d"
  "fault_recovery_test"
  "fault_recovery_test.pdb"
  "fault_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
