# Empty compiler generated dependencies file for tpch_integration_test.
# This may be replaced when dependencies are built.
