file(REMOVE_RECURSE
  "CMakeFiles/tpch_integration_test.dir/workload/tpch_integration_test.cc.o"
  "CMakeFiles/tpch_integration_test.dir/workload/tpch_integration_test.cc.o.d"
  "tpch_integration_test"
  "tpch_integration_test.pdb"
  "tpch_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
