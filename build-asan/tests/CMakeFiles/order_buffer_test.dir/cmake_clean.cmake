file(REMOVE_RECURSE
  "CMakeFiles/order_buffer_test.dir/core/order_buffer_test.cc.o"
  "CMakeFiles/order_buffer_test.dir/core/order_buffer_test.cc.o.d"
  "order_buffer_test"
  "order_buffer_test.pdb"
  "order_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
