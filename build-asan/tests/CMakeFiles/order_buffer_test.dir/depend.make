# Empty dependencies file for order_buffer_test.
# This may be replaced when dependencies are built.
