file(REMOVE_RECURSE
  "CMakeFiles/ordering_protocol_test.dir/core/ordering_protocol_test.cc.o"
  "CMakeFiles/ordering_protocol_test.dir/core/ordering_protocol_test.cc.o.d"
  "ordering_protocol_test"
  "ordering_protocol_test.pdb"
  "ordering_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
