# Empty dependencies file for ordering_protocol_test.
# This may be replaced when dependencies are built.
