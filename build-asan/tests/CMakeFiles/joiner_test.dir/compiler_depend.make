# Empty compiler generated dependencies file for joiner_test.
# This may be replaced when dependencies are built.
