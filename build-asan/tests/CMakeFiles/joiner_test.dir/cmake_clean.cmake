file(REMOVE_RECURSE
  "CMakeFiles/joiner_test.dir/core/joiner_test.cc.o"
  "CMakeFiles/joiner_test.dir/core/joiner_test.cc.o.d"
  "joiner_test"
  "joiner_test.pdb"
  "joiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
