file(REMOVE_RECURSE
  "CMakeFiles/multiway_test.dir/core/multiway_test.cc.o"
  "CMakeFiles/multiway_test.dir/core/multiway_test.cc.o.d"
  "multiway_test"
  "multiway_test.pdb"
  "multiway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
