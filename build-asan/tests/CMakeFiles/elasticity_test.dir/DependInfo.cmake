
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/elasticity_test.cc" "tests/CMakeFiles/elasticity_test.dir/core/elasticity_test.cc.o" "gcc" "tests/CMakeFiles/elasticity_test.dir/core/elasticity_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/harness/CMakeFiles/bistream_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/matrix/CMakeFiles/bistream_matrix.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ops/CMakeFiles/bistream_ops.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/bistream_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/bistream_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bistream_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/bistream_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/bistream_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/index/CMakeFiles/bistream_index.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
