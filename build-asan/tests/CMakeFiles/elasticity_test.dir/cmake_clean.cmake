file(REMOVE_RECURSE
  "CMakeFiles/elasticity_test.dir/core/elasticity_test.cc.o"
  "CMakeFiles/elasticity_test.dir/core/elasticity_test.cc.o.d"
  "elasticity_test"
  "elasticity_test.pdb"
  "elasticity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
