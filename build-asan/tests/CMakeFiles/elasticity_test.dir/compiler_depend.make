# Empty compiler generated dependencies file for elasticity_test.
# This may be replaced when dependencies are built.
