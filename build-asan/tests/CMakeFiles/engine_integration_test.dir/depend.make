# Empty dependencies file for engine_integration_test.
# This may be replaced when dependencies are built.
