file(REMOVE_RECURSE
  "CMakeFiles/engine_integration_test.dir/core/engine_integration_test.cc.o"
  "CMakeFiles/engine_integration_test.dir/core/engine_integration_test.cc.o.d"
  "engine_integration_test"
  "engine_integration_test.pdb"
  "engine_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
