file(REMOVE_RECURSE
  "CMakeFiles/obs_concurrency_test.dir/runtime/obs_concurrency_test.cc.o"
  "CMakeFiles/obs_concurrency_test.dir/runtime/obs_concurrency_test.cc.o.d"
  "obs_concurrency_test"
  "obs_concurrency_test.pdb"
  "obs_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
