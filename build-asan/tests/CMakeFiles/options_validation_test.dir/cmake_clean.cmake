file(REMOVE_RECURSE
  "CMakeFiles/options_validation_test.dir/core/options_validation_test.cc.o"
  "CMakeFiles/options_validation_test.dir/core/options_validation_test.cc.o.d"
  "options_validation_test"
  "options_validation_test.pdb"
  "options_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
