# Empty compiler generated dependencies file for bench_schema_check.
# This may be replaced when dependencies are built.
