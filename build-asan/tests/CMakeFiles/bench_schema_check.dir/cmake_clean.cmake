file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_check.dir/bench_schema_check.cc.o"
  "CMakeFiles/bench_schema_check.dir/bench_schema_check.cc.o.d"
  "bench_schema_check"
  "bench_schema_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
