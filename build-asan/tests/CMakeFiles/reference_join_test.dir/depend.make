# Empty dependencies file for reference_join_test.
# This may be replaced when dependencies are built.
