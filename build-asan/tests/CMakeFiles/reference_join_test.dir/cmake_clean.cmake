file(REMOVE_RECURSE
  "CMakeFiles/reference_join_test.dir/workload/reference_join_test.cc.o"
  "CMakeFiles/reference_join_test.dir/workload/reference_join_test.cc.o.d"
  "reference_join_test"
  "reference_join_test.pdb"
  "reference_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
