file(REMOVE_RECURSE
  "libbistream_runtime.a"
)
