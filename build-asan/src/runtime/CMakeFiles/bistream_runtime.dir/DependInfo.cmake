
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/fault/fault.cc" "src/runtime/CMakeFiles/bistream_runtime.dir/fault/fault.cc.o" "gcc" "src/runtime/CMakeFiles/bistream_runtime.dir/fault/fault.cc.o.d"
  "/root/repo/src/runtime/message.cc" "src/runtime/CMakeFiles/bistream_runtime.dir/message.cc.o" "gcc" "src/runtime/CMakeFiles/bistream_runtime.dir/message.cc.o.d"
  "/root/repo/src/runtime/parallel/parallel_executor.cc" "src/runtime/CMakeFiles/bistream_runtime.dir/parallel/parallel_executor.cc.o" "gcc" "src/runtime/CMakeFiles/bistream_runtime.dir/parallel/parallel_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
