file(REMOVE_RECURSE
  "CMakeFiles/bistream_runtime.dir/fault/fault.cc.o"
  "CMakeFiles/bistream_runtime.dir/fault/fault.cc.o.d"
  "CMakeFiles/bistream_runtime.dir/message.cc.o"
  "CMakeFiles/bistream_runtime.dir/message.cc.o.d"
  "CMakeFiles/bistream_runtime.dir/parallel/parallel_executor.cc.o"
  "CMakeFiles/bistream_runtime.dir/parallel/parallel_executor.cc.o.d"
  "libbistream_runtime.a"
  "libbistream_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
