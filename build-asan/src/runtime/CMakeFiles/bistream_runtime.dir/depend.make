# Empty dependencies file for bistream_runtime.
# This may be replaced when dependencies are built.
