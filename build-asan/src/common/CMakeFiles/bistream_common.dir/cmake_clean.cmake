file(REMOVE_RECURSE
  "CMakeFiles/bistream_common.dir/config.cc.o"
  "CMakeFiles/bistream_common.dir/config.cc.o.d"
  "CMakeFiles/bistream_common.dir/histogram.cc.o"
  "CMakeFiles/bistream_common.dir/histogram.cc.o.d"
  "CMakeFiles/bistream_common.dir/logging.cc.o"
  "CMakeFiles/bistream_common.dir/logging.cc.o.d"
  "CMakeFiles/bistream_common.dir/status.cc.o"
  "CMakeFiles/bistream_common.dir/status.cc.o.d"
  "libbistream_common.a"
  "libbistream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
