file(REMOVE_RECURSE
  "libbistream_common.a"
)
