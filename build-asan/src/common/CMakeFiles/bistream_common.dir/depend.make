# Empty dependencies file for bistream_common.
# This may be replaced when dependencies are built.
