# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tuple")
subdirs("runtime")
subdirs("index")
subdirs("sim")
subdirs("workload")
subdirs("obs")
subdirs("core")
subdirs("matrix")
subdirs("ops")
subdirs("harness")
