
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuple/join_predicate.cc" "src/tuple/CMakeFiles/bistream_tuple.dir/join_predicate.cc.o" "gcc" "src/tuple/CMakeFiles/bistream_tuple.dir/join_predicate.cc.o.d"
  "/root/repo/src/tuple/schema.cc" "src/tuple/CMakeFiles/bistream_tuple.dir/schema.cc.o" "gcc" "src/tuple/CMakeFiles/bistream_tuple.dir/schema.cc.o.d"
  "/root/repo/src/tuple/tuple.cc" "src/tuple/CMakeFiles/bistream_tuple.dir/tuple.cc.o" "gcc" "src/tuple/CMakeFiles/bistream_tuple.dir/tuple.cc.o.d"
  "/root/repo/src/tuple/value.cc" "src/tuple/CMakeFiles/bistream_tuple.dir/value.cc.o" "gcc" "src/tuple/CMakeFiles/bistream_tuple.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
