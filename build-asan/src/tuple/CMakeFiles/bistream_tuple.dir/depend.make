# Empty dependencies file for bistream_tuple.
# This may be replaced when dependencies are built.
