file(REMOVE_RECURSE
  "libbistream_tuple.a"
)
