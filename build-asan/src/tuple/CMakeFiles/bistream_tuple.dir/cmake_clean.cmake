file(REMOVE_RECURSE
  "CMakeFiles/bistream_tuple.dir/join_predicate.cc.o"
  "CMakeFiles/bistream_tuple.dir/join_predicate.cc.o.d"
  "CMakeFiles/bistream_tuple.dir/schema.cc.o"
  "CMakeFiles/bistream_tuple.dir/schema.cc.o.d"
  "CMakeFiles/bistream_tuple.dir/tuple.cc.o"
  "CMakeFiles/bistream_tuple.dir/tuple.cc.o.d"
  "CMakeFiles/bistream_tuple.dir/value.cc.o"
  "CMakeFiles/bistream_tuple.dir/value.cc.o.d"
  "libbistream_tuple.a"
  "libbistream_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
