# Empty dependencies file for bistream_harness.
# This may be replaced when dependencies are built.
