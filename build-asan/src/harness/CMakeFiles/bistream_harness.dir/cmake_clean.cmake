file(REMOVE_RECURSE
  "CMakeFiles/bistream_harness.dir/runner.cc.o"
  "CMakeFiles/bistream_harness.dir/runner.cc.o.d"
  "CMakeFiles/bistream_harness.dir/table.cc.o"
  "CMakeFiles/bistream_harness.dir/table.cc.o.d"
  "libbistream_harness.a"
  "libbistream_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
