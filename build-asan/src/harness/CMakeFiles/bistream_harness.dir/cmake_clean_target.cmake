file(REMOVE_RECURSE
  "libbistream_harness.a"
)
