file(REMOVE_RECURSE
  "CMakeFiles/bistream_index.dir/chained_index.cc.o"
  "CMakeFiles/bistream_index.dir/chained_index.cc.o.d"
  "CMakeFiles/bistream_index.dir/sub_index.cc.o"
  "CMakeFiles/bistream_index.dir/sub_index.cc.o.d"
  "libbistream_index.a"
  "libbistream_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
