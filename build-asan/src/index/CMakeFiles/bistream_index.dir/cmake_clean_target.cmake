file(REMOVE_RECURSE
  "libbistream_index.a"
)
