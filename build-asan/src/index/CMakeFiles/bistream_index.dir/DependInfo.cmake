
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/chained_index.cc" "src/index/CMakeFiles/bistream_index.dir/chained_index.cc.o" "gcc" "src/index/CMakeFiles/bistream_index.dir/chained_index.cc.o.d"
  "/root/repo/src/index/sub_index.cc" "src/index/CMakeFiles/bistream_index.dir/sub_index.cc.o" "gcc" "src/index/CMakeFiles/bistream_index.dir/sub_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
