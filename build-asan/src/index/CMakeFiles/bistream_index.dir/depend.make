# Empty dependencies file for bistream_index.
# This may be replaced when dependencies are built.
