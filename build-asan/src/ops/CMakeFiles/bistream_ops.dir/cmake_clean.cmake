file(REMOVE_RECURSE
  "CMakeFiles/bistream_ops.dir/autoscaler.cc.o"
  "CMakeFiles/bistream_ops.dir/autoscaler.cc.o.d"
  "CMakeFiles/bistream_ops.dir/failure_detector.cc.o"
  "CMakeFiles/bistream_ops.dir/failure_detector.cc.o.d"
  "libbistream_ops.a"
  "libbistream_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
