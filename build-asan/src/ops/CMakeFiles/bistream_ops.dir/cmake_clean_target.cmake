file(REMOVE_RECURSE
  "libbistream_ops.a"
)
