# Empty dependencies file for bistream_ops.
# This may be replaced when dependencies are built.
