# Empty dependencies file for bistream_core.
# This may be replaced when dependencies are built.
