file(REMOVE_RECURSE
  "CMakeFiles/bistream_core.dir/engine.cc.o"
  "CMakeFiles/bistream_core.dir/engine.cc.o.d"
  "CMakeFiles/bistream_core.dir/joiner.cc.o"
  "CMakeFiles/bistream_core.dir/joiner.cc.o.d"
  "CMakeFiles/bistream_core.dir/multiway.cc.o"
  "CMakeFiles/bistream_core.dir/multiway.cc.o.d"
  "CMakeFiles/bistream_core.dir/order_buffer.cc.o"
  "CMakeFiles/bistream_core.dir/order_buffer.cc.o.d"
  "CMakeFiles/bistream_core.dir/query.cc.o"
  "CMakeFiles/bistream_core.dir/query.cc.o.d"
  "CMakeFiles/bistream_core.dir/router.cc.o"
  "CMakeFiles/bistream_core.dir/router.cc.o.d"
  "CMakeFiles/bistream_core.dir/routing.cc.o"
  "CMakeFiles/bistream_core.dir/routing.cc.o.d"
  "CMakeFiles/bistream_core.dir/topology.cc.o"
  "CMakeFiles/bistream_core.dir/topology.cc.o.d"
  "libbistream_core.a"
  "libbistream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
