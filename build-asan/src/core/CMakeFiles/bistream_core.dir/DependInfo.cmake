
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/bistream_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/engine.cc.o.d"
  "/root/repo/src/core/joiner.cc" "src/core/CMakeFiles/bistream_core.dir/joiner.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/joiner.cc.o.d"
  "/root/repo/src/core/multiway.cc" "src/core/CMakeFiles/bistream_core.dir/multiway.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/multiway.cc.o.d"
  "/root/repo/src/core/order_buffer.cc" "src/core/CMakeFiles/bistream_core.dir/order_buffer.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/order_buffer.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/bistream_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/query.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/bistream_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/router.cc.o.d"
  "/root/repo/src/core/routing.cc" "src/core/CMakeFiles/bistream_core.dir/routing.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/routing.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/core/CMakeFiles/bistream_core.dir/topology.cc.o" "gcc" "src/core/CMakeFiles/bistream_core.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/index/CMakeFiles/bistream_index.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/bistream_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/bistream_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bistream_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/bistream_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
