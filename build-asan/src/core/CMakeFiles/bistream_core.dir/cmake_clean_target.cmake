file(REMOVE_RECURSE
  "libbistream_core.a"
)
