file(REMOVE_RECURSE
  "libbistream_sim.a"
)
