# Empty dependencies file for bistream_sim.
# This may be replaced when dependencies are built.
