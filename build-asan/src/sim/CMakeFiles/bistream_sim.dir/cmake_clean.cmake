file(REMOVE_RECURSE
  "CMakeFiles/bistream_sim.dir/event_loop.cc.o"
  "CMakeFiles/bistream_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/bistream_sim.dir/network.cc.o"
  "CMakeFiles/bistream_sim.dir/network.cc.o.d"
  "CMakeFiles/bistream_sim.dir/node.cc.o"
  "CMakeFiles/bistream_sim.dir/node.cc.o.d"
  "libbistream_sim.a"
  "libbistream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
