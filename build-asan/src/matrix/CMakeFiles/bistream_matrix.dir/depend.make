# Empty dependencies file for bistream_matrix.
# This may be replaced when dependencies are built.
