file(REMOVE_RECURSE
  "libbistream_matrix.a"
)
