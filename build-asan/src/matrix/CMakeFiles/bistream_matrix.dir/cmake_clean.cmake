file(REMOVE_RECURSE
  "CMakeFiles/bistream_matrix.dir/matrix_cell.cc.o"
  "CMakeFiles/bistream_matrix.dir/matrix_cell.cc.o.d"
  "CMakeFiles/bistream_matrix.dir/matrix_engine.cc.o"
  "CMakeFiles/bistream_matrix.dir/matrix_engine.cc.o.d"
  "libbistream_matrix.a"
  "libbistream_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
