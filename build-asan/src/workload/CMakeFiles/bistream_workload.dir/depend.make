# Empty dependencies file for bistream_workload.
# This may be replaced when dependencies are built.
