file(REMOVE_RECURSE
  "CMakeFiles/bistream_workload.dir/generator.cc.o"
  "CMakeFiles/bistream_workload.dir/generator.cc.o.d"
  "CMakeFiles/bistream_workload.dir/rate_schedule.cc.o"
  "CMakeFiles/bistream_workload.dir/rate_schedule.cc.o.d"
  "CMakeFiles/bistream_workload.dir/reference_join.cc.o"
  "CMakeFiles/bistream_workload.dir/reference_join.cc.o.d"
  "CMakeFiles/bistream_workload.dir/tpch_stream.cc.o"
  "CMakeFiles/bistream_workload.dir/tpch_stream.cc.o.d"
  "CMakeFiles/bistream_workload.dir/zipf.cc.o"
  "CMakeFiles/bistream_workload.dir/zipf.cc.o.d"
  "libbistream_workload.a"
  "libbistream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
