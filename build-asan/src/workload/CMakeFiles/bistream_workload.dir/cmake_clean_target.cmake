file(REMOVE_RECURSE
  "libbistream_workload.a"
)
