
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/bistream_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/bistream_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/rate_schedule.cc" "src/workload/CMakeFiles/bistream_workload.dir/rate_schedule.cc.o" "gcc" "src/workload/CMakeFiles/bistream_workload.dir/rate_schedule.cc.o.d"
  "/root/repo/src/workload/reference_join.cc" "src/workload/CMakeFiles/bistream_workload.dir/reference_join.cc.o" "gcc" "src/workload/CMakeFiles/bistream_workload.dir/reference_join.cc.o.d"
  "/root/repo/src/workload/tpch_stream.cc" "src/workload/CMakeFiles/bistream_workload.dir/tpch_stream.cc.o" "gcc" "src/workload/CMakeFiles/bistream_workload.dir/tpch_stream.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/workload/CMakeFiles/bistream_workload.dir/zipf.cc.o" "gcc" "src/workload/CMakeFiles/bistream_workload.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/index/CMakeFiles/bistream_index.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
