file(REMOVE_RECURSE
  "libbistream_obs.a"
)
