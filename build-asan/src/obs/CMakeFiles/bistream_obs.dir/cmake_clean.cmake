file(REMOVE_RECURSE
  "CMakeFiles/bistream_obs.dir/diagnose/auditor.cc.o"
  "CMakeFiles/bistream_obs.dir/diagnose/auditor.cc.o.d"
  "CMakeFiles/bistream_obs.dir/diagnose/detectors.cc.o"
  "CMakeFiles/bistream_obs.dir/diagnose/detectors.cc.o.d"
  "CMakeFiles/bistream_obs.dir/diagnose/diagnoser.cc.o"
  "CMakeFiles/bistream_obs.dir/diagnose/diagnoser.cc.o.d"
  "CMakeFiles/bistream_obs.dir/diagnose/diagnostics.cc.o"
  "CMakeFiles/bistream_obs.dir/diagnose/diagnostics.cc.o.d"
  "CMakeFiles/bistream_obs.dir/diagnose/profiler.cc.o"
  "CMakeFiles/bistream_obs.dir/diagnose/profiler.cc.o.d"
  "CMakeFiles/bistream_obs.dir/json.cc.o"
  "CMakeFiles/bistream_obs.dir/json.cc.o.d"
  "CMakeFiles/bistream_obs.dir/metrics.cc.o"
  "CMakeFiles/bistream_obs.dir/metrics.cc.o.d"
  "CMakeFiles/bistream_obs.dir/time_series.cc.o"
  "CMakeFiles/bistream_obs.dir/time_series.cc.o.d"
  "CMakeFiles/bistream_obs.dir/timeline/timeline.cc.o"
  "CMakeFiles/bistream_obs.dir/timeline/timeline.cc.o.d"
  "CMakeFiles/bistream_obs.dir/trace.cc.o"
  "CMakeFiles/bistream_obs.dir/trace.cc.o.d"
  "libbistream_obs.a"
  "libbistream_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
