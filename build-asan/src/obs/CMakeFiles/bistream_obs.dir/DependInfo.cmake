
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/diagnose/auditor.cc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/auditor.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/auditor.cc.o.d"
  "/root/repo/src/obs/diagnose/detectors.cc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/detectors.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/detectors.cc.o.d"
  "/root/repo/src/obs/diagnose/diagnoser.cc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/diagnoser.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/diagnoser.cc.o.d"
  "/root/repo/src/obs/diagnose/diagnostics.cc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/diagnostics.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/diagnostics.cc.o.d"
  "/root/repo/src/obs/diagnose/profiler.cc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/profiler.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/diagnose/profiler.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/obs/CMakeFiles/bistream_obs.dir/json.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/bistream_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/time_series.cc" "src/obs/CMakeFiles/bistream_obs.dir/time_series.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/time_series.cc.o.d"
  "/root/repo/src/obs/timeline/timeline.cc" "src/obs/CMakeFiles/bistream_obs.dir/timeline/timeline.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/timeline/timeline.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/obs/CMakeFiles/bistream_obs.dir/trace.cc.o" "gcc" "src/obs/CMakeFiles/bistream_obs.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/bistream_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tuple/CMakeFiles/bistream_tuple.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/runtime/CMakeFiles/bistream_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
