# Empty dependencies file for bistream_obs.
# This may be replaced when dependencies are built.
