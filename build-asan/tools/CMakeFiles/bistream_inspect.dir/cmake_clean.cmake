file(REMOVE_RECURSE
  "CMakeFiles/bistream_inspect.dir/bistream_inspect/main.cc.o"
  "CMakeFiles/bistream_inspect.dir/bistream_inspect/main.cc.o.d"
  "bistream-inspect"
  "bistream-inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bistream_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
