# Empty compiler generated dependencies file for bistream_inspect.
# This may be replaced when dependencies are built.
