file(REMOVE_RECURSE
  "../bench/e13_batching"
  "../bench/e13_batching.pdb"
  "CMakeFiles/e13_batching.dir/e13_batching.cc.o"
  "CMakeFiles/e13_batching.dir/e13_batching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
