# Empty dependencies file for e13_batching.
# This may be replaced when dependencies are built.
