# Empty dependencies file for e7_skew.
# This may be replaced when dependencies are built.
