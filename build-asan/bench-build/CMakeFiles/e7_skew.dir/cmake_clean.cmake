file(REMOVE_RECURSE
  "../bench/e7_skew"
  "../bench/e7_skew.pdb"
  "CMakeFiles/e7_skew.dir/e7_skew.cc.o"
  "CMakeFiles/e7_skew.dir/e7_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
