file(REMOVE_RECURSE
  "../bench/e11_comm_cost"
  "../bench/e11_comm_cost.pdb"
  "CMakeFiles/e11_comm_cost.dir/e11_comm_cost.cc.o"
  "CMakeFiles/e11_comm_cost.dir/e11_comm_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
