# Empty dependencies file for e11_comm_cost.
# This may be replaced when dependencies are built.
