file(REMOVE_RECURSE
  "../bench/e1_throughput_equi"
  "../bench/e1_throughput_equi.pdb"
  "CMakeFiles/e1_throughput_equi.dir/e1_throughput_equi.cc.o"
  "CMakeFiles/e1_throughput_equi.dir/e1_throughput_equi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_throughput_equi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
