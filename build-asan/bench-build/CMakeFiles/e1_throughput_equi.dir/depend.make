# Empty dependencies file for e1_throughput_equi.
# This may be replaced when dependencies are built.
