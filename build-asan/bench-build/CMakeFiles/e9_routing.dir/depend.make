# Empty dependencies file for e9_routing.
# This may be replaced when dependencies are built.
