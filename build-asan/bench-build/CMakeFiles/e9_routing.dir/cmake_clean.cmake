file(REMOVE_RECURSE
  "../bench/e9_routing"
  "../bench/e9_routing.pdb"
  "CMakeFiles/e9_routing.dir/e9_routing.cc.o"
  "CMakeFiles/e9_routing.dir/e9_routing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
