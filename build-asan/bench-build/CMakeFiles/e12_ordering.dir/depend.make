# Empty dependencies file for e12_ordering.
# This may be replaced when dependencies are built.
