file(REMOVE_RECURSE
  "../bench/e12_ordering"
  "../bench/e12_ordering.pdb"
  "CMakeFiles/e12_ordering.dir/e12_ordering.cc.o"
  "CMakeFiles/e12_ordering.dir/e12_ordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
