file(REMOVE_RECURSE
  "../bench/e10_multiway"
  "../bench/e10_multiway.pdb"
  "CMakeFiles/e10_multiway.dir/e10_multiway.cc.o"
  "CMakeFiles/e10_multiway.dir/e10_multiway.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
