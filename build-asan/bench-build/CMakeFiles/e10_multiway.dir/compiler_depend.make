# Empty compiler generated dependencies file for e10_multiway.
# This may be replaced when dependencies are built.
