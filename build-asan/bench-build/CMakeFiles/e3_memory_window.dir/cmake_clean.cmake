file(REMOVE_RECURSE
  "../bench/e3_memory_window"
  "../bench/e3_memory_window.pdb"
  "CMakeFiles/e3_memory_window.dir/e3_memory_window.cc.o"
  "CMakeFiles/e3_memory_window.dir/e3_memory_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_memory_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
