# Empty dependencies file for e3_memory_window.
# This may be replaced when dependencies are built.
