file(REMOVE_RECURSE
  "../bench/e4_latency_rate"
  "../bench/e4_latency_rate.pdb"
  "CMakeFiles/e4_latency_rate.dir/e4_latency_rate.cc.o"
  "CMakeFiles/e4_latency_rate.dir/e4_latency_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_latency_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
