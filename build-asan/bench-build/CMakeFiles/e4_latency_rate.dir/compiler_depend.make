# Empty compiler generated dependencies file for e4_latency_rate.
# This may be replaced when dependencies are built.
