file(REMOVE_RECURSE
  "../bench/micro_obs"
  "../bench/micro_obs.pdb"
  "CMakeFiles/micro_obs.dir/micro_obs.cc.o"
  "CMakeFiles/micro_obs.dir/micro_obs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
