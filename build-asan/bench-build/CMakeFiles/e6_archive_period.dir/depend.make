# Empty dependencies file for e6_archive_period.
# This may be replaced when dependencies are built.
