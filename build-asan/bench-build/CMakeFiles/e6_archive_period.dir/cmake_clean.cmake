file(REMOVE_RECURSE
  "../bench/e6_archive_period"
  "../bench/e6_archive_period.pdb"
  "CMakeFiles/e6_archive_period.dir/e6_archive_period.cc.o"
  "CMakeFiles/e6_archive_period.dir/e6_archive_period.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_archive_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
