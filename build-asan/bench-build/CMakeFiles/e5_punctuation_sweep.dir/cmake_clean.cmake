file(REMOVE_RECURSE
  "../bench/e5_punctuation_sweep"
  "../bench/e5_punctuation_sweep.pdb"
  "CMakeFiles/e5_punctuation_sweep.dir/e5_punctuation_sweep.cc.o"
  "CMakeFiles/e5_punctuation_sweep.dir/e5_punctuation_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_punctuation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
