# Empty compiler generated dependencies file for e5_punctuation_sweep.
# This may be replaced when dependencies are built.
