file(REMOVE_RECURSE
  "../bench/e2_throughput_band"
  "../bench/e2_throughput_band.pdb"
  "CMakeFiles/e2_throughput_band.dir/e2_throughput_band.cc.o"
  "CMakeFiles/e2_throughput_band.dir/e2_throughput_band.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_throughput_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
