# Empty compiler generated dependencies file for e2_throughput_band.
# This may be replaced when dependencies are built.
