file(REMOVE_RECURSE
  "../bench/e8_elasticity"
  "../bench/e8_elasticity.pdb"
  "CMakeFiles/e8_elasticity.dir/e8_elasticity.cc.o"
  "CMakeFiles/e8_elasticity.dir/e8_elasticity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
