# Empty compiler generated dependencies file for e8_elasticity.
# This may be replaced when dependencies are built.
