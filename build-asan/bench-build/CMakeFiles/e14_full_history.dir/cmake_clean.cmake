file(REMOVE_RECURSE
  "../bench/e14_full_history"
  "../bench/e14_full_history.pdb"
  "CMakeFiles/e14_full_history.dir/e14_full_history.cc.o"
  "CMakeFiles/e14_full_history.dir/e14_full_history.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_full_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
