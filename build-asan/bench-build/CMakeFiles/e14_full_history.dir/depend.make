# Empty dependencies file for e14_full_history.
# This may be replaced when dependencies are built.
