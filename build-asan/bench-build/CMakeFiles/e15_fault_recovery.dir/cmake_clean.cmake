file(REMOVE_RECURSE
  "../bench/e15_fault_recovery"
  "../bench/e15_fault_recovery.pdb"
  "CMakeFiles/e15_fault_recovery.dir/e15_fault_recovery.cc.o"
  "CMakeFiles/e15_fault_recovery.dir/e15_fault_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
