# Empty dependencies file for e15_fault_recovery.
# This may be replaced when dependencies are built.
