# Empty compiler generated dependencies file for ad_click_attribution.
# This may be replaced when dependencies are built.
