file(REMOVE_RECURSE
  "CMakeFiles/ad_click_attribution.dir/ad_click_attribution.cpp.o"
  "CMakeFiles/ad_click_attribution.dir/ad_click_attribution.cpp.o.d"
  "ad_click_attribution"
  "ad_click_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_click_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
