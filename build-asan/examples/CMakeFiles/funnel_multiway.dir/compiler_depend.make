# Empty compiler generated dependencies file for funnel_multiway.
# This may be replaced when dependencies are built.
