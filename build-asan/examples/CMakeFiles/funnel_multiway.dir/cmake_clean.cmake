file(REMOVE_RECURSE
  "CMakeFiles/funnel_multiway.dir/funnel_multiway.cpp.o"
  "CMakeFiles/funnel_multiway.dir/funnel_multiway.cpp.o.d"
  "funnel_multiway"
  "funnel_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funnel_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
