file(REMOVE_RECURSE
  "CMakeFiles/stock_band_join.dir/stock_band_join.cpp.o"
  "CMakeFiles/stock_band_join.dir/stock_band_join.cpp.o.d"
  "stock_band_join"
  "stock_band_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_band_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
