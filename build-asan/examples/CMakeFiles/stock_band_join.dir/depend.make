# Empty dependencies file for stock_band_join.
# This may be replaced when dependencies are built.
