# Empty dependencies file for elastic_scaling.
# This may be replaced when dependencies are built.
