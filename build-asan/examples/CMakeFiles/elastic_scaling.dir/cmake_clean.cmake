file(REMOVE_RECURSE
  "CMakeFiles/elastic_scaling.dir/elastic_scaling.cpp.o"
  "CMakeFiles/elastic_scaling.dir/elastic_scaling.cpp.o.d"
  "elastic_scaling"
  "elastic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
