file(REMOVE_RECURSE
  "CMakeFiles/aml_structuring.dir/aml_structuring.cpp.o"
  "CMakeFiles/aml_structuring.dir/aml_structuring.cpp.o.d"
  "aml_structuring"
  "aml_structuring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aml_structuring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
