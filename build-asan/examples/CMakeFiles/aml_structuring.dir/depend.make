# Empty dependencies file for aml_structuring.
# This may be replaced when dependencies are built.
