# Empty dependencies file for tpch_order_totals.
# This may be replaced when dependencies are built.
