file(REMOVE_RECURSE
  "CMakeFiles/tpch_order_totals.dir/tpch_order_totals.cpp.o"
  "CMakeFiles/tpch_order_totals.dir/tpch_order_totals.cpp.o.d"
  "tpch_order_totals"
  "tpch_order_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_order_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
