// M1 — Micro-benchmarks of the chained in-memory index and its sub-index
// kinds. These numbers calibrate the simulator's CostModel defaults
// (probe_candidate_ns, insert_ns): the modeled charges should sit within
// an order of magnitude of the measured per-op costs on the host.

#include <benchmark/benchmark.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/chained_index.h"

namespace bistream {
namespace {

Tuple MakeTuple(RelationId rel, uint64_t id, int64_t key, EventTime ts) {
  Tuple t;
  t.relation = rel;
  t.id = id;
  t.key = key;
  t.ts = ts;
  return t;
}

void BM_HashSubIndexInsert(benchmark::State& state) {
  Rng rng(1);
  uint64_t id = 0;
  HashSubIndex index;
  for (auto _ : state) {
    ++id;
    index.Insert(MakeTuple(kRelationR, id,
                           static_cast<int64_t>(rng.Uniform(100000)),
                           static_cast<EventTime>(id)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashSubIndexInsert);

void BM_HashSubIndexProbeHit(benchmark::State& state) {
  Rng rng(2);
  HashSubIndex index;
  const int64_t domain = state.range(0);
  for (uint64_t i = 0; i < 100000; ++i) {
    index.Insert(MakeTuple(kRelationS, i,
                           static_cast<int64_t>(rng.Uniform(domain)),
                           static_cast<EventTime>(i)));
  }
  JoinPredicate equi = JoinPredicate::Equi();
  uint64_t sink_count = 0;
  MatchSink sink = [&](const Tuple&) { ++sink_count; };
  for (auto _ : state) {
    Tuple probe = MakeTuple(kRelationR, 1,
                            static_cast<int64_t>(rng.Uniform(domain)), 1);
    benchmark::DoNotOptimize(index.Probe(probe, equi, sink));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashSubIndexProbeHit)->Arg(1000)->Arg(100000);

void BM_OrderedSubIndexInsert(benchmark::State& state) {
  Rng rng(3);
  uint64_t id = 0;
  OrderedSubIndex index;
  for (auto _ : state) {
    ++id;
    index.Insert(MakeTuple(kRelationR, id,
                           static_cast<int64_t>(rng.Uniform(100000)),
                           static_cast<EventTime>(id)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderedSubIndexInsert);

void BM_OrderedSubIndexBandProbe(benchmark::State& state) {
  Rng rng(4);
  OrderedSubIndex index;
  for (uint64_t i = 0; i < 100000; ++i) {
    index.Insert(MakeTuple(kRelationS, i,
                           static_cast<int64_t>(rng.Uniform(100000)),
                           static_cast<EventTime>(i)));
  }
  JoinPredicate band = JoinPredicate::Band(state.range(0));
  uint64_t sink_count = 0;
  MatchSink sink = [&](const Tuple&) { ++sink_count; };
  for (auto _ : state) {
    Tuple probe = MakeTuple(kRelationR, 1,
                            static_cast<int64_t>(rng.Uniform(100000)), 1);
    benchmark::DoNotOptimize(index.Probe(probe, band, sink));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderedSubIndexBandProbe)->Arg(8)->Arg(256);

void BM_ChainedIndexSteadyState(benchmark::State& state) {
  // Insert + expire + probe under a sliding window: the joiner hot loop.
  ChainedIndexOptions options;
  options.kind = IndexKind::kHash;
  options.archive_period = state.range(0);
  options.window = 10000;
  ChainedIndex index(options);
  JoinPredicate equi = JoinPredicate::Equi();
  Rng rng(5);
  EventTime ts = 0;
  uint64_t id = 0;
  uint64_t matches = 0;
  MatchSink sink = [&](const Tuple&) { ++matches; };
  for (auto _ : state) {
    ++ts;
    index.Insert(MakeTuple(kRelationS, ++id,
                           static_cast<int64_t>(rng.Uniform(1000)), ts));
    Tuple probe = MakeTuple(kRelationR, ++id,
                            static_cast<int64_t>(rng.Uniform(1000)), ts);
    benchmark::DoNotOptimize(index.ExpireAndProbe(probe, equi, sink));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["subindexes"] =
      static_cast<double>(index.num_subindexes());
}
BENCHMARK(BM_ChainedIndexSteadyState)->Arg(100)->Arg(1000)->Arg(10000);

// The paper's motivation for the chained index: expiring stale tuples out
// of one monolithic index costs a per-tuple erase (scan + rehash work),
// while the chained design dereferences whole sub-indexes. Compare the
// real cost of discarding the same 10k stale tuples both ways.
void BM_MonolithicPerTupleExpiry(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::unordered_map<int64_t, std::vector<Tuple>> index;
    std::deque<std::pair<EventTime, int64_t>> arrival_order;
    for (EventTime ts = 0; ts < 10000; ++ts) {
      Tuple t = MakeTuple(kRelationS, static_cast<uint64_t>(ts + 1),
                          ts % 1000, ts);
      index[t.key].push_back(t);
      arrival_order.emplace_back(ts, t.key);
    }
    state.ResumeTiming();
    // Expire everything older than the watermark, tuple by tuple.
    EventTime watermark = 1 << 20;
    while (!arrival_order.empty() &&
           watermark - arrival_order.front().first > 100) {
      auto [ts, key] = arrival_order.front();
      arrival_order.pop_front();
      auto it = index.find(key);
      if (it == index.end()) continue;
      auto& bucket = it->second;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].ts == ts) {
          bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
      if (bucket.empty()) index.erase(it);
    }
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_MonolithicPerTupleExpiry);

void BM_ChainedIndexExpireOnly(benchmark::State& state) {
  // Cost of the Theorem-1 discard path itself.
  for (auto _ : state) {
    state.PauseTiming();
    ChainedIndexOptions options;
    options.kind = IndexKind::kHash;
    options.archive_period = 100;
    options.window = 100;
    ChainedIndex index(options);
    for (EventTime ts = 0; ts < 10000; ++ts) {
      index.Insert(MakeTuple(kRelationS, static_cast<uint64_t>(ts + 1),
                             ts % 1000, ts));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(index.Expire(1 << 20));
  }
}
BENCHMARK(BM_ChainedIndexExpireOnly);

}  // namespace
}  // namespace bistream

BENCHMARK_MAIN();
