// E13 — Mini-batch size ablation (BiStream's batching technique): larger
// router batches amortize the per-message framework overhead across
// tuples, raising sustainable throughput, while adding up to one
// punctuation interval of latency (batches force-flush at every round).
// Expected shape: capacity grows steeply then saturates once per-tuple
// work dominates; latency grows by at most ~one punctuation interval.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  uint32_t units = static_cast<uint32_t>(config.GetInt("total_units", 8));
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));

  PrintExperimentHeader(
      "E13", "router mini-batch size ablation (equi join, " +
                 std::to_string(units) + " units, punct 10 ms)");

  BenchReporter reporter("E13", config);
  TablePrinter table({"batch", "capacity_tps", "speedup", "p50", "p99",
                      "msgs/tuple"});
  double base_capacity = 0;
  for (int64_t batch : config.GetIntList("batches", {1, 4, 16, 64, 256})) {
    BicliqueOptions options;
    options.num_routers = RoutersFor(units);
    options.joiners_r = units / 2;
    options.joiners_s = units - units / 2;
    options.subgroups_r = options.joiners_r;
    options.subgroups_s = options.joiners_s;
    options.window = 2 * kEventSecond;
    options.archive_period = 250 * kEventMilli;
    options.batch_size = static_cast<uint32_t>(batch);
    options.cost = cost;
    ApplyTelemetryFlags(config, &options);
    ApplyBackendFlags(config, &options);

    if (options.backend == runtime::BackendKind::kParallel) {
      // Wall-clock mode: one measured run per batch size (no bisection);
      // "capacity" is the measured wall tuples/s of that run.
      RunReport report = RunBicliqueWorkload(
          options, MakeWorkload(config.GetDouble("probe_rate", 2000),
                                duration, key_domain, 83));
      double capacity = report.wall_throughput_tps;
      if (batch == 1) base_capacity = capacity;
      reporter.AddRun(
          {{"batch", static_cast<double>(batch)}, {"capacity_tps", capacity}},
          report);
      double msgs = static_cast<double>(report.engine.messages) /
                    static_cast<double>(report.engine.input_tuples);
      table.AddRow({TablePrinter::Int(batch), TablePrinter::Num(capacity, 0),
                    TablePrinter::Num(
                        base_capacity > 0 ? capacity / base_capacity : 0, 2),
                    TablePrinter::Millis(report.latency.P50()),
                    TablePrinter::Millis(report.latency.P99()),
                    TablePrinter::Num(msgs, 2)});
      continue;
    }

    double capacity = EstimateAndMeasureCapacity(
        [&](double rate) {
          return RunBicliqueWorkload(
              options, MakeWorkload(rate, duration, key_domain, 83));
        },
        config.GetDouble("probe_rate", 2000),
        static_cast<int>(config.GetInt("iters", 4)), 0.9);
    if (batch == 1) base_capacity = capacity;

    // Latency and traffic at a fixed comparable load (80% of the
    // *unbatched* capacity so every row carries the same offered rate).
    RunReport report = RunBicliqueWorkload(
        options,
        MakeWorkload(base_capacity * 0.8, duration * 4, key_domain, 83));
    reporter.AddRun({{"batch", static_cast<double>(batch)},
                     {"capacity_tps", capacity}},
                    report);
    double msgs = static_cast<double>(report.engine.messages) /
                  static_cast<double>(report.engine.input_tuples);
    table.AddRow({TablePrinter::Int(batch), TablePrinter::Num(capacity, 0),
                  TablePrinter::Num(
                      base_capacity > 0 ? capacity / base_capacity : 0, 2),
                  TablePrinter::Millis(report.latency.P50()),
                  TablePrinter::Millis(report.latency.P99()),
                  TablePrinter::Num(msgs, 2)});
  }
  table.Print();
  std::printf(
      "expected shape: capacity rises with batch size and saturates; "
      "latency stays within ~one punctuation interval of the unbatched "
      "run; msgs/tuple collapses toward 1/batch\n");
  reporter.Finish();
  return 0;
}
