// E8 — Elastic scaling timeline (the thesis restatement's Figures 20/21,
// compressed in time): a stepped input rate (300 → 400 → 200 → 300
// tuples/s) drives HPA-style autoscalers on both joiner sides, once on the
// CPU-utilization metric and once on the memory metric. Expected shape:
// replicas step up after each rate increase and back down after the drop;
// utilization/memory re-converges toward the target; results stay
// exactly-once throughout (no-migration scaling).
//
// `--backend=parallel` runs the same timeline on the multithreaded backend:
// scale-out spawns a live joiner worker thread mid-run and scale-in drains
// and retires one, while the autoscalers tick on the wall clock consuming
// the sampler's measured busy fractions / state bytes. Virtual times are
// compressed onto the wall clock (`--wall_compression`, default 100 virtual
// seconds per wall second). Wall busy fractions depend on the host machine,
// so the CPU timeline's shape is hardware-honest rather than modeled; the
// memory timeline tracks event-time window state and scales like the sim.

#include <memory>

#include "bench_util.h"
#include "ops/autoscaler.h"
#include "runtime/parallel/parallel_executor.h"
#include "sim/event_loop.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

void RunTimeline(ScaleMetric metric, const Config& config,
                 const CostModel& base_cost, BenchReporter* reporter) {
  // 10 virtual minutes, phases at 0 / 2 / 5 / 7 min (thesis: 60 min).
  SimTime minute = 60 * kSecond;
  auto schedule = RateSchedule::Make({{0, 150},
                                      {2 * minute, 200},
                                      {5 * minute, 100},
                                      {7 * minute, 150}})
                      .ValueOrDie();

  SyntheticWorkloadOptions workload;
  workload.key_domain = 100;
  workload.rate_r = schedule;
  workload.rate_s = schedule;
  workload.total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 180000));
  workload.seed = 61;

  BicliqueOptions options;
  options.num_routers = 1;
  options.joiners_r = 1;
  options.joiners_s = 1;
  options.window = 2 * minute / kMillisecond * kEventMilli;  // 2 min.
  options.archive_period = 10 * kEventSecond;
  options.punct_interval = 20 * kMillisecond;
  options.retire_grace_factor = 1.2;
  options.cost = base_cost;
  // Heavy per-candidate work so a single joiner saturates at ~150 t/s, as
  // in the thesis's single-vCPU pods.
  options.cost.probe_candidate_ns = static_cast<SimTime>(
      config.GetInt("cost_probe_ns", 50000));
  ApplyTelemetryFlags(config, &options);
  // One sample per control-loop tick is plenty at this time scale.
  options.telemetry.sample_period =
      static_cast<SimTime>(config.GetInt("sample_ms", 15000)) * kMillisecond;

  ApplyBackendFlags(config, &options);
  const bool parallel = options.backend == runtime::BackendKind::kParallel;
  const double compression =
      parallel ? static_cast<double>(config.GetInt("wall_compression", 100))
               : 1.0;

  AutoscalerOptions scaler;
  scaler.metric = metric;
  scaler.target_cpu = 0.80;
  scaler.target_memory_bytes = config.GetInt("target_mem_kb", 700) * 1024;
  scaler.min_replicas = 1;
  scaler.max_replicas = 3;
  // Under the parallel backend the control loop ticks on the wall clock, so
  // its cadences compress along with the paced injection (30 virtual
  // seconds -> 300 wall ms at the default compression). Same for the
  // telemetry sampler the CPU metric's EWMA busy fractions come from.
  scaler.interval =
      static_cast<SimTime>(30 * kSecond / compression);
  scaler.cooldown = static_cast<SimTime>(60 * kSecond / compression);
  if (parallel) {
    options.telemetry.sample_period = static_cast<SimTime>(
        static_cast<double>(options.telemetry.sample_period) / compression);
    // One wall round spans `compression` times more event time under the
    // paced drive; the expiry disorder bound dilates with it.
    options.event_time_dilation = compression;
  }

  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  CollectorSink sink(/*check=*/true);
  EventLoop loop;  // Sim backend only; idle under parallel.
  std::unique_ptr<runtime::ParallelExecutor> parallel_exec;
  std::unique_ptr<BicliqueEngine> engine_ptr;
  if (parallel) {
    runtime::ParallelExecutorOptions exec_options;
    exec_options.queue_capacity = options.queue_capacity;
    parallel_exec = std::make_unique<runtime::ParallelExecutor>(options.cost,
                                                                exec_options);
    engine_ptr = std::make_unique<BicliqueEngine>(parallel_exec.get(),
                                                  options, &sink);
  } else {
    engine_ptr = std::make_unique<BicliqueEngine>(&loop, options, &sink);
  }
  BicliqueEngine& engine = *engine_ptr;
  AutoscalerOptions r_side = scaler;
  r_side.side = kRelationR;
  AutoscalerOptions s_side = scaler;
  s_side.side = kRelationS;
  Autoscaler scaler_r(&engine, r_side);
  Autoscaler scaler_s(&engine, s_side);

  engine.Start();
  scaler_r.Start();
  scaler_s.Start();
  PacedDrive(&engine.executor(), &engine, stream, compression);
  scaler_r.Stop();
  scaler_s.Stop();
  engine.FlushAndStop();
  engine.executor().RunUntilIdle();

  const char* metric_name =
      metric == ScaleMetric::kCpu ? "cpu utilization" : "memory bytes";
  std::printf("\n-- timeline, metric = %s (R-side controller) --\n",
              metric_name);
  TablePrinter table({"t_min", "rate_tps", "metric", "replicas", "desired",
                      "action"});
  for (const AutoscalerSample& s : scaler_r.timeline()) {
    // Map wall sample times back onto the virtual timeline under parallel
    // (s.time is wall ns there; t_min stays comparable across backends).
    SimTime virtual_time =
        static_cast<SimTime>(static_cast<double>(s.time) * compression);
    double rate = workload.rate_r.RateAt(virtual_time) * 2;  // Total input.
    std::string value = metric == ScaleMetric::kCpu
                            ? TablePrinter::Num(s.metric_value * 100, 0) + "%"
                            : TablePrinter::Bytes(
                                  static_cast<int64_t>(s.metric_value));
    table.AddRow({TablePrinter::Num(SimTimeToSeconds(virtual_time) / 60, 1),
                  TablePrinter::Num(rate, 0), value,
                  TablePrinter::Int(static_cast<int64_t>(s.active_replicas)),
                  TablePrinter::Int(static_cast<int64_t>(s.desired_replicas)),
                  s.scaled ? "scale" : "-"});
  }
  table.Print();

  CheckReport check =
      sink.checker().Check(stream, options.predicate, options.window);
  std::printf("exactly-once during scaling: %s (%s)\n",
              check.Clean() ? "PASS" : "FAIL", check.ToString().c_str());

  RunReport report;
  report.engine = engine.Stats();
  report.results = sink.count();
  report.latency = sink.latency();
  report.check = check;
  report.checked = true;
  report.CaptureTelemetry(engine);
  if (parallel) MarkWallMeasured(&report);
  JsonValue params = JsonValue::Object();
  params.Set("metric", JsonValue::String(metric == ScaleMetric::kCpu
                                             ? "cpu"
                                             : "memory"));
  reporter->AddRun(std::move(params), report);
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E8", "dynamic scaling timelines under a stepped input rate "
            "(thesis Figs. 20/21 analogue, time compressed 6x)");
  BenchReporter reporter("E8", config);
  RunTimeline(ScaleMetric::kCpu, config, cost, &reporter);
  RunTimeline(ScaleMetric::kMemory, config, cost, &reporter);
  std::printf(
      "\nexpected shape: replicas follow the rate steps with the control "
      "loop's lag; metric re-converges to the target; zero result errors\n");
  reporter.Finish();
  return 0;
}
