// E3 — Memory footprint vs. window size: the join-biclique model stores
// each tuple exactly once, so total state ≈ rate × W × tuple size; the
// join-matrix replicates along its assignment axis (√p per tuple on a
// square grid). Expected shape: matrix/biclique peak-state ratio ≈ the
// grid axis length, constant across window sizes.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  uint32_t units = static_cast<uint32_t>(config.GetInt("total_units", 16));
  double rate = config.GetDouble("rate", 2000);
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));

  PrintExperimentHeader(
      "E3", "window state bytes (peak) vs window size W; " +
                std::to_string(units) + " units, " +
                std::to_string(static_cast<int>(rate)) + " tuples/s/rel");

  BenchReporter reporter("E3", config);
  TablePrinter table({"window_s", "biclique_peak", "matrix_peak", "ratio",
                      "biclique_stored", "matrix_stored"});
  for (int64_t window_s : config.GetIntList("windows_s", {1, 2, 5, 10})) {
    EventTime window = window_s * kEventSecond;
    // Run for 2.5 windows so the state reaches (and holds) steady state.
    SimTime duration = static_cast<SimTime>(window_s) * 5 * kSecond / 2;
    SyntheticWorkloadOptions workload =
        MakeWorkload(rate, duration, key_domain, 31);

    BicliqueOptions biclique;
    biclique.num_routers = RoutersFor(units);
    biclique.joiners_r = units / 2;
    biclique.joiners_s = units - units / 2;
    biclique.subgroups_r = biclique.joiners_r;
    biclique.subgroups_s = biclique.joiners_s;
    biclique.window = window;
    biclique.archive_period = window / 8;
    biclique.cost = cost;
    ApplyTelemetryFlags(config, &biclique);
    RunReport b = RunBicliqueWorkload(biclique, workload);

    MatrixOptions matrix = MatrixOptions::Square(units);
    matrix.num_routers = RoutersFor(units);
    matrix.window = window;
    matrix.archive_period = window / 8;
    matrix.cost = cost;
    RunReport m = RunMatrixWorkload(matrix, workload);

    JsonValue b_params = JsonValue::Object();
    b_params.Set("engine", JsonValue::String("biclique"));
    b_params.Set("window_s", JsonValue::Number(window_s));
    reporter.AddRun(std::move(b_params), b);
    JsonValue m_params = JsonValue::Object();
    m_params.Set("engine", JsonValue::String("matrix"));
    m_params.Set("window_s", JsonValue::Number(window_s));
    reporter.AddRun(std::move(m_params), m);

    table.AddRow({TablePrinter::Int(window_s),
                  TablePrinter::Bytes(b.engine.peak_state_bytes),
                  TablePrinter::Bytes(m.engine.peak_state_bytes),
                  TablePrinter::Num(
                      static_cast<double>(m.engine.peak_state_bytes) /
                          static_cast<double>(b.engine.peak_state_bytes),
                      2),
                  TablePrinter::Int(static_cast<int64_t>(b.engine.stored)),
                  TablePrinter::Int(static_cast<int64_t>(m.engine.stored))});
  }
  table.Print();
  std::printf(
      "expected shape: both grow linearly with W; matrix/biclique ratio "
      "stays ~= the grid axis length (no-replication claim)\n");
  reporter.Finish();
  return 0;
}
