// E5 — Punctuation interval trade-off: the order-consistent protocol's
// signal cadence controls how long tuples sit in joiner OrderBuffers.
// Expected shape: p50 latency ≈ interval/2 + fixed costs (grows linearly
// with the interval); punctuation message overhead shrinks ~1/interval;
// throughput capacity is essentially unaffected over the practical range.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  uint32_t units = static_cast<uint32_t>(config.GetInt("total_units", 8));
  double rate = config.GetDouble("rate", 4000);
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 2000)) * kMillisecond;

  PrintExperimentHeader(
      "E5", "punctuation-interval sweep (equi join, " +
                std::to_string(static_cast<int>(rate)) + " tuples/s/rel)");

  BenchReporter reporter("E5", config);
  TablePrinter table({"punct_ms", "p50", "p99", "punct_msgs", "punct_share",
                      "max_busy"});
  for (int64_t punct_ms :
       config.GetIntList("intervals_ms", {1, 2, 5, 10, 20, 50, 100})) {
    BicliqueOptions options;
    options.num_routers = 2;
    options.joiners_r = units / 2;
    options.joiners_s = units - units / 2;
    options.subgroups_r = options.joiners_r;
    options.subgroups_s = options.joiners_s;
    options.window = 2 * kEventSecond;
    options.archive_period = 250 * kEventMilli;
    options.punct_interval = static_cast<SimTime>(punct_ms) * kMillisecond;
    options.cost = cost;
    ApplyTelemetryFlags(config, &options);
    RunReport report = RunBicliqueWorkload(
        options,
        MakeWorkload(rate, duration,
                     static_cast<uint64_t>(config.GetInt("key_domain", 5000)),
                     43));

    uint64_t punct_msgs = 0;
    // Punctuations = rounds × routers × joiners; recover from message
    // accounting: total - data messages (1 input + 1 store + k joins each).
    // Simpler: derive from round count ≈ duration / interval.
    uint64_t rounds = duration / options.punct_interval + 1;
    punct_msgs = rounds * options.num_routers * units;
    double share = static_cast<double>(punct_msgs) /
                   static_cast<double>(report.engine.messages);
    table.AddRow({TablePrinter::Int(punct_ms),
                  TablePrinter::Millis(report.latency.P50()),
                  TablePrinter::Millis(report.latency.P99()),
                  TablePrinter::Int(static_cast<int64_t>(punct_msgs)),
                  TablePrinter::Num(share * 100, 1) + "%",
                  TablePrinter::Num(report.engine.max_busy_fraction, 2)});
    reporter.AddRun({{"punct_ms", static_cast<double>(punct_ms)}}, report);
  }
  table.Print();
  std::printf(
      "expected shape: latency grows ~linearly with the interval; overhead "
      "share decays ~1/interval; pick the knee (paper uses tens of ms)\n");
  reporter.Finish();
  return 0;
}
