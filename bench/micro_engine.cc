// M2 — Micro-benchmarks of the engine machinery: routing decisions, the
// ordering buffer's release cycle, punctuation handling, histogram
// recording, and Zipf sampling. These bound the control-plane overhead the
// simulator charges per message.

#include <benchmark/benchmark.h>

#include "core/order_buffer.h"
#include "core/routing.h"
#include "common/histogram.h"
#include "harness/runner.h"
#include "workload/zipf.h"

namespace bistream {
namespace {

void BM_RoutingDecision(benchmark::State& state) {
  TopologyManager topo(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  for (int i = 0; i < 16; ++i) {
    topo.AddUnit(kRelationR);
    topo.AddUnit(kRelationS);
  }
  auto view = topo.Snapshot();
  RoutingPolicy policy(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Rng rng(1);
  Tuple t;
  for (auto _ : state) {
    t.relation = static_cast<RelationId>(rng.Uniform(2));
    t.key = static_cast<int64_t>(rng.Uniform(100000));
    benchmark::DoNotOptimize(policy.Route(t, *view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingDecision)->Arg(1)->Arg(4)->Arg(16);

void BM_OrderBufferCycle(benchmark::State& state) {
  // One full round: buffer `batch` tuples from 2 routers, then release.
  const uint64_t batch = static_cast<uint64_t>(state.range(0));
  uint64_t round = 0;
  OrderBuffer buffer(2, 0);
  std::vector<Message> released;
  Tuple t;
  for (auto _ : state) {
    for (uint64_t i = 0; i < batch; ++i) {
      buffer.AddTuple(MakeTupleMessage(t, StreamKind::kStore,
                                       static_cast<uint32_t>(i % 2), i,
                                       round));
    }
    released.clear();
    buffer.AddPunctuation(MakePunctuation(0, batch, round), &released);
    buffer.AddPunctuation(MakePunctuation(1, batch, round), &released);
    benchmark::DoNotOptimize(released.size());
    ++round;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_OrderBufferCycle)->Arg(16)->Arg(256);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(2);
  for (auto _ : state) {
    histogram.Record(rng.Uniform(1'000'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram histogram;
  Rng rng(3);
  for (int i = 0; i < 1000000; ++i) histogram.Record(rng.Uniform(1 << 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.P99());
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

void BM_EngineRunTraced(benchmark::State& state) {
  // Full simulated run with the tuple tracer off (arg 0), sampling every
  // 32nd tuple (arg 32), or every tuple (arg 1). Wall-clock per run bounds
  // the real (host-side) overhead of tracing; the virtual-time results are
  // identical by construction.
  const uint64_t trace_every = static_cast<uint64_t>(state.range(0));
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.telemetry.trace_every = trace_every;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 500;
  workload.rate_r = RateSchedule::Constant(2000);
  workload.rate_s = RateSchedule::Constant(2000);
  workload.total_tuples = 8000;
  workload.seed = 29;

  uint64_t results = 0;
  for (auto _ : state) {
    RunReport report = RunBicliqueWorkload(options, workload);
    results = report.results;
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.total_tuples));
}
BENCHMARK(BM_EngineRunTraced)->Arg(0)->Arg(32)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TupleWireSize(benchmark::State& state) {
  Tuple t;
  t.key = 42;
  Message msg = MakeTupleMessage(t, StreamKind::kJoin, 0, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.WireBytes());
  }
}
BENCHMARK(BM_TupleWireSize);

}  // namespace
}  // namespace bistream

BENCHMARK_MAIN();
