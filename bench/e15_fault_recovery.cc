// E15 — Fault recovery: cost and completeness of round-aligned
// checkpoint/replay recovery. Part 1 sweeps the checkpoint period against a
// single mid-run crash: a shorter period writes more checkpoint bytes but
// shrinks the replayed backlog and the replacement's catch-up time. Part 2
// sweeps a Poisson crash rate at a fixed period: recovery must stay
// exactly-once as crashes (including crashes of replacements) pile up.
//
// `--backend=parallel` runs the same sweeps on the multithreaded backend: a
// crash is a real worker-thread kill (inbox wiped, in-flight sends dropped),
// detection is wall-clock heartbeat silence, and recovery respawns a live
// thread. Virtual plan/arrival times are compressed onto the wall clock
// (`--wall_compression`, default 10 virtual seconds per wall second), and
// detect/catchup are *measured* wall latencies, not modeled ones.

#include <algorithm>

#include "bench_util.h"
#include "ops/failure_detector.h"
#include "runtime/fault/fault.h"
#include "runtime/parallel/parallel_executor.h"
#include "sim/event_loop.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

struct RecoveryRun {
  EngineStats stats;
  CheckReport check;
  std::vector<InjectedFault> timeline;
  std::vector<DetectionEvent> detections;
  std::vector<RecoveryEvent> recoveries;
  RunReport report;
};

RecoveryRun Harvest(BicliqueEngine& engine, CollectorSink& sink,
                    const std::vector<TimedTuple>& stream,
                    const BicliqueOptions& options,
                    const FaultInjector& injector,
                    const FailureDetector& detector) {
  RecoveryRun run;
  run.stats = engine.Stats();
  run.check = sink.checker().Check(stream, options.predicate, options.window);
  run.timeline = injector.timeline();
  run.detections = detector.detections();
  run.recoveries = engine.recovery_events();
  run.report.engine = run.stats;
  run.report.results = sink.count();
  run.report.latency = sink.latency();
  run.report.check = run.check;
  run.report.checked = true;
  run.report.CaptureTelemetry(engine);
  return run;
}

RecoveryRun RunOnceSim(const BicliqueOptions& options,
                       const std::vector<TimedTuple>& stream,
                       const FaultPlan& plan) {
  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);
  FaultInjector injector(
      &loop, plan, [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
        return engine.InjectCrash(crash, draw);
      });
  FailureDetectorOptions detect;
  detect.check_interval = 20 * kMillisecond;
  detect.timeout = 60 * kMillisecond;
  detect.backoff = 100 * kMillisecond;
  FailureDetector detector(&engine, detect);

  injector.Start();
  detector.Start();
  engine.Start();
  PacedDrive(&engine.executor(), &engine, stream, /*compression=*/1.0);
  engine.FlushAndStop();
  loop.RunUntilIdle();
  return Harvest(engine, sink, stream, options, injector, detector);
}

RecoveryRun RunOnceParallel(const BicliqueOptions& options,
                            const std::vector<TimedTuple>& stream,
                            const FaultPlan& plan, double compression) {
  runtime::ParallelExecutorOptions exec_options;
  exec_options.queue_capacity = options.queue_capacity;
  runtime::ParallelExecutor exec(options.cost, exec_options);
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&exec, options, &sink);

  // Wall cadences: the punctuation heartbeat ticks every punct_interval of
  // wall time here, so the silence bound is a small multiple of it rather
  // than the sim sweep's virtual-time bound.
  FailureDetectorOptions detect;
  detect.check_interval = 10 * kMillisecond;
  detect.timeout = 40 * kMillisecond;
  detect.backoff = 50 * kMillisecond;

  // The crash schedule arms on the driver clock (wall nanoseconds),
  // compressed the same way the paced injection below is; the CrashFn then
  // runs on the driver's service point, where engine mutation is legal.
  //
  // Crash-at-shutdown is outside the recovery protocol's scope: once the
  // stop-flush lands, routers stop punctuating, so heartbeat silence can no
  // longer be measured and a replacement's activation round would never be
  // reached. The simulator's total event order makes late crash events
  // land on an already-drained cluster, but wall time gives no such
  // guarantee — so bound the schedule to leave every crash room for
  // detection and catch-up before the run winds down.
  FaultPlan wall_plan = plan;
  SimTime wall_span = static_cast<SimTime>(
      static_cast<double>(stream.empty() ? 0 : stream.back().arrival) /
      compression);
  SimTime margin =
      detect.timeout + detect.backoff + 3 * options.punct_interval;
  SimTime latest = wall_span > margin ? wall_span - margin : 0;
  for (FaultPlan::Crash& crash : wall_plan.crashes) {
    crash.at = std::min(
        static_cast<SimTime>(static_cast<double>(crash.at) / compression),
        latest);
  }
  wall_plan.horizon = std::min(
      static_cast<SimTime>(static_cast<double>(wall_plan.horizon) /
                           compression),
      latest);
  wall_plan.crash_rate_per_sec *= compression;
  FaultInjector injector(
      exec.clock(), wall_plan,
      [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
        return engine.InjectCrash(crash, draw);
      });
  FailureDetector detector(&engine, detect);

  injector.Start();
  detector.Start();
  engine.Start();
  PacedDrive(&exec, &engine, stream, compression);

  // Idle linger: wall time gives no total event order, so a crash landing
  // near the end of the paced injection may still be mid-detection or
  // mid-catch-up here — and the stop-flush would halt the punctuation
  // heartbeats detection needs and cap the rounds a replacement's
  // activation waits on. Idle rounds carry no data (no new results are
  // possible), so spin the driver's service point until every crash has a
  // caught-up recovery, bounded for pathological runs.
  SimTime settle_deadline = exec.clock()->now() + 2 * kSecond;
  for (;;) {
    exec.RunUntil(0);  // Service point: run due driver-clock timers.
    EngineStats settle = engine.Stats();
    bool settled = settle.crashes == settle.recoveries;
    if (settled) {
      for (const RecoveryEvent& event : engine.recovery_events()) {
        if (event.caught_up_at == 0) {
          settled = false;
          break;
        }
      }
    }
    if (settled || exec.clock()->now() >= settle_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  engine.FlushAndStop();
  exec.RunUntilIdle();

  RecoveryRun run = Harvest(engine, sink, stream, options, injector, detector);
  MarkWallMeasured(&run.report);
  return run;
}

RecoveryRun RunOnce(const BicliqueOptions& options,
                    const SyntheticWorkloadOptions& workload,
                    const FaultPlan& plan, double compression) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);
  if (options.backend == runtime::BackendKind::kParallel) {
    return RunOnceParallel(options, stream, plan, compression);
  }
  return RunOnceSim(options, stream, plan);
}

double WallCompression(const Config& config) {
  return static_cast<double>(config.GetInt("wall_compression", 10));
}

BicliqueOptions EngineOptions(uint64_t checkpoint_rounds,
                              const CostModel& cost, const Config& config) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  options.cost = cost;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_rounds = checkpoint_rounds;
  ApplyTelemetryFlags(config, &options);
  ApplyBackendFlags(config, &options);
  if (options.backend == runtime::BackendKind::kParallel) {
    // PacedDrive compresses virtual arrivals onto the wall clock: one wall
    // round spans `compression` times more event time, and the expiry
    // disorder bound must dilate with it (see EffectiveExpirySlack).
    options.event_time_dilation = WallCompression(config);
  }
  return options;
}

SyntheticWorkloadOptions Workload(uint64_t total_tuples) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = total_tuples;
  workload.seed = 151;
  return workload;
}

void SweepCheckpointPeriod(const Config& config, const CostModel& cost,
                           BenchReporter* reporter) {
  std::printf(
      "\n-- checkpoint period vs recovery cost (one crash at t = 2 s) --\n");
  TablePrinter table({"ckpt_rounds", "ckpts", "ckpt_bytes", "restored",
                      "replayed", "detect_ms", "catchup_ms", "suppressed",
                      "exact_once"});
  uint64_t total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 6000));
  for (uint64_t rounds : {4, 16, 64, 256}) {
    FaultPlan plan;
    plan.crashes.push_back({.at = 2 * kSecond, .unit = 1});
    RecoveryRun run = RunOnce(EngineOptions(rounds, cost, config),
                              Workload(total_tuples), plan,
                              WallCompression(config));
    reporter->AddRun({{"ckpt_rounds", static_cast<double>(rounds)}},
                     run.report);

    // Worst-case detection latency (crash -> declared failed) and recovery
    // wall time (declared failed -> replacement caught up), straight from
    // the engine's recovery metrics. Virtual ns under sim, measured wall ns
    // under --backend=parallel.
    double detect_ms =
        static_cast<double>(run.stats.detection_latency_max_ns) / 1e6;
    double catchup_ms =
        static_cast<double>(run.stats.recovery_wall_max_ns) / 1e6;
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(rounds)),
                  TablePrinter::Int(static_cast<int64_t>(run.stats.checkpoints)),
                  TablePrinter::Bytes(
                      static_cast<int64_t>(run.stats.checkpoint_bytes)),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.restored_tuples)),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.replayed_messages)),
                  TablePrinter::Num(detect_ms, 1),
                  TablePrinter::Num(catchup_ms, 1),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.suppressed_duplicates)),
                  run.check.Clean() ? "PASS" : "FAIL"});
  }
  table.Print();
}

void SweepCrashRate(const Config& config, const CostModel& cost,
                    BenchReporter* reporter) {
  std::printf(
      "\n-- Poisson crash rate vs completeness (ckpt every 16 rounds) --\n");
  TablePrinter table({"crashes_per_s", "crashes", "recoveries", "replayed",
                      "suppressed", "missing", "dups", "exact_once"});
  uint64_t total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 6000));
  for (double rate : {0.25, 0.5, 1.0}) {
    FaultPlan plan;
    plan.crash_rate_per_sec = rate;
    plan.horizon = 5 * kSecond;
    plan.seed = 0xFA17;
    RecoveryRun run = RunOnce(EngineOptions(16, cost, config),
                              Workload(total_tuples), plan,
                              WallCompression(config));
    reporter->AddRun({{"crash_rate", rate}}, run.report);
    table.AddRow(
        {TablePrinter::Num(rate, 2),
         TablePrinter::Int(static_cast<int64_t>(run.stats.crashes)),
         TablePrinter::Int(static_cast<int64_t>(run.stats.recoveries)),
         TablePrinter::Int(static_cast<int64_t>(run.stats.replayed_messages)),
         TablePrinter::Int(
             static_cast<int64_t>(run.stats.suppressed_duplicates)),
         TablePrinter::Int(static_cast<int64_t>(run.check.missing)),
         TablePrinter::Int(static_cast<int64_t>(run.check.duplicates)),
         run.check.Clean() ? "PASS" : "FAIL"});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E15", "joiner crash recovery: checkpoint period vs recovery time, "
             "and exactly-once completeness under a Poisson crash process");
  if (ParallelBackendRequested(config)) {
    std::printf(
        "backend=parallel: crashes kill live worker threads; detect/catchup "
        "are measured wall latencies (plan times compressed %ldx)\n",
        static_cast<long>(config.GetInt("wall_compression", 10)));
  }
  BenchReporter reporter("E15", config);
  SweepCheckpointPeriod(config, cost, &reporter);
  SweepCrashRate(config, cost, &reporter);
  std::printf(
      "\nexpected shape: coarser checkpoint periods write fewer bytes but "
      "replay a longer backlog (higher catch-up time and more suppressed "
      "duplicates); every configuration stays exactly-once (PASS)\n");
  reporter.Finish();
  return 0;
}
