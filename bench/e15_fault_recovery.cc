// E15 — Fault recovery: cost and completeness of round-aligned
// checkpoint/replay recovery. Part 1 sweeps the checkpoint period against a
// single mid-run crash: a shorter period writes more checkpoint bytes but
// shrinks the replayed backlog and the replacement's catch-up time. Part 2
// sweeps a Poisson crash rate at a fixed period: recovery must stay
// exactly-once as crashes (including crashes of replacements) pile up.

#include "bench_util.h"
#include "ops/failure_detector.h"
#include "sim/fault.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

struct RecoveryRun {
  EngineStats stats;
  CheckReport check;
  std::vector<InjectedFault> timeline;
  std::vector<DetectionEvent> detections;
  std::vector<RecoveryEvent> recoveries;
  RunReport report;
};

RecoveryRun RunOnce(const BicliqueOptions& options,
                    const SyntheticWorkloadOptions& workload,
                    const FaultPlan& plan) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);
  FaultInjector injector(
      &loop, plan, [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
        return engine.InjectCrash(crash, draw);
      });
  FailureDetectorOptions detect;
  detect.check_interval = 20 * kMillisecond;
  detect.timeout = 60 * kMillisecond;
  detect.backoff = 100 * kMillisecond;
  FailureDetector detector(&engine, detect);

  injector.Start();
  detector.Start();
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();

  RecoveryRun run;
  run.stats = engine.Stats();
  run.check = sink.checker().Check(stream, options.predicate, options.window);
  run.timeline = injector.timeline();
  run.detections = detector.detections();
  run.recoveries = engine.recovery_events();
  run.report.engine = run.stats;
  run.report.results = sink.count();
  run.report.latency = sink.latency();
  run.report.check = run.check;
  run.report.checked = true;
  run.report.CaptureTelemetry(engine);
  return run;
}

BicliqueOptions EngineOptions(uint64_t checkpoint_rounds,
                              const CostModel& cost, const Config& config) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  options.cost = cost;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_rounds = checkpoint_rounds;
  ApplyTelemetryFlags(config, &options);
  return options;
}

SyntheticWorkloadOptions Workload(uint64_t total_tuples) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = total_tuples;
  workload.seed = 151;
  return workload;
}

void SweepCheckpointPeriod(const Config& config, const CostModel& cost,
                           BenchReporter* reporter) {
  std::printf(
      "\n-- checkpoint period vs recovery cost (one crash at t = 2 s) --\n");
  TablePrinter table({"ckpt_rounds", "ckpts", "ckpt_bytes", "restored",
                      "replayed", "detect_ms", "catchup_ms", "suppressed",
                      "exact_once"});
  uint64_t total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 6000));
  for (uint64_t rounds : {4, 16, 64, 256}) {
    FaultPlan plan;
    plan.crashes.push_back({.at = 2 * kSecond, .unit = 1});
    RecoveryRun run = RunOnce(EngineOptions(rounds, cost, config),
                              Workload(total_tuples), plan);
    reporter->AddRun({{"ckpt_rounds", static_cast<double>(rounds)}},
                     run.report);

    double detect_ms = 0;
    double catchup_ms = 0;
    if (!run.detections.empty() && !run.recoveries.empty()) {
      detect_ms =
          static_cast<double>(run.detections[0].time - run.timeline[0].at) /
          1e6;
      catchup_ms = static_cast<double>(run.recoveries[0].caught_up_at -
                                       run.recoveries[0].detected_at) /
                   1e6;
    }
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(rounds)),
                  TablePrinter::Int(static_cast<int64_t>(run.stats.checkpoints)),
                  TablePrinter::Bytes(
                      static_cast<int64_t>(run.stats.checkpoint_bytes)),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.restored_tuples)),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.replayed_messages)),
                  TablePrinter::Num(detect_ms, 1),
                  TablePrinter::Num(catchup_ms, 1),
                  TablePrinter::Int(
                      static_cast<int64_t>(run.stats.suppressed_duplicates)),
                  run.check.Clean() ? "PASS" : "FAIL"});
  }
  table.Print();
}

void SweepCrashRate(const Config& config, const CostModel& cost,
                    BenchReporter* reporter) {
  std::printf(
      "\n-- Poisson crash rate vs completeness (ckpt every 16 rounds) --\n");
  TablePrinter table({"crashes_per_s", "crashes", "recoveries", "replayed",
                      "suppressed", "missing", "dups", "exact_once"});
  uint64_t total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 6000));
  for (double rate : {0.25, 0.5, 1.0}) {
    FaultPlan plan;
    plan.crash_rate_per_sec = rate;
    plan.horizon = 5 * kSecond;
    plan.seed = 0xFA17;
    RecoveryRun run = RunOnce(EngineOptions(16, cost, config),
                              Workload(total_tuples), plan);
    reporter->AddRun({{"crash_rate", rate}}, run.report);
    table.AddRow(
        {TablePrinter::Num(rate, 2),
         TablePrinter::Int(static_cast<int64_t>(run.stats.crashes)),
         TablePrinter::Int(static_cast<int64_t>(run.stats.recoveries)),
         TablePrinter::Int(static_cast<int64_t>(run.stats.replayed_messages)),
         TablePrinter::Int(
             static_cast<int64_t>(run.stats.suppressed_duplicates)),
         TablePrinter::Int(static_cast<int64_t>(run.check.missing)),
         TablePrinter::Int(static_cast<int64_t>(run.check.duplicates)),
         run.check.Clean() ? "PASS" : "FAIL"});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E15", "joiner crash recovery: checkpoint period vs recovery time, "
             "and exactly-once completeness under a Poisson crash process");
  BenchReporter reporter("E15", config);
  SweepCheckpointPeriod(config, cost, &reporter);
  SweepCrashRate(config, cost, &reporter);
  std::printf(
      "\nexpected shape: coarser checkpoint periods write fewer bytes but "
      "replay a longer backlog (higher catch-up time and more suppressed "
      "duplicates); every configuration stays exactly-once (PASS)\n");
  reporter.Finish();
  return 0;
}
