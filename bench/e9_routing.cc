// E9 — Routing strategy vs. predicate selectivity: per-tuple message and
// byte cost, probe work, and bottleneck utilization for the strategy
// spectrum, on equi and band predicates. Content-sensitive routing only
// applies to equi joins (hash partitioning needs key equality); band joins
// must broadcast. Expected shape: for equi, hash routing cuts messages per
// tuple from 1 + m to 2 with identical results; broadcast's probe work is
// spread thin but its traffic dominates.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

void RunRow(TablePrinter* table, BenchReporter* reporter,
            const std::string& label, const JoinPredicate& predicate,
            uint32_t subgroups, const Config& config, const CostModel& cost) {
  uint32_t per_side = static_cast<uint32_t>(config.GetInt("per_side", 8));
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = per_side;
  options.joiners_s = per_side;
  options.subgroups_r = subgroups;
  options.subgroups_s = subgroups;
  options.predicate = predicate;
  options.window = 1 * kEventSecond;
  options.archive_period = 125 * kEventMilli;
  options.cost = cost;
  ApplyTelemetryFlags(config, &options);

  RunReport report = RunBicliqueWorkload(
      options,
      MakeWorkload(config.GetDouble("rate", 3000),
                   static_cast<SimTime>(config.GetInt("duration_ms", 1500)) *
                       kMillisecond,
                   static_cast<uint64_t>(config.GetInt("key_domain", 5000)),
                   59));
  JsonValue params = JsonValue::Object();
  params.Set("config", JsonValue::String(label));
  params.Set("subgroups", JsonValue::Number(static_cast<uint64_t>(subgroups)));
  reporter->AddRun(std::move(params), report);
  double msgs = static_cast<double>(report.engine.messages) /
                static_cast<double>(report.engine.input_tuples);
  double bytes = static_cast<double>(report.engine.bytes) /
                 static_cast<double>(report.engine.input_tuples);
  double cand = report.engine.probes > 0
                    ? static_cast<double>(report.engine.probe_candidates) /
                          static_cast<double>(report.engine.probes)
                    : 0;
  table->AddRow({label, TablePrinter::Num(msgs, 1),
                 TablePrinter::Num(bytes, 0), TablePrinter::Num(cand, 2),
                 TablePrinter::Num(report.engine.max_busy_fraction, 2),
                 TablePrinter::Int(static_cast<int64_t>(report.results))});
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);
  uint32_t per_side = static_cast<uint32_t>(config.GetInt("per_side", 8));

  PrintExperimentHeader(
      "E9", "routing strategy vs predicate: per-tuple traffic and probe "
            "work (" + std::to_string(per_side) + " units/side)");

  BenchReporter reporter("E9", config);
  TablePrinter table({"config", "msgs/tuple", "bytes/tuple", "cand/probe",
                      "max_busy", "results"});
  RunRow(&table, &reporter, "equi + hash (d=n)", JoinPredicate::Equi(),
         per_side, config, cost);
  RunRow(&table, &reporter, "equi + subgroup (d=n/4)", JoinPredicate::Equi(),
         std::max(1u, per_side / 4), config, cost);
  RunRow(&table, &reporter, "equi + broadcast (d=1)", JoinPredicate::Equi(),
         1, config, cost);
  RunRow(&table, &reporter, "band + broadcast (d=1)", JoinPredicate::Band(2),
         1, config, cost);
  table.Print();
  std::printf(
      "note: band + hash is omitted by design — content-sensitive routing "
      "requires an equality predicate (the engine rejects it)\n"
      "expected shape: equi rows produce identical result counts; "
      "msgs/tuple ~ 3 for hash vs ~ 2 + n for broadcast\n");
  reporter.Finish();
  return 0;
}
