// E7 — Skew resilience of the routing strategies. Under Zipf-skewed keys,
// pure hash partitioning (d = n) sends every hot-key tuple to one unit;
// ContHash with subgroups (1 < d < n) spreads a hot key's *storage* over a
// whole subgroup while keeping probes narrow; full broadcast (d = 1) is
// perfectly balanced but pays maximum communication. Expected shape: the
// max/mean joiner-utilization imbalance of pure hash explodes with theta;
// subgrouping holds it near 1 at a modest messaging premium.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

struct StrategyResult {
  double imbalance = 0;  // max joiner busy / mean joiner busy.
  double max_busy = 0;
  double msgs_per_tuple = 0;
};

StrategyResult RunStrategy(uint32_t subgroups, double theta,
                           const Config& config, const CostModel& cost,
                           BenchReporter* reporter) {
  uint32_t per_side = static_cast<uint32_t>(config.GetInt("per_side", 8));
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = per_side;
  options.joiners_s = per_side;
  options.subgroups_r = subgroups;
  options.subgroups_s = subgroups;
  options.window = 1 * kEventSecond;
  options.archive_period = 125 * kEventMilli;
  options.cost = cost;
  ApplyTelemetryFlags(config, &options);

  SyntheticWorkloadOptions workload = MakeWorkload(
      config.GetDouble("rate", 4000),
      static_cast<SimTime>(config.GetInt("duration_ms", 2000)) * kMillisecond,
      static_cast<uint64_t>(config.GetInt("key_domain", 1000)), 53);
  workload.zipf_theta_r = theta;
  workload.zipf_theta_s = theta;

  RunReport report = RunBicliqueWorkload(options, workload);
  reporter->AddRun({{"subgroups", static_cast<double>(subgroups)},
                    {"theta", theta}},
                   report);
  StrategyResult result;
  result.max_busy = report.engine.max_busy_fraction;
  result.imbalance = report.engine.mean_joiner_busy_fraction > 0
                         ? report.engine.max_joiner_busy_fraction /
                               report.engine.mean_joiner_busy_fraction
                         : 0;
  result.msgs_per_tuple = static_cast<double>(report.engine.messages) /
                          static_cast<double>(report.engine.input_tuples);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  uint32_t per_side = static_cast<uint32_t>(config.GetInt("per_side", 8));
  PrintExperimentHeader(
      "E7", "skew resilience: joiner-load imbalance (max/mean busy) vs "
            "Zipf theta, per routing strategy");

  BenchReporter reporter("E7", config);
  TablePrinter table({"theta", "hash(d=n)", "subgrp(d=n/4)", "bcast(d=1)",
                      "hash_msgs/t", "subgrp_msgs/t", "bcast_msgs/t"});
  for (double theta : {0.0, 0.4, 0.8, 1.0, 1.2}) {
    StrategyResult hash =
        RunStrategy(per_side, theta, config, cost, &reporter);
    StrategyResult subgroup = RunStrategy(std::max(1u, per_side / 4), theta,
                                          config, cost, &reporter);
    StrategyResult broadcast = RunStrategy(1, theta, config, cost, &reporter);
    table.AddRow({TablePrinter::Num(theta, 1),
                  TablePrinter::Num(hash.imbalance, 2),
                  TablePrinter::Num(subgroup.imbalance, 2),
                  TablePrinter::Num(broadcast.imbalance, 2),
                  TablePrinter::Num(hash.msgs_per_tuple, 1),
                  TablePrinter::Num(subgroup.msgs_per_tuple, 1),
                  TablePrinter::Num(broadcast.msgs_per_tuple, 1)});
  }
  table.Print();
  std::printf(
      "expected shape: hash imbalance grows with theta; subgrouping stays "
      "near broadcast's ~1.0 at a fraction of broadcast's messages\n");
  reporter.Finish();
  return 0;
}
