// E1 — Throughput scalability, equi join (paper's headline comparison):
// BiStream (join-biclique, ContHash) vs. join-matrix, sweeping the number
// of processing units p. Expected shape: biclique sustains a higher rate
// and scales ~linearly in p (2 messages/tuple under hash routing), while
// the matrix pays √p-fold replication per tuple and scales ~√p.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

double BicliqueCapacity(uint32_t units, const Config& config,
                        const CostModel& cost, BenchReporter* reporter) {
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));
  EventTime window =
      config.GetInt("window_ms", 2000) * kEventMilli;

  BicliqueOptions options;
  options.num_routers = RoutersFor(units);
  options.joiners_r = units / 2;
  options.joiners_s = units - units / 2;
  // Pure hash partitioning: the content-sensitive strategy at its cheapest.
  options.subgroups_r = options.joiners_r;
  options.subgroups_s = options.joiners_s;
  options.predicate = JoinPredicate::Equi();
  options.window = window;
  options.archive_period = window / 8;
  options.cost = cost;
  ApplyTelemetryFlags(config, &options);
  ApplyBackendFlags(config, &options);

  if (options.backend == runtime::BackendKind::kParallel) {
    // Wall-clock mode: there is no simulated load model to bisect against,
    // so run the offered stream once (firehose-injected into the bounded
    // inboxes) and report the measured wall tuples/s.
    double rate = config.GetDouble("probe_rate", 2000);
    RunReport report = RunBicliqueWorkload(
        options, MakeWorkload(rate, duration, key_domain, 17));
    JsonValue params = JsonValue::Object();
    params.Set("engine", JsonValue::String("biclique"));
    params.Set("units", JsonValue::Number(static_cast<uint64_t>(units)));
    params.Set("rate_tps", JsonValue::Number(rate));
    reporter->AddRun(std::move(params), report);
    return report.wall_throughput_tps;
  }

  double capacity = EstimateAndMeasureCapacity(
      [&](double rate) {
        return RunBicliqueWorkload(
            options, MakeWorkload(rate, duration, key_domain, 17));
      },
      config.GetDouble("probe_rate", 2000),
      static_cast<int>(config.GetInt("iters", 4)), 0.9);

  // One recorded validation run at the measured capacity.
  RunReport at_cap = RunBicliqueWorkload(
      options, MakeWorkload(capacity, duration, key_domain, 17));
  JsonValue params = JsonValue::Object();
  params.Set("engine", JsonValue::String("biclique"));
  params.Set("units", JsonValue::Number(static_cast<uint64_t>(units)));
  params.Set("rate_tps", JsonValue::Number(capacity));
  reporter->AddRun(std::move(params), at_cap);
  return capacity;
}

double MatrixCapacity(uint32_t units, const Config& config,
                      const CostModel& cost, BenchReporter* reporter) {
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));
  EventTime window =
      config.GetInt("window_ms", 2000) * kEventMilli;

  MatrixOptions options = MatrixOptions::Square(units);
  options.num_routers = RoutersFor(units);
  options.predicate = JoinPredicate::Equi();
  options.window = window;
  options.archive_period = window / 8;
  options.cost = cost;

  double capacity = EstimateAndMeasureCapacity(
      [&](double rate) {
        return RunMatrixWorkload(
            options, MakeWorkload(rate, duration, key_domain, 17));
      },
      config.GetDouble("probe_rate", 2000),
      static_cast<int>(config.GetInt("iters", 4)), 0.9);

  RunReport at_cap = RunMatrixWorkload(
      options, MakeWorkload(capacity, duration, key_domain, 17));
  JsonValue params = JsonValue::Object();
  params.Set("engine", JsonValue::String("matrix"));
  params.Set("units", JsonValue::Number(static_cast<uint64_t>(units)));
  params.Set("rate_tps", JsonValue::Number(capacity));
  reporter->AddRun(std::move(params), at_cap);
  return capacity;
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E1", "equi-join throughput scalability: biclique (ContHash) vs "
            "join-matrix, sustainable tuples/s per relation");

  BenchReporter reporter("E1", config);
  if (ParallelBackendRequested(config)) {
    // Real-hardware mode: biclique only (the matrix baseline is sim-only);
    // the column is measured wall-clock throughput, not simulated capacity.
    TablePrinter table({"units", "biclique_wall_tps"});
    for (int64_t units : config.GetIntList("units", {4, 8, 16, 32})) {
      double wall_tps = BicliqueCapacity(static_cast<uint32_t>(units), config,
                                         cost, &reporter);
      table.AddRow({TablePrinter::Int(units), TablePrinter::Num(wall_tps, 0)});
    }
    table.Print();
    std::printf(
        "parallel backend: measured tuples/s on worker threads; matrix "
        "baseline skipped (sim-only)\n");
    reporter.Finish();
    return 0;
  }
  TablePrinter table({"units", "biclique_tps", "matrix_tps", "speedup"});
  for (int64_t units : config.GetIntList("units", {4, 8, 16, 32})) {
    double biclique = BicliqueCapacity(static_cast<uint32_t>(units), config,
                                       cost, &reporter);
    double matrix =
        MatrixCapacity(static_cast<uint32_t>(units), config, cost, &reporter);
    table.AddRow({TablePrinter::Int(units), TablePrinter::Num(biclique, 0),
                  TablePrinter::Num(matrix, 0),
                  TablePrinter::Num(matrix > 0 ? biclique / matrix : 0, 2)});
  }
  table.Print();
  std::printf(
      "expected shape: biclique > matrix at every p; biclique grows ~p, "
      "matrix ~sqrt(p)\n");
  reporter.Finish();
  return 0;
}
