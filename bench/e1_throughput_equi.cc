// E1 — Throughput scalability, equi join (paper's headline comparison):
// BiStream (join-biclique, ContHash) vs. join-matrix, sweeping the number
// of processing units p. Expected shape: biclique sustains a higher rate
// and scales ~linearly in p (2 messages/tuple under hash routing), while
// the matrix pays √p-fold replication per tuple and scales ~√p.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

double BicliqueCapacity(uint32_t units, const Config& config,
                        const CostModel& cost) {
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));
  EventTime window =
      config.GetInt("window_ms", 2000) * kEventMilli;

  BicliqueOptions options;
  options.num_routers = RoutersFor(units);
  options.joiners_r = units / 2;
  options.joiners_s = units - units / 2;
  // Pure hash partitioning: the content-sensitive strategy at its cheapest.
  options.subgroups_r = options.joiners_r;
  options.subgroups_s = options.joiners_s;
  options.predicate = JoinPredicate::Equi();
  options.window = window;
  options.archive_period = window / 8;
  options.cost = cost;

  return EstimateAndMeasureCapacity(
      [&](double rate) {
        return RunBicliqueWorkload(
            options, MakeWorkload(rate, duration, key_domain, 17));
      },
      config.GetDouble("probe_rate", 2000),
      static_cast<int>(config.GetInt("iters", 4)), 0.9);
}

double MatrixCapacity(uint32_t units, const Config& config,
                      const CostModel& cost) {
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));
  EventTime window =
      config.GetInt("window_ms", 2000) * kEventMilli;

  MatrixOptions options = MatrixOptions::Square(units);
  options.num_routers = RoutersFor(units);
  options.predicate = JoinPredicate::Equi();
  options.window = window;
  options.archive_period = window / 8;
  options.cost = cost;

  return EstimateAndMeasureCapacity(
      [&](double rate) {
        return RunMatrixWorkload(
            options, MakeWorkload(rate, duration, key_domain, 17));
      },
      config.GetDouble("probe_rate", 2000),
      static_cast<int>(config.GetInt("iters", 4)), 0.9);
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E1", "equi-join throughput scalability: biclique (ContHash) vs "
            "join-matrix, sustainable tuples/s per relation");

  TablePrinter table({"units", "biclique_tps", "matrix_tps", "speedup"});
  for (int64_t units : config.GetIntList("units", {4, 8, 16, 32})) {
    double biclique = BicliqueCapacity(static_cast<uint32_t>(units), config,
                                       cost);
    double matrix =
        MatrixCapacity(static_cast<uint32_t>(units), config, cost);
    table.AddRow({TablePrinter::Int(units), TablePrinter::Num(biclique, 0),
                  TablePrinter::Num(matrix, 0),
                  TablePrinter::Num(matrix > 0 ? biclique / matrix : 0, 2)});
  }
  table.Print();
  std::printf(
      "expected shape: biclique > matrix at every p; biclique grows ~p, "
      "matrix ~sqrt(p)\n");
  return 0;
}
