// E10 — Multi-way (3-way) join scaling: the cascaded join-biclique
// composition R ⋈ S ⋈ T, sweeping per-stage cluster size. Expected shape:
// bottleneck utilization falls as units are added (the cascade scales like
// two independent biclique stages); triple counts are identical across
// cluster sizes (correctness is size-independent).

#include "bench_util.h"
#include "core/multiway.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  MultiWorkloadOptions workload;
  workload.num_relations = 3;
  workload.key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 200));
  workload.rate_per_relation = config.GetDouble("rate", 1500);
  workload.total_tuples =
      static_cast<uint64_t>(config.GetInt("total_tuples", 15000));
  workload.seed = 67;

  PrintExperimentHeader(
      "E10", "3-way equi join via cascaded bicliques, sweeping per-side "
             "units per stage");

  BenchReporter reporter("E10", config);
  TablePrinter table({"units/side", "pairs(RS)", "triples", "stage1_busy",
                      "stage2_busy", "p50_latency"});
  for (int64_t per_side : config.GetIntList("units", {1, 2, 4, 8})) {
    MultiSource source(workload);
    EventLoop loop;
    TripleCollector collector;

    ThreeWayOptions options;
    for (BicliqueOptions* stage : {&options.stage1, &options.stage2}) {
      stage->num_routers = 2;
      stage->joiners_r = static_cast<uint32_t>(per_side);
      stage->joiners_s = static_cast<uint32_t>(per_side);
      stage->subgroups_r = static_cast<uint32_t>(per_side);
      stage->subgroups_s = static_cast<uint32_t>(per_side);
      stage->window = 1 * kEventSecond;
      stage->archive_period = 125 * kEventMilli;
      stage->cost = cost;
      ApplyTelemetryFlags(config, stage);
    }
    ThreeWayCascade cascade(&loop, options, &collector);
    cascade.RunToCompletion(&source);

    // One recorded run per stage: each stage is a full biclique engine
    // with its own registry, series, and trace spans.
    for (int stage_idx : {1, 2}) {
      BicliqueEngine* stage = stage_idx == 1 ? cascade.stage1_engine()
                                             : cascade.stage2_engine();
      RunReport report;
      report.engine = stage->Stats();
      report.results =
          stage_idx == 1 ? cascade.intermediate_count() : collector.count();
      report.latency = collector.latency();
      report.CaptureTelemetry(*stage);
      reporter.AddRun({{"units_per_side", static_cast<double>(per_side)},
                       {"stage", static_cast<double>(stage_idx)}},
                      report);
    }

    table.AddRow(
        {TablePrinter::Int(per_side),
         TablePrinter::Int(static_cast<int64_t>(cascade.intermediate_count())),
         TablePrinter::Int(static_cast<int64_t>(collector.count())),
         TablePrinter::Num(cascade.Stage1Stats().max_busy_fraction, 2),
         TablePrinter::Num(cascade.Stage2Stats().max_busy_fraction, 2),
         TablePrinter::Millis(collector.latency().P50())});
  }
  table.Print();
  std::printf(
      "expected shape: pair/triple counts constant across sizes; busy "
      "fractions fall as units are added\n");
  reporter.Finish();
  return 0;
}
