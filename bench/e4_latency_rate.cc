// E4 — Result latency vs. offered rate: end-to-end latency (tuple arrival
// at the system edge to result emission) as the input rate approaches the
// cluster's capacity. Expected shape: flat at low load (dominated by the
// punctuation round + network latency floor), then a queueing knee.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  uint32_t units = static_cast<uint32_t>(config.GetInt("total_units", 16));
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 2000)) * kMillisecond;

  BicliqueOptions options;
  options.num_routers = RoutersFor(units);
  options.joiners_r = units / 2;
  options.joiners_s = units - units / 2;
  options.subgroups_r = options.joiners_r;
  options.subgroups_s = options.joiners_s;
  options.window = config.GetInt("window_ms", 2000) * kEventMilli;
  options.archive_period = options.window / 8;
  options.punct_interval =
      static_cast<SimTime>(config.GetInt("punct_ms", 10)) * kMillisecond;
  options.cost = cost;
  ApplyTelemetryFlags(config, &options);
  ApplyBackendFlags(config, &options);
  bool parallel = options.backend == runtime::BackendKind::kParallel;

  PrintExperimentHeader(
      "E4", "result latency vs offered rate (equi join, " +
                std::to_string(units) + " units, punct " +
                std::to_string(options.punct_interval / kMillisecond) +
                " ms)");

  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 10000));
  // Find the capacity once, then sweep the load factor toward (and past) it.
  // Under the parallel backend there is no simulated load model to bisect
  // against (injection is firehose-paced by the bounded inboxes), so the
  // sweep pivots around --probe_rate and latencies are wall-clock.
  double capacity;
  if (parallel) {
    capacity = config.GetDouble("probe_rate", 2000);
    std::printf(
        "parallel backend: sweeping workload sizes around --probe_rate=%.0f "
        "(no capacity bisection; latency measured on the wall clock)\n",
        capacity);
  } else {
    capacity = EstimateAndMeasureCapacity(
        [&](double rate) {
          return RunBicliqueWorkload(
              options, MakeWorkload(rate, duration / 2, key_domain, 41));
        },
        2000, 4, 0.9);
    std::printf("measured capacity: ~%.0f tuples/s per relation\n", capacity);
  }

  BenchReporter reporter("E4", config);
  reporter.Set("capacity_tps", JsonValue::Number(capacity));

  TablePrinter table({"load", "rate_tps", "p50", "p95", "p99", "max_busy",
                      "queue_ms", "order_ms", "probe_ms", "results"});
  for (double load : {0.2, 0.5, 0.8, 1.0, 1.2, 1.5}) {
    double rate = capacity * load;
    RunReport report = RunBicliqueWorkload(
        options, MakeWorkload(rate, duration, key_domain, 41));
    // The traced-span decomposition of end-to-end latency: network/queueing
    // delay to the probe joiner, ordering-buffer wait, probe work.
    const LatencyBreakdown& b = report.breakdown;
    table.AddRow({TablePrinter::Num(load, 2),
                  TablePrinter::Num(rate, 0),
                  TablePrinter::Millis(report.latency.P50()),
                  TablePrinter::Millis(report.latency.P95()),
                  TablePrinter::Millis(report.latency.P99()),
                  TablePrinter::Num(report.engine.max_busy_fraction, 2),
                  TablePrinter::Num(b.mean_queue_ns / 1e6, 2),
                  TablePrinter::Num(b.mean_order_ns / 1e6, 2),
                  TablePrinter::Num(b.mean_probe_ns / 1e6, 3),
                  TablePrinter::Int(static_cast<int64_t>(report.results))});
    reporter.AddRun({{"load", load}, {"rate_tps", rate}}, report);
  }
  table.Print();
  std::printf(
      "expected shape: latency floor ~= punctuation interval + network "
      "RTT; sharp rise once max_busy approaches 1. The breakdown columns "
      "localize it: the knee is queueing delay, the floor is ordering "
      "wait (~punct/2), probe work stays microscopic\n");
  reporter.Finish();
  return 0;
}
