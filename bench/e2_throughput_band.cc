// E2 — Throughput scalability, band (non-equi) join: BiStream with
// content-insensitive ContRand routing vs. join-matrix. Both must broadcast
// (no key partitioning is possible), so the gap narrows relative to E1;
// biclique broadcasts each tuple to p/2 units, the matrix to √p — the
// communication trade-off Section 2.4.1 of the restatement derives. The
// matrix's advantage is bounded, though: its √p-replicated windows make
// every probe examine √p-fold more state in aggregate.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

struct SweepPoint {
  double biclique_tps = 0;
  double matrix_tps = 0;
  int64_t biclique_state = 0;
  int64_t matrix_state = 0;
};

SweepPoint MeasurePoint(uint32_t units, const Config& config,
                        const CostModel& cost, BenchReporter* reporter) {
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 300)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 20000));
  EventTime window = config.GetInt("window_ms", 1000) * kEventMilli;
  int64_t band = config.GetInt("band_width", 200);

  double probe_rate = config.GetDouble("probe_rate", 1500);
  int iters = static_cast<int>(config.GetInt("iters", 4));

  SweepPoint point;
  {
    BicliqueOptions options;
    options.num_routers = RoutersFor(units);
    options.joiners_r = units / 2;
    options.joiners_s = units - units / 2;
    options.subgroups_r = 1;  // ContRand: band joins cannot hash-partition.
    options.subgroups_s = 1;
    options.predicate = JoinPredicate::Band(band);
    options.window = window;
    options.archive_period = window / 8;
    options.cost = cost;
    ApplyTelemetryFlags(config, &options);
    point.biclique_tps = EstimateAndMeasureCapacity(
        [&](double rate) {
          return RunBicliqueWorkload(
              options, MakeWorkload(rate, duration, key_domain, 23));
        },
        probe_rate, iters, 0.9);
    RunReport at_cap = RunBicliqueWorkload(
        options,
        MakeWorkload(point.biclique_tps, duration, key_domain, 23));
    point.biclique_state = at_cap.engine.peak_state_bytes;
    JsonValue params = JsonValue::Object();
    params.Set("engine", JsonValue::String("biclique"));
    params.Set("units", JsonValue::Number(static_cast<uint64_t>(units)));
    params.Set("rate_tps", JsonValue::Number(point.biclique_tps));
    reporter->AddRun(std::move(params), at_cap);
  }
  {
    MatrixOptions options = MatrixOptions::Square(units);
    options.num_routers = RoutersFor(units);
    options.predicate = JoinPredicate::Band(band);
    options.window = window;
    options.archive_period = window / 8;
    options.cost = cost;
    point.matrix_tps = EstimateAndMeasureCapacity(
        [&](double rate) {
          return RunMatrixWorkload(
              options, MakeWorkload(rate, duration, key_domain, 23));
        },
        probe_rate, iters, 0.9);
    RunReport at_cap = RunMatrixWorkload(
        options, MakeWorkload(point.matrix_tps, duration, key_domain, 23));
    point.matrix_state = at_cap.engine.peak_state_bytes;
    JsonValue params = JsonValue::Object();
    params.Set("engine", JsonValue::String("matrix"));
    params.Set("units", JsonValue::Number(static_cast<uint64_t>(units)));
    params.Set("rate_tps", JsonValue::Number(point.matrix_tps));
    reporter->AddRun(std::move(params), at_cap);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E2", "band-join throughput scalability: biclique (ContRand) vs "
            "join-matrix, sustainable tuples/s per relation");

  BenchReporter reporter("E2", config);
  TablePrinter table({"units", "biclique_tps", "matrix_tps", "tps_ratio",
                      "biclique_state", "matrix_state"});
  for (int64_t units : config.GetIntList("units", {4, 8, 16, 32})) {
    SweepPoint point =
        MeasurePoint(static_cast<uint32_t>(units), config, cost, &reporter);
    table.AddRow(
        {TablePrinter::Int(units), TablePrinter::Num(point.biclique_tps, 0),
         TablePrinter::Num(point.matrix_tps, 0),
         TablePrinter::Num(point.matrix_tps > 0
                               ? point.biclique_tps / point.matrix_tps
                               : 0,
                           2),
         TablePrinter::Bytes(point.biclique_state),
         TablePrinter::Bytes(point.matrix_state)});
  }
  table.Print();
  std::printf(
      "expected shape: both scale sublinearly (everyone broadcasts). The "
      "matrix's smaller fan-out (sqrt(p) vs p/2) buys it a bounded "
      "throughput edge — the Section 2.4.1 concession — but it pays the "
      "axis-length multiple in state (right columns), which is what caps "
      "it at large windows (E3)\n");
  reporter.Finish();
  return 0;
}
