// E11 — Communication cost model check (Section 2.4.1 of the restatement):
// with random routing, join-biclique sends each tuple to 1 + p/2 units
// while the join-matrix sends it to √p; with hash routing the biclique
// drops to 1 + (p/2)/d. Measured messages-per-tuple must match the
// analytic counts (ordering punctuations are reported separately).

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

// Counts data messages per input tuple (source hop + store + joins),
// excluding punctuation overhead which is rate-independent.
double MeasuredDataMsgsPerTuple(const RunReport& report,
                                uint64_t punct_msgs) {
  return (static_cast<double>(report.engine.messages) -
          static_cast<double>(punct_msgs)) /
         static_cast<double>(report.engine.input_tuples);
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  double rate = config.GetDouble("rate", 1000);
  SimTime duration = 1 * kSecond;
  SimTime punct = 10 * kMillisecond;

  PrintExperimentHeader(
      "E11", "communication cost: analytic vs measured data messages per "
             "input tuple");

  BenchReporter reporter("E11", config);
  TablePrinter table({"p", "biclique_rand", "analytic", "biclique_hash",
                      "analytic", "matrix", "analytic"});
  for (int64_t p : config.GetIntList("units", {4, 16, 36, 64})) {
    uint32_t units = static_cast<uint32_t>(p);
    uint32_t half = units / 2;
    SyntheticWorkloadOptions workload =
        MakeWorkload(rate, duration, 10000, 71);

    auto run_biclique = [&](uint32_t subgroups) {
      BicliqueOptions options;
      options.num_routers = 2;
      options.joiners_r = half;
      options.joiners_s = half;
      options.subgroups_r = subgroups;
      options.subgroups_s = subgroups;
      options.window = 1 * kEventSecond;
      options.punct_interval = punct;
      options.cost = cost;
      ApplyTelemetryFlags(config, &options);
      RunReport report = RunBicliqueWorkload(options, workload);
      reporter.AddRun({{"units", static_cast<double>(p)},
                       {"subgroups", static_cast<double>(subgroups)}},
                      report);
      uint64_t rounds = duration / punct + 1;
      uint64_t punct_msgs = rounds * options.num_routers * units;
      return MeasuredDataMsgsPerTuple(report, punct_msgs);
    };

    double rand_measured = run_biclique(1);
    double hash_measured = run_biclique(half);

    MatrixOptions matrix = MatrixOptions::Square(units);
    matrix.num_routers = 2;
    matrix.window = 1 * kEventSecond;
    matrix.cost = cost;
    RunReport matrix_report = RunMatrixWorkload(matrix, workload);
    double matrix_measured = MeasuredDataMsgsPerTuple(matrix_report, 0);

    // Analytic counts include the source→router hop (+1 each).
    double rand_analytic = 1.0 + 1.0 + static_cast<double>(half);
    double hash_analytic = 1.0 + 1.0 + 1.0;
    double matrix_analytic =
        1.0 + (static_cast<double>(matrix.rows + matrix.cols) / 2.0);

    table.AddRow({TablePrinter::Int(p), TablePrinter::Num(rand_measured, 2),
                  TablePrinter::Num(rand_analytic, 2),
                  TablePrinter::Num(hash_measured, 2),
                  TablePrinter::Num(hash_analytic, 2),
                  TablePrinter::Num(matrix_measured, 2),
                  TablePrinter::Num(matrix_analytic, 2)});
  }
  table.Print();
  std::printf(
      "expected shape: biclique-rand ~ 2 + p/2 (beats matrix's ~1 + sqrt(p) "
      "only via hash routing, ~3 flat — the Section 2.4.1 trade-off)\n");
  reporter.Finish();
  return 0;
}
