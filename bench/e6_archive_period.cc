// E6 — Chained-index archive period P: small P means many small
// sub-indexes (fine-grained expiry, tight memory, more chain links to
// probe); large P means coarse expiry that can retain up to W + P of
// state. Expected shape: peak memory grows with P; expired-subindex count
// shrinks with P; probe cost has a shallow minimum at moderate P.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  double rate = config.GetDouble("rate", 4000);
  EventTime window = config.GetInt("window_ms", 5000) * kEventMilli;
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 15000)) *
      kMillisecond;

  PrintExperimentHeader(
      "E6", "archive-period sweep (equi join, W = " +
                std::to_string(window / kEventMilli) + " ms)");

  BenchReporter reporter("E6", config);
  TablePrinter table({"P_ms", "P/W", "peak_state", "expired_subidx",
                      "cand_per_probe", "max_busy"});
  for (int64_t p_ms :
       config.GetIntList("periods_ms", {50, 250, 625, 1250, 2500, 5000})) {
    BicliqueOptions options;
    options.num_routers = 2;
    options.joiners_r = 4;
    options.joiners_s = 4;
    options.subgroups_r = 4;
    options.subgroups_s = 4;
    options.window = window;
    options.archive_period = p_ms * kEventMilli;
    options.cost = cost;
    ApplyTelemetryFlags(config, &options);
    RunReport report = RunBicliqueWorkload(
        options,
        MakeWorkload(rate, duration,
                     static_cast<uint64_t>(config.GetInt("key_domain", 2000)),
                     47));
    double cand_per_probe =
        report.engine.probes > 0
            ? static_cast<double>(report.engine.probe_candidates) /
                  static_cast<double>(report.engine.probes)
            : 0;
    table.AddRow(
        {TablePrinter::Int(p_ms),
         TablePrinter::Num(static_cast<double>(p_ms) /
                               static_cast<double>(window / kEventMilli),
                           3),
         TablePrinter::Bytes(report.engine.peak_state_bytes),
         TablePrinter::Int(
             static_cast<int64_t>(report.engine.expired_subindexes)),
         TablePrinter::Num(cand_per_probe, 1),
         TablePrinter::Num(report.engine.max_busy_fraction, 2)});
    reporter.AddRun({{"period_ms", static_cast<double>(p_ms)}}, report);
  }
  table.Print();
  std::printf(
      "expected shape: peak state grows with P (retention up to W + P); "
      "expiry events shrink with P; the paper picks P ~ W/10\n");
  reporter.Finish();
  return 0;
}
