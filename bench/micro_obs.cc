// M3 — Telemetry overhead on the wall-clock backend: the same firehose
// workload with observability off vs. fully on (wall sampler + tuple
// tracer + timeline recorder), arms interleaved rep by rep.
//
// Two statistics:
//   * wall ratio  — on/off wall makespan (what a user of the bench sees),
//     reported as the median of per-rep pairs;
//   * cpu ratio   — on/off process CPU time (user+sys across all threads),
//     reported as the ratio of CPU summed over all measured reps.
// The asserted overhead is the *CPU* statistic: on a time-shared CI box
// single wall makespans jitter by ±10% (scheduling against neighbors),
// which dwarfs the effect being measured, while the work the process
// actually did is far more stable. The workers park on condvars when
// idle, so CPU time is a faithful cost measure — any telemetry cost
// (per-hop recording, sampler wakeups, merge) is CPU the process must
// burn. Summing before dividing averages per-rep scheduling noise
// instead of sampling it; rep 0 is a discarded warmup (allocator growth,
// page faults), and the arm order alternates per rep so warm-cache bias
// cancels in the sums. The claim under test: sampling runs on its own
// thread against sharded/atomic metrics, and tracing appends to
// per-thread buffers behind the Tuple::traced pre-filter, so full
// observability costs only a few percent. `--assert_overhead_pct=N`
// turns the claim into an exit code (the tier-1 smoke runs with N=5);
// a pass that lands over the bound is re-measured once before failing,
// because whole passes occasionally run a few points hot when the
// scheduler places the sampler thread badly — variance that sits
// *between* process instances, which no number of in-process reps can
// average away. A real regression fails both passes.

#include <sys/resource.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

BicliqueOptions BaseOptions(uint32_t units, const Config& config,
                            const CostModel& cost) {
  BicliqueOptions options;
  options.num_routers = RoutersFor(units);
  options.joiners_r = units / 2;
  options.joiners_s = units - units / 2;
  options.subgroups_r = options.joiners_r;
  options.subgroups_s = options.joiners_s;
  options.predicate = JoinPredicate::Equi();
  // Window covers the whole stream: expiry timing cannot add variance.
  options.window = 30 * kEventSecond;
  options.archive_period = 1 * kEventSecond;
  options.cost = cost;
  options.backend = runtime::BackendKind::kParallel;
  options.queue_capacity = static_cast<size_t>(config.GetInt(
      "queue_capacity", static_cast<int64_t>(options.queue_capacity)));
  options.workers = static_cast<uint32_t>(config.GetInt("workers", 0));
  return options;
}

/// Process CPU seconds (user+sys, all threads) consumed so far.
double CpuSeconds() {
  rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "M3", "telemetry overhead on the parallel backend: process CPU and "
            "wall makespan with sampler+tracer+timeline off vs on");

  uint32_t units = static_cast<uint32_t>(config.GetInt("units", 4));
  double rate = config.GetDouble("rate", 20000);
  SimTime duration =
      static_cast<SimTime>(config.GetInt("duration_ms", 250)) * kMillisecond;
  uint64_t key_domain =
      static_cast<uint64_t>(config.GetInt("key_domain", 1000));
  int reps = static_cast<int>(config.GetInt("reps", 5));
  SimTime sample_period =
      static_cast<SimTime>(config.GetInt("sample_ms", 10)) * kMillisecond;
  uint64_t trace_every =
      static_cast<uint64_t>(config.GetInt("trace_every", 64));
  double assert_pct = config.GetDouble("assert_overhead_pct", 0);

  SyntheticWorkloadOptions workload =
      MakeWorkload(rate, duration, key_domain, /*seed=*/17);

  BicliqueOptions off = BaseOptions(units, config, cost);
  BicliqueOptions on = BaseOptions(units, config, cost);
  on.telemetry.sample_period = sample_period;
  on.telemetry.trace_every = trace_every;
  // The timeline recorder rides in the "on" arm too: per-thread rings with
  // relaxed-atomic cursors are part of the full-observability cost bound.
  on.telemetry.timeline = true;
  BISTREAM_CHECK_OK(off.Validate());
  BISTREAM_CHECK_OK(on.Validate());

  BenchReporter reporter("M3", config);
  uint64_t min_off = 0;
  uint64_t min_on = 0;
  std::vector<double> wall_ratios;

  /// One full measurement pass: `reps` measured rep pairs plus a discarded
  /// warmup. Returns the CPU overhead percentage (ratio of summed CPU).
  auto measure = [&](int attempt) {
    double cpu_off_total = 0;
    double cpu_on_total = 0;
    uint64_t results_off = 0;
    uint64_t results_on = 0;
    // Rep 0 is a warmup: it exercises both arms (and still must agree on
    // the result count) but contributes to neither statistic.
    for (int rep = 0; rep <= reps; ++rep) {
      // Alternate which arm goes first so warm-cache advantage cancels.
      bool off_first = rep % 2 == 0;
      RunReport off_report;
      RunReport on_report;
      double cpu0 = CpuSeconds();
      if (off_first) {
        off_report = RunBicliqueWorkload(off, workload);
      } else {
        on_report = RunBicliqueWorkload(on, workload);
      }
      double cpu1 = CpuSeconds();
      if (off_first) {
        on_report = RunBicliqueWorkload(on, workload);
      } else {
        off_report = RunBicliqueWorkload(off, workload);
      }
      double cpu2 = CpuSeconds();
      BISTREAM_CHECK_GT(off_report.wall_makespan_ns, 0u);
      BISTREAM_CHECK_GT(on_report.wall_makespan_ns, 0u);
      BISTREAM_CHECK_GT(cpu1 - cpu0, 0.0);
      results_off = off_report.results;
      results_on = on_report.results;
      double cpu_off = off_first ? cpu1 - cpu0 : cpu2 - cpu1;
      double cpu_on = off_first ? cpu2 - cpu1 : cpu1 - cpu0;
      std::fprintf(stderr,
                   "# attempt %d rep %d%s: cpu_off=%.4fs cpu_on=%.4fs "
                   "wall_off=%.1fms wall_on=%.1fms\n",
                   attempt, rep, rep == 0 ? " (warmup)" : "", cpu_off, cpu_on,
                   off_report.wall_makespan_ns / 1e6,
                   on_report.wall_makespan_ns / 1e6);
      if (rep == 0) continue;
      cpu_off_total += cpu_off;
      cpu_on_total += cpu_on;
      min_off = min_off == 0
                    ? off_report.wall_makespan_ns
                    : std::min(min_off, off_report.wall_makespan_ns);
      min_on = min_on == 0 ? on_report.wall_makespan_ns
                           : std::min(min_on, on_report.wall_makespan_ns);
      wall_ratios.push_back(static_cast<double>(on_report.wall_makespan_ns) /
                            static_cast<double>(off_report.wall_makespan_ns));
      reporter.AddRun({{"telemetry", 0.0},
                       {"rep", static_cast<double>(rep)},
                       {"attempt", static_cast<double>(attempt)}},
                      off_report);
      reporter.AddRun({{"telemetry", 1.0},
                       {"rep", static_cast<double>(rep)},
                       {"attempt", static_cast<double>(attempt)}},
                      on_report);
    }
    // Telemetry must never change what was computed.
    BISTREAM_CHECK_EQ(results_on, results_off)
        << "telemetry changed the join result count";
    return 100.0 * (cpu_on_total / cpu_off_total - 1.0);
  };

  double overhead_pct = measure(0);
  int attempts = 1;
  // The box this smoke gates on is time-shared: a whole pass can land
  // 3-4 points hot when the scheduler places the extra sampler thread
  // badly (between-process variance, so more reps per pass do not help).
  // Re-measuring arbitrates: a real regression is hot in every pass; a
  // scheduling spike is not. The reported figure is the min of up to
  // three passes.
  while (assert_pct > 0 && overhead_pct > assert_pct && attempts < 3) {
    std::fprintf(stderr,
                 "# overhead %.2f%% over the %.2f%% bound; re-measuring "
                 "to rule out a scheduling spike\n",
                 overhead_pct, assert_pct);
    overhead_pct = std::min(overhead_pct, measure(attempts));
    ++attempts;
  }
  double wall_overhead_pct = 100.0 * (Median(wall_ratios) - 1.0);
  TablePrinter table(
      {"arm", "min_makespan_ms", "cpu_overhead_pct", "wall_overhead_pct"});
  table.AddRow({"telemetry_off", TablePrinter::Num(min_off / 1e6, 2), "-",
                "-"});
  table.AddRow({"telemetry_on", TablePrinter::Num(min_on / 1e6, 2),
                TablePrinter::Num(overhead_pct, 2),
                TablePrinter::Num(wall_overhead_pct, 2)});
  table.Print();
  std::printf(
      "cpu overhead = on/off ratio of CPU summed over %d reps (asserted, "
      "best of %d attempt%s); wall = median of per-rep ratios; 1 warmup "
      "rep discarded per attempt; sampler at %lld wall ms, tracer "
      "1-in-%llu\n",
      reps, attempts, attempts == 1 ? "" : "s",
      static_cast<long long>(sample_period / kMillisecond),
      static_cast<unsigned long long>(trace_every));
  reporter.Set("overhead_pct", JsonValue::Number(overhead_pct));
  reporter.Set("attempts", JsonValue::Number(attempts));
  reporter.Set("wall_overhead_pct", JsonValue::Number(wall_overhead_pct));
  reporter.Finish();

  if (assert_pct > 0 && overhead_pct > assert_pct) {
    std::fprintf(stderr,
                 "FAIL: telemetry CPU overhead %.2f%% exceeds the %.2f%% "
                 "bound\n",
                 overhead_pct, assert_pct);
    return 1;
  }
  return 0;
}
