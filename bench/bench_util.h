/// \file bench_util.h
/// \brief Shared helpers for the experiment (figure/table) bench binaries.

#ifndef BISTREAM_BENCH_BENCH_UTIL_H_
#define BISTREAM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace bistream {

/// \brief Standard bench preamble: silence info logs (override with
/// `--log_level=debug|info|warning|error`), parse flags, honor
/// `--format=csv` for machine-readable tables.
inline Config BenchInit(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  auto config = Config::FromArgs(argc, argv);
  BISTREAM_CHECK_OK(config.status());
  Config parsed = std::move(config).ValueOrDie();
  std::string level_name = parsed.GetString("log_level", "");
  if (!level_name.empty()) {
    LogLevel level = LogLevel::kWarning;
    BISTREAM_CHECK(ParseLogLevel(level_name, &level))
        << "--log_level expects debug|info|warning|error|fatal, got '"
        << level_name << "'";
    SetLogLevel(level);
  }
  std::string format = parsed.GetString("format", "ascii");
  if (format == "csv") {
    TablePrinter::SetDefaultFormat(TableFormat::kCsv);
  } else {
    BISTREAM_CHECK(format == "ascii")
        << "--format expects 'ascii' or 'csv', got '" << format << "'";
  }
  return parsed;
}

/// \brief Applies the bench-default telemetry configuration — 50 ms
/// sampling (virtual ms under sim, wall ms under parallel) and 1-in-32
/// tuple tracing — overridable with --sample_ms / --trace_every (0 disables
/// either). Tracing never perturbs results or virtual time, so it is safe
/// to leave on for every measured run.
inline void ApplyTelemetryFlags(const Config& config,
                                BicliqueOptions* options) {
  options->telemetry.sample_period =
      static_cast<SimTime>(config.GetInt("sample_ms", 50)) * kMillisecond;
  options->telemetry.trace_every =
      static_cast<uint64_t>(config.GetInt("trace_every", 32));
  // --timeline_out=PATH turns the execution-timeline recorder on and names
  // the Chrome trace-event file the reporter writes at Finish(). Off by
  // default: with no recorder installed the hot paths take a single
  // null-check and record nothing (see DESIGN.md §12).
  options->telemetry.timeline =
      !config.GetString("timeline_out", "").empty();
  options->telemetry.timeline_ring = static_cast<size_t>(
      config.GetInt("timeline_ring",
                    static_cast<int64_t>(options->telemetry.timeline_ring)));
}

/// \brief Applies the runtime-backend flags: `--backend=sim|parallel`
/// (default sim), `--queue_capacity=N` (parallel inbox bound), and
/// `--workers=N` (0 = one thread per unit). Telemetry flags carry over to
/// either backend: under parallel the sampler paces on a wall-clock thread
/// and --sample_ms means wall milliseconds.
inline void ApplyBackendFlags(const Config& config, BicliqueOptions* options) {
  std::string backend = config.GetString("backend", "sim");
  if (backend == "parallel") {
    options->backend = runtime::BackendKind::kParallel;
  } else {
    BISTREAM_CHECK(backend == "sim")
        << "--backend expects 'sim' or 'parallel', got '" << backend << "'";
    options->backend = runtime::BackendKind::kSim;
  }
  options->queue_capacity = static_cast<size_t>(config.GetInt(
      "queue_capacity", static_cast<int64_t>(options->queue_capacity)));
  options->workers = static_cast<uint32_t>(
      config.GetInt("workers", static_cast<int64_t>(options->workers)));
}

/// \brief True when the parsed flags select the parallel backend. Benches
/// use this to skip the capacity bisection (busy fractions are wall-time
/// measurements there, not the sim's load model) and run fixed sweeps.
inline bool ParallelBackendRequested(const Config& config) {
  return config.GetString("backend", "sim") == "parallel";
}

/// \brief Collects per-run telemetry into the bench's JSON artifact.
///
/// Every bench binary writes BENCH_<ID>.json (path overridable with
/// --json_out=...) holding one entry per recorded run: the sweep-point
/// parameters plus the full RunReport serialization — engine stats, latency
/// snapshot, metric time series, and per-hop latency breakdown. The
/// tier-1 smoke tests validate the artifact against
/// tests/bench_schema.json; see README "Reading the JSON artifacts".
class BenchReporter {
 public:
  BenchReporter(const std::string& experiment, const Config& config)
      : experiment_(experiment),
        path_(config.GetString("json_out",
                               "BENCH_" + experiment + ".json")),
        timeline_path_(config.GetString("timeline_out", "")),
        runs_(JsonValue::Array()) {}

  /// \brief Records one sweep point with numeric parameters, e.g.
  /// AddRun({{"units", 8}, {"rate_tps", rate}}, report).
  void AddRun(std::initializer_list<std::pair<const char*, double>> params,
              const RunReport& report) {
    JsonValue object = JsonValue::Object();
    for (const auto& [key, value] : params) {
      object.Set(key, JsonValue::Number(value));
    }
    AddRun(std::move(object), report);
  }

  /// \brief Records one sweep point with an arbitrary params object.
  void AddRun(JsonValue params, const RunReport& report) {
    JsonValue run = JsonValue::Object();
    run.Set("params", std::move(params));
    run.Set("report", report.ToJson());
    runs_.Push(std::move(run));
    if (report.timeline_recorder != nullptr) {
      // Keep one trace for --timeline_out: the first crashed run (the
      // flight-recorder postmortem is the interesting artifact), else the
      // first run that recorded a timeline at all. timeline_trace() folds
      // lazily, so only the runs actually kept pay for serialization.
      bool crashed = report.engine.crashes > 0;
      if (timeline_trace_ == nullptr || (crashed && !timeline_crashed_)) {
        timeline_trace_ = report.timeline_trace();
        timeline_crashed_ = crashed;
      }
      // Dropped events are reported, never silent (ISSUE §satellites).
      const JsonValue* dropped = report.timeline.Find("events_dropped");
      if (dropped != nullptr && dropped->AsNumber() > 0) {
        BISTREAM_LOG(Warning)
            << "timeline dropped " << dropped->AsNumber()
            << " events (ring wrapped); raise --timeline_ring";
      }
    }
  }

  /// \brief Attaches an extra top-level field (capacities, notes, ...).
  void Set(const std::string& key, JsonValue value) {
    extra_.emplace_back(key, std::move(value));
  }

  size_t runs() const { return runs_.size(); }

  /// \brief Writes the artifact; call once at the end of main().
  void Finish() {
    JsonValue root = JsonValue::Object();
    root.Set("experiment", JsonValue::String(experiment_));
    for (auto& [key, value] : extra_) {
      root.Set(key, std::move(value));
    }
    root.Set("runs", std::move(runs_));
    Status status = WriteJsonFile(path_, root);
    if (status.ok()) {
      std::printf("telemetry artifact: %s\n", path_.c_str());
    } else {
      BISTREAM_LOG(Warning) << "failed to write " << path_ << ": "
                            << status.ToString();
    }
    if (!timeline_path_.empty()) {
      if (timeline_trace_ != nullptr) {
        Status trace_status = WriteJsonFile(timeline_path_, *timeline_trace_);
        if (trace_status.ok()) {
          std::printf("timeline trace: %s (open in chrome://tracing)\n",
                      timeline_path_.c_str());
        } else {
          BISTREAM_LOG(Warning) << "failed to write " << timeline_path_
                                << ": " << trace_status.ToString();
        }
      } else {
        BISTREAM_LOG(Warning)
            << "--timeline_out set but no run recorded a timeline";
      }
    }
  }

 private:
  std::string experiment_;
  std::string path_;
  std::string timeline_path_;
  std::vector<std::pair<std::string, JsonValue>> extra_;
  JsonValue runs_;
  std::shared_ptr<const JsonValue> timeline_trace_;
  bool timeline_crashed_ = false;
};

/// \brief Applies --cost_* overrides to a cost model (sensitivity knobs).
inline void ApplyCostFlags(const Config& config, CostModel* cost) {
  cost->probe_candidate_ns = static_cast<SimTime>(
      config.GetInt("cost_probe_ns",
                    static_cast<int64_t>(cost->probe_candidate_ns)));
  cost->probe_fixed_ns = static_cast<SimTime>(config.GetInt(
      "cost_probe_fixed_ns", static_cast<int64_t>(cost->probe_fixed_ns)));
  cost->emit_result_ns = static_cast<SimTime>(config.GetInt(
      "cost_emit_ns", static_cast<int64_t>(cost->emit_result_ns)));
  cost->insert_ns = static_cast<SimTime>(
      config.GetInt("cost_insert_ns", static_cast<int64_t>(cost->insert_ns)));
  cost->message_fixed_ns = static_cast<SimTime>(config.GetInt(
      "cost_message_ns", static_cast<int64_t>(cost->message_fixed_ns)));
  cost->net_latency_ns = static_cast<SimTime>(
      config.GetInt("net_latency_us",
                    static_cast<int64_t>(cost->net_latency_ns / 1000)) *
      1000);
  cost->net_jitter_ns = static_cast<SimTime>(
      config.GetInt("net_jitter_us",
                    static_cast<int64_t>(cost->net_jitter_ns / 1000)) *
      1000);
}

/// \brief Drives a materialized stream through a hand-built engine, pacing
/// arrivals on the backend's own notion of time.
///
/// Under the simulator this is the familiar `RunUntil(arrival); InjectNow`
/// loop. Under the parallel backend virtual arrival times are compressed
/// onto the wall clock (`compression` virtual seconds per wall second) and
/// the driver sleeps between tuples — which is what lets wall-clock
/// controllers (fault injector, failure detector, autoscaler) fire mid-run
/// on the driver's service point rather than after all data has already
/// been firehosed through. The periodic RunUntil calls are the service
/// point: driver-clock timers run there.
inline void PacedDrive(runtime::Executor* exec, BicliqueEngine* engine,
                       const std::vector<TimedTuple>& stream,
                       double compression) {
  if (!exec->concurrent()) {
    for (const TimedTuple& tt : stream) {
      exec->RunUntil(tt.arrival);
      engine->InjectNow(tt.tuple);
    }
    return;
  }
  BISTREAM_CHECK_GT(compression, 0.0);
  SimTime start = exec->clock()->now();
  for (const TimedTuple& tt : stream) {
    SimTime target =
        start + static_cast<SimTime>(static_cast<double>(tt.arrival) /
                                     compression);
    exec->RunUntil(target);
    while (exec->clock()->now() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      exec->RunUntil(target);
    }
    engine->InjectNow(tt.tuple);
  }
}

/// \brief Marks a hand-built parallel run's report with its wall-clock
/// measurements (the harness does this automatically for runner-driven
/// benches).
inline void MarkWallMeasured(RunReport* report) {
  report->backend = "parallel";
  report->wall_measured = true;
  report->wall_makespan_ns = report->engine.makespan_ns;
  if (report->wall_makespan_ns > 0) {
    report->wall_throughput_tps =
        static_cast<double>(report->engine.input_tuples) /
        SimTimeToSeconds(report->wall_makespan_ns);
  }
}

/// \brief Routers scale with the cluster in the scalability sweeps (the
/// paper's setup dedicates a fraction of the cluster to dispatching; with
/// fewer than ~1 router per 2 joiners, ingestion throttles the sweep).
inline uint32_t RoutersFor(uint32_t total_units) {
  return std::max(2u, total_units / 2);
}

}  // namespace bistream

#endif  // BISTREAM_BENCH_BENCH_UTIL_H_
