/// \file bench_util.h
/// \brief Shared helpers for the experiment (figure/table) bench binaries.

#ifndef BISTREAM_BENCH_BENCH_UTIL_H_
#define BISTREAM_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "common/config.h"
#include "common/logging.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace bistream {

/// \brief Standard bench preamble: silence info logs, parse flags, honor
/// `--format=csv` for machine-readable tables.
inline Config BenchInit(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  auto config = Config::FromArgs(argc, argv);
  BISTREAM_CHECK_OK(config.status());
  Config parsed = std::move(config).ValueOrDie();
  std::string format = parsed.GetString("format", "ascii");
  if (format == "csv") {
    TablePrinter::SetDefaultFormat(TableFormat::kCsv);
  } else {
    BISTREAM_CHECK(format == "ascii")
        << "--format expects 'ascii' or 'csv', got '" << format << "'";
  }
  return parsed;
}

/// \brief Applies --cost_* overrides to a cost model (sensitivity knobs).
inline void ApplyCostFlags(const Config& config, CostModel* cost) {
  cost->probe_candidate_ns = static_cast<SimTime>(
      config.GetInt("cost_probe_ns",
                    static_cast<int64_t>(cost->probe_candidate_ns)));
  cost->insert_ns = static_cast<SimTime>(
      config.GetInt("cost_insert_ns", static_cast<int64_t>(cost->insert_ns)));
  cost->message_fixed_ns = static_cast<SimTime>(config.GetInt(
      "cost_message_ns", static_cast<int64_t>(cost->message_fixed_ns)));
  cost->net_latency_ns = static_cast<SimTime>(
      config.GetInt("net_latency_us",
                    static_cast<int64_t>(cost->net_latency_ns / 1000)) *
      1000);
  cost->net_jitter_ns = static_cast<SimTime>(
      config.GetInt("net_jitter_us",
                    static_cast<int64_t>(cost->net_jitter_ns / 1000)) *
      1000);
}

/// \brief Routers scale with the cluster in the scalability sweeps (the
/// paper's setup dedicates a fraction of the cluster to dispatching; with
/// fewer than ~1 router per 2 joiners, ingestion throttles the sweep).
inline uint32_t RoutersFor(uint32_t total_units) {
  return std::max(2u, total_units / 2);
}

}  // namespace bistream

#endif  // BISTREAM_BENCH_BENCH_UTIL_H_
