// E12 — Order-consistent protocol: necessity and overhead. Runs the same
// racy workload with the protocol on/off under increasing channel jitter
// and reports result errors (missed + duplicate pairs vs. the oracle),
// latency, and the protocol's punctuation overhead. Expected shape:
// protocol ON is exactly-once at every jitter level, paying a small
// latency floor (~punctuation interval); protocol OFF accumulates errors
// that grow with jitter.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  PrintExperimentHeader(
      "E12", "ordering protocol necessity/overhead: result errors and "
             "latency, protocol on vs off, vs channel jitter");

  BenchReporter reporter("E12", config);
  TablePrinter table({"jitter_ms", "protocol", "missed", "dups", "results",
                      "p50_latency", "p99_latency"});
  for (int64_t jitter_ms : config.GetIntList("jitters_ms", {0, 1, 2, 5})) {
    for (bool ordered : {true, false}) {
      BicliqueOptions options;
      options.num_routers = 3;
      options.joiners_r = 3;
      options.joiners_s = 3;
      options.window = 1 * kEventSecond;
      options.archive_period = 125 * kEventMilli;
      options.punct_interval = 5 * kMillisecond;
      options.ordered = ordered;
      options.cost = cost;
      ApplyTelemetryFlags(config, &options);
      options.cost.net_latency_ns = 100 * kMicrosecond;
      options.cost.net_jitter_ns =
          static_cast<SimTime>(jitter_ms) * kMillisecond;

      SyntheticWorkloadOptions workload = MakeWorkload(
          config.GetDouble("rate", 2000),
          static_cast<SimTime>(config.GetInt("duration_ms", 2000)) *
              kMillisecond,
          static_cast<uint64_t>(config.GetInt("key_domain", 20)), 73);

      RunReport report =
          RunBicliqueWorkload(options, workload, /*check=*/true);
      reporter.AddRun({{"jitter_ms", static_cast<double>(jitter_ms)},
                       {"ordered", ordered ? 1.0 : 0.0}},
                      report);
      table.AddRow(
          {TablePrinter::Int(jitter_ms), ordered ? "on" : "off",
           TablePrinter::Int(static_cast<int64_t>(report.check.missing)),
           TablePrinter::Int(static_cast<int64_t>(report.check.duplicates)),
           TablePrinter::Int(static_cast<int64_t>(report.results)),
           TablePrinter::Millis(report.latency.P50()),
           TablePrinter::Millis(report.latency.P99())});
    }
  }
  table.Print();
  std::printf(
      "expected shape: 'on' rows have zero missed/dups at every jitter; "
      "'off' rows accumulate errors with jitter; 'on' pays ~punctuation-"
      "interval extra latency\n");
  reporter.Finish();
  return 0;
}
