// E14 — Full-history vs sliding-window joins: the paper supports joining
// against the entire accumulated stream. Expected shape: sliding-window
// state plateaus at rate × W while full-history state grows linearly with
// stream length; full-history probe work (and thus busy fraction) grows
// with accumulated state, while the windowed run stays flat — the reason
// windows exist.

#include "bench_util.h"

using namespace bistream;  // NOLINT(build/namespaces)

namespace {

RunReport RunWith(EventTime window, double rate, SimTime duration,
                  const CostModel& cost, const Config& config) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 3;
  options.joiners_s = 3;
  options.subgroups_r = 3;
  options.subgroups_s = 3;
  options.window = window;
  options.archive_period = 500 * kEventMilli;
  options.cost = cost;
  ApplyTelemetryFlags(config, &options);
  return RunBicliqueWorkload(options,
                             MakeWorkload(rate, duration, 5000, 91));
}

}  // namespace

int main(int argc, char** argv) {
  Config config = BenchInit(argc, argv);
  CostModel cost = CostModel::Default();
  ApplyCostFlags(config, &cost);

  double rate = config.GetDouble("rate", 3000);
  EventTime window = config.GetInt("window_ms", 2000) * kEventMilli;

  PrintExperimentHeader(
      "E14", "full-history vs sliding-window joins: state and work vs "
             "stream length (W = " +
                 std::to_string(window / kEventMilli) + " ms sliding)");

  BenchReporter reporter("E14", config);
  TablePrinter table({"stream_s", "sliding_state", "full_state",
                      "sliding_results", "full_results", "sliding_busy",
                      "full_busy"});
  for (int64_t seconds : config.GetIntList("lengths_s", {2, 4, 8, 16})) {
    SimTime duration = static_cast<SimTime>(seconds) * kSecond;
    RunReport sliding = RunWith(window, rate, duration, cost, config);
    RunReport full =
        RunWith(kFullHistoryWindow, rate, duration, cost, config);
    reporter.AddRun({{"stream_s", static_cast<double>(seconds)},
                     {"full_history", 0.0}},
                    sliding);
    reporter.AddRun({{"stream_s", static_cast<double>(seconds)},
                     {"full_history", 1.0}},
                    full);
    table.AddRow(
        {TablePrinter::Int(seconds),
         TablePrinter::Bytes(sliding.engine.state_bytes),
         TablePrinter::Bytes(full.engine.state_bytes),
         TablePrinter::Int(static_cast<int64_t>(sliding.results)),
         TablePrinter::Int(static_cast<int64_t>(full.results)),
         TablePrinter::Num(sliding.engine.max_busy_fraction, 2),
         TablePrinter::Num(full.engine.max_busy_fraction, 2)});
  }
  table.Print();
  std::printf(
      "expected shape: sliding state plateaus (~rate x W), full-history "
      "state and result counts grow superlinearly with stream length\n");
  reporter.Finish();
  return 0;
}
