// Channels (FIFO guarantee, latency, jitter, fault injection), nodes
// (sequential service, queueing, utilization), and network-wide accounting.

#include "sim/network.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Message TupleMsg(uint64_t seq) {
  Tuple t;
  t.id = seq;
  return MakeTupleMessage(std::move(t), StreamKind::kStore, 0, seq, 0);
}

class NetworkTest : public ::testing::Test {
 protected:
  EventLoop loop_;
  SimNetwork net_{&loop_, CostModel::Default(), /*seed=*/7};
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  SimNode* dst = net_.AddNode("dst");
  std::vector<SimTime> deliveries;
  dst->SetHandler([&](const Message&) {
    deliveries.push_back(loop_.now());
    return SimTime{0};
  });
  ChannelOptions options;
  options.latency_ns = 1000;
  options.jitter_ns = 0;
  Channel* ch = net_.Connect(dst, options);
  ch->Send(TupleMsg(1));
  loop_.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 1000u);
}

TEST_F(NetworkTest, FifoChannelNeverReordersDespiteJitter) {
  SimNode* dst = net_.AddNode("dst");
  std::vector<uint64_t> order;
  dst->SetHandler([&](const Message& m) {
    order.push_back(m.seq);
    return SimTime{0};
  });
  ChannelOptions options;
  options.latency_ns = 100;
  options.jitter_ns = 10000;  // Jitter >> latency: raw times would reorder.
  options.preserve_fifo = true;
  Channel* ch = net_.Connect(dst, options);
  for (uint64_t i = 0; i < 200; ++i) {
    loop_.ScheduleAt(i * 10, [ch, i] { ch->Send(TupleMsg(i)); });
  }
  loop_.RunUntilIdle();
  ASSERT_EQ(order.size(), 200u);
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(NetworkTest, FaultyChannelReordersUnderJitter) {
  SimNode* dst = net_.AddNode("dst");
  std::vector<uint64_t> order;
  dst->SetHandler([&](const Message& m) {
    order.push_back(m.seq);
    return SimTime{0};
  });
  ChannelOptions options;
  options.latency_ns = 100;
  options.jitter_ns = 10000;
  options.preserve_fifo = false;
  Channel* ch = net_.Connect(dst, options);
  for (uint64_t i = 0; i < 200; ++i) {
    loop_.ScheduleAt(i * 10, [ch, i] { ch->Send(TupleMsg(i)); });
  }
  loop_.RunUntilIdle();
  ASSERT_EQ(order.size(), 200u);
  bool reordered = false;
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST_F(NetworkTest, NodeServicesSequentially) {
  SimNode* dst = net_.AddNode("dst");
  std::vector<SimTime> service_starts;
  dst->SetHandler([&](const Message&) {
    service_starts.push_back(loop_.now());
    return SimTime{1000};  // Each message takes 1 µs of service.
  });
  ChannelOptions options;
  options.latency_ns = 10;
  options.jitter_ns = 0;
  Channel* ch = net_.Connect(dst, options);
  // Three messages arrive (nearly) simultaneously; service must serialize.
  for (int i = 0; i < 3; ++i) ch->Send(TupleMsg(i));
  loop_.RunUntilIdle();
  ASSERT_EQ(service_starts.size(), 3u);
  EXPECT_EQ(service_starts[0], 10u);
  EXPECT_EQ(service_starts[1], 1010u);
  EXPECT_EQ(service_starts[2], 2010u);
  EXPECT_EQ(dst->stats().busy_ns, 3000u);
  EXPECT_EQ(dst->stats().messages_processed, 3u);
  EXPECT_GE(dst->stats().max_queue_depth, 2u);
}

TEST_F(NetworkTest, UtilizationSamplesBusyFraction) {
  SimNode* dst = net_.AddNode("dst");
  dst->SetHandler([](const Message&) { return SimTime{500}; });
  ChannelOptions options;
  options.latency_ns = 1;
  options.jitter_ns = 0;
  Channel* ch = net_.Connect(dst, options);
  for (int i = 0; i < 10; ++i) ch->Send(TupleMsg(i));
  loop_.RunUntilIdle();
  // 10 * 500 ns busy, sampled over a 10 µs observation window → 50%.
  loop_.RunUntil(10000);
  double util = dst->SampleUtilization(loop_.now());
  EXPECT_NEAR(util, 0.5, 0.01);
  // Second sample over an idle stretch reads ~0.
  loop_.RunUntil(loop_.now() + 100000);
  EXPECT_NEAR(dst->SampleUtilization(loop_.now()), 0.0, 0.001);
}

TEST_F(NetworkTest, TrafficCountersAggregate) {
  SimNode* a = net_.AddNode("a");
  a->SetHandler([](const Message&) { return SimTime{0}; });
  Channel* c1 = net_.Connect(a);
  Channel* c2 = net_.Connect(a);
  Message m = TupleMsg(1);
  size_t wire = m.WireBytes();
  c1->Send(m);
  c1->Send(m);
  c2->Send(m);
  EXPECT_EQ(net_.total_messages(), 3u);
  EXPECT_EQ(net_.total_bytes(), 3 * wire);
  EXPECT_EQ(c1->messages_sent(), 2u);
  loop_.RunUntilIdle();
}

TEST_F(NetworkTest, MessageWireBytesByKind) {
  Message t = TupleMsg(1);
  Message p = MakePunctuation(0, 1, 2);
  Message c = MakeControl(ControlOp::kStopFlush, 0);
  EXPECT_GT(t.WireBytes(), p.WireBytes());
  EXPECT_GT(c.WireBytes(), p.WireBytes());
  EXPECT_EQ(p.WireBytes(), 25u);  // Envelope only.
}

TEST(NodeDeathTest, ServiceWithoutHandlerAborts) {
  EventLoop loop;
  SimNode node(&loop, 0, "n");
  node.Deliver(Message{});
  EXPECT_DEATH(loop.RunUntilIdle(), "SetHandler");
}

}  // namespace
}  // namespace bistream
