#include "sim/event_loop.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.RunUntilIdle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoopTest, EqualTimesRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, ScheduleAfterIsRelative) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.ScheduleAt(100, [&] {
    loop.ScheduleAfter(50, [&] { fired_at = loop.now(); });
  });
  loop.RunUntilIdle();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventLoopTest, PastScheduleClampsToNow) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.ScheduleAt(100, [&] {
    loop.ScheduleAt(10, [&] { fired_at = loop.now(); });  // In the "past".
  });
  loop.RunUntilIdle();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(10, [&] { ++ran; });
  loop.ScheduleAt(20, [&] { ++ran; });
  loop.ScheduleAt(30, [&] { ++ran; });
  EXPECT_EQ(loop.RunUntil(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 20u);
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoopTest, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventLoop loop;
  EXPECT_EQ(loop.RunUntil(500), 0u);
  EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.ScheduleAfter(1, chain);
  };
  loop.ScheduleAt(0, chain);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99u);
  EXPECT_EQ(loop.executed(), 100u);
}

}  // namespace
}  // namespace bistream
