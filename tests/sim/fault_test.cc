// SimNode crash lifecycle and the deterministic fault injector.

#include "sim/fault.h"

#include <gtest/gtest.h>

#include "sim/network.h"

namespace bistream {
namespace {

Message Tup(uint64_t id) {
  Tuple t;
  t.id = id;
  return MakeTupleMessage(t, StreamKind::kStore, 0, id, 0);
}

TEST(SimNodeLifecycleTest, FailDropsInboxAndRefusesDeliveries) {
  EventLoop loop;
  SimNode node(&loop, 0, "victim");
  uint64_t handled = 0;
  node.SetHandler([&](const Message&) {
    ++handled;
    return SimTime{1000};
  });

  node.Deliver(Tup(1));
  node.Deliver(Tup(2));
  EXPECT_TRUE(node.alive());

  node.Fail();
  EXPECT_FALSE(node.alive());
  EXPECT_EQ(node.stats().crashes, 1u);
  // Queued-but-unprocessed messages die with the process.
  EXPECT_EQ(node.stats().messages_lost_on_crash, 2u);

  node.Deliver(Tup(3));
  EXPECT_EQ(node.stats().messages_dropped_dead, 1u);

  loop.RunUntilIdle();
  EXPECT_EQ(handled, 0u) << "a dead node must not service messages";
}

TEST(SimNodeLifecycleTest, RestartAcceptsNewDeliveries) {
  EventLoop loop;
  SimNode node(&loop, 0, "victim");
  uint64_t handled = 0;
  node.SetHandler([&](const Message&) {
    ++handled;
    return SimTime{1000};
  });

  node.Fail();
  node.Deliver(Tup(1));
  node.Restart();
  EXPECT_TRUE(node.alive());
  EXPECT_EQ(node.stats().restarts, 1u);
  node.Deliver(Tup(2));
  loop.RunUntilIdle();
  EXPECT_EQ(handled, 1u);  // Only the post-restart message.
  EXPECT_EQ(node.stats().messages_dropped_dead, 1u);

  // Fail/Restart are idempotent.
  node.Restart();
  EXPECT_EQ(node.stats().restarts, 1u);
}

TEST(SimNetworkTest, AggregatesDeadDeliveryCounters) {
  EventLoop loop;
  SimNetwork net(&loop, CostModel::Default(), /*seed=*/7);
  SimNode* a = net.AddNode("a");
  SimNode* b = net.AddNode("b");
  a->SetHandler([](const Message&) { return SimTime{0}; });
  b->SetHandler([](const Message&) { return SimTime{0}; });
  Channel* to_a = net.Connect(a);
  Channel* to_b = net.Connect(b);

  b->Fail();
  to_a->Send(Tup(1));
  to_b->Send(Tup(2));
  to_b->Send(Tup(3));
  loop.RunUntilIdle();

  EXPECT_EQ(net.total_dropped_dead(), 2u);
  EXPECT_EQ(net.total_lost_on_crash(), 0u);
  EXPECT_EQ(net.total_dropped(), 0u);
}

TEST(FaultInjectorTest, FiresExplicitCrashesAtTheirTimes) {
  EventLoop loop;
  FaultPlan plan;
  plan.crashes.push_back({.at = 5 * kMillisecond, .unit = 3});
  plan.crashes.push_back({.at = 1 * kMillisecond, .unit = 1});

  std::vector<std::pair<SimTime, uint32_t>> fired;
  FaultInjector injector(&loop, plan,
                         [&](const FaultPlan::Crash& crash, uint64_t) {
                           fired.emplace_back(loop.now(), *crash.unit);
                           return crash.unit;
                         });
  injector.Start();
  loop.RunUntilIdle();

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, 1 * kMillisecond);
  EXPECT_EQ(fired[0].second, 1u);
  EXPECT_EQ(fired[1].first, 5 * kMillisecond);
  EXPECT_EQ(fired[1].second, 3u);
  EXPECT_EQ(injector.timeline().size(), 2u);
}

TEST(FaultInjectorTest, CallbackMayDeclineAVictim) {
  EventLoop loop;
  FaultPlan plan;
  plan.crashes.push_back({.at = 1 * kMillisecond, .unit = 1});
  FaultInjector injector(
      &loop, plan,
      [](const FaultPlan::Crash&, uint64_t) -> std::optional<uint32_t> {
        return std::nullopt;  // Already down.
      });
  injector.Start();
  loop.RunUntilIdle();
  EXPECT_EQ(injector.scheduled_crashes(), 1u);
  EXPECT_TRUE(injector.timeline().empty());
}

// The Poisson expansion and victim draws must be a pure function of the
// seed: two injectors with equal plans produce identical schedules.
TEST(FaultInjectorTest, PoissonScheduleIsDeterministicPerSeed) {
  auto expand = [](uint64_t seed) {
    EventLoop loop;
    FaultPlan plan;
    plan.crash_rate_per_sec = 5.0;
    plan.horizon = 10 * kSecond;
    plan.seed = seed;
    std::vector<std::pair<SimTime, uint64_t>> events;
    FaultInjector injector(&loop, plan,
                           [&](const FaultPlan::Crash&, uint64_t draw) {
                             events.emplace_back(loop.now(), draw);
                             return std::optional<uint32_t>(0);
                           });
    injector.Start();
    loop.RunUntilIdle();
    return events;
  };

  auto a = expand(11);
  auto b = expand(11);
  auto c = expand(12);
  EXPECT_FALSE(a.empty()) << "rate 5/s over 10 s should schedule crashes";
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace bistream
