#include "runtime/cost_model.h"

#include <gtest/gtest.h>

#include "core/result_sink.h"

namespace bistream {
namespace {

TEST(CostModelTest, MessageCostScalesWithBytes) {
  CostModel cost;
  cost.message_fixed_ns = 1000;
  cost.message_per_byte_ns = 2.0;
  EXPECT_EQ(cost.MessageCost(0), 1000u);
  EXPECT_EQ(cost.MessageCost(100), 1200u);
}

TEST(CostModelTest, ProbeCostScalesWithCandidatesAndMatches) {
  CostModel cost;
  cost.probe_fixed_ns = 10;
  cost.probe_candidate_ns = 3;
  cost.emit_result_ns = 7;
  EXPECT_EQ(cost.ProbeCost(0, 0), 10u);
  EXPECT_EQ(cost.ProbeCost(5, 0), 25u);
  EXPECT_EQ(cost.ProbeCost(5, 2), 39u);
}

TEST(CostModelTest, SendCostScalesWithBytes) {
  CostModel cost;
  cost.send_ns = 500;
  cost.message_per_byte_ns = 1.0;
  EXPECT_EQ(cost.SendCost(0), 500u);
  EXPECT_EQ(cost.SendCost(64), 564u);
}

TEST(CostModelTest, DefaultsAreBatchingFriendly) {
  // The whole batching story (E13) relies on the per-message fixed cost
  // dominating per-tuple work; guard that relationship in the defaults.
  CostModel cost = CostModel::Default();
  EXPECT_GT(cost.message_fixed_ns,
            10 * (cost.insert_ns + cost.probe_fixed_ns));
  EXPECT_GT(cost.net_latency_ns, cost.message_fixed_ns);
}

TEST(CollectorSinkTest, CountsAndTracksLatency) {
  CollectorSink sink;
  JoinResult r;
  r.r_id = 1;
  r.s_id = 2;
  r.emit_time = 5000;
  r.latency_ns = 1500;
  sink.OnResult(r);
  r.latency_ns = 2500;
  r.emit_time = 9000;
  sink.OnResult(r);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.latency().count(), 2u);
  EXPECT_EQ(sink.last_emit_time(), 9000u);
  EXPECT_DOUBLE_EQ(sink.latency().mean(), 2000.0);
}

TEST(CollectorSinkTest, CheckingModeRecordsPairs) {
  CollectorSink sink(/*check=*/true);
  JoinResult r;
  r.r_id = 3;
  r.s_id = 4;
  sink.OnResult(r);
  EXPECT_EQ(sink.checker().total_results(), 1u);
  sink.Reset();
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(sink.checker().total_results(), 0u);
}

}  // namespace
}  // namespace bistream
