#!/bin/sh
# Tier-1 smoke for the bistream-inspect tool: run a cost-flag-capable bench
# twice — the second time with probe cost doubled — then assert that
#   1. the tool's verdict self-check passes,
#   2. a clean artifact reads healthy (exit 0),
#   3. the A/B diff flags the injected slowdown and attributes it to the
#      probe stage (exit 1),
#   4. malformed input is rejected with exit 2,
#   5. a wall-clock (--backend=parallel) artifact — sampled series, inbox
#      contention columns and all — also reads healthy,
#   6. a wall-clock artifact with a mid-run crash (a worker thread really
#      killed, detected, and respawned) reads healthy, surfaces the
#      recovery telemetry, and honors the --max_detection_ms cap,
#   7. a Chrome trace exported by --timeline_out reads healthy under the
#      `timeline` subcommand (per-lane utilization summary),
#   8. a crash run's trace carries the flight-recorder postmortem and the
#      summary shows crash -> detect -> respawn in order,
#   9. a truncated trace JSON is rejected with exit 2.
# Usage:
#   inspect_smoke.sh <bistream-inspect> <parallel_bench> <fault_bench> \
#     <bench_binary> [bench args...]
# <parallel_bench> must accept --backend=parallel (e1 does; e7, the usual
# <bench_binary>, does not). <fault_bench> is e15: its parallel mode kills
# live joiner threads on a seeded schedule.
set -eu

inspect="$1"
parallel_bench="$2"
fault_bench="$3"
bench="$4"
shift 4

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "inspect_smoke: $1" >&2
  exit 1
}

"$inspect" --self_check > "$workdir/selfcheck.txt" 2>&1 ||
  { cat "$workdir/selfcheck.txt" >&2; fail "--self_check failed"; }

base="$workdir/base.json"
slow="$workdir/slow.json"
"$bench" --json_out="$base" "$@" > "$workdir/base_run.txt" 2>&1 ||
  { cat "$workdir/base_run.txt" >&2; fail "baseline bench run failed"; }
# Double every ProbeCost component (candidate/fixed/emit all default 500):
# the same workload with probes exactly 2x slower. Store, message and
# punctuation stage times are count-driven and stay identical, so the diff
# must attribute the regression to the probe stage alone.
"$bench" --json_out="$slow" --cost_probe_ns=1000 --cost_probe_fixed_ns=1000 \
  --cost_emit_ns=1000 "$@" > "$workdir/slow_run.txt" 2>&1 ||
  { cat "$workdir/slow_run.txt" >&2; fail "slowed bench run failed"; }

# 2. Health verdict on the clean baseline.
"$inspect" "$base" > "$workdir/health.txt" 2>&1 ||
  { cat "$workdir/health.txt" >&2; fail "healthy artifact flagged (exit $?)"; }

# 3. The diff must detect the regression (exit 1, not 0 and not 2) and name
# the probe stage.
status=0
"$inspect" --diff "$base" "$slow" > "$workdir/diff.txt" 2>&1 || status=$?
[ "$status" -eq 1 ] ||
  { cat "$workdir/diff.txt" >&2; fail "diff exit $status, expected 1"; }
grep -q "REGRESSION.*probe" "$workdir/diff.txt" ||
  { cat "$workdir/diff.txt" >&2; fail "regression not attributed to probe"; }

# 4. Malformed input: truncated JSON must exit 2 in both modes.
head -c 40 "$base" > "$workdir/truncated.json"
status=0
"$inspect" "$workdir/truncated.json" > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || fail "malformed health input: exit $status, expected 2"
status=0
"$inspect" --diff "$workdir/truncated.json" "$slow" > /dev/null 2>&1 ||
  status=$?
[ "$status" -eq 2 ] || fail "malformed diff input: exit $status, expected 2"

# 5. Health verdict on a parallel-backend artifact: the wall sampler and
# tracer were live on worker threads, so the artifact carries a real time
# series (with the inbox-contention columns) that the tool must digest.
par="$workdir/parallel.json"
trace="$workdir/trace.json"
"$parallel_bench" --json_out="$par" --backend=parallel --units=4 \
  --duration_ms=100 --iters=1 --probe_rate=1000 --sample_ms=10 \
  --trace_every=64 --timeline_out="$trace" > "$workdir/par_run.txt" 2>&1 ||
  { cat "$workdir/par_run.txt" >&2; fail "parallel bench run failed"; }
"$inspect" "$par" > "$workdir/par_health.txt" 2>&1 ||
  { cat "$workdir/par_health.txt" >&2;
    fail "healthy parallel artifact flagged (exit $?)"; }

# 6. Health verdict on a crashed-and-recovered wall-clock artifact: the
# engine stats must carry the measured detection/recovery latencies and the
# worker respawn count, the tool must surface them, and the (generous)
# detection-latency cap must hold.
faulted="$workdir/faulted.json"
fault_trace="$workdir/fault_trace.json"
"$fault_bench" --json_out="$faulted" --backend=parallel \
  --total_tuples=3000 --timeline_out="$fault_trace" \
  > "$workdir/fault_run.txt" 2>&1 ||
  { cat "$workdir/fault_run.txt" >&2; fail "faulted bench run failed"; }
"$inspect" --max_detection_ms=5000 "$faulted" \
  > "$workdir/fault_health.txt" 2>&1 ||
  { cat "$workdir/fault_health.txt" >&2;
    fail "recovered faulted artifact flagged (exit $?)"; }
grep -q "fault recovery:" "$workdir/fault_health.txt" ||
  { cat "$workdir/fault_health.txt" >&2;
    fail "health report missing the fault recovery section"; }

# 7. The Chrome trace from the healthy parallel run reads cleanly: per-lane
# utilization table, no breaches (exit 0).
[ -s "$trace" ] || fail "--timeline_out produced no trace file"
"$inspect" timeline "$trace" > "$workdir/timeline.txt" 2>&1 ||
  { cat "$workdir/timeline.txt" >&2;
    fail "healthy timeline flagged (exit $?)"; }
grep -q "lane" "$workdir/timeline.txt" ||
  { cat "$workdir/timeline.txt" >&2;
    fail "timeline summary missing the per-lane table"; }

# 8. The crash run's trace carries the flight-recorder dump and the
# postmortem shows crash -> detect -> respawn with measured gaps.
[ -s "$fault_trace" ] || fail "crash run produced no trace file"
"$inspect" timeline "$fault_trace" > "$workdir/fault_timeline.txt" 2>&1 ||
  { cat "$workdir/fault_timeline.txt" >&2;
    fail "crash-run timeline flagged (exit $?)"; }
grep -q "flight recorder" "$workdir/fault_timeline.txt" ||
  { cat "$workdir/fault_timeline.txt" >&2;
    fail "crash-run timeline missing the flight-recorder postmortem"; }
grep -q "crash" "$workdir/fault_timeline.txt" ||
  { cat "$workdir/fault_timeline.txt" >&2;
    fail "crash-run postmortem missing the crash event"; }

# 9. A truncated trace must exit 2.
head -c 40 "$trace" > "$workdir/trace_truncated.json"
status=0
"$inspect" timeline "$workdir/trace_truncated.json" > /dev/null 2>&1 ||
  status=$?
[ "$status" -eq 2 ] || fail "malformed trace input: exit $status, expected 2"

echo "OK: self-check, health, diff attribution, malformed-input rejection," \
  "parallel health, crash-recovery health, timeline summary," \
  "flight-recorder postmortem, malformed-trace rejection"
