#include <gtest/gtest.h>

#include "harness/runner.h"
#include "harness/table.h"

namespace bistream {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"units", "throughput"});
  table.AddRow({"4", "1000"});
  table.AddRow({"16", "98765"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| units | throughput |"), std::string::npos);
  EXPECT_NE(out.find("| 16    | 98765      |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-------|"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
  EXPECT_EQ(TablePrinter::Bytes(1500), "1.50 KB");
  EXPECT_EQ(TablePrinter::Bytes(2500000), "2.50 MB");
  EXPECT_EQ(TablePrinter::Bytes(3500000000LL), "3.50 GB");
  EXPECT_EQ(TablePrinter::Bytes(12), "12 B");
  EXPECT_EQ(TablePrinter::Millis(2500000), "2.50 ms");
}

TEST(TablePrinterTest, CsvFormat) {
  TablePrinter table({"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"has,comma", "with \"quote\""});
  std::string csv = table.Render(TableFormat::kCsv);
  EXPECT_EQ(csv,
            "name,value\n"
            "plain,1\n"
            "\"has,comma\",\"with \"\"quote\"\"\"\n");
}

TEST(TablePrinterTest, DefaultFormatIsProcessWide) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  TablePrinter::SetDefaultFormat(TableFormat::kCsv);
  EXPECT_EQ(table.Render(), "a\n1\n");
  TablePrinter::SetDefaultFormat(TableFormat::kAscii);
  EXPECT_NE(table.Render().find("| a |"), std::string::npos);
}

TEST(RunnerTest, EstimateAndMeasureCapacityConvergesFast) {
  // Busy fraction = rate / 2000; target cap 0.9 → capacity 1800. The
  // estimate lands exactly, so the bisection only needs to confirm.
  int runs = 0;
  auto runner = [&](double rate) {
    ++runs;
    RunReport report;
    report.engine.max_busy_fraction = rate / 2000.0;
    return report;
  };
  double capacity = EstimateAndMeasureCapacity(runner, 100, 6, 0.9);
  EXPECT_NEAR(capacity, 1800, 100);
  EXPECT_LE(runs, 8);  // 1 calibration + 1 lo-probe + 6 bisections.
}

TEST(TablePrinterDeathTest, ArityMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(RunnerTest, MakeWorkloadSizesStream) {
  SyntheticWorkloadOptions workload =
      MakeWorkload(/*rate=*/1000, /*duration=*/2 * kSecond,
                   /*key_domain=*/50, /*seed=*/1);
  EXPECT_EQ(workload.total_tuples, 4000u);  // 2 relations * 1000/s * 2 s.
  EXPECT_EQ(workload.key_domain, 50u);
}

TEST(RunnerTest, ReportIsInternallyConsistent) {
  BicliqueOptions options;
  options.window = 1 * kEventSecond;
  RunReport report = RunBicliqueWorkload(
      options, MakeWorkload(500, 2 * kSecond, 40, 7), /*check=*/true);
  EXPECT_EQ(report.results, report.engine.results);
  EXPECT_EQ(report.latency.count(), report.results);
  EXPECT_NEAR(report.throughput_tps, 1000, 150);
  EXPECT_TRUE(report.check.Clean());
  EXPECT_GT(report.engine.messages, report.engine.input_tuples);
}

TEST(RunnerTest, MeasureCapacityFindsMonotoneThreshold) {
  // Synthetic runner: busy fraction = rate / 1000. Capacity at cap 0.9
  // should bisect to ~900.
  auto runner = [](double rate) {
    RunReport report;
    report.engine.max_busy_fraction = rate / 1000.0;
    return report;
  };
  CapacityOptions options;
  options.lo_rate = 10;
  options.hi_rate = 5000;
  options.iterations = 12;
  options.busy_cap = 0.9;
  double capacity = MeasureCapacity(runner, options);
  EXPECT_NEAR(capacity, 900, 10);
}

TEST(RunnerTest, MeasureCapacityHandlesAlwaysUnsustainable) {
  auto runner = [](double) {
    RunReport report;
    report.engine.max_busy_fraction = 5.0;
    return report;
  };
  CapacityOptions options;
  options.lo_rate = 100;
  options.hi_rate = 1000;
  EXPECT_DOUBLE_EQ(MeasureCapacity(runner, options), 100);
}

}  // namespace
}  // namespace bistream
