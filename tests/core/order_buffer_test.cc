#include "core/order_buffer.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Message Tup(uint32_t router, uint64_t seq, uint64_t round) {
  Tuple t;
  t.id = seq * 100 + router;
  return MakeTupleMessage(std::move(t), StreamKind::kStore, router, seq,
                          round);
}

Message Punct(uint32_t router, uint64_t round) {
  return MakePunctuation(router, /*seq=*/0, round);
}

std::vector<std::pair<uint64_t, uint32_t>> SeqRouter(
    const std::vector<Message>& msgs) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  for (const Message& m : msgs) out.emplace_back(m.seq, m.router_id);
  return out;
}

TEST(OrderBufferTest, HoldsTuplesUntilRoundComplete) {
  OrderBuffer buffer(/*num_routers=*/2, /*start_round=*/0);
  buffer.AddTuple(Tup(0, 1, 0));
  buffer.AddTuple(Tup(1, 1, 0));
  EXPECT_EQ(buffer.buffered(), 2u);

  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 0), &released);
  EXPECT_TRUE(released.empty()) << "released before all routers punctuated";
  buffer.AddPunctuation(Punct(1, 0), &released);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(buffer.buffered(), 0u);
  EXPECT_EQ(buffer.next_release_round(), 1u);
}

TEST(OrderBufferTest, ReleasesInSeqRouterOrder) {
  OrderBuffer buffer(2, 0);
  buffer.AddTuple(Tup(1, 3, 0));
  buffer.AddTuple(Tup(0, 1, 0));
  buffer.AddTuple(Tup(1, 1, 0));
  buffer.AddTuple(Tup(0, 2, 0));
  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 0), &released);
  buffer.AddPunctuation(Punct(1, 0), &released);
  EXPECT_EQ(SeqRouter(released),
            (std::vector<std::pair<uint64_t, uint32_t>>{
                {1, 0}, {1, 1}, {2, 0}, {3, 1}}));
}

TEST(OrderBufferTest, LaterRoundWaitsForEarlierRound) {
  OrderBuffer buffer(1, 0);
  buffer.AddTuple(Tup(0, 5, 1));
  std::vector<Message> released;
  // Round 1 is fully punctuated, but round 0's punctuation is missing.
  buffer.AddPunctuation(Punct(0, 1), &released);
  EXPECT_TRUE(released.empty());
  // Round 0 arrives: both rounds release in order.
  buffer.AddPunctuation(Punct(0, 0), &released);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].round, 1u);
  EXPECT_EQ(buffer.next_release_round(), 2u);
}

TEST(OrderBufferTest, EmptyRoundsReleaseCleanly) {
  OrderBuffer buffer(2, 0);
  std::vector<Message> released;
  for (uint64_t round = 0; round < 5; ++round) {
    buffer.AddPunctuation(Punct(0, round), &released);
    buffer.AddPunctuation(Punct(1, round), &released);
  }
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(buffer.next_release_round(), 5u);
}

TEST(OrderBufferTest, StartRoundIgnoresEarlierPunctuations) {
  OrderBuffer buffer(1, /*start_round=*/3);
  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 1), &released);  // Before start: ignored.
  EXPECT_EQ(buffer.next_release_round(), 3u);
  buffer.AddTuple(Tup(0, 9, 3));
  buffer.AddPunctuation(Punct(0, 3), &released);
  EXPECT_EQ(released.size(), 1u);
}

TEST(OrderBufferTest, InterleavedRoundsAccumulate) {
  OrderBuffer buffer(2, 0);
  buffer.AddTuple(Tup(0, 1, 0));
  buffer.AddTuple(Tup(0, 2, 1));  // Router 0 already in round 1.
  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 0), &released);
  buffer.AddPunctuation(Punct(0, 1), &released);
  EXPECT_TRUE(released.empty());  // Router 1 still silent.
  buffer.AddPunctuation(Punct(1, 0), &released);
  EXPECT_EQ(released.size(), 1u);
  buffer.AddPunctuation(Punct(1, 1), &released);
  EXPECT_EQ(released.size(), 2u);
}

TEST(OrderBufferDeathTest, TupleAfterReleaseAborts) {
  OrderBuffer buffer(1, 0);
  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 0), &released);
  EXPECT_DEATH(buffer.AddTuple(Tup(0, 1, 0)), "FIFO");
}

TEST(OrderBufferDeathTest, DuplicatePunctuationAborts) {
  OrderBuffer buffer(2, 0);
  std::vector<Message> released;
  buffer.AddPunctuation(Punct(0, 5), &released);
  buffer.AddPunctuation(Punct(0, 5), &released);
  EXPECT_DEATH(buffer.AddPunctuation(Punct(0, 5), &released),
               "more punctuations than routers");
}

}  // namespace
}  // namespace bistream
