// Correctness under stress: the exactly-once guarantee must survive
// saturation (queued backlogs, drifting punctuation rounds), extreme
// punctuation cadences, and degenerate window/archive shapes.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

TEST(OverloadTest, SaturatedClusterStaysExactlyOnce) {
  BicliqueOptions options;
  options.num_routers = 1;  // Deliberately under-provisioned.
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 500 * kEventMilli;
  options.archive_period = 100 * kEventMilli;
  options.punct_interval = 5 * kMillisecond;
  // Heavy per-message cost: the offered rate is far above capacity, so
  // queues build and processing lags arrival by a long stretch.
  options.cost.message_fixed_ns = 200000;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 30;
  workload.rate_r = RateSchedule::Constant(3000);
  workload.rate_s = RateSchedule::Constant(3000);
  workload.total_tuples = 6000;
  workload.seed = 71;

  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_GT(report.engine.max_busy_fraction, 0.95);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(OverloadTest, ExtremePunctuationCadences) {
  for (SimTime interval : {1 * kMillisecond, 500 * kMillisecond}) {
    BicliqueOptions options;
    options.window = 1 * kEventSecond;
    options.punct_interval = interval;
    SyntheticWorkloadOptions workload;
    workload.key_domain = 40;
    workload.total_tuples = 3000;
    workload.seed = 72;
    RunReport report =
        RunBicliqueWorkload(options, workload, /*check=*/true);
    EXPECT_TRUE(report.check.Clean())
        << "punct=" << interval << ": " << report.check.ToString();
  }
}

TEST(OverloadTest, TinyWindowTinyArchive) {
  BicliqueOptions options;
  options.window = 10 * kEventMilli;  // Barely wider than the jitter.
  options.archive_period = 1 * kEventMilli;
  SyntheticWorkloadOptions workload;
  workload.key_domain = 5;
  workload.rate_r = RateSchedule::Constant(4000);
  workload.rate_s = RateSchedule::Constant(4000);
  workload.total_tuples = 4000;
  workload.seed = 73;
  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
  EXPECT_GT(report.engine.expired_subindexes, 0u);
}

TEST(OverloadTest, SingleUnitPerSideDegenerateCluster) {
  BicliqueOptions options;
  options.num_routers = 1;
  options.joiners_r = 1;
  options.joiners_s = 1;
  options.window = 1 * kEventSecond;
  SyntheticWorkloadOptions workload;
  workload.key_domain = 20;
  workload.total_tuples = 2000;
  workload.seed = 74;
  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(OverloadTest, ManyRoutersManyJoiners) {
  BicliqueOptions options;
  options.num_routers = 8;
  options.joiners_r = 8;
  options.joiners_s = 8;
  options.subgroups_r = 4;
  options.subgroups_s = 2;
  options.window = 500 * kEventMilli;
  options.archive_period = 125 * kEventMilli;
  SyntheticWorkloadOptions workload;
  workload.key_domain = 100;
  workload.rate_r = RateSchedule::Constant(2000);
  workload.rate_s = RateSchedule::Constant(2000);
  workload.total_tuples = 8000;
  workload.seed = 75;
  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(OverloadTest, BurstyRateScheduleStaysExactlyOnce) {
  BicliqueOptions options;
  options.window = 500 * kEventMilli;
  options.archive_period = 125 * kEventMilli;
  SyntheticWorkloadOptions workload;
  workload.key_domain = 25;
  workload.rate_r = RateSchedule::Make({{0, 200},
                                        {1 * kSecond, 8000},
                                        {2 * kSecond, 200}})
                        .ValueOrDie();
  workload.rate_s = workload.rate_r;
  workload.total_tuples = 9000;
  workload.seed = 76;
  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

}  // namespace
}  // namespace bistream
