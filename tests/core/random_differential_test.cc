// Randomized differential testing: many seeded-random engine/workload
// configurations, each checked three ways — biclique vs oracle, matrix vs
// oracle, and biclique vs matrix result counts. This is the wide net for
// interaction bugs no hand-written case anticipates.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

struct RandomConfig {
  BicliqueOptions biclique;
  MatrixOptions matrix;
  SyntheticWorkloadOptions workload;
  std::string description;
};

RandomConfig DrawConfig(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1FF);
  RandomConfig config;

  // Predicate family.
  int predicate_pick = static_cast<int>(rng.Uniform(4));
  JoinPredicate predicate = JoinPredicate::Equi();
  switch (predicate_pick) {
    case 0:
      predicate = JoinPredicate::Equi();
      break;
    case 1:
      predicate = JoinPredicate::Band(rng.UniformInt(0, 4));
      break;
    case 2:
      predicate = JoinPredicate::LessThan();
      break;
    case 3:
      predicate = JoinPredicate::Theta(
          "mod", [](const Tuple& l, const Tuple& r) {
            return (l.key * 3 + r.key) % 5 == 0;
          });
      break;
  }

  config.biclique.predicate = predicate;
  config.biclique.num_routers = static_cast<uint32_t>(rng.UniformInt(1, 4));
  config.biclique.joiners_r = static_cast<uint32_t>(rng.UniformInt(1, 5));
  config.biclique.joiners_s = static_cast<uint32_t>(rng.UniformInt(1, 5));
  if (predicate.kind() == PredicateKind::kEqui) {
    config.biclique.subgroups_r = static_cast<uint32_t>(
        rng.UniformInt(1, config.biclique.joiners_r));
    config.biclique.subgroups_s = static_cast<uint32_t>(
        rng.UniformInt(1, config.biclique.joiners_s));
  }
  config.biclique.window =
      rng.UniformInt(50, 1500) * kEventMilli;
  config.biclique.archive_period = std::max<EventTime>(
      config.biclique.window / rng.UniformInt(2, 20), kEventMilli);
  config.biclique.punct_interval =
      static_cast<SimTime>(rng.UniformInt(2, 40)) * kMillisecond;
  config.biclique.batch_size =
      rng.NextBool(0.5) ? 1 : static_cast<uint32_t>(rng.UniformInt(2, 64));
  config.biclique.cost.net_jitter_ns =
      static_cast<SimTime>(rng.UniformInt(0, 500)) * kMicrosecond;
  config.biclique.seed = seed;

  config.matrix.predicate = predicate;
  config.matrix.rows = static_cast<uint32_t>(rng.UniformInt(1, 3));
  config.matrix.cols = static_cast<uint32_t>(rng.UniformInt(1, 3));
  config.matrix.window = config.biclique.window;
  config.matrix.archive_period = config.biclique.archive_period;
  config.matrix.seed = seed;

  bool small_domain = predicate.kind() == PredicateKind::kTheta ||
                      predicate.kind() == PredicateKind::kLessThan;
  config.workload.key_domain =
      static_cast<uint64_t>(rng.UniformInt(small_domain ? 10 : 20,
                                           small_domain ? 40 : 120));
  double rate = static_cast<double>(rng.UniformInt(300, 1500));
  config.workload.rate_r = RateSchedule::Constant(rate);
  config.workload.rate_s = RateSchedule::Constant(rate);
  config.workload.total_tuples =
      static_cast<uint64_t>(rng.UniformInt(1200, 3000));
  if (rng.NextBool(0.3)) {
    config.workload.zipf_theta_r = rng.NextDouble() * 1.2;
  }
  config.workload.seed = seed;

  config.description =
      std::string(PredicateKindToString(predicate.kind())) + " routers=" +
      std::to_string(config.biclique.num_routers) + " joiners=" +
      std::to_string(config.biclique.joiners_r) + "+" +
      std::to_string(config.biclique.joiners_s) + " d=" +
      std::to_string(config.biclique.subgroups_r) + " e=" +
      std::to_string(config.biclique.subgroups_s) + " batch=" +
      std::to_string(config.biclique.batch_size) + " W=" +
      std::to_string(config.biclique.window) + "us";
  return config;
}

class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDifferentialTest, BothEnginesMatchOracle) {
  RandomConfig config = DrawConfig(GetParam());
  SCOPED_TRACE(config.description);

  RunReport biclique =
      RunBicliqueWorkload(config.biclique, config.workload, /*check=*/true);
  EXPECT_TRUE(biclique.check.Clean())
      << "biclique: " << biclique.check.ToString();

  RunReport matrix =
      RunMatrixWorkload(config.matrix, config.workload, /*check=*/true);
  EXPECT_TRUE(matrix.check.Clean())
      << "matrix: " << matrix.check.ToString();

  EXPECT_EQ(biclique.results, matrix.results)
      << "engines disagree on the result count";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace bistream
