// Mini-batching (BiStream's throughput technique): correctness under every
// batch size, round-flush semantics, and the amortization effect.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

SyntheticWorkloadOptions Workload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 50;
  workload.rate_r = RateSchedule::Constant(2000);
  workload.rate_s = RateSchedule::Constant(2000);
  workload.total_tuples = 6000;
  workload.seed = seed;
  return workload;
}

BicliqueOptions Engine(uint32_t batch_size, bool ordered = true) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 3;
  options.joiners_s = 3;
  options.window = 1 * kEventSecond;
  options.archive_period = 125 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  options.batch_size = batch_size;
  options.ordered = ordered;
  return options;
}

class BatchSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BatchSizeTest, ExactlyOnceAtEveryBatchSize) {
  RunReport report =
      RunBicliqueWorkload(Engine(GetParam()), Workload(3), /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchSizeTest,
                         ::testing::Values(1u, 2u, 4u, 16u, 64u, 1024u),
                         [](const auto& info) {
                           return "batch" + std::to_string(info.param);
                         });

TEST(BatchingTest, BatchingReducesMessagesNotTuples) {
  RunReport unbatched = RunBicliqueWorkload(Engine(1), Workload(5));
  RunReport batched = RunBicliqueWorkload(Engine(16), Workload(5));
  // Identical join output.
  EXPECT_EQ(unbatched.results, batched.results);
  // Far fewer network messages...
  EXPECT_LT(batched.engine.messages, unbatched.engine.messages / 2);
  // ...and therefore less total virtual work at the bottleneck.
  EXPECT_LT(batched.engine.max_busy_fraction,
            unbatched.engine.max_busy_fraction);
}

TEST(BatchingTest, BatchingAddsBoundedLatency) {
  RunReport unbatched = RunBicliqueWorkload(Engine(1), Workload(7));
  // A batch size far above the per-round volume: flushes happen only at
  // punctuations, so latency grows by at most ~one punctuation interval.
  RunReport batched = RunBicliqueWorkload(Engine(100000), Workload(7));
  EXPECT_EQ(unbatched.results, batched.results);
  EXPECT_GE(batched.latency.P50(), unbatched.latency.P50());
  EXPECT_LE(batched.latency.P99(),
            unbatched.latency.P99() + 25 * kMillisecond);
}

TEST(BatchingTest, UnorderedModeAlsoSupportsBatches) {
  // Without the protocol, batches are processed on arrival; correctness
  // is not guaranteed (that's the protocol's job) but the plumbing must
  // deliver every tuple exactly once to the joiners.
  RunReport report = RunBicliqueWorkload(Engine(8, /*ordered=*/false),
                                         Workload(9));
  EXPECT_EQ(report.engine.stored * 1u, 6000u);  // Every tuple stored once.
}

TEST(BatchingTest, WorksWithContHashAndSkew) {
  BicliqueOptions options = Engine(16);
  options.subgroups_r = 3;
  options.subgroups_s = 3;
  SyntheticWorkloadOptions workload = Workload(11);
  workload.zipf_theta_r = 1.0;
  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(BatchingTest, WorksAcrossScaling) {
  SyntheticWorkloadOptions workload = Workload(13);
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueOptions options = Engine(16);
  BicliqueEngine engine(&loop, options, &sink);
  loop.ScheduleAt(1 * kSecond,
                  [&] { ASSERT_TRUE(engine.ScaleOut(kRelationR).ok()); });
  loop.ScheduleAt(2 * kSecond,
                  [&] { ASSERT_TRUE(engine.ScaleIn(kRelationS).ok()); });
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();
  CheckReport check =
      sink.checker().Check(stream, options.predicate, options.window);
  EXPECT_TRUE(check.Clean()) << check.ToString();
}

}  // namespace
}  // namespace bistream
