// Joiner unit behaviour: store/join branches, ordered release, window
// exactness, Theorem-1 expiry wiring, and result metadata.

#include "core/joiner.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"

namespace bistream {
namespace {

class VectorSink final : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    results.push_back(result);
  }
  std::vector<JoinResult> results;
};

Message TupleMsg(RelationId rel, uint64_t id, int64_t key, EventTime ts,
                 StreamKind stream, uint32_t router = 0, uint64_t seq = 0,
                 uint64_t round = 0) {
  Tuple t;
  t.relation = rel;
  t.id = id;
  t.key = key;
  t.ts = ts;
  return MakeTupleMessage(std::move(t), stream, router, seq, round);
}

JoinerOptions BaseOptions(bool ordered) {
  JoinerOptions options;
  options.unit_id = 3;
  options.relation = kRelationR;  // Stores R, probed by S.
  options.predicate = JoinPredicate::Equi();
  options.index_kind = IndexKind::kHash;
  options.window = 1000;       // Microseconds (event time).
  options.archive_period = 100;
  options.num_routers = 1;
  options.ordered = ordered;
  return options;
}

TEST(JoinerTest, UnorderedStoreThenProbeProducesResult) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(/*ordered=*/false), &loop, &sink, nullptr);

  joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore));
  joiner.Handle(TupleMsg(kRelationS, 2, 7, 20, StreamKind::kJoin));
  ASSERT_EQ(sink.results.size(), 1u);
  EXPECT_EQ(sink.results[0].r_id, 1u);
  EXPECT_EQ(sink.results[0].s_id, 2u);
  EXPECT_EQ(sink.results[0].ts, 20);           // max of the pair.
  EXPECT_EQ(sink.results[0].key, 7);           // probe key.
  EXPECT_EQ(sink.results[0].producer_unit, 3u);
  EXPECT_EQ(joiner.stats().stored, 1u);
  EXPECT_EQ(joiner.stats().probes, 1u);
  EXPECT_EQ(joiner.stats().results, 1u);
}

TEST(JoinerTest, ProbeBeforeStoreProducesNothing) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(false), &loop, &sink, nullptr);
  joiner.Handle(TupleMsg(kRelationS, 2, 7, 20, StreamKind::kJoin));
  joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore));
  EXPECT_TRUE(sink.results.empty());
}

TEST(JoinerTest, WindowBoundaryIsInclusiveExclusive) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(false), &loop, &sink, nullptr);
  joiner.Handle(TupleMsg(kRelationR, 1, 7, 0, StreamKind::kStore));
  // Exactly W apart: valid.
  joiner.Handle(TupleMsg(kRelationS, 2, 7, 1000, StreamKind::kJoin));
  EXPECT_EQ(sink.results.size(), 1u);
  // One past: invalid.
  joiner.Handle(TupleMsg(kRelationS, 3, 7, 1001, StreamKind::kJoin));
  EXPECT_EQ(sink.results.size(), 1u);
}

TEST(JoinerTest, TheoremOneExpiryDropsState) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(false), &loop, &sink, nullptr);
  for (EventTime ts = 0; ts <= 500; ts += 50) {
    joiner.Handle(TupleMsg(kRelationR, static_cast<uint64_t>(ts + 1), 7, ts,
                           StreamKind::kStore));
  }
  size_t before = joiner.index().size();
  // An S tuple far in the future expires everything.
  joiner.Handle(TupleMsg(kRelationS, 999, 7, 5000, StreamKind::kJoin));
  EXPECT_GT(before, joiner.index().size());
  EXPECT_EQ(joiner.index().size(), 0u);
  EXPECT_GT(joiner.stats().expired_subindexes, 0u);
  EXPECT_TRUE(sink.results.empty());
}

TEST(JoinerTest, OrderedModeBuffersUntilPunctuation) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(/*ordered=*/true), &loop, &sink, nullptr);

  joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore, 0, 1, 0));
  joiner.Handle(TupleMsg(kRelationS, 2, 7, 20, StreamKind::kJoin, 0, 2, 0));
  EXPECT_EQ(joiner.buffered(), 2u);
  EXPECT_EQ(joiner.stats().stored, 0u);
  EXPECT_TRUE(sink.results.empty());

  joiner.Handle(MakePunctuation(0, 2, 0));
  EXPECT_EQ(joiner.buffered(), 0u);
  EXPECT_EQ(sink.results.size(), 1u);
}

TEST(JoinerTest, OrderedModeReordersBySeqWithinRound) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(true), &loop, &sink, nullptr);

  // Probe (seq 2) arrives before store (seq 1); the release order must put
  // the store first, so the pair is still found.
  joiner.Handle(TupleMsg(kRelationS, 2, 7, 20, StreamKind::kJoin, 0, 2, 0));
  joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore, 0, 1, 0));
  joiner.Handle(MakePunctuation(0, 2, 0));
  ASSERT_EQ(sink.results.size(), 1u);
  EXPECT_EQ(sink.results[0].r_id, 1u);
}

TEST(JoinerTest, MemoryTrackerRollsUp) {
  EventLoop loop;
  VectorSink sink;
  MemoryTracker parent("parent");
  Joiner joiner(BaseOptions(false), &loop, &sink, &parent);
  joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore));
  EXPECT_GT(parent.current_bytes(), 0);
  EXPECT_EQ(parent.current_bytes(), joiner.memory().current_bytes());
}

TEST(JoinerTest, HandleReturnsCostsScalingWithWork) {
  EventLoop loop;
  VectorSink sink;
  JoinerOptions options = BaseOptions(false);
  Joiner joiner(options, &loop, &sink, nullptr);
  SimTime store_cost =
      joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kStore));
  joiner.Handle(TupleMsg(kRelationR, 2, 7, 11, StreamKind::kStore));
  SimTime probe_cost =
      joiner.Handle(TupleMsg(kRelationS, 3, 7, 20, StreamKind::kJoin));
  EXPECT_GT(store_cost, 0u);
  // The probe examined 2 candidates and emitted 2 results: must cost more
  // than a bare store.
  EXPECT_GT(probe_cost, store_cost);
}

TEST(JoinerTest, BandPredicateUsesOrderedIndex) {
  EventLoop loop;
  VectorSink sink;
  JoinerOptions options = BaseOptions(false);
  options.predicate = JoinPredicate::Band(2);
  options.index_kind = IndexKind::kOrdered;
  Joiner joiner(options, &loop, &sink, nullptr);
  joiner.Handle(TupleMsg(kRelationR, 1, 10, 0, StreamKind::kStore));
  joiner.Handle(TupleMsg(kRelationR, 2, 13, 1, StreamKind::kStore));
  joiner.Handle(TupleMsg(kRelationS, 3, 11, 2, StreamKind::kJoin));
  // |10-11| <= 2 matches; |13-11| = 2 matches.
  EXPECT_EQ(sink.results.size(), 2u);
}

TEST(JoinerDeathTest, WrongRelationOnStoreStreamAborts) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(false), &loop, &sink, nullptr);
  EXPECT_DEATH(
      joiner.Handle(TupleMsg(kRelationS, 1, 7, 10, StreamKind::kStore)),
      "wrong relation");
}

TEST(JoinerDeathTest, OwnRelationOnJoinStreamAborts) {
  EventLoop loop;
  VectorSink sink;
  Joiner joiner(BaseOptions(false), &loop, &sink, nullptr);
  EXPECT_DEATH(
      joiner.Handle(TupleMsg(kRelationR, 1, 7, 10, StreamKind::kJoin)),
      "own relation");
}

}  // namespace
}  // namespace bistream
