// Elastic scaling correctness: scale-out and scale-in during a live run
// must preserve exactly-once results (the paper's no-migration claim), and
// new units must actually absorb storage load.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

struct ScaleAction {
  SimTime at = 0;
  RelationId side = kRelationR;
  bool out = true;  // true = ScaleOut, false = ScaleIn.
};

// Drives a workload with scaling actions injected at virtual times.
RunReport RunWithScaling(BicliqueOptions options,
                         const SyntheticWorkloadOptions& workload,
                         std::vector<ScaleAction> actions) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);
  for (const ScaleAction& action : actions) {
    loop.ScheduleAt(action.at, [&engine, action] {
      if (action.out) {
        ASSERT_TRUE(engine.ScaleOut(action.side).ok());
      } else {
        ASSERT_TRUE(engine.ScaleIn(action.side).ok());
      }
    });
  }
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();

  RunReport report;
  report.engine = engine.Stats();
  report.results = sink.count();
  report.check = sink.checker().Check(stream, options.predicate,
                                      options.window);
  report.checked = true;
  return report;
}

SyntheticWorkloadOptions ScalingWorkload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = 6000;  // ~6 s of stream.
  workload.seed = seed;
  return workload;
}

BicliqueOptions ScalingEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  return options;
}

TEST(ElasticityTest, ScaleOutMidRunStaysExactlyOnce) {
  RunReport report = RunWithScaling(
      ScalingEngine(), ScalingWorkload(1),
      {{1 * kSecond, kRelationR, true}, {2 * kSecond, kRelationS, true}});
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(ElasticityTest, ScaleInMidRunStaysExactlyOnce) {
  BicliqueOptions options = ScalingEngine();
  options.joiners_r = 3;
  options.joiners_s = 3;
  RunReport report = RunWithScaling(
      options, ScalingWorkload(2),
      {{1 * kSecond, kRelationR, false}, {2 * kSecond, kRelationS, false}});
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(ElasticityTest, ScaleOutThenInStaysExactlyOnce) {
  RunReport report = RunWithScaling(
      ScalingEngine(), ScalingWorkload(3),
      {{1 * kSecond, kRelationR, true},
       {2 * kSecond, kRelationR, true},
       {3 * kSecond, kRelationR, false},
       {4 * kSecond, kRelationS, true}});
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(ElasticityTest, ContHashScalingStaysExactlyOnce) {
  BicliqueOptions options = ScalingEngine();
  options.joiners_r = 4;
  options.joiners_s = 4;
  options.subgroups_r = 2;
  options.subgroups_s = 2;
  RunReport report = RunWithScaling(
      options, ScalingWorkload(4),
      {{1 * kSecond, kRelationR, true}, {2500 * kMillisecond, kRelationS, false}});
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(ElasticityTest, NewUnitAbsorbsStorage) {
  SyntheticWorkloadOptions workload = ScalingWorkload(5);
  EventLoop loop;
  CollectorSink sink;
  BicliqueOptions options = ScalingEngine();
  BicliqueEngine engine(&loop, options, &sink);

  uint32_t new_unit = 0;
  loop.ScheduleAt(1 * kSecond, [&] {
    auto result = engine.ScaleOut(kRelationR);
    ASSERT_TRUE(result.ok());
    new_unit = *result;
  });

  SyntheticSource source(workload);
  engine.RunToCompletion(&source);

  Joiner* joiner = engine.joiner(new_unit);
  ASSERT_NE(joiner, nullptr);
  EXPECT_GT(joiner->stats().stored, 0u)
      << "scale-out unit never received stores";
  EXPECT_EQ(engine.ActiveJoiners(kRelationR), 3u);
}

// The transport fault knobs must compose with elastic scaling, and the
// oracle must still catch the violations they cause: a scaling epoch change
// cannot mask lost messages.
TEST(ElasticityFaultTest, ChannelLossUnderScalingIsDetectedByOracle) {
  BicliqueOptions options = ScalingEngine();
  options.channel_drop_probability = 0.02;
  RunReport report = RunWithScaling(
      options, ScalingWorkload(7),
      {{1 * kSecond, kRelationR, true}, {2 * kSecond, kRelationS, false}});
  EXPECT_GT(report.engine.messages_dropped, 0u);
  EXPECT_FALSE(report.check.Clean())
      << "2% transport loss across a scaling run cannot be exactly-once";
  EXPECT_GT(report.check.missing, 0u);
}

// FIFO-breaking jitter during scaling must surface as ordering errors when
// the order-consistent protocol is off (it assumes FIFO channels, so the
// reorder knob is only meaningful with `ordered` disabled).
TEST(ElasticityFaultTest, ReorderingUnderScalingIsDetectedByOracle) {
  uint64_t total_errors = 0;
  for (uint64_t seed = 8; seed < 11; ++seed) {
    BicliqueOptions options = ScalingEngine();
    options.ordered = false;
    options.fault_reorder = true;
    options.cost.net_latency_ns = 100 * kMicrosecond;
    options.cost.net_jitter_ns = 2 * kMillisecond;
    SyntheticWorkloadOptions workload = ScalingWorkload(seed);
    workload.key_domain = 10;  // Dense matches make races visible.
    RunReport report = RunWithScaling(
        options, workload,
        {{1 * kSecond, kRelationR, true}, {2 * kSecond, kRelationS, true}});
    total_errors += report.check.missing + report.check.duplicates +
                    report.check.spurious;
  }
  EXPECT_GT(total_errors, 0u)
      << "unordered + reordered channels should race during scaling";
}

TEST(ElasticityTest, DrainedUnitRetiresAndReceivesNoMoreStores) {
  SyntheticWorkloadOptions workload = ScalingWorkload(6);
  workload.total_tuples = 8000;  // ~8 s: enough for the retire grace.
  EventLoop loop;
  CollectorSink sink;
  BicliqueOptions options = ScalingEngine();
  options.joiners_r = 3;
  options.retire_grace_factor = 1.5;
  BicliqueEngine engine(&loop, options, &sink);

  uint32_t drained = UINT32_MAX;
  uint64_t stored_at_drain = 0;
  loop.ScheduleAt(1 * kSecond, [&] {
    auto result = engine.ScaleIn(kRelationR);
    ASSERT_TRUE(result.ok());
    drained = *result;
  });
  // Well after the drain's next round boundary: snapshot the store count.
  loop.ScheduleAt(2 * kSecond, [&] {
    stored_at_drain = engine.joiner(drained)->stats().stored;
  });

  SyntheticSource source(workload);
  engine.RunToCompletion(&source);

  ASSERT_NE(drained, UINT32_MAX);
  EXPECT_EQ(engine.joiner(drained)->stats().stored, stored_at_drain)
      << "draining unit kept receiving stores";
  EXPECT_EQ(engine.topology().unit(drained).state, UnitState::kRetired);
  EXPECT_EQ(engine.ActiveJoiners(kRelationR), 2u);
}

}  // namespace
}  // namespace bistream
