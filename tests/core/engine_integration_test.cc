// End-to-end correctness of the biclique engine against the oracle join:
// completeness, exactly-once, and window exactness across predicates,
// routing strategies, router counts, and cluster sizes.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

SyntheticWorkloadOptions SmallWorkload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 50;
  workload.rate_r = RateSchedule::Constant(400);
  workload.rate_s = RateSchedule::Constant(400);
  workload.total_tuples = 2000;
  workload.seed = seed;
  return workload;
}

BicliqueOptions SmallEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 3;
  options.joiners_s = 2;
  options.window = 2 * kEventSecond;
  options.archive_period = 500 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  return options;
}

TEST(EngineIntegrationTest, EquiJoinContRandMatchesOracle) {
  BicliqueOptions options = SmallEngine();
  options.predicate = JoinPredicate::Equi();
  RunReport report =
      RunBicliqueWorkload(options, SmallWorkload(1), /*check=*/true);
  ASSERT_TRUE(report.checked);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(EngineIntegrationTest, EquiJoinContHashMatchesOracle) {
  BicliqueOptions options = SmallEngine();
  options.predicate = JoinPredicate::Equi();
  options.subgroups_r = 3;  // Pure hash partitioning on the R side.
  options.subgroups_s = 2;
  RunReport report =
      RunBicliqueWorkload(options, SmallWorkload(2), /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(EngineIntegrationTest, BandJoinMatchesOracle) {
  BicliqueOptions options = SmallEngine();
  options.predicate = JoinPredicate::Band(2);
  RunReport report =
      RunBicliqueWorkload(options, SmallWorkload(3), /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(EngineIntegrationTest, MatrixEquiJoinMatchesOracle) {
  MatrixOptions options;
  options.rows = 2;
  options.cols = 3;
  options.window = 2 * kEventSecond;
  options.archive_period = 500 * kEventMilli;
  options.predicate = JoinPredicate::Equi();
  RunReport report =
      RunMatrixWorkload(options, SmallWorkload(4), /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

}  // namespace
}  // namespace bistream
