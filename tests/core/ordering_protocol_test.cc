// The order-consistent protocol (Definitions 7/8): with it enabled, results
// are exactly-once under channel jitter; with it disabled, the store/join
// stream races produce the paper's missed/duplicate result scenarios.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

SyntheticWorkloadOptions RacyWorkload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  // A small key domain and high rate maximize near-simultaneous matching
  // pairs, which is what makes ordering races visible.
  workload.key_domain = 10;
  workload.rate_r = RateSchedule::Constant(2000);
  workload.rate_s = RateSchedule::Constant(2000);
  workload.total_tuples = 4000;
  workload.seed = seed;
  return workload;
}

BicliqueOptions RacyEngine(bool ordered) {
  BicliqueOptions options;
  options.num_routers = 3;
  options.joiners_r = 3;
  options.joiners_s = 3;
  options.window = 1 * kEventSecond;
  options.archive_period = 200 * kEventMilli;
  options.punct_interval = 5 * kMillisecond;
  options.ordered = ordered;
  // Strong jitter relative to latency: copies of the same tuple take very
  // different paths, exactly the disorder source the paper names.
  options.cost.net_latency_ns = 100 * kMicrosecond;
  options.cost.net_jitter_ns = 2 * kMillisecond;
  return options;
}

TEST(OrderingProtocolTest, ProtocolOnIsExactlyOnceUnderJitter) {
  RunReport report =
      RunBicliqueWorkload(RacyEngine(/*ordered=*/true), RacyWorkload(11),
                          /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(OrderingProtocolTest, ProtocolOffProducesErrorsUnderJitter) {
  uint64_t total_errors = 0;
  // A single seed could get lucky; accumulate over a few.
  for (uint64_t seed = 20; seed < 23; ++seed) {
    RunReport report =
        RunBicliqueWorkload(RacyEngine(/*ordered=*/false),
                            RacyWorkload(seed), /*check=*/true);
    total_errors += report.check.missing + report.check.duplicates;
  }
  EXPECT_GT(total_errors, 0u)
      << "disabling the protocol should surface missed/duplicate results";
}

TEST(OrderingProtocolTest, ProtocolOnWithManyRoutersStillClean) {
  BicliqueOptions options = RacyEngine(/*ordered=*/true);
  options.num_routers = 5;
  RunReport report =
      RunBicliqueWorkload(options, RacyWorkload(31), /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

// Definition 7 assumes a lossless transport; injected message loss must
// surface as missing results that the oracle detects (the protocol makes
// ordering consistent, it does not mask loss).
TEST(OrderingProtocolTest, MessageLossIsDetectedByOracle) {
  SyntheticWorkloadOptions workload = RacyWorkload(51);
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  BicliqueOptions options = RacyEngine(/*ordered=*/false);
  // Hand-build the engine so the joiner channels can be made lossy: the
  // unordered configuration isolates the loss effect (with the protocol a
  // lost punctuation also stalls rounds, which shows up the same way).
  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  options.cost.net_jitter_ns = 0;
  BicliqueEngine engine(&loop, options, &sink);
  // Replace is not possible post-hoc; instead drop at the source channels
  // by rebuilding with fault options via the public knob below.
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();
  CheckReport clean =
      sink.checker().Check(stream, options.predicate, options.window);
  EXPECT_TRUE(clean.Clean());

  // Now the lossy variant.
  options.channel_drop_probability = 0.01;
  EventLoop lossy_loop;
  CollectorSink lossy_sink(/*check=*/true);
  BicliqueEngine lossy(&lossy_loop, options, &lossy_sink);
  lossy.Start();
  for (const TimedTuple& tt : stream) {
    lossy_loop.RunUntil(tt.arrival);
    lossy.InjectNow(tt.tuple);
  }
  lossy.FlushAndStop();
  lossy_loop.RunUntilIdle();
  CheckReport report =
      lossy_sink.checker().Check(stream, options.predicate, options.window);
  EXPECT_GT(report.missing, 0u)
      << "1% transport loss must lose results, and the oracle must see it";
}

// The matrix baseline needs no protocol: each pair has a single meeting
// cell, so it stays exactly-once under the same jitter.
TEST(OrderingProtocolTest, MatrixNeedsNoProtocolUnderJitter) {
  MatrixOptions options;
  options.rows = 3;
  options.cols = 3;
  options.window = 1 * kEventSecond;
  options.archive_period = 200 * kEventMilli;
  options.cost.net_latency_ns = 100 * kMicrosecond;
  options.cost.net_jitter_ns = 2 * kMillisecond;
  RunReport report =
      RunMatrixWorkload(options, RacyWorkload(41), /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

}  // namespace
}  // namespace bistream
