// BicliqueOptions::Validate(): every consistency rule must reject its
// violation with a Status instead of letting a misconfigured engine run.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace bistream {
namespace {

BicliqueOptions Valid() {
  BicliqueOptions options;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  return options;
}

TEST(OptionsValidationTest, DefaultsAreValid) {
  EXPECT_TRUE(BicliqueOptions().Validate().ok());
  EXPECT_TRUE(Valid().Validate().ok());
}

TEST(OptionsValidationTest, RejectsZeroCounts) {
  BicliqueOptions options = Valid();
  options.num_routers = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.joiners_r = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.joiners_s = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.subgroups_s = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.batch_size = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsMoreSubgroupsThanJoiners) {
  BicliqueOptions options = Valid();
  options.joiners_r = 2;
  options.subgroups_r = 3;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsHashRoutingForNonEquiPredicates) {
  BicliqueOptions options = Valid();
  options.predicate = JoinPredicate::Band(2);
  options.subgroups_r = 2;
  Status status = options.Validate();
  EXPECT_FALSE(status.ok());
  options.subgroups_r = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsBadWindowAndArchiveShapes) {
  BicliqueOptions options = Valid();
  options.window = -1;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.archive_period = 0;
  EXPECT_FALSE(options.Validate().ok());

  // State would outlive W by up to P if the archive period were coarser
  // than the window.
  options = Valid();
  options.window = 100 * kEventMilli;
  options.archive_period = 200 * kEventMilli;
  EXPECT_FALSE(options.Validate().ok());

  // Equality is fine (single sub-index per window span)...
  options.archive_period = 100 * kEventMilli;
  EXPECT_TRUE(options.Validate().ok());

  // ...and an unbounded window accepts any period.
  options.window = 0;
  options.archive_period = 1 * kEventSecond;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsBadCadencesAndProbabilities) {
  BicliqueOptions options = Valid();
  options.punct_interval = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.channel_drop_probability = 1.5;
  EXPECT_FALSE(options.Validate().ok());

  options = Valid();
  options.channel_drop_probability = -0.1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsRetireGraceBelowWindow) {
  BicliqueOptions options = Valid();
  options.retire_grace_factor = 0.5;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidationTest, RejectsZeroQueueCapacity) {
  BicliqueOptions options = Valid();
  options.queue_capacity = 0;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidationTest, SimBackendRejectsWorkerBudget) {
  BicliqueOptions options = Valid();
  options.workers = 4;
  EXPECT_FALSE(options.Validate().ok());

  options.backend = runtime::BackendKind::kParallel;
  options.workers = 0;  // Auto: one thread per unit.
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, ParallelWorkerBudgetMustCoverUnits) {
  BicliqueOptions options = Valid();
  options.backend = runtime::BackendKind::kParallel;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.subgroups_r = 2;
  options.subgroups_s = 2;

  options.workers = 5;  // 2 routers + 4 joiners need 6.
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  options.workers = 6;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, ParallelBackendRejectsSimOnlyFeatures) {
  BicliqueOptions options = Valid();
  options.backend = runtime::BackendKind::kParallel;
  EXPECT_TRUE(options.Validate().ok());

  // Fault tolerance (and elasticity) are NOT sim-only: on the parallel
  // backend a crash is real worker-thread teardown and recovery respawns a
  // live thread.
  options.fault_tolerance.enabled = true;
  EXPECT_TRUE(options.Validate().ok());
  options.fault_tolerance.enabled = false;

  // The transport-level faults stay sim-only — and the messages must point
  // at the parallel-backend alternative.
  options.fault_reorder = true;
  Status reorder_status = options.Validate();
  ASSERT_FALSE(reorder_status.ok());
  EXPECT_NE(reorder_status.ToString().find("parallel"), std::string::npos);
  options.fault_reorder = false;

  options.channel_drop_probability = 0.1;
  Status drop_status = options.Validate();
  ASSERT_FALSE(drop_status.ok());
  EXPECT_NE(drop_status.ToString().find("CrashJoiner"), std::string::npos);
  options.channel_drop_probability = 0;

  // Telemetry is NOT sim-only: the wall-clock sampler and the per-thread
  // trace buffers make both knobs valid under the parallel backend.
  options.telemetry.sample_period = 50 * kMillisecond;
  options.telemetry.trace_every = 32;
  EXPECT_TRUE(options.Validate().ok());
  options.telemetry.sample_period = 0;
  options.telemetry.trace_every = 0;

  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, FaultToleranceRequiresOrderedProtocol) {
  BicliqueOptions options = Valid();
  options.fault_tolerance.enabled = true;
  EXPECT_TRUE(options.Validate().ok());

  options.ordered = false;
  EXPECT_FALSE(options.Validate().ok());

  options.ordered = true;
  options.fault_tolerance.checkpoint_rounds = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace bistream
