// The 3-way cascade: triple results match the oracle exactly-once.

#include "core/multiway.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

MultiWorkloadOptions Workload(uint64_t seed, uint64_t tuples = 3000) {
  MultiWorkloadOptions options;
  options.num_relations = 3;
  options.key_domain = 30;
  options.rate_per_relation = 400;
  options.total_tuples = tuples;
  options.seed = seed;
  return options;
}

ThreeWayOptions CascadeOptions() {
  ThreeWayOptions options;
  for (BicliqueOptions* stage : {&options.stage1, &options.stage2}) {
    stage->num_routers = 2;
    stage->joiners_r = 2;
    stage->joiners_s = 2;
    stage->window = 1 * kEventSecond;
    stage->archive_period = 250 * kEventMilli;
    stage->punct_interval = 10 * kMillisecond;
  }
  return options;
}

struct CascadeRun {
  uint64_t triples = 0;
  uint64_t missing = 0;
  uint64_t duplicates = 0;
  uint64_t spurious = 0;
};

CascadeRun RunCascade(uint64_t seed) {
  MultiWorkloadOptions workload = Workload(seed);
  MultiSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  TripleCollector collector;
  ThreeWayOptions options = CascadeOptions();
  ThreeWayCascade cascade(&loop, options, &collector);

  struct VecSource : StreamSource {
    const std::vector<TimedTuple>* v;
    size_t pos = 0;
    std::optional<TimedTuple> Next() override {
      if (pos >= v->size()) return std::nullopt;
      return (*v)[pos++];
    }
  } replay;
  replay.v = &stream;
  cascade.RunToCompletion(&replay);

  auto expected = ComputeExpectedTriples(stream, options.stage1.window,
                                         options.stage2.window);
  CascadeRun run;
  run.triples = collector.count();
  for (const auto& [key, count] : expected) {
    auto it = collector.produced().find(key);
    uint32_t got = it == collector.produced().end() ? 0 : it->second;
    if (got < count) run.missing += count - got;
    if (got > count) run.duplicates += got - count;
  }
  for (const auto& [key, count] : collector.produced()) {
    if (!expected.count(key)) run.spurious += count;
  }
  return run;
}

TEST(MultiwayTest, TriplesMatchOracleExactlyOnce) {
  CascadeRun run = RunCascade(1);
  EXPECT_GT(run.triples, 0u);
  EXPECT_EQ(run.missing, 0u);
  EXPECT_EQ(run.duplicates, 0u);
  EXPECT_EQ(run.spurious, 0u);
}

TEST(MultiwayTest, DeterministicAcrossRuns) {
  CascadeRun a = RunCascade(2);
  CascadeRun b = RunCascade(2);
  EXPECT_EQ(a.triples, b.triples);
}

TEST(MultiwayTest, OracleHandComputed) {
  auto make = [](RelationId rel, uint64_t id, int64_t key, EventTime ts) {
    TimedTuple tt;
    tt.arrival = static_cast<SimTime>(ts) * kMicrosecond;
    tt.tuple.relation = rel;
    tt.tuple.id = id;
    tt.tuple.key = key;
    tt.tuple.ts = ts;
    return tt;
  };
  std::vector<TimedTuple> stream = {
      make(kRelationR, 1, 5, 0),   make(kRelationS, 2, 5, 10),
      make(kRelationT, 3, 5, 15),  make(kRelationT, 4, 5, 500),
      make(kRelationR, 5, 6, 0),   make(kRelationT, 6, 6, 5),
  };
  // W1 = W2 = 100: triple (1,2,3) valid; (1,2,4) out of window2; key 6 has
  // no S tuple.
  auto expected = ComputeExpectedTriples(stream, 100, 100);
  EXPECT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected.count(TripleKey(1, 2, 3)), 1u);
}

TEST(KWayCascadeTest, FourWayMatchesOracleExactlyOnce) {
  MultiWorkloadOptions workload;
  workload.num_relations = 4;
  // Sized so 4-way combinations exist without a combinatorial explosion
  // (combinations scale as (tuples-per-key-per-window)^4).
  workload.key_domain = 60;
  workload.rate_per_relation = 250;
  workload.total_tuples = 1600;
  workload.seed = 21;
  MultiSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  KWayOptions options;
  options.stages.resize(3);
  for (BicliqueOptions& stage : options.stages) {
    stage.num_routers = 2;
    stage.joiners_r = 2;
    stage.joiners_s = 2;
    stage.window = 800 * kEventMilli;
    stage.archive_period = 200 * kEventMilli;
    stage.punct_interval = 10 * kMillisecond;
  }

  EventLoop loop;
  KWayCollector collector;
  KWayCascade cascade(&loop, options, &collector);
  struct VecSource : StreamSource {
    const std::vector<TimedTuple>* v;
    size_t pos = 0;
    std::optional<TimedTuple> Next() override {
      if (pos >= v->size()) return std::nullopt;
      return (*v)[pos++];
    }
  } replay;
  replay.v = &stream;
  cascade.RunToCompletion(&replay);

  auto expected = ComputeExpectedKTuples(
      stream, 4,
      {options.stages[0].window, options.stages[1].window,
       options.stages[2].window});
  EXPECT_GT(collector.count(), 0u) << "no 4-way combinations in workload";
  uint64_t missing = 0, duplicates = 0, spurious = 0;
  for (const auto& [key, count] : expected) {
    auto it = collector.produced().find(key);
    uint32_t got = it == collector.produced().end() ? 0 : it->second;
    if (got < count) missing += count - got;
    if (got > count) duplicates += got - count;
  }
  for (const auto& [key, count] : collector.produced()) {
    if (!expected.count(key)) spurious += count;
  }
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(spurious, 0u);
  // k-tuples carry 4 ids in relation order.
  EXPECT_EQ(cascade.num_relations(), 4u);
}

TEST(KWayCascadeTest, TwoWayDegeneratesToPlainJoin) {
  MultiWorkloadOptions workload;
  workload.num_relations = 2;
  workload.key_domain = 30;
  workload.rate_per_relation = 500;
  workload.total_tuples = 2000;
  workload.seed = 22;
  MultiSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  KWayOptions options;
  options.stages.resize(1);
  options.stages[0].window = 1 * kEventSecond;

  EventLoop loop;
  KWayCollector collector;
  KWayCascade cascade(&loop, options, &collector);
  struct VecSource : StreamSource {
    const std::vector<TimedTuple>* v;
    size_t pos = 0;
    std::optional<TimedTuple> Next() override {
      if (pos >= v->size()) return std::nullopt;
      return (*v)[pos++];
    }
  } replay;
  replay.v = &stream;
  cascade.RunToCompletion(&replay);

  auto expected =
      ComputeExpectedPairs(stream, JoinPredicate::Equi(), 1 * kEventSecond);
  uint64_t expected_total = 0;
  for (const auto& [key, count] : expected) expected_total += count;
  EXPECT_EQ(collector.count(), expected_total);
}

TEST(KWayCascadeTest, OracleHandComputedFourWay) {
  auto make = [](RelationId rel, uint64_t id, int64_t key, EventTime ts) {
    TimedTuple tt;
    tt.arrival = static_cast<SimTime>(ts) * kMicrosecond;
    tt.tuple.relation = rel;
    tt.tuple.id = id;
    tt.tuple.key = key;
    tt.tuple.ts = ts;
    return tt;
  };
  std::vector<TimedTuple> stream = {
      make(0, 1, 5, 0),  make(1, 2, 5, 10), make(2, 3, 5, 20),
      make(3, 4, 5, 30), make(3, 5, 5, 500),
  };
  auto expected = ComputeExpectedKTuples(stream, 4, {100, 100, 100});
  // (1,2,3,4) valid; (1,2,3,5) fails the last window.
  EXPECT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected.count(KTupleKey({1, 2, 3, 4})), 1u);
}

TEST(KWayCascadeTest, StagesScaleIndependentlyMidRunExactlyOnce) {
  MultiWorkloadOptions workload;
  workload.num_relations = 3;
  workload.key_domain = 30;
  workload.rate_per_relation = 400;
  workload.total_tuples = 4800;  // ~4 s.
  workload.seed = 23;
  MultiSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  KWayOptions options;
  options.stages.resize(2);
  for (BicliqueOptions& stage : options.stages) {
    stage.num_routers = 2;
    stage.joiners_r = 2;
    stage.joiners_s = 2;
    stage.window = 800 * kEventMilli;
    stage.archive_period = 200 * kEventMilli;
    stage.punct_interval = 10 * kMillisecond;
  }

  EventLoop loop;
  KWayCollector collector;
  KWayCascade cascade(&loop, options, &collector);
  // Scale stage 2's intermediate side out mid-run, and stage 1's S side in.
  loop.ScheduleAt(1 * kSecond, [&] {
    ASSERT_TRUE(cascade.stage_engine(1)->ScaleOut(kRelationR).ok());
  });
  loop.ScheduleAt(2 * kSecond, [&] {
    ASSERT_TRUE(cascade.stage_engine(0)->ScaleIn(kRelationS).ok());
  });

  struct VecSource : StreamSource {
    const std::vector<TimedTuple>* v;
    size_t pos = 0;
    std::optional<TimedTuple> Next() override {
      if (pos >= v->size()) return std::nullopt;
      return (*v)[pos++];
    }
  } replay;
  replay.v = &stream;
  cascade.RunToCompletion(&replay);

  auto expected = ComputeExpectedKTuples(
      stream, 3, {options.stages[0].window, options.stages[1].window});
  uint64_t missing = 0, duplicates = 0;
  for (const auto& [key, count] : expected) {
    auto it = collector.produced().find(key);
    uint32_t got = it == collector.produced().end() ? 0 : it->second;
    if (got < count) missing += count - got;
    if (got > count) duplicates += got - count;
  }
  EXPECT_GT(collector.count(), 0u);
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(duplicates, 0u);
}

TEST(MultiwayTest, IntermediateStreamIsCounted) {
  MultiWorkloadOptions workload = Workload(3, 1500);
  MultiSource source(workload);
  EventLoop loop;
  TripleCollector collector;
  ThreeWayCascade cascade(&loop, CascadeOptions(), &collector);
  cascade.RunToCompletion(&source);
  EXPECT_GT(cascade.intermediate_count(), 0u);
  EXPECT_EQ(cascade.Stage2Stats().results, collector.count());
}

}  // namespace
}  // namespace bistream
