// The declarative query builder: derivation rules, validation, and
// end-to-end execution via RunQuery.

#include "core/query.h"

#include <gtest/gtest.h>

#include "workload/reference_join.h"

namespace bistream {
namespace {

TEST(StreamJoinQueryTest, EquiDerivesHashRoutingAndHashIndex) {
  auto options = StreamJoinQuery::Join(JoinPredicate::Equi())
                     .Window(4 * kEventSecond)
                     .Parallelism(6, 4)
                     .Build();
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->subgroups_r, 6u);  // Pure hash by default.
  EXPECT_EQ(options->subgroups_s, 4u);
  EXPECT_EQ(*options->index_kind, IndexKind::kHash);
  EXPECT_EQ(options->archive_period, 400 * kEventMilli);  // W/10.
}

TEST(StreamJoinQueryTest, BandDerivesBroadcastAndOrderedIndex) {
  auto options = StreamJoinQuery::Join(JoinPredicate::Band(3))
                     .Window(2 * kEventSecond)
                     .Parallelism(4, 4)
                     .Build();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->subgroups_r, 1u);
  EXPECT_EQ(options->subgroups_s, 1u);
  EXPECT_EQ(*options->index_kind, IndexKind::kOrdered);
}

TEST(StreamJoinQueryTest, SkewProtectionCapsSubgroups) {
  auto options = StreamJoinQuery::Join(JoinPredicate::Equi())
                     .Parallelism(8, 8)
                     .SkewProtection(4)
                     .Build();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->subgroups_r, 2u);  // 8 units / 4 per subgroup.
  EXPECT_EQ(options->subgroups_s, 2u);
}

TEST(StreamJoinQueryTest, ExplicitSubgroupsRespected) {
  auto options = StreamJoinQuery::Join(JoinPredicate::Equi())
                     .Parallelism(6, 6)
                     .Subgroups(3, 2)
                     .Build();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->subgroups_r, 3u);
  EXPECT_EQ(options->subgroups_s, 2u);
}

TEST(StreamJoinQueryTest, FullHistoryHasNoExpiry) {
  auto options = StreamJoinQuery::Join(JoinPredicate::Equi())
                     .FullHistory()
                     .Build();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->window, kFullHistoryWindow);
  EXPECT_EQ(options->archive_period, 1 * kEventSecond);
}

TEST(StreamJoinQueryTest, ValidationErrors) {
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .Window(0)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .Parallelism(0, 2)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .Routers(0)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .BatchSize(0)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .ArchivePeriod(0)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  // Subgroups on a non-equi predicate: the invalid configuration that
  // would silently miss results must be rejected up front.
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Band(1))
                  .Subgroups(2, 2)
                  .Build()
                  .status()
                  .IsInvalidArgument());
  // More subgroups than units.
  EXPECT_TRUE(StreamJoinQuery::Join(JoinPredicate::Equi())
                  .Parallelism(2, 2)
                  .Subgroups(4, 1)
                  .Build()
                  .status()
                  .IsInvalidArgument());
}

TEST(RunQueryTest, ExecutesEndToEnd) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.total_tuples = 2000;
  workload.seed = 5;
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  struct VecSource final : StreamSource {
    const std::vector<TimedTuple>* v;
    size_t pos = 0;
    std::optional<TimedTuple> Next() override {
      if (pos >= v->size()) return std::nullopt;
      return (*v)[pos++];
    }
  } replay;
  replay.v = &stream;

  CollectorSink sink(/*check=*/true);
  StreamJoinQuery query = StreamJoinQuery::Join(JoinPredicate::Equi())
                              .Window(1 * kEventSecond)
                              .Parallelism(3, 3)
                              .BatchSize(8)
                              .Seed(9);
  auto stats = RunQuery(query, &replay, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->input_tuples, 2000u);
  EXPECT_EQ(stats->results, sink.count());
  CheckReport check = sink.checker().Check(stream, JoinPredicate::Equi(),
                                           1 * kEventSecond);
  EXPECT_TRUE(check.Clean()) << check.ToString();
}

TEST(RunQueryTest, RejectsNullArguments) {
  StreamJoinQuery query = StreamJoinQuery::Join(JoinPredicate::Equi());
  CollectorSink sink;
  EXPECT_TRUE(RunQuery(query, nullptr, &sink).status().IsInvalidArgument());
}

}  // namespace
}  // namespace bistream
