#include "core/routing.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bistream {
namespace {

Tuple Make(RelationId rel, int64_t key) {
  Tuple t;
  t.relation = rel;
  t.key = key;
  return t;
}

struct TestCluster {
  TopologyManager topo;
  std::shared_ptr<const TopologyView> view;
  TestCluster(uint32_t d, uint32_t e, int r_units, int s_units)
      : topo(d, e) {
    for (int i = 0; i < r_units; ++i) topo.AddUnit(kRelationR);
    for (int i = 0; i < s_units; ++i) topo.AddUnit(kRelationS);
    view = topo.Snapshot();
  }
};

TEST(RoutingPolicyTest, ContRandBroadcastsToWholeOppositeSide) {
  TestCluster cluster(1, 1, 3, 4);
  RoutingPolicy policy(1, 1);
  RouteDecision d = policy.Route(Make(kRelationR, 42), *cluster.view);
  EXPECT_EQ(d.probe_units->size(), 4u);  // All S units.
  RouteDecision d2 = policy.Route(Make(kRelationS, 42), *cluster.view);
  EXPECT_EQ(d2.probe_units->size(), 3u);  // All R units.
}

TEST(RoutingPolicyTest, ContRandStoreRotatesOverAllUnits) {
  TestCluster cluster(1, 1, 3, 3);
  RoutingPolicy policy(1, 1);
  std::map<uint32_t, int> store_counts;
  for (int i = 0; i < 300; ++i) {
    RouteDecision d = policy.Route(Make(kRelationR, i), *cluster.view);
    ++store_counts[d.store_unit];
  }
  ASSERT_EQ(store_counts.size(), 3u);
  for (const auto& [unit, count] : store_counts) EXPECT_EQ(count, 100);
}

TEST(RoutingPolicyTest, ContHashSameKeySameSubgroup) {
  TestCluster cluster(2, 2, 4, 4);
  RoutingPolicy policy(2, 2);
  // All probes for one key must target the same opposite subgroup, and the
  // store unit must always be in the own-side subgroup the probes of the
  // opposite relation would target.
  RouteDecision r1 = policy.Route(Make(kRelationR, 7), *cluster.view);
  RouteDecision r2 = policy.Route(Make(kRelationR, 7), *cluster.view);
  EXPECT_EQ(r1.probe_units, r2.probe_units);

  // An S tuple with the same key probes R's subgroup for key 7; the R
  // store units for key 7 must all live inside that probed set.
  RouteDecision s = policy.Route(Make(kRelationS, 7), *cluster.view);
  std::set<uint32_t> probed_r(s.probe_units->begin(), s.probe_units->end());
  for (int i = 0; i < 10; ++i) {
    RouteDecision r = policy.Route(Make(kRelationR, 7), *cluster.view);
    EXPECT_TRUE(probed_r.count(r.store_unit))
        << "stored r would be missed by s probes";
  }
}

TEST(RoutingPolicyTest, ContHashStoreRotatesWithinSubgroup) {
  // Skew absorption: a single hot key's stores spread over the whole
  // subgroup instead of hammering one unit.
  TestCluster cluster(2, 2, 6, 6);
  RoutingPolicy policy(2, 2);
  std::map<uint32_t, int> store_counts;
  for (int i = 0; i < 300; ++i) {
    RouteDecision d = policy.Route(Make(kRelationR, 42), *cluster.view);
    ++store_counts[d.store_unit];
  }
  ASSERT_EQ(store_counts.size(), 3u);  // 6 units / 2 subgroups.
  for (const auto& [unit, count] : store_counts) EXPECT_EQ(count, 100);
}

TEST(RoutingPolicyTest, PureHashSingleProbeTarget) {
  // d == n: each subgroup is a single unit — classic hash partitioning.
  TestCluster cluster(4, 4, 4, 4);
  RoutingPolicy policy(4, 4);
  RouteDecision d = policy.Route(Make(kRelationR, 9), *cluster.view);
  EXPECT_EQ(d.probe_units->size(), 1u);
}

TEST(RoutingPolicyTest, SubgroupSelectionIsDeterministic) {
  RoutingPolicy a(4, 2), b(4, 2);
  for (int64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.SubgroupFor(key, 0), b.SubgroupFor(key, 0));
    EXPECT_LT(a.SubgroupFor(key, 0), 4u);
    EXPECT_LT(a.SubgroupFor(key, 1), 2u);
  }
}

TEST(RoutingPolicyTest, ProbesCoverAllStoresProperty) {
  // Core coverage invariant behind exactly-once: for any r and s with
  // matching keys, s's probe set contains r's store unit and vice versa.
  for (uint32_t d : {1u, 2u, 3u}) {
    for (uint32_t e : {1u, 2u}) {
      TestCluster cluster(d, e, 6, 4);
      RoutingPolicy policy(d, e);
      for (int64_t key = 0; key < 50; ++key) {
        RouteDecision r = policy.Route(Make(kRelationR, key), *cluster.view);
        RouteDecision s = policy.Route(Make(kRelationS, key), *cluster.view);
        std::set<uint32_t> s_probes_r(s.probe_units->begin(),
                                      s.probe_units->end());
        std::set<uint32_t> r_probes_s(r.probe_units->begin(),
                                      r.probe_units->end());
        EXPECT_TRUE(s_probes_r.count(r.store_unit))
            << "d=" << d << " e=" << e << " key=" << key;
        EXPECT_TRUE(r_probes_s.count(s.store_unit))
            << "d=" << d << " e=" << e << " key=" << key;
      }
    }
  }
}

}  // namespace
}  // namespace bistream
