// Parameterized exactly-once property sweep: every combination of
// predicate class, routing strategy, router count, cluster shape, and
// skew must produce the oracle's result multiset exactly once, and no
// emitted pair may violate the window. This is the repository's broadest
// correctness net.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

struct PropertyCase {
  const char* name;
  PredicateKind predicate;
  uint32_t routers;
  uint32_t joiners_r;
  uint32_t joiners_s;
  uint32_t subgroups_r;
  uint32_t subgroups_s;
  double zipf_theta;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

class EnginePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EnginePropertyTest, ExactlyOnceAndWindowExact) {
  const PropertyCase& param = GetParam();

  BicliqueOptions options;
  options.num_routers = param.routers;
  options.joiners_r = param.joiners_r;
  options.joiners_s = param.joiners_s;
  options.subgroups_r = param.subgroups_r;
  options.subgroups_s = param.subgroups_s;
  switch (param.predicate) {
    case PredicateKind::kEqui:
      options.predicate = JoinPredicate::Equi();
      break;
    case PredicateKind::kBand:
      options.predicate = JoinPredicate::Band(2);
      break;
    case PredicateKind::kLessThan:
      options.predicate = JoinPredicate::LessThan();
      break;
    case PredicateKind::kTheta:
      options.predicate = JoinPredicate::Theta(
          "sum-mod-7", [](const Tuple& l, const Tuple& r) {
            return (l.key + r.key) % 7 == 0;
          });
      break;
  }
  options.window = 500 * kEventMilli;
  options.archive_period = 100 * kEventMilli;
  options.punct_interval = 7 * kMillisecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = param.predicate == PredicateKind::kLessThan ||
                                param.predicate == PredicateKind::kTheta
                            ? 40   // Keep the cross product affordable.
                            : 60;
  workload.rate_r = RateSchedule::Constant(600);
  workload.rate_s = RateSchedule::Constant(600);
  workload.total_tuples = 2400;
  workload.zipf_theta_r = param.zipf_theta;
  workload.zipf_theta_s = param.zipf_theta;
  workload.seed = param.seed;

  RunReport report = RunBicliqueWorkload(options, workload, /*check=*/true);
  EXPECT_GT(report.results, 0u) << "degenerate workload produced no joins";
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
  // Internal consistency: the engine's own result counter agrees.
  EXPECT_EQ(report.results, report.engine.results);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePropertyTest,
    ::testing::Values(
        // Equi join across routing strategies and shapes.
        PropertyCase{"equi_rand_1r", PredicateKind::kEqui, 1, 2, 2, 1, 1,
                     0.0, 1},
        PropertyCase{"equi_rand_3r", PredicateKind::kEqui, 3, 3, 2, 1, 1,
                     0.0, 2},
        PropertyCase{"equi_hash", PredicateKind::kEqui, 2, 4, 4, 4, 4, 0.0,
                     3},
        PropertyCase{"equi_subgroup", PredicateKind::kEqui, 2, 6, 4, 2, 2,
                     0.0, 4},
        PropertyCase{"equi_asymmetric", PredicateKind::kEqui, 2, 1, 5, 1, 5,
                     0.0, 5},
        // Skewed keys.
        PropertyCase{"equi_hash_zipf", PredicateKind::kEqui, 2, 4, 4, 4, 4,
                     1.0, 6},
        PropertyCase{"equi_subgroup_zipf", PredicateKind::kEqui, 2, 4, 4, 2,
                     2, 1.2, 7},
        PropertyCase{"equi_rand_zipf", PredicateKind::kEqui, 2, 3, 3, 1, 1,
                     1.0, 8},
        // Non-equi predicates (ContRand only).
        PropertyCase{"band", PredicateKind::kBand, 2, 3, 3, 1, 1, 0.0, 9},
        PropertyCase{"band_1r", PredicateKind::kBand, 1, 2, 4, 1, 1, 0.0,
                     10},
        PropertyCase{"band_zipf", PredicateKind::kBand, 3, 2, 2, 1, 1, 0.8,
                     11},
        PropertyCase{"less_than", PredicateKind::kLessThan, 2, 3, 3, 1, 1,
                     0.0, 12},
        PropertyCase{"theta", PredicateKind::kTheta, 2, 2, 3, 1, 1, 0.0,
                     13},
        // Repeat key configurations with different seeds.
        PropertyCase{"equi_hash", PredicateKind::kEqui, 2, 4, 4, 4, 4, 0.0,
                     14},
        PropertyCase{"equi_rand_3r", PredicateKind::kEqui, 3, 3, 2, 1, 1,
                     0.0, 15},
        PropertyCase{"band", PredicateKind::kBand, 2, 3, 3, 1, 1, 0.0, 16}),
    CaseName);

// Determinism: identical configuration twice => bit-identical outcome.
TEST(EngineDeterminismTest, SameSeedSameResults) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 3;
  options.joiners_s = 3;
  options.window = 500 * kEventMilli;
  options.archive_period = 125 * kEventMilli;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 50;
  workload.total_tuples = 3000;
  workload.seed = 42;

  RunReport a = RunBicliqueWorkload(options, workload);
  RunReport b = RunBicliqueWorkload(options, workload);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.engine.messages, b.engine.messages);
  EXPECT_EQ(a.engine.bytes, b.engine.bytes);
  EXPECT_EQ(a.engine.makespan_ns, b.engine.makespan_ns);
  EXPECT_EQ(a.latency.P99(), b.latency.P99());
}

TEST(EngineDeterminismTest, DifferentSeedsDifferentTraffic) {
  BicliqueOptions options;
  options.window = 500 * kEventMilli;
  options.archive_period = 125 * kEventMilli;
  SyntheticWorkloadOptions workload;
  workload.key_domain = 50;
  workload.total_tuples = 3000;
  workload.seed = 1;
  RunReport a = RunBicliqueWorkload(options, workload);
  workload.seed = 2;
  RunReport b = RunBicliqueWorkload(options, workload);
  EXPECT_NE(a.results, b.results);
}

}  // namespace
}  // namespace bistream
