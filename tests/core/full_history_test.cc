// Full-history joins (the paper supports joining against the entire
// accumulated stream, not only a sliding window): with the window scope
// set to kFullHistoryWindow nothing ever expires and every matching pair
// across the whole stream is produced exactly once.

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

SyntheticWorkloadOptions LongWorkload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 80;
  workload.rate_r = RateSchedule::Constant(300);
  workload.rate_s = RateSchedule::Constant(300);
  workload.total_tuples = 3000;  // ~5 s of stream: far beyond any window
                                 // the sliding tests use.
  workload.seed = seed;
  return workload;
}

BicliqueOptions FullHistoryEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = kFullHistoryWindow;
  options.archive_period = 500 * kEventMilli;
  return options;
}

TEST(FullHistoryTest, AllHistoricalPairsProducedExactlyOnce) {
  RunReport report = RunBicliqueWorkload(FullHistoryEngine(),
                                         LongWorkload(1), /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
  // Cross-check the count analytically-ish: the oracle with the same scope
  // is the check itself; additionally nothing may have expired.
  EXPECT_EQ(report.engine.expired_tuples, 0u);
  EXPECT_EQ(report.engine.expired_subindexes, 0u);
  // Every tuple stays stored.
  EXPECT_EQ(static_cast<uint64_t>(report.engine.state_bytes) > 0, true);
  EXPECT_EQ(report.engine.stored, 3000u);
}

TEST(FullHistoryTest, ProducesStrictlyMoreThanSlidingWindow) {
  SyntheticWorkloadOptions workload = LongWorkload(2);
  RunReport full =
      RunBicliqueWorkload(FullHistoryEngine(), workload, /*check=*/false);
  BicliqueOptions sliding = FullHistoryEngine();
  sliding.window = 500 * kEventMilli;
  RunReport windowed = RunBicliqueWorkload(sliding, workload);
  EXPECT_GT(full.results, windowed.results);
  // And a windowed run does reclaim memory while the full-history run
  // keeps everything.
  EXPECT_GT(windowed.engine.expired_tuples, 0u);
  EXPECT_LT(windowed.engine.state_bytes, full.engine.state_bytes);
}

TEST(FullHistoryTest, FullHistoryCountMatchesClosedForm) {
  // With uniform keys over domain D and n_r, n_s tuples, the expected pair
  // count is sum over keys of n_r(k) * n_s(k); verify exactly via the
  // oracle and the engine agreeing (already done above) plus a sanity
  // magnitude check here.
  SyntheticWorkloadOptions workload = LongWorkload(3);
  RunReport report = RunBicliqueWorkload(FullHistoryEngine(), workload);
  double n_per_side = 1500.0;
  double expected_mean = n_per_side * n_per_side / 80.0;
  EXPECT_NEAR(static_cast<double>(report.results), expected_mean,
              expected_mean * 0.2);
}

TEST(FullHistoryTest, MatrixSupportsFullHistoryToo) {
  MatrixOptions options;
  options.rows = 2;
  options.cols = 2;
  options.window = kFullHistoryWindow;
  RunReport report =
      RunMatrixWorkload(options, LongWorkload(4), /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
  EXPECT_EQ(report.engine.expired_tuples, 0u);
}

}  // namespace
}  // namespace bistream
