// Crash-recovery correctness: a joiner killed mid-run by a seeded
// FaultPlan must be detected from its punctuation silence, replaced via
// checkpoint restore plus router replay, and the run must still produce
// exactly the oracle's result multiset — deterministically across runs
// with the same seed.

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "ops/failure_detector.h"
#include "sim/fault.h"

namespace bistream {
namespace {

struct FaultRun {
  RunReport report;
  std::vector<InjectedFault> timeline;
  std::vector<DetectionEvent> detections;
  std::vector<RecoveryEvent> recoveries;
  std::string topology;
};

FailureDetectorOptions DetectorOptions() {
  FailureDetectorOptions options;
  options.check_interval = 20 * kMillisecond;
  options.timeout = 60 * kMillisecond;
  options.backoff = 100 * kMillisecond;
  return options;
}

// Drives a workload with a fault plan injected and the detector running.
FaultRun RunWithFaults(const BicliqueOptions& options,
                       const SyntheticWorkloadOptions& workload,
                       const FaultPlan& plan) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);
  FaultInjector injector(
      &loop, plan, [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
        return engine.InjectCrash(crash, draw);
      });
  FailureDetector detector(&engine, DetectorOptions());

  injector.Start();
  detector.Start();
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();

  FaultRun run;
  run.report.engine = engine.Stats();
  run.report.results = sink.count();
  run.report.check =
      sink.checker().Check(stream, options.predicate, options.window);
  run.report.checked = true;
  run.timeline = injector.timeline();
  run.detections = detector.detections();
  run.recoveries = engine.recovery_events();
  run.topology = engine.DescribeTopology();
  return run;
}

SyntheticWorkloadOptions FaultWorkload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = 6000;  // ~6 s of stream.
  workload.seed = seed;
  return workload;
}

BicliqueOptions FaultTolerantEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_rounds = 16;
  return options;
}

TEST(FaultRecoveryTest, CrashedJoinerIsDetectedAndRecoveredExactlyOnce) {
  FaultPlan plan;
  plan.crashes.push_back({.at = 1500 * kMillisecond, .unit = 1});

  FaultRun run = RunWithFaults(FaultTolerantEngine(), FaultWorkload(21), plan);

  ASSERT_EQ(run.timeline.size(), 1u);
  EXPECT_EQ(run.timeline[0].unit, 1u);
  ASSERT_EQ(run.detections.size(), 1u);
  EXPECT_EQ(run.detections[0].failed_unit, 1u);
  EXPECT_GT(run.detections[0].time, SimTime{1500 * kMillisecond});
  EXPECT_GE(run.detections[0].silence_ns, DetectorOptions().timeout);

  ASSERT_EQ(run.recoveries.size(), 1u);
  const RecoveryEvent& event = run.recoveries[0];
  EXPECT_EQ(event.failed_unit, 1u);
  EXPECT_EQ(event.replacement_unit, run.detections[0].replacement_unit);
  // 150 rounds elapsed before the crash with a checkpoint every 16: the
  // restore must have found one, and replay starts right after it.
  ASSERT_TRUE(event.checkpoint_round.has_value());
  EXPECT_EQ(event.replay_from, *event.checkpoint_round + 1);
  EXPECT_GT(event.activation_round, event.replay_from);
  EXPECT_GT(event.restored_tuples, 0u);
  EXPECT_GT(event.caught_up_at, event.detected_at)
      << "replacement never finished its replayed backlog";

  const EngineStats& stats = run.report.engine;
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_GT(stats.replayed_messages, 0u);
  EXPECT_GT(stats.restored_tuples, 0u);
  EXPECT_GT(stats.messages_lost_on_crash + stats.messages_dropped_dead, 0u);

  // The whole point: despite the crash, the sink saw the oracle's multiset
  // exactly once.
  EXPECT_GT(run.report.results, 0u);
  EXPECT_TRUE(run.report.check.Clean()) << run.report.check.ToString();

  // Operator tooling surfaces the failure counters.
  EXPECT_NE(run.topology.find("faults:"), std::string::npos) << run.topology;
  EXPECT_NE(run.topology.find("failed"), std::string::npos) << run.topology;
}

TEST(FaultRecoveryTest, RecoveryIsDeterministicAcrossRuns) {
  FaultPlan plan;
  plan.crashes.push_back({.at = 1500 * kMillisecond, .unit = 2});

  FaultRun a = RunWithFaults(FaultTolerantEngine(), FaultWorkload(22), plan);
  FaultRun b = RunWithFaults(FaultTolerantEngine(), FaultWorkload(22), plan);

  EXPECT_TRUE(a.report.check.Clean()) << a.report.check.ToString();
  EXPECT_TRUE(b.report.check.Clean()) << b.report.check.ToString();
  EXPECT_EQ(a.report.results, b.report.results);
  EXPECT_EQ(a.report.engine.replayed_messages,
            b.report.engine.replayed_messages);
  EXPECT_EQ(a.report.engine.suppressed_duplicates,
            b.report.engine.suppressed_duplicates);

  ASSERT_EQ(a.recoveries.size(), 1u);
  ASSERT_EQ(b.recoveries.size(), 1u);
  EXPECT_EQ(a.recoveries[0].detected_at, b.recoveries[0].detected_at);
  EXPECT_EQ(a.recoveries[0].caught_up_at, b.recoveries[0].caught_up_at);
  EXPECT_EQ(a.recoveries[0].checkpoint_round, b.recoveries[0].checkpoint_round);
  EXPECT_EQ(a.recoveries[0].replay_from, b.recoveries[0].replay_from);
  EXPECT_EQ(a.recoveries[0].activation_round, b.recoveries[0].activation_round);
  EXPECT_EQ(a.recoveries[0].restored_tuples, b.recoveries[0].restored_tuples);
}

TEST(FaultRecoveryTest, CrashBeforeFirstCheckpointReplaysFromStart) {
  BicliqueOptions options = FaultTolerantEngine();
  // Next checkpoint would land at round 1000 (~10 s): never reached.
  options.fault_tolerance.checkpoint_rounds = 1000;
  FaultPlan plan;
  plan.crashes.push_back({.at = 1 * kSecond, .unit = 0});

  FaultRun run = RunWithFaults(options, FaultWorkload(23), plan);

  ASSERT_EQ(run.recoveries.size(), 1u);
  EXPECT_FALSE(run.recoveries[0].checkpoint_round.has_value());
  EXPECT_EQ(run.recoveries[0].replay_from, 0u);
  EXPECT_EQ(run.recoveries[0].restored_tuples, 0u);
  EXPECT_GT(run.report.engine.replayed_messages, 0u);
  EXPECT_TRUE(run.report.check.Clean()) << run.report.check.ToString();
}

TEST(FaultRecoveryTest, CrashesOnBothSidesRecover) {
  FaultPlan plan;
  plan.crashes.push_back({.at = 1200 * kMillisecond, .unit = 0});   // R side.
  plan.crashes.push_back({.at = 2800 * kMillisecond, .unit = 3});   // S side.

  FaultRun run = RunWithFaults(FaultTolerantEngine(), FaultWorkload(24), plan);

  EXPECT_EQ(run.timeline.size(), 2u);
  ASSERT_EQ(run.recoveries.size(), 2u);
  EXPECT_EQ(run.report.engine.crashes, 2u);
  EXPECT_TRUE(run.report.check.Clean()) << run.report.check.ToString();
}

TEST(FaultRecoveryTest, SeededRandomVictimIsDeterministic) {
  FaultPlan plan;
  // No explicit unit: the victim comes from the plan's seeded draw.
  plan.crashes.push_back({.at = 1500 * kMillisecond, .unit = std::nullopt});
  plan.seed = 99;

  FaultRun a = RunWithFaults(FaultTolerantEngine(), FaultWorkload(25), plan);
  FaultRun b = RunWithFaults(FaultTolerantEngine(), FaultWorkload(25), plan);

  ASSERT_EQ(a.timeline.size(), 1u);
  ASSERT_EQ(b.timeline.size(), 1u);
  EXPECT_EQ(a.timeline[0].unit, b.timeline[0].unit);
  EXPECT_TRUE(a.report.check.Clean()) << a.report.check.ToString();
  EXPECT_EQ(a.report.results, b.report.results);
}

// A false positive (recovering a healthy unit) must fence the suspect
// first, so the cluster degrades to one unnecessary recovery — never to a
// split brain with two owners of the same window emitting duplicates.
TEST(FaultRecoveryTest, FalsePositiveRecoveryIsFencedAndStaysClean) {
  SyntheticWorkloadOptions workload = FaultWorkload(26);
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueOptions options = FaultTolerantEngine();
  BicliqueEngine engine(&loop, options, &sink);
  loop.ScheduleAt(1500 * kMillisecond, [&] {
    ASSERT_TRUE(engine.RecoverUnit(2).ok());  // Unit 2 is alive and healthy.
  });

  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.crashes, 1u) << "fencing must kill the healthy suspect";
  EXPECT_EQ(stats.recoveries, 1u);
  CheckReport check =
      sink.checker().Check(stream, options.predicate, options.window);
  EXPECT_TRUE(check.Clean()) << check.ToString();
}

TEST(FaultRecoveryTest, RecoveryRequiresFaultTolerance) {
  EventLoop loop;
  CollectorSink sink;
  BicliqueOptions options;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  BicliqueEngine engine(&loop, options, &sink);
  engine.Start();
  EXPECT_FALSE(engine.RecoverUnit(0).ok());
  EXPECT_FALSE(engine.CrashJoiner(99).ok());  // Unknown unit.
}

}  // namespace
}  // namespace bistream
