#include "core/topology.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(TopologyTest, AddUnitsBalancesSubgroups) {
  TopologyManager topo(/*subgroups_r=*/2, /*subgroups_s=*/3);
  std::vector<uint32_t> r_units;
  for (int i = 0; i < 4; ++i) r_units.push_back(topo.AddUnit(kRelationR));
  // Round-robin over least-populated: subgroups 0,1,0,1.
  EXPECT_EQ(topo.unit(r_units[0]).subgroup, 0u);
  EXPECT_EQ(topo.unit(r_units[1]).subgroup, 1u);
  EXPECT_EQ(topo.unit(r_units[2]).subgroup, 0u);
  EXPECT_EQ(topo.unit(r_units[3]).subgroup, 1u);
  EXPECT_EQ(topo.NumActive(kRelationR), 4u);
  EXPECT_EQ(topo.NumActive(kRelationS), 0u);
}

TEST(TopologyTest, SnapshotSeparatesStoreAndProbeSets) {
  TopologyManager topo(1, 1);
  uint32_t r1 = topo.AddUnit(kRelationR);
  uint32_t r2 = topo.AddUnit(kRelationR);
  uint32_t s1 = topo.AddUnit(kRelationS);
  ASSERT_TRUE(topo.StartDrain(r2).ok());

  auto view = topo.Snapshot();
  // Draining r2: out of the store set, still in probe and punct sets.
  EXPECT_EQ(view->sides[0].store_by_subgroup[0],
            (std::vector<uint32_t>{r1}));
  EXPECT_EQ(view->sides[0].probe_by_subgroup[0],
            (std::vector<uint32_t>{r1, r2}));
  EXPECT_EQ(view->sides[1].store_by_subgroup[0],
            (std::vector<uint32_t>{s1}));
  EXPECT_EQ(view->punct_targets, (std::vector<uint32_t>{r1, r2, s1}));
}

TEST(TopologyTest, RetiredUnitsDisappearFromSnapshots) {
  TopologyManager topo(1, 1);
  topo.AddUnit(kRelationR);
  uint32_t r2 = topo.AddUnit(kRelationR);
  ASSERT_TRUE(topo.StartDrain(r2).ok());
  ASSERT_TRUE(topo.Retire(r2).ok());
  auto view = topo.Snapshot();
  EXPECT_EQ(view->sides[0].probe_by_subgroup[0].size(), 1u);
  EXPECT_EQ(view->punct_targets.size(), 1u);
  EXPECT_EQ(topo.NumLive(kRelationR), 1u);
}

TEST(TopologyTest, LifecycleTransitionsEnforced) {
  TopologyManager topo(1, 1);
  uint32_t r1 = topo.AddUnit(kRelationR);
  uint32_t r2 = topo.AddUnit(kRelationR);
  // Retire before drain: invalid.
  EXPECT_TRUE(topo.Retire(r1).IsFailedPrecondition());
  ASSERT_TRUE(topo.StartDrain(r1).ok());
  // Double drain: invalid.
  EXPECT_TRUE(topo.StartDrain(r1).IsFailedPrecondition());
  // Cannot drain the last active unit.
  EXPECT_TRUE(topo.StartDrain(r2).IsFailedPrecondition());
  EXPECT_TRUE(topo.Retire(r1).ok());
  // Unknown unit.
  EXPECT_TRUE(topo.StartDrain(999).IsNotFound());
}

TEST(TopologyTest, DrainCandidatePrefersYoungestOfFullestSubgroup) {
  TopologyManager topo(2, 1);
  uint32_t u0 = topo.AddUnit(kRelationR);  // Subgroup 0.
  topo.AddUnit(kRelationR);                // Subgroup 1.
  uint32_t u2 = topo.AddUnit(kRelationR);  // Subgroup 0.
  auto candidate = topo.PickDrainCandidate(kRelationR);
  ASSERT_TRUE(candidate.ok());
  EXPECT_EQ(*candidate, u2);  // Youngest in the fullest subgroup (0).
  (void)u0;
}

TEST(TopologyTest, ScaleOutAfterDrainRefillsThinnestSubgroup) {
  TopologyManager topo(2, 1);
  topo.AddUnit(kRelationR);                 // sg 0.
  uint32_t u1 = topo.AddUnit(kRelationR);   // sg 1.
  ASSERT_TRUE(topo.StartDrain(u1).ok());
  // sg 1 now has no active unit: the next add must go there.
  uint32_t u2 = topo.AddUnit(kRelationR);
  EXPECT_EQ(topo.unit(u2).subgroup, 1u);
}

TEST(TopologyTest, SnapshotVersionsIncrease) {
  TopologyManager topo(1, 1);
  topo.AddUnit(kRelationR);
  auto v1 = topo.Snapshot();
  auto v2 = topo.Snapshot();
  EXPECT_LT(v1->version, v2->version);
}

TEST(TopologyTest, SideOfMapsRelations) {
  EXPECT_EQ(TopologyManager::SideOf(kRelationR), 0);
  EXPECT_EQ(TopologyManager::SideOf(kRelationS), 1);
}

}  // namespace
}  // namespace bistream
