// Router unit behaviour: sequencing, store/join fan-out, punctuation
// cadence and rounds, epoch activation at round boundaries, stop-flush.

#include "core/router.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sim/event_loop.h"

namespace bistream {
namespace {

struct Capture {
  std::vector<std::pair<uint32_t, Message>> sent;  // (unit, message).
  UnitSendFn Fn() {
    return [this](uint32_t unit, Message msg) {
      sent.emplace_back(unit, std::move(msg));
    };
  }
  size_t CountKind(Message::Kind kind) const {
    size_t n = 0;
    for (const auto& [unit, msg] : sent) n += msg.kind == kind ? 1 : 0;
    return n;
  }
};

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : topo_(1, 1) {
    for (int i = 0; i < 2; ++i) topo_.AddUnit(kRelationR);
    for (int i = 0; i < 3; ++i) topo_.AddUnit(kRelationS);
  }

  // Router holds a mutex now (non-movable): hand out a reference to a
  // fixture-owned instance.
  Router& MakeRouter(SimTime punct_interval = 10 * kMillisecond) {
    RouterOptions options;
    options.router_id = 7;
    options.punct_interval = punct_interval;
    router_ = std::make_unique<Router>(options, &loop_, capture_.Fn());
    router_->ScheduleEpoch(0, topo_.Snapshot());
    return *router_;
  }

  Message InputTuple(RelationId rel, int64_t key) {
    Tuple t;
    t.relation = rel;
    t.key = key;
    return MakeTupleMessage(std::move(t), StreamKind::kStore, 0, 0, 0);
  }

  EventLoop loop_;
  TopologyManager topo_;
  Capture capture_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, ForksTupleIntoStoreAndJoinCopies) {
  Router& router = MakeRouter();
  router.Handle(InputTuple(kRelationR, 42));
  // 1 store copy (R side) + 3 join copies (all S units, ContRand).
  ASSERT_EQ(capture_.sent.size(), 4u);
  size_t stores = 0, joins = 0;
  for (const auto& [unit, msg] : capture_.sent) {
    EXPECT_EQ(msg.kind, Message::Kind::kTuple);
    EXPECT_EQ(msg.router_id, 7u);
    EXPECT_EQ(msg.seq, 1u);
    EXPECT_EQ(msg.round, 0u);
    (msg.stream == StreamKind::kStore ? stores : joins)++;
  }
  EXPECT_EQ(stores, 1u);
  EXPECT_EQ(joins, 3u);
}

TEST_F(RouterTest, SeqIncrementsPerTuple) {
  Router& router = MakeRouter();
  router.Handle(InputTuple(kRelationR, 1));
  router.Handle(InputTuple(kRelationS, 2));
  EXPECT_EQ(router.current_seq(), 2u);
  // S tuple: 1 store + 2 join copies (R side has 2 units).
  EXPECT_EQ(capture_.sent.size(), 4u + 3u);
  EXPECT_EQ(capture_.sent.back().second.seq, 2u);
}

TEST_F(RouterTest, PunctuationCadenceAdvancesRounds) {
  Router& router = MakeRouter(5 * kMillisecond);
  router.Start();
  loop_.RunUntil(16 * kMillisecond);  // Ticks at 5, 10, 15 ms.
  EXPECT_EQ(router.current_round(), 3u);
  // Each tick sends one punctuation to each of the 5 live units.
  EXPECT_EQ(capture_.CountKind(Message::Kind::kPunctuation), 15u);
  EXPECT_EQ(router.stats().punctuations, 3u);
  // Drain remaining scheduled ticks via stop-flush.
  router.Handle(MakeControl(ControlOp::kStopFlush, 0));
  loop_.RunUntilIdle();
}

TEST_F(RouterTest, TupleRoundTracksCurrentRound) {
  Router& router = MakeRouter(5 * kMillisecond);
  router.Start();
  loop_.RunUntil(11 * kMillisecond);  // round_ == 2 now.
  router.Handle(InputTuple(kRelationR, 5));
  EXPECT_EQ(capture_.sent.back().second.round, 2u);
  router.Handle(MakeControl(ControlOp::kStopFlush, 0));
  loop_.RunUntilIdle();
}

TEST_F(RouterTest, EpochActivatesExactlyAtItsRound) {
  Router& router = MakeRouter(5 * kMillisecond);
  uint32_t new_unit = topo_.AddUnit(kRelationS);
  router.ScheduleEpoch(2, topo_.Snapshot());
  router.Start();

  // Round 0: the new unit must receive nothing.
  router.Handle(InputTuple(kRelationR, 1));
  for (const auto& [unit, msg] : capture_.sent) {
    EXPECT_NE(unit, new_unit);
  }
  capture_.sent.clear();

  loop_.RunUntil(11 * kMillisecond);  // Now in round 2: epoch active.
  capture_.sent.clear();
  router.Handle(InputTuple(kRelationR, 1));
  bool saw_new_unit = false;
  for (const auto& [unit, msg] : capture_.sent) {
    saw_new_unit |= unit == new_unit;
  }
  EXPECT_TRUE(saw_new_unit);
  router.Handle(MakeControl(ControlOp::kStopFlush, 0));
  loop_.RunUntilIdle();
}

TEST_F(RouterTest, StopFlushEmitsFinalPunctuationAndHalts) {
  Router& router = MakeRouter();
  router.Start();
  router.Handle(MakeControl(ControlOp::kStopFlush, 0));
  EXPECT_TRUE(router.stopped());
  EXPECT_EQ(capture_.CountKind(Message::Kind::kPunctuation), 5u);
  // Pending tick fires but emits nothing further.
  loop_.RunUntilIdle();
  EXPECT_EQ(capture_.CountKind(Message::Kind::kPunctuation), 5u);
}

TEST_F(RouterTest, TuplesAfterStopAreDroppedAndCounted) {
  Router& router = MakeRouter();
  router.Start();
  router.Handle(MakeControl(ControlOp::kStopFlush, 0));
  size_t before = capture_.sent.size();
  router.Handle(InputTuple(kRelationR, 9));
  EXPECT_EQ(capture_.sent.size(), before);
  EXPECT_EQ(router.stats().dropped_after_stop, 1u);
  loop_.RunUntilIdle();
}

TEST_F(RouterTest, StatsCountStreams) {
  Router& router = MakeRouter();
  router.Handle(InputTuple(kRelationR, 1));
  router.Handle(InputTuple(kRelationR, 2));
  EXPECT_EQ(router.stats().tuples_routed, 2u);
  EXPECT_EQ(router.stats().store_messages, 2u);
  EXPECT_EQ(router.stats().join_messages, 6u);
}

TEST_F(RouterTest, HandleReturnsPositiveServiceCost) {
  Router& router = MakeRouter();
  EXPECT_GT(router.Handle(InputTuple(kRelationR, 1)), 0u);
  EXPECT_GT(router.Handle(MakeControl(ControlOp::kStopFlush, 0)), 0u);
}

TEST(RouterDeathTest, EpochForPastRoundAborts) {
  EventLoop loop;
  TopologyManager topo(1, 1);
  topo.AddUnit(kRelationR);
  topo.AddUnit(kRelationS);
  RouterOptions options;
  options.punct_interval = 1 * kMillisecond;
  Router router(options, &loop, [](uint32_t, Message) {});
  router.ScheduleEpoch(0, topo.Snapshot());
  router.Start();
  loop.RunUntil(10 * kMillisecond);
  EXPECT_DEATH(router.ScheduleEpoch(1, topo.Snapshot()),
               "already passed");
}

TEST(RouterDeathTest, StartWithoutEpochAborts) {
  EventLoop loop;
  RouterOptions options;
  Router router(options, &loop, [](uint32_t, Message) {});
  EXPECT_DEATH(router.Start(), "initial epoch");
}

}  // namespace
}  // namespace bistream
