// HPA-style autoscaler: scaling decisions from CPU / memory metrics,
// bounds, cooldown, and correctness of results while it acts.

#include "ops/autoscaler.h"

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

struct ScalerRun {
  std::vector<AutoscalerSample> timeline;
  CheckReport check;
  size_t final_active = 0;
};

ScalerRun RunWithAutoscaler(const BicliqueOptions& engine_options,
                            const AutoscalerOptions& scaler_options,
                            const SyntheticWorkloadOptions& workload) {
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, engine_options, &sink);
  Autoscaler scaler(&engine, scaler_options);

  engine.Start();
  scaler.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  scaler.Stop();
  engine.FlushAndStop();
  loop.RunUntilIdle();

  ScalerRun run;
  run.timeline = scaler.timeline();
  run.check = sink.checker().Check(stream, engine_options.predicate,
                                   engine_options.window);
  run.final_active = engine.ActiveJoiners(scaler_options.side);
  return run;
}

BicliqueOptions BaseEngine() {
  BicliqueOptions options;
  options.num_routers = 1;
  options.joiners_r = 1;
  options.joiners_s = 1;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  return options;
}

TEST(AutoscalerTest, CpuPressureAddsReplicas) {
  BicliqueOptions engine = BaseEngine();
  // Make probe work expensive so a single joiner saturates (~40 candidates
  // per probe x 20 µs x 800 probes/s ≈ 64% busy on one joiner).
  engine.cost.probe_candidate_ns = 20000;

  AutoscalerOptions scaler;
  scaler.metric = ScaleMetric::kCpu;
  scaler.side = kRelationS;  // R tuples probe S-side joiners.
  scaler.interval = 1 * kSecond;
  scaler.target_cpu = 0.5;
  scaler.max_replicas = 4;
  scaler.cooldown = 1 * kSecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 20;
  workload.rate_r = RateSchedule::Constant(800);
  workload.rate_s = RateSchedule::Constant(800);
  workload.total_tuples = 16000;  // ~10 s.
  workload.seed = 1;

  ScalerRun run = RunWithAutoscaler(engine, scaler, workload);
  EXPECT_GT(run.final_active, 1u) << "autoscaler never scaled out";
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
  bool scaled = false;
  for (const auto& s : run.timeline) scaled |= s.scaled;
  EXPECT_TRUE(scaled);
}

TEST(AutoscalerTest, IdleLoadScalesBackToMinimum) {
  BicliqueOptions engine = BaseEngine();
  engine.joiners_r = 3;
  engine.retire_grace_factor = 1.0;

  AutoscalerOptions scaler;
  scaler.metric = ScaleMetric::kCpu;
  scaler.side = kRelationR;
  scaler.interval = 1 * kSecond;
  scaler.target_cpu = 0.5;
  scaler.min_replicas = 1;
  scaler.cooldown = 1 * kSecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 1000;
  workload.rate_r = RateSchedule::Constant(50);  // Nearly idle.
  workload.rate_s = RateSchedule::Constant(50);
  workload.total_tuples = 1500;  // ~15 s.
  workload.seed = 2;

  ScalerRun run = RunWithAutoscaler(engine, scaler, workload);
  EXPECT_EQ(run.final_active, 1u);
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
}

TEST(AutoscalerTest, RespectsMaxReplicas) {
  BicliqueOptions engine = BaseEngine();
  engine.cost.probe_candidate_ns = 20000;  // Hopelessly overloaded.

  AutoscalerOptions scaler;
  scaler.metric = ScaleMetric::kCpu;
  scaler.side = kRelationS;
  scaler.interval = 500 * kMillisecond;
  scaler.target_cpu = 0.3;
  scaler.max_replicas = 2;
  scaler.cooldown = 0;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 10;
  workload.rate_r = RateSchedule::Constant(1000);
  workload.rate_s = RateSchedule::Constant(1000);
  workload.total_tuples = 12000;
  workload.seed = 3;

  ScalerRun run = RunWithAutoscaler(engine, scaler, workload);
  EXPECT_LE(run.final_active, 2u);
  for (const auto& s : run.timeline) EXPECT_LE(s.desired_replicas, 2u);
}

TEST(AutoscalerTest, CooldownLimitsActionRate) {
  BicliqueOptions engine = BaseEngine();
  engine.cost.probe_candidate_ns = 20000;

  AutoscalerOptions scaler;
  scaler.metric = ScaleMetric::kCpu;
  scaler.side = kRelationS;
  scaler.interval = 500 * kMillisecond;
  scaler.target_cpu = 0.3;
  scaler.max_replicas = 8;
  scaler.cooldown = 4 * kSecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 10;
  workload.rate_r = RateSchedule::Constant(1000);
  workload.rate_s = RateSchedule::Constant(1000);
  workload.total_tuples = 16000;  // ~8 s.
  workload.seed = 4;

  ScalerRun run = RunWithAutoscaler(engine, scaler, workload);
  int actions = 0;
  for (const auto& s : run.timeline) actions += s.scaled ? 1 : 0;
  // ~8 s of run with 4 s cooldown: at most ~3 actions.
  EXPECT_LE(actions, 3);
}

TEST(AutoscalerTest, MemoryMetricTracksWindowGrowth) {
  BicliqueOptions engine = BaseEngine();
  engine.window = 4 * kEventSecond;  // Big window → big state.

  AutoscalerOptions scaler;
  scaler.metric = ScaleMetric::kMemory;
  scaler.side = kRelationR;
  scaler.interval = 1 * kSecond;
  scaler.target_memory_bytes = 40 * 1024;  // Low target → must scale out.
  scaler.max_replicas = 4;
  scaler.cooldown = 1 * kSecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 500;
  workload.rate_r = RateSchedule::Constant(700);
  workload.rate_s = RateSchedule::Constant(700);
  workload.total_tuples = 14000;  // ~10 s.
  workload.seed = 5;

  ScalerRun run = RunWithAutoscaler(engine, scaler, workload);
  EXPECT_GT(run.final_active, 1u);
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
  // Metric values in the timeline must be byte-scaled (not tiny ratios).
  bool saw_bytes = false;
  for (const auto& s : run.timeline) saw_bytes |= s.metric_value > 1000;
  EXPECT_TRUE(saw_bytes);
}

}  // namespace
}  // namespace bistream
