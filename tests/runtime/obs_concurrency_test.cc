// Thread-safety of the observability layer, written for the tsan suite:
// the metrics registry hammered from many recording threads while a
// sampler thread reads, the wall-clock telemetry sampler active over a
// real parallel-backend run, and the tracer's per-thread event buffers
// folding to a schedule-independent span. Each test is a race reproducer
// first and a semantics check second — run them under ThreadSanitizer
// (`ctest --preset tsan`) to get the former, and on any build the
// assertions pin the latter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/relaxed.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bistream {
namespace {

// Recording threads (counter increments, timer records, gauge
// registration) race a sampling thread calling every read-side entry
// point. Totals must be exact once the writers join: relaxed counter adds
// never drop, and timer records land in per-thread shards that merge.
TEST(ObsConcurrencyTest, RegistryHammeredWhileSampling) {
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 5000;
  MetricsRegistry registry;
  // Shared hot-path handles, resolved up front like the engine does...
  Counter* shared = registry.GetCounter("engine.shared");
  Timer* timer = registry.GetTimer("engine.op_ns");

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      registry.Sample();
      registry.SampleTimers();
      registry.ReadCounter("engine.shared");
      registry.ReadGauge("worker.0.progress");
    }
  });

  std::vector<std::thread> workers;
  // Gauge-fed cells follow the engine's single-writer pattern: the worker
  // stores, the sampler's gauge callback loads tear-free.
  std::vector<RelaxedCell<uint64_t>> progress(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // ...plus per-thread registration racing the sampler's iteration.
      std::string scope = MetricsRegistry::ScopedName("worker", t, "ops");
      Counter* own = registry.GetCounter(scope);
      registry.RegisterGauge(
          MetricsRegistry::ScopedName("worker", t, "progress"),
          [&progress, t] { return static_cast<double>(progress[t].load()); });
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        shared->Increment();
        own->Increment(2);
        timer->Record(i % 97 + 1);
        progress[t] = i;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(shared->value(), kThreads * kOpsPerThread);
  EXPECT_EQ(timer->count(), kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.ReadCounter(
                  MetricsRegistry::ScopedName("worker", t, "ops")),
              2 * kOpsPerThread);
  }
  EXPECT_EQ(registry.counter_count(), 1u + kThreads);
}

// The wall-clock sampler and the tracer both active over a real
// multithreaded run, at an aggressive cadence so samples land *during*
// the workers' execution: the sampler thread reads every gauge while
// routers and joiners mutate the backing stats. Correctness must be
// untouched and the closing sample must agree with the final totals.
TEST(ObsConcurrencyTest, WallSamplerAndTracerUnderParallelLoad) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 30 * kEventSecond;
  options.archive_period = 1 * kEventSecond;
  options.backend = runtime::BackendKind::kParallel;
  options.telemetry.sample_period = 2 * kMillisecond;  // Wall ms: tight.
  options.telemetry.trace_every = 8;
  ASSERT_TRUE(options.Validate().ok());

  RunReport report = RunBicliqueWorkload(
      options, MakeWorkload(2000, 300 * kMillisecond, /*key_domain=*/40,
                            /*seed=*/29),
      /*check=*/true);

  EXPECT_TRUE(report.check.Clean())
      << "missing=" << report.check.missing
      << " duplicates=" << report.check.duplicates
      << " spurious=" << report.check.spurious;
  EXPECT_GT(report.results, 0u);
  EXPECT_GT(report.trace_spans, 0u);
  // At minimum the closing sample; typically many mid-run rows.
  ASSERT_GE(report.series.size(), 1u);
  const std::vector<double>* results = report.series.Column("engine.results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(results->back()),
            static_cast<uint64_t>(report.engine.results));
  // Wall timestamps are strictly increasing across rows.
  const std::vector<uint64_t>& ts = report.series.timestamps();
  for (size_t i = 1; i < ts.size(); ++i) EXPECT_GT(ts[i], ts[i - 1]);
}

// Per-thread trace buffers fold to the same span no matter which thread's
// buffer merges first: min-wins timestamps, summed costs/counts, and the
// emit instant taken from the earliest matching probe.
TEST(ObsConcurrencyTest, TracerMergeIsScheduleIndependent) {
  constexpr int kThreads = 4;
  TupleTracer tracer(/*trace_every=*/1);
  tracer.SetConcurrent(true);

  Tuple tuple;
  tuple.relation = kRelationS;
  tuple.id = 42;
  ASSERT_NE(tracer.OnIngress(tuple, /*now=*/10), nullptr);
  tuple.traced = true;  // What the engine sets on selection.

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, tuple, t] {
      // Distinct per-thread timestamps; thread 0 carries the minima.
      SimTime base = 100 + 50 * static_cast<SimTime>(t);
      tracer.OnJoinArrival(tuple, base);
      tracer.OnRelease(tuple, base + 10);
      tracer.OnProbe(tuple, /*candidates=*/3, /*matches=*/t == 0 ? 0u : 1u,
                     /*cost_ns=*/7, base + 20);
    });
  }
  for (std::thread& w : workers) w.join();

  // Nothing folds until the driver merges.
  TraceSpan* span = tracer.Find(kRelationS, 42);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->join_arrival, 0u);

  tracer.MergeThreadBuffers();
  EXPECT_EQ(span->join_arrival, 100u);
  EXPECT_EQ(span->released, 110u);
  EXPECT_EQ(span->probe_units, static_cast<uint32_t>(kThreads));
  EXPECT_EQ(span->probe_candidates, 3u * kThreads);
  EXPECT_EQ(span->results, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(span->probe_cost_ns, 7u * kThreads);
  // Thread 0's probe matched nothing, so the earliest *matching* probe —
  // thread 1 at 170 — sets the emit instant.
  EXPECT_EQ(span->emit, 170u);

  // Merging again is a no-op (buffers drained).
  tracer.MergeThreadBuffers();
  EXPECT_EQ(span->probe_units, static_cast<uint32_t>(kThreads));

  // An untraced copy records nothing even in concurrent mode.
  Tuple untraced = tuple;
  untraced.traced = false;
  tracer.OnJoinArrival(untraced, 5);
  tracer.MergeThreadBuffers();
  EXPECT_EQ(span->probe_units, static_cast<uint32_t>(kThreads));
}

}  // namespace
}  // namespace bistream
