// Fault tolerance on real threads: crashes on the parallel backend kill
// live worker threads, detection is wall-clock punctuation silence, and
// recovery respawns a worker and replays through the real transport. These
// tests drive the same protocol the simulator suite verifies
// (tests/core/fault_recovery_test.cc) against real interleavings:
// driver-injected deterministic crashes, wall-clock detector recoveries,
// chained failure of a not-yet-caught-up replacement, and the
// crash/rescale interplay. Every run must stay exactly-once against the
// ReferenceJoin oracle.
//
// Crash timing here is deterministic where it matters (anchored to tuple
// positions on the driver thread, not wall timers); only the detector
// tests use wall-clock cadences, with assertions tolerant of scheduling
// noise (an occasional false-positive fence is legal protocol behavior).

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "harness/runner.h"
#include "ops/failure_detector.h"
#include "runtime/fault/fault.h"
#include "runtime/parallel/parallel_executor.h"
#include "sim/event_loop.h"

namespace bistream {
namespace {

// Virtual seconds per wall second for the paced drive; one wall
// punctuation round spans this many virtual (= event) milliseconds per
// wall millisecond, so the engine's expiry disorder bound must dilate.
constexpr double kCompression = 10.0;

SyntheticWorkloadOptions FaultWorkload(uint64_t total_tuples, uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = total_tuples;
  workload.seed = seed;
  return workload;
}

BicliqueOptions FaultTolerantOptions(uint64_t checkpoint_rounds) {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.punct_interval = 10 * kMillisecond;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_rounds = checkpoint_rounds;
  options.backend = runtime::BackendKind::kParallel;
  options.event_time_dilation = kCompression;
  return options;
}

// Paces the stream onto the wall clock, running any registered driver
// action when its tuple index is reached (before injecting that tuple).
// Actions run on the driver thread, where engine mutation is legal.
void PacedDriveWithActions(
    runtime::ParallelExecutor* exec, BicliqueEngine* engine,
    const std::vector<TimedTuple>& stream,
    const std::map<size_t, std::function<void()>>& actions) {
  SimTime start = exec->clock()->now();
  for (size_t i = 0; i < stream.size(); ++i) {
    auto action = actions.find(i);
    if (action != actions.end()) action->second();
    SimTime target =
        start + static_cast<SimTime>(
                    static_cast<double>(stream[i].arrival) / kCompression);
    exec->RunUntil(target);
    while (exec->clock()->now() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      exec->RunUntil(target);
    }
    engine->InjectNow(stream[i].tuple);
  }
}

// Idle linger before the stop-flush: keeps punctuation heartbeats and
// activation rounds alive until every crash has a caught-up recovery (see
// bench/e15_fault_recovery.cc for the full rationale). Bounded.
void SettleRecoveries(runtime::ParallelExecutor* exec,
                      BicliqueEngine* engine) {
  SimTime deadline = exec->clock()->now() + 2 * kSecond;
  for (;;) {
    exec->RunUntil(0);
    EngineStats stats = engine->Stats();
    bool settled = stats.crashes == stats.recoveries;
    if (settled) {
      for (const RecoveryEvent& event : engine->recovery_events()) {
        if (event.caught_up_at == 0) {
          settled = false;
          break;
        }
      }
    }
    if (settled || exec->clock()->now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

struct ParallelFaultRun {
  EngineStats stats;
  CheckReport check;
  std::vector<RecoveryEvent> recoveries;
  std::vector<DetectionEvent> detections;
};

// Runs `stream` on the parallel backend with driver actions anchored at
// tuple indexes; when `detect` is set, a wall-clock failure detector runs.
ParallelFaultRun RunParallel(
    const BicliqueOptions& options, const std::vector<TimedTuple>& stream,
    const std::map<size_t, std::function<void()>>& actions,
    BicliqueEngine** engine_out = nullptr,
    const FailureDetectorOptions* detect = nullptr,
    const FaultPlan* plan = nullptr) {
  runtime::ParallelExecutorOptions exec_options;
  exec_options.queue_capacity = options.queue_capacity;
  runtime::ParallelExecutor exec(options.cost, exec_options);
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&exec, options, &sink);
  if (engine_out != nullptr) *engine_out = &engine;

  std::unique_ptr<FailureDetector> detector;
  if (detect != nullptr) {
    detector = std::make_unique<FailureDetector>(&engine, *detect);
  }
  std::unique_ptr<FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<FaultInjector>(
        exec.clock(), *plan,
        [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
          return engine.InjectCrash(crash, draw);
        });
    injector->Start();
  }
  if (detector != nullptr) detector->Start();

  engine.Start();
  PacedDriveWithActions(&exec, &engine, stream, actions);
  SettleRecoveries(&exec, &engine);
  engine.FlushAndStop();
  exec.RunUntilIdle();

  ParallelFaultRun run;
  run.stats = engine.Stats();
  run.check = sink.checker().Check(stream, engine.options().predicate,
                                   engine.options().window);
  run.recoveries = engine.recovery_events();
  if (detector != nullptr) run.detections = detector->detections();
  if (engine_out != nullptr) *engine_out = nullptr;
  return run;
}

// A deterministic driver-side crash + immediate recovery: no detector, no
// wall timers — the crash lands between two specific tuples, so the replay
// span and exactly-once outcome must hold on every schedule.
TEST(ParallelFaultTest, DriverInjectedCrashRecoversExactlyOnce) {
  SyntheticSource source(FaultWorkload(3000, 31));
  std::vector<TimedTuple> stream = DrainSource(&source);
  BicliqueOptions options = FaultTolerantOptions(8);

  std::map<size_t, std::function<void()>> actions;
  BicliqueEngine* engine = nullptr;
  actions[1500] = [&engine] {
    ASSERT_TRUE(engine->CrashJoiner(1).ok());
    ASSERT_TRUE(engine->RecoverUnit(1).ok());
  };
  ParallelFaultRun run = RunParallel(options, stream, actions, &engine);

  EXPECT_EQ(run.stats.crashes, 1u);
  EXPECT_EQ(run.stats.recoveries, 1u);
  EXPECT_EQ(run.stats.respawns, 1u) << "recovery must spawn a real worker";
  ASSERT_EQ(run.recoveries.size(), 1u);
  const RecoveryEvent& event = run.recoveries[0];
  EXPECT_EQ(event.failed_unit, 1u);
  // 1500 tuples at the paced rate is ~15 wall rounds; with a checkpoint
  // every 8 released rounds a restore point must exist.
  ASSERT_TRUE(event.checkpoint_round.has_value());
  EXPECT_EQ(event.replay_from, *event.checkpoint_round + 1);
  EXPECT_GT(event.activation_round, event.replay_from);
  EXPECT_GT(event.restored_tuples, 0u);
  EXPECT_GT(event.caught_up_at, event.detected_at);
  EXPECT_GT(run.stats.replayed_messages, 0u);
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
}

// Chained failure: the replacement is killed right after recovery, before
// it can reach its activation round or take a checkpoint of its own. The
// second recovery must hand the pending replay to the new replacement
// (Router::RemapReplaysLocked) and restore from the re-tagged snapshot —
// the router logs for the rounds it covers were trimmed at the original
// checkpoint, so losing it would be unrecoverable.
TEST(ParallelFaultTest, ReplacementCrashBeforeCatchUpStaysExactlyOnce) {
  SyntheticSource source(FaultWorkload(3000, 32));
  std::vector<TimedTuple> stream = DrainSource(&source);
  BicliqueOptions options = FaultTolerantOptions(8);

  std::map<size_t, std::function<void()>> actions;
  BicliqueEngine* engine = nullptr;
  actions[1500] = [&engine] {
    ASSERT_TRUE(engine->CrashJoiner(1).ok());
    Result<uint32_t> first = engine->RecoverUnit(1);
    ASSERT_TRUE(first.ok());
    // Kill the replacement immediately: its activation round is in the
    // future, so every router still holds a pending replay naming it.
    ASSERT_TRUE(engine->CrashJoiner(*first).ok());
    ASSERT_TRUE(engine->RecoverUnit(*first).ok());
  };
  ParallelFaultRun run = RunParallel(options, stream, actions, &engine);

  EXPECT_EQ(run.stats.crashes, 2u);
  EXPECT_EQ(run.stats.recoveries, 2u);
  EXPECT_EQ(run.stats.respawns, 2u);
  ASSERT_EQ(run.recoveries.size(), 2u);
  const RecoveryEvent& first = run.recoveries[0];
  const RecoveryEvent& second = run.recoveries[1];
  EXPECT_EQ(second.failed_unit, first.replacement_unit);
  // The dead replacement never checkpointed, so the second restore must
  // come from the first's re-tagged snapshot: same round, same contents,
  // same replay start.
  ASSERT_TRUE(first.checkpoint_round.has_value());
  ASSERT_TRUE(second.checkpoint_round.has_value());
  EXPECT_EQ(*second.checkpoint_round, *first.checkpoint_round);
  EXPECT_EQ(second.replay_from, first.replay_from);
  EXPECT_EQ(second.restored_tuples, first.restored_tuples);
  EXPECT_GT(second.caught_up_at, second.detected_at);
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
}

// Crash/rescale interplay: recover a crashed unit, then scale the same
// side down (draining whichever unit the policy picks, possibly the
// replacement) and scale the opposite side out — all against live worker
// threads. Results must stay exactly-once through the overlapping
// membership changes.
TEST(ParallelFaultTest, RescaleAfterRecoveryStaysExactlyOnce) {
  SyntheticSource source(FaultWorkload(3000, 33));
  std::vector<TimedTuple> stream = DrainSource(&source);
  BicliqueOptions options = FaultTolerantOptions(16);

  std::map<size_t, std::function<void()>> actions;
  BicliqueEngine* engine = nullptr;
  actions[900] = [&engine] {
    ASSERT_TRUE(engine->CrashJoiner(0).ok());
    ASSERT_TRUE(engine->RecoverUnit(0).ok());
  };
  actions[1500] = [&engine] {
    ASSERT_TRUE(engine->ScaleIn(kRelationR).ok());
    ASSERT_TRUE(engine->ScaleOut(kRelationS).ok());
  };
  ParallelFaultRun run = RunParallel(options, stream, actions, &engine);

  EXPECT_EQ(run.stats.crashes, 1u);
  EXPECT_EQ(run.stats.recoveries, 1u);
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
}

// The wall-clock path end to end: a planned crash kills a worker thread
// mid-run, the detector notices real punctuation silence, and recovery
// respawns and catches up — with the measured latencies surfaced in the
// engine stats. Scheduling noise can add a false-positive fence on a slow
// machine, so counts are lower bounds; exactness of the result multiset is
// not negotiable.
TEST(ParallelFaultTest, WallClockDetectorRecoversKilledWorker) {
  SyntheticSource source(FaultWorkload(3000, 34));
  std::vector<TimedTuple> stream = DrainSource(&source);
  BicliqueOptions options = FaultTolerantOptions(16);

  FailureDetectorOptions detect;
  detect.check_interval = 10 * kMillisecond;
  detect.timeout = 40 * kMillisecond;
  detect.backoff = 50 * kMillisecond;

  FaultPlan plan;
  plan.crashes.push_back({.at = 150 * kMillisecond, .unit = 2});

  ParallelFaultRun run = RunParallel(options, stream, {}, nullptr, &detect,
                                     &plan);

  EXPECT_GE(run.stats.crashes, 1u);
  EXPECT_GE(run.stats.recoveries, 1u);
  EXPECT_GE(run.stats.respawns, 1u);
  ASSERT_GE(run.detections.size(), 1u);
  bool planned_victim_detected = false;
  for (const DetectionEvent& detection : run.detections) {
    if (detection.failed_unit == 2u) {
      planned_victim_detected = true;
      EXPECT_GE(detection.silence_ns, detect.timeout);
    }
  }
  EXPECT_TRUE(planned_victim_detected);
  // Measured wall latencies: the crash cannot be detected before the
  // silence bound has elapsed, and a caught-up recovery takes nonzero wall
  // time. Upper bounds are generous (loaded CI machines).
  EXPECT_GT(run.stats.detection_latency_max_ns, SimTime{10 * kMillisecond});
  EXPECT_LT(run.stats.detection_latency_max_ns, SimTime{2 * kSecond});
  EXPECT_GT(run.stats.recovery_wall_max_ns, SimTime{0});
  EXPECT_TRUE(run.check.Clean()) << run.check.ToString();
}

// Cross-backend fault equivalence: the same seeded crash produces the
// oracle's exact multiset on both backends. Clean against the same oracle
// on both sides means the simulated recovery and the real-thread recovery
// computed identical result sets.
TEST(ParallelFaultTest, FaultEquivalenceAcrossBackends) {
  SyntheticSource source(FaultWorkload(3000, 35));
  std::vector<TimedTuple> stream = DrainSource(&source);

  // Sim: virtual-time plan, virtual detector cadences.
  BicliqueOptions sim_options = FaultTolerantOptions(16);
  sim_options.backend = runtime::BackendKind::kSim;
  sim_options.event_time_dilation = 1.0;
  CheckReport sim_check;
  uint64_t sim_results = 0;
  {
    EventLoop loop;
    CollectorSink sink(/*check=*/true);
    BicliqueEngine engine(&loop, sim_options, &sink);
    FaultPlan plan;
    plan.crashes.push_back({.at = 1500 * kMillisecond, .unit = 1});
    FaultInjector injector(
        &loop, plan, [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
          return engine.InjectCrash(crash, draw);
        });
    FailureDetectorOptions detect;
    detect.check_interval = 20 * kMillisecond;
    detect.timeout = 60 * kMillisecond;
    detect.backoff = 100 * kMillisecond;
    FailureDetector detector(&engine, detect);
    injector.Start();
    detector.Start();
    engine.Start();
    for (const TimedTuple& tt : stream) {
      loop.RunUntil(tt.arrival);
      engine.InjectNow(tt.tuple);
    }
    engine.FlushAndStop();
    loop.RunUntilIdle();
    sim_check = sink.checker().Check(stream, sim_options.predicate,
                                     sim_options.window);
    sim_results = sink.count();
    EXPECT_EQ(engine.Stats().crashes, 1u);
  }
  EXPECT_TRUE(sim_check.Clean()) << sim_check.ToString();

  // Parallel: the same crash anchored deterministically at the equivalent
  // stream position (tuple ~1500 of 3000 ≈ t=1.5 s virtual).
  BicliqueOptions par_options = FaultTolerantOptions(16);
  std::map<size_t, std::function<void()>> actions;
  BicliqueEngine* engine = nullptr;
  actions[1500] = [&engine] {
    ASSERT_TRUE(engine->CrashJoiner(1).ok());
    ASSERT_TRUE(engine->RecoverUnit(1).ok());
  };
  ParallelFaultRun par = RunParallel(par_options, stream, actions, &engine);
  EXPECT_EQ(par.stats.crashes, 1u);
  EXPECT_TRUE(par.check.Clean()) << par.check.ToString();

  // Both Clean against the same oracle => identical multisets.
  EXPECT_EQ(par.check.expected, sim_check.expected);
  EXPECT_EQ(par.check.produced, sim_check.produced);
  EXPECT_GT(sim_results, 0u);
}

}  // namespace
}  // namespace bistream
