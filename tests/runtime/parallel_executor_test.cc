// ParallelExecutor: the thread-per-unit wall-clock backend must honor the
// substrate contracts the engine relies on — pairwise-FIFO delivery per
// sender, quiescence that covers cascaded work, unit-affine timers that run
// on the unit's own worker thread, sender backpressure on a bounded inbox,
// and measured (wall) busy accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/parallel/parallel_executor.h"

namespace bistream {
namespace runtime {
namespace {

// Handler-side state is written only by the unit's worker thread, and the
// quiescence protocol publishes those writes before RunUntilIdle returns,
// so plain (non-atomic) state read after RunUntilIdle is race-free. That
// property is itself part of what these tests pin down (TSan enforces it).

TEST(ParallelExecutorTest, PairwiseFifoPerSender) {
  ParallelExecutor exec(CostModel::Default());
  Unit* dst = exec.AddUnit("dst");
  std::vector<std::pair<uint32_t, uint64_t>> seen;
  dst->SetHandler([&](const Message& msg) -> SimTime {
    seen.emplace_back(msg.router_id, msg.seq);
    return 0;
  });
  Transport* transport = exec.Connect(dst);

  constexpr uint64_t kPerSender = 200;
  auto sender = [transport](uint32_t sender_id) {
    for (uint64_t i = 0; i < kPerSender; ++i) {
      transport->Send(MakePunctuation(sender_id, i, 0));
    }
  };
  std::thread a(sender, 0);
  std::thread b(sender, 1);
  a.join();
  b.join();
  exec.RunUntilIdle();

  ASSERT_EQ(seen.size(), 2 * kPerSender);
  // The interleaving is nondeterministic, but each sender's subsequence
  // must arrive in send order (Definition 8's transport assumption).
  uint64_t next_seq[2] = {0, 0};
  for (const auto& [sender_id, seq] : seen) {
    ASSERT_LT(sender_id, 2u);
    EXPECT_EQ(seq, next_seq[sender_id]);
    next_seq[sender_id] = seq + 1;
  }
}

TEST(ParallelExecutorTest, RunUntilIdleCoversCascadedWork) {
  ParallelExecutor exec(CostModel::Default());
  Unit* first = exec.AddUnit("first");
  Unit* second = exec.AddUnit("second");
  Transport* to_second = exec.Connect(second);

  uint64_t forwarded = 0;
  first->SetHandler([&](const Message& msg) -> SimTime {
    to_second->Send(msg);
    return 0;
  });
  second->SetHandler([&](const Message&) -> SimTime {
    ++forwarded;
    return 0;
  });

  Transport* to_first = exec.Connect(first);
  constexpr uint64_t kMessages = 300;
  for (uint64_t i = 0; i < kMessages; ++i) {
    to_first->Send(MakePunctuation(0, i, 0));
  }
  // Quiescence must include the second hop, not just the directly injected
  // messages.
  exec.RunUntilIdle();
  EXPECT_EQ(forwarded, kMessages);
  EXPECT_EQ(first->stats().messages_processed, kMessages);
  EXPECT_EQ(second->stats().messages_processed, kMessages);
  EXPECT_EQ(exec.total_messages(), 2 * kMessages);
  EXPECT_EQ(exec.worker_threads(), 2u);
}

TEST(ParallelExecutorTest, UnitTimersRunOnTheUnitsWorkerThread) {
  ParallelExecutor exec(CostModel::Default());
  Unit* unit = exec.AddUnit("unit");
  std::thread::id handler_thread;
  unit->SetHandler([&](const Message&) -> SimTime {
    handler_thread = std::this_thread::get_id();
    return 0;
  });
  exec.Connect(unit)->Send(MakePunctuation(0, 0, 0));
  exec.RunUntilIdle();
  ASSERT_NE(handler_thread, std::thread::id());

  std::thread::id timer_thread;
  unit->clock()->ScheduleAfter(kMillisecond, [&] {
    timer_thread = std::this_thread::get_id();
  });
  exec.RunUntilIdle();
  // The timer callback must share the unit's execution context — that is
  // what lets Router::Tick touch router state without locks.
  EXPECT_EQ(timer_thread, handler_thread);
}

TEST(ParallelExecutorTest, ScheduleRepeatingStopsAndQuiesces) {
  ParallelExecutor exec(CostModel::Default());
  Unit* unit = exec.AddUnit("unit");
  unit->SetHandler([](const Message&) -> SimTime { return 0; });

  int ticks = 0;
  unit->clock()->ScheduleRepeating(100 * kMicrosecond,
                                   [&] { return ++ticks < 3; });
  // A repeating timer whose callback returns false leaves nothing armed, so
  // RunUntilIdle returns instead of hanging on a perpetual rearm.
  exec.RunUntilIdle();
  EXPECT_EQ(ticks, 3);
}

TEST(ParallelExecutorTest, DriverTimersRunOnTheDriverThread) {
  ParallelExecutor exec(CostModel::Default());
  std::thread::id timer_thread;
  bool fired = false;
  exec.clock()->ScheduleAfter(kMillisecond, [&] {
    timer_thread = std::this_thread::get_id();
    fired = true;
  });
  exec.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(timer_thread, std::this_thread::get_id());
}

TEST(ParallelExecutorTest, BoundedInboxBackpressureLosesNothing) {
  ParallelExecutorOptions options;
  options.queue_capacity = 2;
  ParallelExecutor exec(CostModel::Default(), options);
  Unit* dst = exec.AddUnit("slow");
  dst->SetHandler([](const Message&) -> SimTime {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return 0;
  });
  Transport* transport = exec.Connect(dst);

  constexpr uint64_t kPerSender = 50;
  auto sender = [transport](uint32_t sender_id) {
    for (uint64_t i = 0; i < kPerSender; ++i) {
      transport->Send(MakePunctuation(sender_id, i, 0));
    }
  };
  std::thread a(sender, 0);
  std::thread b(sender, 1);
  a.join();
  b.join();
  exec.RunUntilIdle();

  EXPECT_EQ(dst->stats().messages_processed, 2 * kPerSender);
  EXPECT_EQ(exec.total_dropped(), 0u);
  // The inbox is bounded: senders blocked instead of growing the queue.
  EXPECT_LE(dst->stats().max_queue_depth, options.queue_capacity);
}

TEST(ParallelExecutorTest, BusyTimeIsMeasuredAndDecomposed) {
  ParallelExecutor exec(CostModel::Default());
  Unit* unit = exec.AddUnit("unit");
  unit->SetHandler([](const Message&) -> SimTime {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    // The virtual charge is ignored by the wall-clock backend.
    return 123456789;
  });
  Transport* transport = exec.Connect(unit);
  for (uint64_t i = 0; i < 10; ++i) {
    transport->Send(MakePunctuation(0, i, 0));
  }
  exec.RunUntilIdle();

  const NodeStats& stats = unit->stats();
  EXPECT_EQ(stats.messages_processed, 10u);
  EXPECT_EQ(stats.punctuation_messages, 10u);
  // Measured wall time: at least the sleeps, nowhere near the fake virtual
  // charge.
  EXPECT_GE(stats.busy_ns, 10 * 200 * kMicrosecond);
  EXPECT_LT(stats.busy_ns, 10 * 123456789ULL);
  EXPECT_EQ(stats.busy_tuple_ns + stats.busy_punctuation_ns +
                stats.busy_batch_ns + stats.busy_control_ns,
            stats.busy_ns);
}

}  // namespace
}  // namespace runtime
}  // namespace bistream
