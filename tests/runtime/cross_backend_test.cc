// Cross-backend equivalence: the same workload and seed must produce the
// identical joined-result multiset on the deterministic simulator and on
// the multithreaded wall-clock backend. This is the paper's correctness
// claim made operational — the order-consistent protocol guarantees
// exactly-once output under ANY consistent global order, so real thread
// interleavings must land on the same result set the simulator computes.
// Both runs are verified against the ReferenceJoin oracle (Clean means the
// produced multiset equals the oracle's exactly), so two Clean runs of the
// same workload produced identical multisets.
//
// Premise: the window covers the whole workload span, so expiry timing
// (which legitimately depends on service order) cannot drop pairs.

#include <gtest/gtest.h>

#include <string>

#include "harness/runner.h"

namespace bistream {
namespace {

void ExpectEquivalent(BicliqueOptions options,
                      const SyntheticWorkloadOptions& workload) {
  ASSERT_TRUE(options.Validate().ok());
  RunReport sim = RunBicliqueWorkload(options, workload, /*check=*/true);
  ASSERT_TRUE(sim.checked);
  EXPECT_TRUE(sim.check.Clean())
      << "sim: missing=" << sim.check.missing
      << " duplicates=" << sim.check.duplicates
      << " spurious=" << sim.check.spurious;
  EXPECT_EQ(sim.backend, "sim");
  EXPECT_FALSE(sim.wall_measured);

  options.backend = runtime::BackendKind::kParallel;
  ASSERT_TRUE(options.Validate().ok());
  RunReport parallel = RunBicliqueWorkload(options, workload, /*check=*/true);
  ASSERT_TRUE(parallel.checked);
  EXPECT_TRUE(parallel.check.Clean())
      << "parallel: missing=" << parallel.check.missing
      << " duplicates=" << parallel.check.duplicates
      << " spurious=" << parallel.check.spurious;
  EXPECT_EQ(parallel.backend, "parallel");
  EXPECT_TRUE(parallel.wall_measured);

  // Identical multiset: both Clean against the same oracle, same counts.
  EXPECT_EQ(parallel.results, sim.results);
  EXPECT_EQ(parallel.check.expected, sim.check.expected);
  EXPECT_EQ(parallel.check.produced, sim.check.produced);
  // Identical exactly-once dedup accounting (no recovery ran, so both must
  // be zero — the parallel schedule may not manufacture duplicates).
  EXPECT_EQ(sim.engine.suppressed_duplicates, 0u);
  EXPECT_EQ(parallel.engine.suppressed_duplicates, 0u);
  EXPECT_GT(sim.results, 0u) << "degenerate workload: nothing joined";
}

TEST(CrossBackendTest, EquiJoinHashRoutedMultisetMatches) {
  BicliqueOptions options;
  options.window = 30 * kEventSecond;  // Covers the whole 500 ms stream.
  options.archive_period = 1 * kEventSecond;
  ExpectEquivalent(options,
                   MakeWorkload(2000, 500 * kMillisecond, /*key_domain=*/40,
                                /*seed=*/7));
}

TEST(CrossBackendTest, BandJoinBroadcastRoutedMultisetMatches) {
  BicliqueOptions options;
  options.window = 30 * kEventSecond;
  options.archive_period = 1 * kEventSecond;
  options.predicate = JoinPredicate::Band(2);
  // Content-insensitive routing: band predicates need full-relation probes.
  options.subgroups_r = 1;
  options.subgroups_s = 1;
  ExpectEquivalent(options,
                   MakeWorkload(1000, 400 * kMillisecond, /*key_domain=*/200,
                                /*seed=*/11));
}

}  // namespace
}  // namespace bistream
