// Cross-backend equivalence: the same workload and seed must produce the
// identical joined-result multiset on the deterministic simulator and on
// the multithreaded wall-clock backend. This is the paper's correctness
// claim made operational — the order-consistent protocol guarantees
// exactly-once output under ANY consistent global order, so real thread
// interleavings must land on the same result set the simulator computes.
// Both runs are verified against the ReferenceJoin oracle (Clean means the
// produced multiset equals the oracle's exactly), so two Clean runs of the
// same workload produced identical multisets.
//
// Premise: the window covers the whole workload span, so expiry timing
// (which legitimately depends on service order) cannot drop pairs.

#include <gtest/gtest.h>

#include <string>

#include "harness/runner.h"

namespace bistream {
namespace {

void ExpectEquivalent(BicliqueOptions options,
                      const SyntheticWorkloadOptions& workload) {
  ASSERT_TRUE(options.Validate().ok());
  RunReport sim = RunBicliqueWorkload(options, workload, /*check=*/true);
  ASSERT_TRUE(sim.checked);
  EXPECT_TRUE(sim.check.Clean())
      << "sim: missing=" << sim.check.missing
      << " duplicates=" << sim.check.duplicates
      << " spurious=" << sim.check.spurious;
  EXPECT_EQ(sim.backend, "sim");
  EXPECT_FALSE(sim.wall_measured);

  options.backend = runtime::BackendKind::kParallel;
  ASSERT_TRUE(options.Validate().ok());
  RunReport parallel = RunBicliqueWorkload(options, workload, /*check=*/true);
  ASSERT_TRUE(parallel.checked);
  EXPECT_TRUE(parallel.check.Clean())
      << "parallel: missing=" << parallel.check.missing
      << " duplicates=" << parallel.check.duplicates
      << " spurious=" << parallel.check.spurious;
  EXPECT_EQ(parallel.backend, "parallel");
  EXPECT_TRUE(parallel.wall_measured);

  // Identical multiset: both Clean against the same oracle, same counts.
  EXPECT_EQ(parallel.results, sim.results);
  EXPECT_EQ(parallel.check.expected, sim.check.expected);
  EXPECT_EQ(parallel.check.produced, sim.check.produced);
  // Identical exactly-once dedup accounting (no recovery ran, so both must
  // be zero — the parallel schedule may not manufacture duplicates).
  EXPECT_EQ(sim.engine.suppressed_duplicates, 0u);
  EXPECT_EQ(parallel.engine.suppressed_duplicates, 0u);
  EXPECT_GT(sim.results, 0u) << "degenerate workload: nothing joined";
}

TEST(CrossBackendTest, EquiJoinHashRoutedMultisetMatches) {
  BicliqueOptions options;
  options.window = 30 * kEventSecond;  // Covers the whole 500 ms stream.
  options.archive_period = 1 * kEventSecond;
  ExpectEquivalent(options,
                   MakeWorkload(2000, 500 * kMillisecond, /*key_domain=*/40,
                                /*seed=*/7));
}

// Telemetry equivalence: with sampling and tracing on, the run-total
// (monotonic) counters must be identical across backends — the wall-clock
// sampler and per-thread trace buffers may not perturb or miscount the
// computation. Cadence-dependent quantities (punctuation counts, sample-row
// counts) legitimately differ: wall ticks are not virtual ticks.
TEST(CrossBackendTest, TelemetryCountersMatchAcrossBackends) {
  BicliqueOptions options;
  options.window = 30 * kEventSecond;
  options.archive_period = 1 * kEventSecond;
  options.telemetry.sample_period = 10 * kMillisecond;
  options.telemetry.trace_every = 16;
  SyntheticWorkloadOptions workload =
      MakeWorkload(2000, 300 * kMillisecond, /*key_domain=*/40, /*seed=*/13);

  ASSERT_TRUE(options.Validate().ok());
  RunReport sim = RunBicliqueWorkload(options, workload, /*check=*/true);
  options.backend = runtime::BackendKind::kParallel;
  ASSERT_TRUE(options.Validate().ok());
  RunReport parallel = RunBicliqueWorkload(options, workload, /*check=*/true);

  EXPECT_TRUE(sim.check.Clean());
  EXPECT_TRUE(parallel.check.Clean());
  EXPECT_EQ(parallel.engine.input_tuples, sim.engine.input_tuples);
  EXPECT_EQ(parallel.engine.stored, sim.engine.stored);
  EXPECT_EQ(parallel.engine.probes, sim.engine.probes);
  EXPECT_EQ(parallel.engine.results, sim.engine.results);
  EXPECT_GT(parallel.engine.results, 0u);

  // Deterministic 1-in-N ingress selection: both backends trace the same
  // tuples, and every traced tuple's span completes on both.
  EXPECT_EQ(parallel.trace_spans, sim.trace_spans);
  EXPECT_GT(parallel.trace_spans, 0u);
  EXPECT_EQ(parallel.breakdown.spans, sim.breakdown.spans);

  // Both backends sampled: at least the closing row, and the closing row's
  // monotonic engine gauges agree with the final stats.
  ASSERT_GE(sim.series.size(), 1u);
  ASSERT_GE(parallel.series.size(), 1u);
  for (const RunReport* report : {&sim, &parallel}) {
    const std::vector<double>* inputs =
        report->series.Column("engine.input_tuples");
    ASSERT_NE(inputs, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(inputs->back()),
              report->engine.input_tuples);
    const std::vector<double>* puncts =
        report->series.Column("router.0.punctuations");
    ASSERT_NE(puncts, nullptr);
    EXPECT_GT(puncts->back(), 0.0);
  }

  // The contention columns exist on both (always-0 under sim).
  for (const char* column :
       {"joiner.0.blocked_sends", "joiner.0.blocked_ns",
        "joiner.0.dequeue_wait_ns", "engine.timer_lag_max_ns"}) {
    EXPECT_NE(parallel.series.Column(column), nullptr) << column;
    EXPECT_NE(sim.series.Column(column), nullptr) << column;
  }
}

TEST(CrossBackendTest, BandJoinBroadcastRoutedMultisetMatches) {
  BicliqueOptions options;
  options.window = 30 * kEventSecond;
  options.archive_period = 1 * kEventSecond;
  options.predicate = JoinPredicate::Band(2);
  // Content-insensitive routing: band predicates need full-relation probes.
  options.subgroups_r = 1;
  options.subgroups_s = 1;
  ExpectEquivalent(options,
                   MakeWorkload(1000, 400 * kMillisecond, /*key_domain=*/200,
                                /*seed=*/11));
}

}  // namespace
}  // namespace bistream
