// Diagnosis-layer tests: detector scoring units, auditor invariants, the
// per-stage profile's exactness, and the end-to-end properties the ISSUE's
// acceptance criteria name — detector determinism under faults, zero
// virtual-time perturbation, and E7-style skew flagged within the first
// few sample windows.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.h"
#include "obs/diagnose/auditor.h"
#include "obs/diagnose/detectors.h"
#include "ops/failure_detector.h"
#include "sim/fault.h"

namespace bistream {
namespace {

// ---------------------------------------------------------------- units --

TEST(GiniCoefficientTest, EvenLoadIsZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({7}), 0.0);
}

TEST(GiniCoefficientTest, ConcentratedLoadApproachesOne) {
  // One unit of four carries everything: G = (n-1)/n = 0.75.
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 100}), 0.75, 1e-9);
  // Mild imbalance scores strictly between.
  double mild = GiniCoefficient({10, 12, 9, 11});
  EXPECT_GT(mild, 0.0);
  EXPECT_LT(mild, 0.2);
}

UnitWindow MakeWindow(uint32_t id, RelationId relation, double load,
                      double busy_fraction = 0.5, uint32_t subgroup = 0) {
  UnitWindow w;
  w.meta.id = id;
  w.meta.relation = relation;
  w.meta.subgroup = subgroup;
  w.meta.active = true;
  w.meta.live = true;
  w.fresh = true;
  w.load = load;
  w.busy_fraction = busy_fraction;
  return w;
}

TEST(DetectorsTest, SkewAlarmIsEdgeTriggered) {
  DetectorOptions options;
  options.backpressure = false;
  options.straggler = false;
  options.warmup_windows = 0;
  Detectors detectors(options);
  DiagnosticLog log;

  // Window 0: one R-side unit carries 4x the mean -> raise.
  std::vector<UnitWindow> skewed = {
      MakeWindow(0, kRelationR, 400), MakeWindow(1, kRelationR, 50),
      MakeWindow(2, kRelationR, 50), MakeWindow(3, kRelationR, 50)};
  detectors.OnWindow(1000, 0, skewed, &log);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].detector, "skew");
  EXPECT_EQ(log.events()[0].severity, DiagnosticSeverity::kWarning);
  EXPECT_EQ(log.events()[0].scope, "side.R");

  // Window 1: still skewed -> no duplicate event.
  detectors.OnWindow(2000, 1, skewed, &log);
  EXPECT_EQ(log.events().size(), 1u);

  // Window 2: balanced -> one clear (kInfo).
  std::vector<UnitWindow> balanced = {
      MakeWindow(0, kRelationR, 100), MakeWindow(1, kRelationR, 100),
      MakeWindow(2, kRelationR, 100), MakeWindow(3, kRelationR, 100)};
  detectors.OnWindow(3000, 2, balanced, &log);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[1].severity, DiagnosticSeverity::kInfo);
}

TEST(DetectorsTest, StragglerRequiresAnOutlierNotJustNoise) {
  DetectorOptions options;
  options.backpressure = false;
  options.skew = false;
  options.warmup_windows = 0;
  Detectors detectors(options);
  DiagnosticLog log;

  // Homogeneous side: no alarm even at high load.
  std::vector<UnitWindow> even = {
      MakeWindow(0, kRelationS, 100, 0.80), MakeWindow(1, kRelationS, 100, 0.81),
      MakeWindow(2, kRelationS, 100, 0.79), MakeWindow(3, kRelationS, 100, 0.80)};
  detectors.OnWindow(1000, 0, even, &log);
  EXPECT_EQ(log.events().size(), 0u);

  // One unit pinned while its peers idle: z-score outlier -> alarm names
  // it. Six members so the single outlier clears z >= 2 against the
  // population stddev (z ~ 2.24 here).
  std::vector<UnitWindow> outlier = {
      MakeWindow(0, kRelationS, 100, 0.95), MakeWindow(1, kRelationS, 100, 0.20),
      MakeWindow(2, kRelationS, 100, 0.20), MakeWindow(3, kRelationS, 100, 0.20),
      MakeWindow(4, kRelationS, 100, 0.20), MakeWindow(5, kRelationS, 100, 0.20)};
  detectors.OnWindow(2000, 1, outlier, &log);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].detector, "straggler");
  EXPECT_EQ(log.events()[0].scope, "joiner.0");
}

TEST(DetectorsTest, BackpressureNeedsSustainedGrowth) {
  DetectorOptions options;
  options.skew = false;
  options.straggler = false;
  options.warmup_windows = 0;
  options.bp_growth_windows = 3;
  options.bp_min_queue = 8;
  Detectors detectors(options);
  DiagnosticLog log;

  auto with_queue = [](double depth) {
    UnitWindow w = MakeWindow(0, kRelationR, 10);
    w.queue_depth = depth;
    return std::vector<UnitWindow>{w};
  };
  // Three strict growths are needed after the baseline sample.
  detectors.OnWindow(1000, 0, with_queue(2), &log);
  detectors.OnWindow(2000, 1, with_queue(5), &log);
  detectors.OnWindow(3000, 2, with_queue(9), &log);
  EXPECT_EQ(log.events().size(), 0u);  // Streak is 2: not yet.
  detectors.OnWindow(4000, 3, with_queue(14), &log);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].detector, "backpressure");
  EXPECT_EQ(log.events()[0].scope, "joiner.0");
  // A dip resets the streak and clears the alarm.
  detectors.OnWindow(5000, 4, with_queue(3), &log);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[1].severity, DiagnosticSeverity::kInfo);
}

TEST(InvariantAuditorTest, CounterRegressionIsAViolation) {
  InvariantAuditor auditor(AuditorOptions{.strict = false});
  DiagnosticLog log;
  SampleRow first = {{"engine.results", 10.0}, {"joiner.0.stored", 40.0}};
  SampleRow second = {{"engine.results", 6.0}, {"joiner.0.stored", 41.0}};
  auditor.OnSample(1000, 0, first, &log);
  EXPECT_EQ(log.errors(), 0u);
  auditor.OnSample(2000, 1, second, &log);
  EXPECT_EQ(log.errors(), 1u);
  EXPECT_EQ(auditor.violations(), 1u);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].detector, "audit");
  EXPECT_EQ(log.events()[0].severity, DiagnosticSeverity::kError);
  EXPECT_EQ(log.events()[0].scope, "engine.results");
}

TEST(InvariantAuditorTest, ExpiryLagBeyondTheoremBoundIsAViolation) {
  InvariantAuditor auditor(
      AuditorOptions{.strict = false, .max_expiry_lag_us = 1000.0});
  DiagnosticLog log;
  SampleRow fine = {{"joiner.2.expiry_lag_us", 900.0}};
  SampleRow late = {{"joiner.2.expiry_lag_us", 1500.0}};
  auditor.OnSample(1000, 0, fine, &log);
  EXPECT_EQ(log.errors(), 0u);
  auditor.OnSample(2000, 1, late, &log);
  EXPECT_EQ(log.errors(), 1u);
}

TEST(InvariantAuditorTest, FinalBalanceViolationIsCaught) {
  InvariantAuditor auditor(AuditorOptions{.strict = false});
  DiagnosticLog log;
  // Fault-free counters where stored != routed: conservation is broken.
  FinalCounters counters;
  counters.input_tuples = 100;
  counters.routed = 100;
  counters.stored = 90;
  counters.results = 10;
  auditor.Finalize(5000, 3, counters, &log);
  EXPECT_GE(log.errors(), 1u);
}

// ----------------------------------------------------------- end to end --

BicliqueOptions SmallEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  return options;
}

SyntheticWorkloadOptions SmallWorkload(uint64_t total_tuples,
                                       uint64_t seed = 977) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 200;
  workload.rate_r = RateSchedule::Constant(1000);
  workload.rate_s = RateSchedule::Constant(1000);
  workload.total_tuples = total_tuples;
  workload.seed = seed;
  return workload;
}

TEST(DiagnoserIntegrationTest, StageTimesPartitionBusyTimeExactly) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.sample_period = 50 * kMillisecond;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(4000));

  ASSERT_TRUE(report.profile.is_object());
  const JsonValue* nodes = report.profile.Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_GE(nodes->size(), 6u);  // 2 routers + 4 joiners.
  for (const JsonValue& node : nodes->elements()) {
    const JsonValue* residual = node.Find("unattributed_ns");
    ASSERT_NE(residual, nullptr);
    // Stage gauges partition SimNode busy time exactly; any residual means
    // a handler path is unattributed.
    EXPECT_DOUBLE_EQ(residual->AsNumber(), 0.0)
        << node.Find("scope")->AsString();
    const JsonValue* busy = node.Find("busy_ns");
    ASSERT_NE(busy, nullptr);
    EXPECT_GE(busy->AsNumber(), 0.0);
  }
}

TEST(DiagnoserIntegrationTest, AuditCleanOnAFaultFreeRun) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.sample_period = 50 * kMillisecond;
  options.telemetry.strict_audit = true;  // Violations would abort here.
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(4000));
  ASSERT_TRUE(report.diagnostics.is_object());
  EXPECT_DOUBLE_EQ(report.diagnostics.Find("errors")->AsNumber(), 0.0);
  EXPECT_TRUE(report.diagnostics.Find("finalized")->AsBool());
  EXPECT_GT(report.diagnostics.Find("windows")->AsNumber(), 0.0);
}

TEST(DiagnoserIntegrationTest, DiagnosticsDoNotPerturbTheRun) {
  BicliqueOptions with = SmallEngine();
  with.telemetry.sample_period = 20 * kMillisecond;
  with.telemetry.diagnostics = true;
  RunReport diagnosed = RunBicliqueWorkload(with, SmallWorkload(3000));

  BicliqueOptions without = SmallEngine();
  without.telemetry.sample_period = 20 * kMillisecond;
  without.telemetry.diagnostics = false;
  RunReport plain = RunBicliqueWorkload(without, SmallWorkload(3000));

  // The diagnoser rides the sampler's observer hook: same results, same
  // virtual makespan, same traffic, bit for bit.
  EXPECT_EQ(diagnosed.results, plain.results);
  EXPECT_EQ(diagnosed.engine.makespan_ns, plain.engine.makespan_ns);
  EXPECT_EQ(diagnosed.engine.messages, plain.engine.messages);
  EXPECT_EQ(diagnosed.engine.bytes, plain.engine.bytes);
  EXPECT_EQ(diagnosed.engine.probes, plain.engine.probes);
}

// Replicates the fault-recovery driver with diagnostics on so the detector
// stream under crash + recovery can be compared across runs.
std::string DiagnosticStreamUnderFaults(uint64_t seed) {
  BicliqueOptions options = SmallEngine();
  options.punct_interval = 10 * kMillisecond;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_rounds = 16;
  options.telemetry.sample_period = 25 * kMillisecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 40;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = 4000;
  workload.seed = seed;
  SyntheticSource source(workload);
  std::vector<TimedTuple> stream = DrainSource(&source);

  FaultPlan plan;
  plan.crashes.push_back({.at = 1500 * kMillisecond, .unit = 1});

  EventLoop loop;
  CollectorSink sink(/*check=*/false);
  BicliqueEngine engine(&loop, options, &sink);
  FaultInjector injector(
      &loop, plan, [&engine](const FaultPlan::Crash& crash, uint64_t draw) {
        return engine.InjectCrash(crash, draw);
      });
  FailureDetectorOptions detector_options;
  detector_options.check_interval = 20 * kMillisecond;
  detector_options.timeout = 60 * kMillisecond;
  detector_options.backoff = 100 * kMillisecond;
  FailureDetector detector(&engine, detector_options);

  injector.Start();
  detector.Start();
  engine.Start();
  for (const TimedTuple& tt : stream) {
    loop.RunUntil(tt.arrival);
    engine.InjectNow(tt.tuple);
  }
  engine.FlushAndStop();
  loop.RunUntilIdle();
  engine.FinalizeDiagnostics();
  return engine.diagnoser()->DiagnosticsJson().Dump();
}

TEST(DiagnoserIntegrationTest, DetectorStreamIsDeterministicUnderFaults) {
  std::string first = DiagnosticStreamUnderFaults(21);
  std::string second = DiagnosticStreamUnderFaults(21);
  // Same seed, same FaultPlan: the serialized DiagnosticEvent stream is
  // byte-identical — times, windows, scores and all.
  EXPECT_EQ(first, second);
  // And it is not trivially empty: a crash and recovery happened.
  EXPECT_NE(first.find("\"windows\""), std::string::npos);
}

TEST(DiagnoserIntegrationTest, ZipfSkewIsFlaggedWithinThreeWindows) {
  // E7's hot-partition scenario: pure hash partitioning (subgroups ==
  // joiners per side) under a heavily Zipf-skewed key draw.
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 4;
  options.joiners_s = 4;
  options.subgroups_r = 4;
  options.subgroups_s = 4;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  options.telemetry.sample_period = 50 * kMillisecond;

  SyntheticWorkloadOptions workload;
  workload.key_domain = 50;
  workload.zipf_theta_r = 1.2;
  workload.zipf_theta_s = 1.2;
  workload.rate_r = RateSchedule::Constant(2000);
  workload.rate_s = RateSchedule::Constant(2000);
  workload.total_tuples = 4000;
  workload.seed = 31;

  RunReport report = RunBicliqueWorkload(options, workload);
  ASSERT_TRUE(report.diagnostics.is_object());
  const JsonValue* events = report.diagnostics.Find("events");
  ASSERT_NE(events, nullptr);
  bool flagged_early = false;
  for (const JsonValue& event : events->elements()) {
    if (event.Find("detector")->AsString() != "skew") continue;
    if (event.Find("severity")->AsString() != "warning") continue;
    // Acceptance: the skew alarm fires within the first 3 sample windows.
    if (event.Find("window")->AsNumber() <= 2.0) flagged_early = true;
  }
  EXPECT_TRUE(flagged_early)
      << "no skew warning in the first 3 windows; diagnostics: "
      << report.diagnostics.Dump(2);
}

}  // namespace
}  // namespace bistream
