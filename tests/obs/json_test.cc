#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.h"

namespace bistream {
namespace {

TEST(JsonValueTest, BuildAndInspect) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::String("e4"));
  obj.Set("runs", JsonValue::Number(uint64_t{3}));
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("missing", JsonValue::Null());
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue::Number(1.5));
  arr.Push(JsonValue::Number(-2));
  obj.Set("xs", std::move(arr));

  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.size(), 5u);
  ASSERT_NE(obj.Find("name"), nullptr);
  EXPECT_EQ(obj.Find("name")->AsString(), "e4");
  EXPECT_DOUBLE_EQ(obj.Find("runs")->AsNumber(), 3);
  EXPECT_TRUE(obj.Find("ok")->AsBool());
  EXPECT_TRUE(obj.Find("missing")->is_null());
  EXPECT_EQ(obj.Find("absent"), nullptr);
  ASSERT_EQ(obj.Find("xs")->size(), 2u);
  EXPECT_DOUBLE_EQ(obj.Find("xs")->at(1).AsNumber(), -2);
}

TEST(JsonValueTest, SetReplacesExistingKeyKeepingOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Number(1));
  obj.Set("b", JsonValue::Number(2));
  obj.Set("a", JsonValue::Number(9));
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.Find("a")->AsNumber(), 9);
  // Insertion order preserved: "a" still first.
  EXPECT_EQ(obj.members()[0].first, "a");
}

TEST(JsonValueTest, NullPromotesToContainerOnFirstMutation) {
  JsonValue v;
  v.Push(JsonValue::Number(1));
  EXPECT_TRUE(v.is_array());
  JsonValue w;
  w.Set("k", JsonValue::Bool(false));
  EXPECT_TRUE(w.is_object());
}

TEST(JsonValueTest, DumpParseRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("str", JsonValue::String("with \"quotes\", \\ and\nnewline\ttab"));
  obj.Set("neg", JsonValue::Number(-0.125));
  obj.Set("big", JsonValue::Number(uint64_t{1} << 40));
  obj.Set("flag", JsonValue::Bool(false));
  obj.Set("none", JsonValue::Null());
  JsonValue inner = JsonValue::Array();
  inner.Push(JsonValue::String(""));
  inner.Push(JsonValue::Object());
  obj.Set("arr", std::move(inner));

  for (int indent : {0, 2}) {
    Result<JsonValue> parsed = JsonValue::Parse(obj.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const JsonValue& back = *parsed;
    EXPECT_EQ(back.Find("str")->AsString(),
              "with \"quotes\", \\ and\nnewline\ttab");
    EXPECT_DOUBLE_EQ(back.Find("neg")->AsNumber(), -0.125);
    EXPECT_DOUBLE_EQ(back.Find("big")->AsNumber(),
                     static_cast<double>(uint64_t{1} << 40));
    EXPECT_FALSE(back.Find("flag")->AsBool());
    EXPECT_TRUE(back.Find("none")->is_null());
    EXPECT_EQ(back.Find("arr")->at(0).AsString(), "");
    EXPECT_TRUE(back.Find("arr")->at(1).is_object());
  }
}

TEST(JsonValueTest, ParseAcceptsWhitespaceAndNested) {
  Result<JsonValue> parsed = JsonValue::Parse(
      " { \"a\" : [ 1 , 2.5e1 , { \"b\" : null } ] , \"c\" : true } ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("a")->at(1).AsNumber(), 25.0);
  EXPECT_TRUE(parsed->Find("a")->at(2).Find("b")->is_null());
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonFileTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/json_test_artifact.json";
  JsonValue obj = JsonValue::Object();
  obj.Set("experiment", JsonValue::String("unit"));
  obj.Set("runs", JsonValue::Array());
  ASSERT_TRUE(WriteJsonFile(path, obj).ok());
  Result<JsonValue> back = ReadJsonFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find("experiment")->AsString(), "unit");
  EXPECT_TRUE(back->Find("runs")->is_array());
  std::remove(path.c_str());
}

TEST(JsonFileTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadJsonFile("/nonexistent/dir/nope.json").ok());
}

}  // namespace
}  // namespace bistream
